// udring/mc/model_check.h
//
// Exhaustive stateless model checking over the replay choice tree.
//
// The paper's correctness claims are quantified over *every* asynchronous
// schedule; the fuzzer (src/explore) samples that quantifier, this subsystem
// discharges it for small instances. The object being walked is the exact
// choice tree the sorted-enabled-index trace encoding defines: a node is a
// reachable configuration C = (S, T, M, P, Q), its out-edges are the indices
// 0..|enabled|-1 into the sorted enabled set, and every root-to-leaf path IS
// a ScheduleTrace — so a violating path is immediately a replayable artifact
// for `udring_fuzz --replay` and shrink_trace, and "verified" means every
// schedule of the instance was executed (modulo the sound prunings below)
// with check_model_invariants after each action and the algorithm's goal
// oracle at quiescence, exactly the fuzzer's per-run verdict.
//
// The walk is an iterative DFS with an explicit prefix stack over a pooled
// sim::ExecutionState: descending one level is one atomic action; advancing
// to a sibling re-executes the prefix from C_0 (the stateless discipline —
// PR 3's arena reset makes this a near-free replay). Every such backtrack
// re-run uses explore::ReplayScheduler in Strict mode and treats any
// out-of-range/exhausted pick as a determinism bug (std::logic_error), so
// the checker cannot silently wander off the recorded branch.
//
// Four prunings, all verdict-preserving (pinned by test_mc.cpp's
// pruned == unpruned grids over every combination of the option flags):
//  - Visited-state dedup on ExecutionState::config_digest(): a configuration
//    reached again (necessarily at the same depth — the digest folds
//    per-agent action counts) is not re-expanded. Combined with sleep sets
//    via the standard subset rule: a state is skipped only when it was
//    previously expanded with a sleep set that is a SUBSET of the current
//    one (the stored exploration covered a superset of the transitions the
//    current visit would explore).
//  - Sleep sets (last-agent independence): after branch `a` of a node is
//    fully explored, `a` sleeps for the node's later branches; a child
//    inherits the sleeping agents that are independent of the edge taken.
//    Independence is conservative footprint disjointness — an enabled
//    agent's next action can only touch its node (arrival, tokens,
//    broadcast, staying set, queue head) and its successor node's link
//    queue (departure), so two agents with disjoint {node, next(node)}
//    footprints commute and cannot enable/disable each other, including
//    under the non-FIFO fault (overtaking eligibility is a queue-membership
//    property of those same nodes).
//  - Dynamic partial-order reduction (Flanagan–Godefroid backtrack sets)
//    over the same dependency relation: each DFS node starts with a single
//    scheduled branch, and when a deeper transition is found to race with
//    the edge out of an ancestor (same agent, or intersecting
//    {node, next(node)} footprints), the racing agent is added to that
//    ancestor's backtrack set — so only representatives of distinct
//    Mazurkiewicz traces are explored, which preserves every reachable
//    quiescent / action-limit configuration and hence the verdict. Because
//    dedup can skip a subtree whose transitions would have seeded backtrack
//    points, each visited entry carries a summary of the agents and nodes
//    its explored subtree touched (the Yang et al. stateful-DPOR repair);
//    a dedup hit replays that summary against every edge on the current
//    stack — the cut edge itself included, whose pre-state is the top frame
//    — and fully re-expands each pre-state whose edge races with it.
//    Auto-disabled beyond 64 agents or 64 nodes (the summaries are
//    bitmasks).
//  - Anonymous-agent symmetry: dedup keys are SymmetryCanonicalizer's
//    canonical digests (src/mc/symmetry.h), quotienting configurations by
//    agent-id permutations — sound because agents are anonymous and every
//    oracle is id-symmetric. Sleep masks and DPOR summaries stored under a
//    canonical key are translated to canonical rank space on the way in and
//    back to concrete agent ids on the way out, so the subset rule never
//    compares masks from two different labellings.
//
// Parallel mode is frontier-sharded: a serial BFS expands the tree until a
// level has at least `frontier_target` open nodes, each frontier node (its
// choice prefix + inherited sleep set) becomes one shard, and shards run
// DFS walks across util::parallel_for_workers with one pooled
// core::RunContext per worker. The shard decomposition, per-shard budgets
// and per-shard visited maps (seeded from the BFS phase's map) depend only
// on the options — never on the worker count — and reports fold in shard
// index order, so schedules/states/verdict and digest() are byte-identical
// at any parallelism, the same contract as exp::run_campaign.
//
// `shared_visited` swaps the per-shard maps for one lock-free
// LockFreeVisitedSet (util/visited_set.h) shared by the BFS phase and every
// shard: the first arrival at a configuration claims it and expands it,
// every later arrival from any shard skips it, which eliminates the
// cross-shard re-exploration tax entirely and turns the walk into a
// closure over the state DAG. Path-dependent prunings (sleep sets, DPOR)
// are force-disabled in this mode — a state claimed under one path's sleep
// set must still be expanded with every branch — and determinism survives
// the racing claims because every reported number is a function of the
// closure itself, not of who claimed what: each reachable state is
// expanded exactly once by whichever shard wins it, each edge out of a
// claimed state is explored exactly once, all paths to a state have equal
// length (depth is a function of the state), and the report folds only
// sums and maxima of those quantities. Verdicts and all counts therefore
// stay byte-identical at any worker count for walks that complete; a
// budget-stopped walk keeps a deterministic verdict but its partial
// counters depend on where the global budget landed. One caveat bounds the
// contract: when the closure's size approaches the shared table's fill
// limit (~7/8 of capacity), whether some insert observes Full — via the
// racy fill gate or a clustered probe run — depends on the racing claim
// order, so the same instance may report "verified" in one run and
// "budget-exhausted" in another at that boundary. The verdict is never
// wrong, only unstably incomplete; size the table (shared_visited_capacity)
// so the closure fits comfortably under the limit and the complete /
// incomplete boundary is deterministic too. A violating instance
// is re-checked without the shared set (the deterministic tree walk) so
// the counterexample trace is byte-identical too — the shared set
// accelerates the common "verified" case.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/trace.h"
#include "sim/topology.h"
#include "util/table.h"

namespace udring::mc {

/// Index into a node's sorted enabled set — the element type of
/// explore::ScheduleTrace::choices. One typedef shared by the DFS stack,
/// the BFS expansion and the shard prefixes so branch arithmetic cannot
/// silently narrow (they formerly mixed std::uint32_t and size_t);
/// mc::check guards the agent count against its range up front, which
/// bounds every enabled-set size.
using branch_index_t = std::uint32_t;
static_assert(
    std::is_same_v<branch_index_t,
                   decltype(explore::ScheduleTrace::choices)::value_type>,
    "branch indices are trace choices; the types must not drift apart");

/// One instance to verify over all schedules: the same coordinates a
/// ScheduleTrace carries, minus the choices (the checker supplies all of
/// them). `topology` empty = the plain ring of node_count.
struct CheckRequest {
  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  /// Goal the instance is verified against (core::make_goal_oracle);
  /// Auto = the algorithm's natural problem. Carried into counterexample
  /// traces so they replay against the same oracle.
  core::ProblemSpec problem;
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;
  sim::Topology topology;
  /// TEST-ONLY non-FIFO fault injection, as in SimOptions / ScheduleTrace.
  bool fault_non_fifo = false;
  std::size_t fault_min_phase = 0;
  /// Structured fault schedule (sim/fault.h) every checked schedule runs
  /// under: crash-stop faults, message drop/duplication, dynamic-ring
  /// rewiring points. Rewiring points add *choice-tree levels*: at a pending
  /// rewiring the node's branches are the candidate strides instead of
  /// agents, so counterexample traces carry the adversary's rewiring choices
  /// in `choices` and replay through the ordinary pick_index path. Plans
  /// with events force the path-dependent prunings off (sleep sets, DPOR —
  /// a crash is a global asymmetric event their independence relation does
  /// not model) and crash plans force symmetry off (they name concrete
  /// agent ids); dedup stays sound because config_digest folds the live
  /// fault state.
  sim::FaultPlan faults;
  /// Per-schedule action cap; 0 = the simulator's auto limit. Hitting it on
  /// any branch is a violation (livelock or broken algorithm), like the
  /// fuzzer's verdict.
  std::size_t max_actions = 0;
};

struct McOptions {
  /// (a) visited-state deduplication on ExecutionState::config_digest().
  bool dedup_states = true;
  /// (b) sleep-set / last-agent independence pruning. Auto-disabled when
  /// the instance has more than 64 agents (the sleep mask is a bitmask —
  /// exhaustive checking far beyond that is hopeless anyway).
  bool sleep_sets = true;
  /// (c) dynamic partial-order reduction (Flanagan–Godefroid backtrack
  /// sets) over the same footprint dependency the sleep sets use, with
  /// per-visited-state subtree summaries repairing the dedup interaction
  /// (header comment). Auto-disabled beyond 64 agents or 64 nodes, and in
  /// shared_visited mode (the reduction is path-dependent).
  bool dpor = true;
  /// (d) anonymous-agent symmetry reduction: dedup on the canonical digest
  /// of src/mc/symmetry.h instead of the raw config digest, merging states
  /// that differ only by an agent-id permutation. No effect when
  /// dedup_states is off.
  bool symmetry = true;
  /// Replace the per-shard visited maps with one lock-free open-addressing
  /// hash set (util/visited_set.h) shared across the BFS phase and every
  /// frontier shard. Eliminates cross-shard re-exploration; forces
  /// sleep_sets and dpor off; ignored when dedup_states is off. See the
  /// header comment for the determinism contract.
  bool shared_visited = false;
  /// Slot count of the shared set (0 = auto, currently 2^22 ≈ 32 MiB).
  /// Overflow degrades the verdict to "budget-exhausted", never corrupts
  /// it — but near the fill limit WHICH runs overflow is claim-order
  /// dependent (header comment), so size generously for a deterministic
  /// complete/incomplete boundary.
  std::size_t shared_visited_capacity = 0;
  /// Global budget on executed simulator actions, replays included
  /// (0 = unlimited). Split deterministically across shards, so exceeding
  /// it yields `complete = false` at any worker count identically.
  std::size_t budget_actions = 0;
  /// Frontier sharding target: the BFS phase expands until a level has at
  /// least this many open nodes, each of which becomes one DFS shard.
  /// 1 (default) = a single serial walk. The value changes how the work is
  /// cut, never the verdict.
  std::size_t frontier_target = 1;
  /// Worker threads executing shards (resolve_workers semantics; 0 = all
  /// cores). Never affects any reported number.
  std::size_t workers = 1;
};

struct McStats {
  std::size_t schedules = 0;        ///< complete schedules (quiescent or limit leaves)
  std::size_t states_expanded = 0;  ///< choice-tree nodes expanded
  std::size_t states_deduped = 0;   ///< subtrees cut by the visited-state hash
  std::size_t sleep_pruned = 0;     ///< branches cut by sleep sets
  std::size_t dpor_pruned = 0;      ///< branches cut by DPOR backtrack sets
  std::size_t replays = 0;          ///< strict prefix re-executions (backtracks)
  std::size_t total_actions = 0;    ///< simulator actions executed, replays included
  std::size_t max_depth = 0;        ///< deepest schedule prefix reached
  std::size_t shards = 0;           ///< DFS shards executed (0 = BFS resolved all)
};

struct ModelCheckReport {
  /// True when the (pruned) choice tree was walked to exhaustion within the
  /// budget. `ok && complete` is the "verified over all schedules" verdict.
  bool complete = false;
  /// False as soon as any branch violated an invariant, failed its goal
  /// oracle at quiescence, or hit the action limit.
  bool ok = true;
  /// "verified" | "violation" | "budget-exhausted".
  std::string verdict;
  /// The violating branch's reason, in the fuzzer's exact phrasing
  /// ("invariant: …", "goal: …", or the action-limit text).
  std::string failure_reason;
  /// First counterexample in deterministic walk order, as a replayable
  /// trace: digest and note refreshed from its own replay, so
  /// `udring_fuzz --replay` accepts it like any corpus file.
  std::optional<explore::ScheduleTrace> counterexample;
  McStats stats;

  /// Order-sensitive digest of the verdict and every stat; equality across
  /// worker counts is the determinism contract (test_mc.cpp pins it).
  [[nodiscard]] std::uint64_t digest() const;
};

/// Exhaustively verifies one instance. Deterministic in (request, options):
/// worker count affects wall-clock only.
[[nodiscard]] ModelCheckReport check(const CheckRequest& request,
                                     const McOptions& options = {});

/// Bounded fault-budget enumeration for check_with_faults: how many fault
/// events the adversary may inject per plan, and the latest action index a
/// fault event may be scheduled at (the enumeration is over discrete
/// schedule times, so this bounds the plan space).
struct FaultBudget {
  std::size_t crashes = 0;  ///< max crash-stop faults per plan (0 or 1 typical)
  std::size_t rewires = 0;  ///< max dynamic-ring rewiring points per plan
  std::size_t max_fault_action = 8;  ///< latest at_action considered

  [[nodiscard]] bool empty() const noexcept {
    return crashes == 0 && rewires == 0;
  }
};

/// Exhaustively verifies `request` under EVERY fault plan within `budget`
/// (on top of request.faults): the clean plan first, then every crash
/// assignment (agent × time), every rewiring-point set, and their products,
/// in deterministic lexicographic order. Stops at the first violating plan —
/// the returned report's counterexample trace carries that plan, so the
/// artifact replays stand-alone — otherwise aggregates stats across all
/// plans ("verified" only when every plan's walk completed).
[[nodiscard]] ModelCheckReport check_with_faults(const CheckRequest& request,
                                                 const FaultBudget& budget,
                                                 const McOptions& options = {});

// ---- campaign integration ---------------------------------------------------

/// One exhaustively-checked cell of a campaign grid.
struct GridCell {
  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  exp::ConfigFamily family = exp::ConfigFamily::RandomAny;
  std::size_t node_count = 0;
  std::size_t agent_count = 0;
  std::size_t symmetry = 1;
  std::uint64_t repetition = 0;
  std::vector<std::size_t> homes;  ///< the instance actually checked
  ModelCheckReport report;
  /// Goal the cell was verified against (the grid's problem axis). Kept
  /// last: GridCell predates the field and may be aggregate-initialized.
  core::ProblemSpec problem;
};

struct GridReport {
  std::vector<GridCell> cells;  ///< grid expansion order
  std::size_t violations = 0;
  std::size_t budget_exhausted = 0;

  /// Every cell verified over all schedules (complete && ok).
  [[nodiscard]] bool all_verified() const noexcept {
    return violations == 0 && budget_exhausted == 0;
  }
  [[nodiscard]] std::uint64_t digest() const;

  /// One row per cell: coordinates, schedule/state counts, prune counters,
  /// and a "verified over all schedules" / "VIOLATION" / "budget" verdict —
  /// the exhaustive sibling of exp::CampaignResult::summary_table().
  [[nodiscard]] Table summary_table() const;
  [[nodiscard]] std::string summary() const;
};

/// Exhaustively model-checks every instance of `grid` — the same expansion
/// order and substream-derived home configurations exp::run_campaign
/// samples (exp::scenario_homes), so "verified over all schedules" becomes
/// a grid cell alongside fuzzed/measured cells. The scheduler axis is
/// collapsed (the checker quantifies over every scheduler by construction);
/// grid.sim_options supplies the fault knobs and action cap. Cells run in
/// expansion order; `options` applies per cell.
[[nodiscard]] GridReport check_grid(const exp::CampaignGrid& grid,
                                    const McOptions& options = {});

}  // namespace udring::mc
