// udring/mc/symmetry.h
//
// Anonymous-agent symmetry reduction for the model checker.
//
// The agents in Shibata et al.'s model are anonymous: sim::AgentContext
// exposes neither node nor agent identity to algorithm code, message
// payloads carry no agent ids, and every goal oracle is a predicate on
// positions and program states, not on which id holds them. Two
// configurations that differ only by a permutation of agent ids — the same
// multiset of per-agent states, the same token counts, the same link-queue
// contents up to consistently renaming queue members — therefore generate
// isomorphic behaviour trees and identical verdicts.
//
// SymmetryCanonicalizer quotients ExecutionState::config_digest() by exactly
// those permutations. It computes a canonical rank for every agent by
// sorting agents on their identity-free attribute digest
// (ExecutionState::agent_digest: status, node, phase, action count,
// state_hash, mailbox contents), breaking ties between equal-attribute
// agents by their first occurrence in a canonical scan of the link queues
// (node order, FIFO order within a queue). The canonical digest then folds
// the sorted attribute digests plus every queue's contents spelled in ranks
// instead of ids. The result is invariant under any agent relabelling, and
// — up to ordinary 64-bit hash collisions, the same risk config_digest()
// already accepts — two states share a canonical digest only when some
// relabelling maps one onto the other:
//
//   * equal-rank agents have equal attribute digests, so mapping rank j of
//     one state to rank j of the other preserves every per-agent field;
//   * the queue folds use ranks, so that same mapping reproduces the queue
//     contents; agents tied on both attributes and queue position are not
//     in any queue and are fully interchangeable.
//
// Agents whose attributes differ (a permuted-homes pair, say, where the
// agents have walked different distances and so hold different program
// state or action counts) get distinct ranks and can never be merged —
// tests/test_symmetry.cpp pins that non-merge alongside the quotient's
// verdict-preservation.
//
// The rank tables for the LAST canonicalized state stay readable until the
// next call, so mc's dedup can translate its agent-id bitmasks (sleep sets,
// DPOR summaries) into rank space: masks stored under a canonical key must
// be compared in a label-free basis, or a stored mask from one labelling
// would be tested against a sleep set from another.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/execution_state.h"

namespace udring::mc {

class SymmetryCanonicalizer {
 public:
  /// Canonical digest of `state`'s configuration, invariant under agent-id
  /// permutations. Scratch buffers are pooled across calls (one instance per
  /// Explorer); results are byte-identical to a fresh canonicalizer's
  /// (test_pooling.cpp pins this).
  [[nodiscard]] std::uint64_t canonical_digest(const sim::ExecutionState& state);

  /// Maps an agent-id bitmask into rank space for the state passed to the
  /// most recent canonical_digest() call: bit `rank_of[id]` of the result is
  /// set iff bit `id` of `mask` is. Ids >= 64 never occur in masks (mc
  /// disables its bitmask prunings beyond 64 agents).
  [[nodiscard]] std::uint64_t to_canonical(std::uint64_t mask) const noexcept;

  /// Inverse of to_canonical for the same state: rank-space mask back to
  /// agent ids.
  [[nodiscard]] std::uint64_t from_canonical(std::uint64_t mask) const noexcept;

  /// The id -> rank table of the most recent canonical_digest() call, by
  /// value semantics of the caller's copy: mc's DFS snapshots it per frame
  /// so pop-time summary write-back can translate masks after the scratch
  /// tables have been overwritten by deeper states.
  [[nodiscard]] const std::vector<std::uint32_t>& rank_table() const noexcept {
    return rank_of_;
  }

 private:
  std::vector<std::uint64_t> keys_;      // id -> agent_digest
  std::vector<std::size_t> queue_pos_;   // id -> canonical queue-scan position
  std::vector<std::uint32_t> order_;     // rank -> id
  std::vector<std::uint32_t> rank_of_;   // id -> rank
};

}  // namespace udring::mc
