#include "mc/symmetry.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/rng.h"

namespace udring::mc {

std::uint64_t SymmetryCanonicalizer::canonical_digest(
    const sim::ExecutionState& state) {
  const std::size_t k = state.agent_count();
  const std::size_t n = state.node_count();

  keys_.resize(k);
  queue_pos_.assign(k, std::numeric_limits<std::size_t>::max());
  for (sim::AgentId id = 0; id < k; ++id) keys_[id] = state.agent_digest(id);
  // Canonical queue scan: node order, FIFO order within a queue. An agent's
  // position in this scan is relabelling-invariant, which is what makes it a
  // legal tie-break between agents with equal attribute digests.
  std::size_t pos = 0;
  for (sim::NodeId node = 0; node < n; ++node) {
    for (const sim::AgentId member : state.link_queue(node)) {
      queue_pos_[member] = pos++;
    }
  }

  order_.resize(k);
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (keys_[a] != keys_[b]) return keys_[a] < keys_[b];
              return queue_pos_[a] < queue_pos_[b];
            });
  // Agents equal on both sort keys are not in any queue and have identical
  // attribute digests; their relative rank order cannot affect the digest.
  rank_of_.resize(k);
  for (std::uint32_t rank = 0; rank < k; ++rank) rank_of_[order_[rank]] = rank;

  std::uint64_t digest = 0xca4041ca1d16e570ULL;  // "canonical-digest" domain
  fold64(digest, n);
  fold64(digest, k);
  for (const std::size_t count : state.token_counts()) fold64(digest, count);
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    fold64(digest, keys_[order_[rank]]);
  }
  for (sim::NodeId node = 0; node < n; ++node) {
    const auto& queue = state.link_queue(node);
    fold64(digest, queue.size());
    for (const sim::AgentId member : queue) fold64(digest, rank_of_[member]);
  }
  // Lockstep with ExecutionState::config_digest(): live fault state (current
  // stride, pending/consumed rewires, remaining drop/dup budgets) is
  // agent-id-free, so it folds identically into the canonical digest — two
  // states whose adversaries can still act differently must never quotient
  // together. No-op for event-free plans.
  state.fold_fault_state(digest);
  return digest;
}

std::uint64_t SymmetryCanonicalizer::to_canonical(
    std::uint64_t mask) const noexcept {
  std::uint64_t out = 0;
  for (std::size_t id = 0; id < rank_of_.size() && id < 64; ++id) {
    if ((mask >> id) & 1) out |= std::uint64_t{1} << rank_of_[id];
  }
  return out;
}

std::uint64_t SymmetryCanonicalizer::from_canonical(
    std::uint64_t mask) const noexcept {
  std::uint64_t out = 0;
  for (std::size_t rank = 0; rank < order_.size() && rank < 64; ++rank) {
    if ((mask >> rank) & 1) out |= std::uint64_t{1} << order_[rank];
  }
  return out;
}

}  // namespace udring::mc
