#include "mc/model_check.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "explore/fuzz.h"
#include "explore/replay.h"
#include "sim/checker.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace udring::mc {

namespace {

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

/// A choice-tree node handed from the BFS frontier phase to a DFS shard:
/// the schedule prefix that reaches it plus the sleep set it inherited.
struct ShardNode {
  std::vector<std::uint32_t> prefix;
  std::uint64_t sleep = 0;
};

/// Visited-state store: config digest -> sleep masks the state was expanded
/// with. The subset rule (see model_check.h) needs all incomparable masks.
using VisitedMap = std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>;

[[nodiscard]] sim::Instance build_instance(const CheckRequest& request) {
  core::RunSpec spec;
  spec.node_count = request.node_count;
  spec.homes = request.homes;
  spec.topology = request.topology;
  spec.problem = request.problem;
  spec.sim_options.record_events = false;  // history is not state; stay lean
  spec.sim_options.max_actions = request.max_actions;
  spec.sim_options.fault_non_fifo_links = request.fault_non_fifo;
  spec.sim_options.fault_non_fifo_min_phase = request.fault_min_phase;
  return core::make_instance(request.algorithm, spec);
}

/// One stateless DFS (or BFS-expansion) engine over one pooled
/// ExecutionState. Not thread-safe; shards own independent Explorers.
class Explorer {
 public:
  Explorer(const sim::Instance& instance, const sim::GoalOracle& oracle,
           const McOptions& options, sim::ExecutionState& state,
           std::size_t budget, VisitedMap visited_seed)
      : instance_(instance),
        oracle_(oracle),
        options_(options),
        cur_(state),
        budget_(budget),
        visited_(std::move(visited_seed)) {}

  McStats stats;
  bool budget_stop = false;
  /// First violation in this explorer's deterministic walk order.
  std::optional<std::pair<std::vector<std::uint32_t>, std::string>> violation;

  [[nodiscard]] const VisitedMap& visited() const noexcept { return visited_; }

  /// Walks the whole subtree rooted at `prefix` (with inherited sleep set)
  /// by iterative DFS. The prefix node must be an open interior node (the
  /// tree root, or a node the BFS phase classified as open).
  void dfs(const std::vector<std::uint32_t>& prefix, std::uint64_t root_sleep) {
    struct Frame {
      std::vector<sim::AgentId> agents;  ///< sorted enabled set at this node
      std::uint32_t next_branch = 0;
      std::uint64_t sleep = 0;
      sim::AgentId entered_agent = 0;  ///< edge into this node (parent's pick)
    };
    const auto make_frame = [this](std::uint64_t sleep, sim::AgentId entered) {
      sort_enabled();
      ++stats.states_expanded;
      return Frame{sorted_, 0, sleep, entered};
    };

    path_ = prefix;
    reposition();
    std::vector<Frame> stack;
    stack.push_back(make_frame(root_sleep, 0));

    while (!stack.empty() && !violation && !budget_stop) {
      Frame& f = stack.back();
      if (f.next_branch >= f.agents.size()) {
        // Node fully explored: return to the parent and put the edge agent
        // to sleep for the parent's remaining branches.
        const sim::AgentId entered = f.entered_agent;
        stack.pop_back();
        if (!stack.empty()) {
          path_.pop_back();
          at_tip_ = false;
          if (options_.sleep_sets) stack.back().sleep |= bit(entered);
        }
        continue;
      }
      const std::uint32_t b = f.next_branch++;
      // The frame caches the node's sorted enabled set, so sleep-pruning a
      // branch costs nothing — in particular no prefix replay.
      const sim::AgentId agent = f.agents[b];
      if (options_.sleep_sets && (f.sleep & bit(agent)) != 0) {
        ++stats.sleep_pruned;
        continue;
      }
      if (!at_tip_) {
        reposition();
        sort_enabled();
        if (sorted_ != f.agents) {
          throw std::logic_error(
              "mc: enabled set changed on backtrack replay (determinism bug)");
        }
      }
      const std::uint64_t child_sleep = inherit_sleep(f.agents, f.sleep, agent);
      const std::size_t prev_tokens = cur_.total_tokens();
      path_.push_back(b);
      step(agent);
      if (classify(child_sleep, prev_tokens)) {
        stack.push_back(make_frame(child_sleep, agent));
      } else {
        path_.pop_back();
        at_tip_ = false;
        if (options_.sleep_sets) f.sleep |= bit(agent);
      }
    }
  }

  /// Expands every node of `level` one step, appending surviving open
  /// children to `next` (the BFS frontier phase). Stops early on violation
  /// or budget exhaustion.
  void expand_level(const std::vector<ShardNode>& level,
                    std::vector<ShardNode>& next) {
    for (const ShardNode& node : level) {
      if (violation || budget_stop) return;
      path_ = node.prefix;
      reposition();
      sort_enabled();
      // Stepping invalidates the tip, and each sibling repositions; copy the
      // branch agents up front.
      const std::vector<sim::AgentId> agents = sorted_;
      std::uint64_t sleep = node.sleep;
      ++stats.states_expanded;
      for (std::uint32_t b = 0; b < agents.size(); ++b) {
        if (violation || budget_stop) return;
        const sim::AgentId agent = agents[b];
        if (options_.sleep_sets && (sleep & bit(agent)) != 0) {
          ++stats.sleep_pruned;
          continue;
        }
        if (!at_tip_) {
          path_ = node.prefix;
          reposition();
        }
        const std::uint64_t child_sleep = inherit_sleep(agents, sleep, agent);
        const std::size_t prev_tokens = cur_.total_tokens();
        path_.push_back(b);
        step(agent);
        if (classify(child_sleep, prev_tokens)) {
          next.push_back({path_, child_sleep});
        }
        path_.pop_back();
        at_tip_ = false;
        if (options_.sleep_sets) sleep |= bit(agent);
      }
    }
  }

 private:
  [[nodiscard]] static std::uint64_t bit(sim::AgentId agent) noexcept {
    return std::uint64_t{1} << agent;
  }

  /// Re-executes the current prefix from C_0 through a Strict-mode
  /// ReplayScheduler: the divergence check on every backtrack. A prefix that
  /// no longer replays exactly means the simulator is not deterministic in
  /// the pick sequence — a checker-invalidating bug, reported loudly.
  void reposition() {
    cur_.reset(instance_);
    if (!path_.empty()) {
      explore::ReplayScheduler replayer(path_, explore::ReplayMode::Strict);
      replayer.reset(cur_.agent_count());
      for (std::size_t i = 0; i < path_.size(); ++i) {
        if (!cur_.step(replayer)) {
          throw std::logic_error("mc: prefix replay hit quiescence early");
        }
      }
      if (replayer.diverged()) {
        throw std::logic_error("mc: strict prefix replay diverged: " +
                               replayer.divergence());
      }
      ++stats.replays;
      stats.total_actions += path_.size();
    }
    at_tip_ = true;
  }

  void sort_enabled() {
    sorted_.assign(cur_.enabled().begin(), cur_.enabled().end());
    std::sort(sorted_.begin(), sorted_.end());
  }

  void step(sim::AgentId agent) {
    if (!cur_.step_agent(agent)) {
      throw std::logic_error("mc: picked agent not enabled");
    }
    ++stats.total_actions;
    stats.max_depth = std::max(stats.max_depth, path_.size());
  }

  /// Sleeping agents that stay asleep across the edge taken by `agent`:
  /// those whose pending action is independent of it (conservative
  /// footprint disjointness on {node, next(node)}). `enabled_agents` is the
  /// node's enabled set (sleep ⊆ enabled always holds — see model_check.h).
  [[nodiscard]] std::uint64_t inherit_sleep(
      const std::vector<sim::AgentId>& enabled_agents, std::uint64_t sleep,
      sim::AgentId agent) const {
    if (!options_.sleep_sets || sleep == 0) return 0;
    std::uint64_t child = 0;
    for (const sim::AgentId z : enabled_agents) {
      if ((sleep & bit(z)) != 0 && independent(z, agent)) child |= bit(z);
    }
    return child;
  }

  [[nodiscard]] bool independent(sim::AgentId a, sim::AgentId b) const {
    const sim::Topology& topo = cur_.topology();
    const sim::NodeId an = cur_.agent_node(a);
    const sim::NodeId bn = cur_.agent_node(b);
    const sim::NodeId an2 = topo.next(an);
    const sim::NodeId bn2 = topo.next(bn);
    return an != bn && an != bn2 && an2 != bn && an2 != bn2;
  }

  /// Classifies the configuration just stepped into. Returns true when the
  /// node is open (interior: caller pushes a frame / emits a BFS child);
  /// false for every leaf — quiescent schedule, violation, action limit,
  /// dedup hit, or budget stop. Mirrors the fuzzer's drive_checked verdicts
  /// exactly, so a counterexample replays to the same failure.
  [[nodiscard]] bool classify(std::uint64_t sleep, std::size_t prev_tokens) {
    const sim::CheckResult invariants = oracle_.check_action(cur_, prev_tokens);
    if (!invariants) {
      violation = {path_, "invariant: " + invariants.reason};
      return false;
    }
    if (cur_.quiescent()) {
      ++stats.schedules;
      const sim::CheckResult goal = oracle_.check_goal(cur_);
      if (!goal) violation = {path_, "goal: " + goal.reason};
      return false;
    }
    if (cur_.actions_executed() >= cur_.max_actions()) {
      ++stats.schedules;
      violation = {path_, "action limit reached (livelock or broken algorithm)"};
      return false;
    }
    if (budget_ != kUnlimited && stats.total_actions >= budget_) {
      budget_stop = true;
      return false;
    }
    if (options_.dedup_states) {
      std::vector<std::uint64_t>& masks = visited_[cur_.config_digest()];
      for (const std::uint64_t mask : masks) {
        if ((mask & sleep) == mask) {  // stored ⊆ current: already covered
          ++stats.states_deduped;
          return false;
        }
      }
      // The new mask dominates any stored superset (it will be explored
      // with more branches awake); drop the dominated entries.
      masks.erase(std::remove_if(masks.begin(), masks.end(),
                                 [sleep](std::uint64_t mask) {
                                   return (sleep & mask) == sleep;
                                 }),
                  masks.end());
      masks.push_back(sleep);
    }
    return true;
  }

  const sim::Instance& instance_;
  const sim::GoalOracle& oracle_;
  const McOptions& options_;
  sim::ExecutionState& cur_;
  std::size_t budget_ = kUnlimited;
  VisitedMap visited_;
  std::vector<std::uint32_t> path_;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across nodes
  bool at_tip_ = false;
};

/// Builds the replayable counterexample trace for a violating path: digest
/// and note are refreshed from the trace's own replay (the same
/// drive-checked semantics), so the artifact is self-verifying like every
/// recorded/shrunk trace.
[[nodiscard]] explore::ScheduleTrace materialize_counterexample(
    const CheckRequest& request, const std::vector<std::uint32_t>& choices,
    const std::string& reason) {
  explore::ScheduleTrace trace;
  trace.algorithm = request.algorithm;
  trace.node_count =
      request.topology.empty() ? request.node_count : request.topology.size();
  trace.homes = request.homes;
  trace.topology = request.topology.empty()
                       ? "ring"
                       : std::string(request.topology.name());
  trace.problem = request.problem;
  trace.generator = "model-check";
  trace.fault_non_fifo = request.fault_non_fifo;
  trace.fault_min_phase = request.fault_min_phase;
  trace.max_actions = request.max_actions;  // cap-sensitive verdicts replay
  trace.choices = choices;
  const explore::ReplayOutcome outcome = explore::replay_trace(trace);
  trace.expected_digest = outcome.digest;
  trace.note = outcome.failed ? outcome.reason : reason;
  return trace;
}

void fold_stats(std::uint64_t& state, const McStats& stats) {
  fold64(state, stats.schedules);
  fold64(state, stats.states_expanded);
  fold64(state, stats.states_deduped);
  fold64(state, stats.sleep_pruned);
  fold64(state, stats.replays);
  fold64(state, stats.total_actions);
  fold64(state, stats.max_depth);
  fold64(state, stats.shards);
}

void accumulate(McStats& into, const McStats& from) {
  into.schedules += from.schedules;
  into.states_expanded += from.states_expanded;
  into.states_deduped += from.states_deduped;
  into.sleep_pruned += from.sleep_pruned;
  into.replays += from.replays;
  into.total_actions += from.total_actions;
  into.max_depth = std::max(into.max_depth, from.max_depth);
}

}  // namespace

std::uint64_t ModelCheckReport::digest() const {
  std::uint64_t state = 0x3c0de1c4ec5e7ULL;  // "model-check" domain
  fold64(state, complete ? 1 : 0);
  fold64(state, ok ? 1 : 0);
  fold_stats(state, stats);
  fold64(state, counterexample ? counterexample->choices.size() + 1 : 0);
  if (counterexample) {
    for (const std::uint32_t choice : counterexample->choices) {
      fold64(state, choice);
    }
  }
  return state;
}

ModelCheckReport check(const CheckRequest& request, const McOptions& options) {
  if (request.homes.empty()) {
    throw std::invalid_argument("mc::check: no agents (homes empty)");
  }
  McOptions opts = options;
  if (request.homes.size() > 64) opts.sleep_sets = false;  // mask width
  if (opts.frontier_target == 0) opts.frontier_target = 1;

  const sim::Instance instance = build_instance(request);
  // One immutable oracle for the whole walk, shared by the root explorer
  // and every worker shard (check_goal/check_action are const and
  // stateless).
  const std::unique_ptr<sim::GoalOracle> oracle =
      core::make_goal_oracle(request.algorithm, request.problem);
  const std::size_t budget =
      opts.budget_actions == 0 ? kUnlimited : opts.budget_actions;

  ModelCheckReport report;

  // ---- frontier phase (serial, deterministic) -------------------------------
  core::RunContext root_context;
  Explorer root(instance, *oracle, opts, root_context.state(), budget, {});
  std::vector<ShardNode> level = {{{}, 0}};
  bool resolved_in_bfs = false;
  if (opts.frontier_target > 1) {
    std::vector<ShardNode> next;
    while (level.size() < opts.frontier_target && !root.violation &&
           !root.budget_stop) {
      next.clear();
      root.expand_level(level, next);
      level.swap(next);
      if (level.empty()) {  // the whole tree fit above the frontier
        resolved_in_bfs = true;
        break;
      }
    }
  }
  report.stats = root.stats;
  std::optional<std::pair<std::vector<std::uint32_t>, std::string>> violation =
      root.violation;
  bool budget_stop = root.budget_stop;

  // ---- shard phase ----------------------------------------------------------
  if (!violation && !budget_stop && !resolved_in_bfs) {
    const std::vector<ShardNode> shards = std::move(level);
    report.stats.shards = shards.size();
    // Deterministic budget split: what the frontier phase left, divided
    // across shards (remainder to the first ones). Never depends on workers.
    std::vector<std::size_t> shard_budget(shards.size(), kUnlimited);
    if (budget != kUnlimited) {
      const std::size_t remaining =
          budget > report.stats.total_actions
              ? budget - report.stats.total_actions
              : 0;
      for (std::size_t i = 0; i < shards.size(); ++i) {
        shard_budget[i] =
            remaining / shards.size() + (i < remaining % shards.size() ? 1 : 0);
      }
    }

    struct ShardOutcome {
      McStats stats;
      bool budget_stop = false;
      std::optional<std::pair<std::vector<std::uint32_t>, std::string>>
          violation;
    };
    std::vector<ShardOutcome> outcomes(shards.size());
    const std::size_t workers = resolve_workers(shards.size(), opts.workers);
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    // Each shard copies the frontier phase's visited map as its seed: states
    // the frontier already resolved are covered by some shard's subtree, so
    // re-encounters skip (soundness argument in the header). Per-shard maps
    // never cross worker boundaries — determinism like the campaign engine.
    const VisitedMap& seed = root.visited();
    parallel_for_workers(
        shards.size(), workers, [&](std::size_t worker, std::size_t i) {
          Explorer shard(instance, *oracle, opts, contexts[worker]->state(),
                         shard_budget[i], seed);
          shard.dfs(shards[i].prefix, shards[i].sleep);
          outcomes[i] = {shard.stats, shard.budget_stop,
                         std::move(shard.violation)};
        });
    for (const ShardOutcome& outcome : outcomes) {  // index order: determinism
      accumulate(report.stats, outcome.stats);
      budget_stop = budget_stop || outcome.budget_stop;
      if (!violation && outcome.violation) violation = outcome.violation;
    }
  }

  // ---- verdict --------------------------------------------------------------
  if (violation) {
    report.ok = false;
    report.complete = false;
    report.verdict = "violation";
    report.failure_reason = violation->second;
    report.counterexample =
        materialize_counterexample(request, violation->first, violation->second);
  } else if (budget_stop) {
    report.ok = true;
    report.complete = false;
    report.verdict = "budget-exhausted";
  } else {
    report.ok = true;
    report.complete = true;
    report.verdict = "verified";
  }
  return report;
}

// ---- campaign integration ---------------------------------------------------

GridReport check_grid(const exp::CampaignGrid& grid, const McOptions& options) {
  // The scheduler axis is what the checker replaces: collapse it so each
  // instance is checked once. Home configurations are scheduler-independent
  // by the campaign's substream contract, so these are byte-for-byte the
  // instances the sampled cells ran.
  exp::CampaignGrid collapsed = grid;
  collapsed.schedulers = {grid.schedulers.empty()
                              ? sim::SchedulerKind::Synchronous
                              : grid.schedulers.front()};
  const std::vector<exp::Scenario> scenarios = exp::expand(collapsed);

  GridReport report;
  report.cells.reserve(scenarios.size());
  for (const exp::Scenario& s : scenarios) {
    GridCell cell;
    cell.algorithm = s.algorithm;
    cell.family = s.family;
    cell.node_count = s.node_count;
    cell.agent_count = s.agent_count;
    cell.symmetry = s.symmetry;
    cell.repetition = s.repetition;
    cell.problem = s.problem;
    cell.homes = exp::scenario_homes(collapsed, s);

    CheckRequest request;
    request.algorithm = s.algorithm;
    request.problem = s.problem;
    request.node_count = s.node_count;
    request.homes = cell.homes;
    request.fault_non_fifo = grid.sim_options.fault_non_fifo_links;
    request.fault_min_phase = grid.sim_options.fault_non_fifo_min_phase;
    request.max_actions = grid.sim_options.max_actions;
    cell.report = check(request, options);

    if (!cell.report.ok) {
      ++report.violations;
    } else if (!cell.report.complete) {
      ++report.budget_exhausted;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

std::uint64_t GridReport::digest() const {
  std::uint64_t state = 0x36c1dc4ec5e7ULL;  // "mc-grid-check" domain
  fold64(state, cells.size());
  for (const GridCell& cell : cells) {
    fold64(state, static_cast<std::uint64_t>(cell.algorithm));
    fold64(state, static_cast<std::uint64_t>(cell.family));
    fold64(state, cell.node_count);
    fold64(state, cell.agent_count);
    fold64(state, cell.symmetry);
    fold64(state, cell.repetition);
    // Folded only for explicit problems: an all-Auto grid's digest is
    // byte-identical to the pre-ProblemSpec engine (pinned baselines).
    if (cell.problem.kind != core::Problem::Auto) {
      fold64(state, static_cast<std::uint64_t>(cell.problem.kind));
      fold64(state, cell.problem.gather_g);
    }
    fold64(state, cell.report.digest());
  }
  fold64(state, violations);
  fold64(state, budget_exhausted);
  return state;
}

Table GridReport::summary_table() const {
  // The "problem" column appears only when some cell names an explicit
  // problem, so all-Auto grids render their historical layout.
  const bool show_problem =
      std::any_of(cells.begin(), cells.end(), [](const GridCell& cell) {
        return cell.problem.kind != core::Problem::Auto;
      });
  std::vector<std::string> headers = {"algorithm", "family", "n", "k", "l",
                                      "rep", "schedules", "states", "deduped",
                                      "sleep-pruned", "actions", "verdict"};
  if (show_problem) headers.insert(headers.begin() + 1, "problem");
  Table table(std::move(headers));
  for (const GridCell& cell : cells) {
    const McStats& s = cell.report.stats;
    std::vector<std::string> row = {
        std::string(core::to_string(cell.algorithm)),
        std::string(exp::to_string(cell.family)), Table::num(cell.node_count),
        Table::num(cell.agent_count), Table::num(cell.symmetry),
        Table::num(static_cast<std::size_t>(cell.repetition)),
        Table::num(s.schedules), Table::num(s.states_expanded),
        Table::num(s.states_deduped), Table::num(s.sleep_pruned),
        Table::num(s.total_actions),
        cell.report.complete && cell.report.ok
            ? "verified over all schedules"
            : (cell.report.ok ? "budget" : "VIOLATION")};
    if (show_problem) row.insert(row.begin() + 1, core::to_string(cell.problem));
    table.add_row(std::move(row));
  }
  return table;
}

std::string GridReport::summary() const {
  std::ostringstream out;
  out << summary_table();
  out << "cells: " << cells.size() << "   violations: " << violations
      << "   budget-exhausted: " << budget_exhausted << '\n';
  for (const GridCell& cell : cells) {
    if (cell.report.ok) continue;
    out << "  VIOLATION " << core::to_string(cell.algorithm) << " n="
        << cell.node_count << " k=" << cell.agent_count << ": "
        << cell.report.failure_reason << '\n';
  }
  return out.str();
}

}  // namespace udring::mc
