#include "mc/model_check.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "explore/fuzz.h"
#include "explore/replay.h"
#include "mc/symmetry.h"
#include "sim/checker.h"
#include "sim/footprint.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/visited_set.h"

namespace udring::mc {

namespace {

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
/// Bitmask width shared by sleep sets, DPOR backtrack sets and summaries.
constexpr std::size_t kMaskAgents = 64;

using AgentMask = std::uint64_t;

/// A choice-tree node handed from the BFS frontier phase to a DFS shard:
/// the schedule prefix that reaches it plus the sleep set it inherited.
struct ShardNode {
  std::vector<branch_index_t> prefix;
  AgentMask sleep = 0;
};

/// Visited-state store for the (default) per-shard tree walk. Sleep masks
/// feed the subset rule; the subtree summary (agents acted / nodes touched
/// below the state, complete once the state's frame pops) is what lets DPOR
/// stay sound across dedup cuts — see model_check.h. When symmetry is on,
/// masks and sub_agents are stored in canonical rank space.
struct VisitedEntry {
  std::vector<AgentMask> masks;
  AgentMask sub_agents = 0;
  std::uint64_t sub_nodes = 0;
  bool summary_recorded = false;
};
using VisitedMap = std::unordered_map<std::uint64_t, VisitedEntry>;

[[nodiscard]] sim::Instance build_instance(const CheckRequest& request) {
  core::RunSpec spec;
  spec.node_count = request.node_count;
  spec.homes = request.homes;
  spec.topology = request.topology;
  spec.problem = request.problem;
  spec.sim_options.record_events = false;  // history is not state; stay lean
  spec.sim_options.max_actions = request.max_actions;
  spec.sim_options.fault_non_fifo_links = request.fault_non_fifo;
  spec.sim_options.fault_non_fifo_min_phase = request.fault_min_phase;
  spec.sim_options.faults = request.faults;
  return core::make_instance(request.algorithm, spec);
}

/// The request's full fault plan: the structured plan plus the legacy
/// non-FIFO knobs (the Instance ctor's merge, reproduced for trace
/// provenance).
[[nodiscard]] sim::FaultPlan merged_fault_plan(const CheckRequest& request) {
  sim::FaultPlan plan = request.faults;
  plan.non_fifo = plan.non_fifo || request.fault_non_fifo;
  plan.non_fifo_min_phase =
      std::max(plan.non_fifo_min_phase, request.fault_min_phase);
  return plan;
}

/// One stateless DFS (or BFS-expansion) engine over one pooled
/// ExecutionState. Not thread-safe; shards own independent Explorers. In
/// shared_visited mode the explorers additionally share the claim set, the
/// global action counter and the stop flag — all the cross-thread state
/// there is.
class Explorer {
 public:
  Explorer(const sim::Instance& instance, const sim::GoalOracle& oracle,
           const McOptions& options, sim::ExecutionState& state,
           std::size_t budget, VisitedMap visited_seed,
           LockFreeVisitedSet* shared_visited = nullptr,
           std::atomic<std::size_t>* shared_actions = nullptr,
           std::atomic<bool>* stop_flag = nullptr)
      : instance_(instance),
        oracle_(oracle),
        options_(options),
        cur_(state),
        budget_(budget),
        visited_(std::move(visited_seed)),
        shared_(shared_visited),
        shared_actions_(shared_actions),
        stop_flag_(stop_flag),
        fault_mode_(instance.options().faults.has_events()) {}

  McStats stats;
  bool budget_stop = false;
  /// First violation in this explorer's deterministic walk order.
  std::optional<std::pair<std::vector<branch_index_t>, std::string>> violation;

  [[nodiscard]] const VisitedMap& visited() const noexcept { return visited_; }

  /// Walks the whole subtree rooted at `prefix` (with inherited sleep set)
  /// by iterative DFS. The prefix node must be an open interior node (the
  /// tree root, or a node the BFS phase classified as open).
  void dfs(const std::vector<branch_index_t>& prefix, AgentMask root_sleep) {
    path_ = prefix;
    reposition();
    std::vector<Frame> stack;
    stack.push_back(make_frame(root_sleep, 0, 0, 0, root_dedup_key()));
    if (options_.dpor) dpor_push_update(stack);

    while (!stack.empty() && !violation && !budget_stop && !should_stop()) {
      Frame& f = stack.back();
      const int b = pick_branch(f);
      if (b < 0) {
        pop_frame(stack);
        continue;
      }
      if (f.rewire) {
        // Rewire node: the branch is a candidate stride index, not an agent.
        // Applying it consumes no simulator action — the configuration
        // changes only in its live successor map — so the child classifies
        // like any configuration (dedup folds the fault state).
        if (!at_tip_) {
          reposition();
          if (!cur_.pending_rewire()) {
            throw std::logic_error(
                "mc: rewiring point vanished on backtrack replay "
                "(determinism bug)");
          }
        }
        path_.push_back(static_cast<branch_index_t>(b));
        cur_.apply_rewire(static_cast<std::size_t>(b));
        DedupHit hit;
        const NodeClass cls =
            classify(f.sleep, cur_.total_tokens(), &hit);
        if (cls == NodeClass::Open) {
          stack.push_back(make_frame(f.sleep, f.entered_agent, f.entered_n1,
                                     f.entered_n2, hit.key));
        } else {
          path_.pop_back();
          at_tip_ = false;
        }
        continue;
      }
      const sim::AgentId agent = f.agents[static_cast<std::size_t>(b)];
      if (!at_tip_) {
        reposition();
        sort_enabled();
        if (sorted_ != f.agents) {
          throw std::logic_error(
              "mc: enabled set changed on backtrack replay (determinism bug)");
        }
      }
      const AgentMask child_sleep = inherit_sleep(f.agents, f.sleep, agent);
      const std::size_t prev_tokens = cur_.total_tokens();
      // Footprint of the edge about to be taken, captured pre-step (the
      // shared {node, next(node)} bound from sim/footprint.h).
      const sim::ActionFootprint fp = sim::action_footprint(cur_, agent);
      const sim::NodeId n1 = fp.node;
      const sim::NodeId n2 = fp.next;
      path_.push_back(static_cast<branch_index_t>(b));
      step(agent);
      DedupHit hit;
      const NodeClass cls = classify(child_sleep, prev_tokens, &hit);
      if (cls == NodeClass::Open) {
        stack.push_back(make_frame(child_sleep, agent, n1, n2, hit.key));
        if (options_.dpor) dpor_push_update(stack);
      } else {
        path_.pop_back();
        at_tip_ = false;
        Frame& parent = stack.back();  // f may dangle after push; re-take
        if (options_.sleep_sets) parent.sleep |= bit(agent);
        if (options_.dpor) {
          // The edge (and, on a dedup hit, the whole skipped subtree) is
          // behaviour under this frame: fold it into the running summary
          // and re-arm any ancestor whose edge races with it.
          parent.sub_agents |= bit(agent) | hit.sub_agents;
          parent.sub_nodes |= node_bit(n1) | node_bit(n2) | hit.sub_nodes;
          if (cls == NodeClass::DedupLeaf) {
            dpor_dedup_update(stack, hit, agent, n1, n2);
          }
        }
      }
    }
  }

  /// Expands every node of `level` one step, appending surviving open
  /// children to `next` (the BFS frontier phase; no DPOR — the phase fully
  /// expands all non-sleeping branches, which is what lets shard-local
  /// backtrack sets stay shard-local). Stops early on violation or budget
  /// exhaustion.
  void expand_level(const std::vector<ShardNode>& level,
                    std::vector<ShardNode>& next) {
    for (const ShardNode& node : level) {
      if (violation || budget_stop || should_stop()) return;
      path_ = node.prefix;
      reposition();
      sort_enabled();
      // Stepping invalidates the tip, and each sibling repositions; copy the
      // branch agents up front.
      const std::vector<sim::AgentId> agents = sorted_;
      AgentMask sleep = node.sleep;
      ++stats.states_expanded;
      const auto branch_count = static_cast<branch_index_t>(agents.size());
      for (branch_index_t b = 0; b < branch_count; ++b) {
        if (violation || budget_stop || should_stop()) return;
        const sim::AgentId agent = agents[b];
        if (options_.sleep_sets && (sleep & bit(agent)) != 0) {
          ++stats.sleep_pruned;
          continue;
        }
        if (!at_tip_) {
          path_ = node.prefix;
          reposition();
        }
        const AgentMask child_sleep = inherit_sleep(agents, sleep, agent);
        const std::size_t prev_tokens = cur_.total_tokens();
        path_.push_back(b);
        step(agent);
        DedupHit hit;
        if (classify(child_sleep, prev_tokens, &hit) == NodeClass::Open) {
          next.push_back({path_, child_sleep});
        }
        path_.pop_back();
        at_tip_ = false;
        if (options_.sleep_sets) sleep |= bit(agent);
      }
    }
  }

 private:
  struct Frame {
    std::vector<sim::AgentId> agents;  ///< sorted enabled set at this node
    AgentMask enabled_mask = 0;
    AgentMask sleep = 0;
    AgentMask done = 0;       ///< branches explored (or sleep-handled)
    AgentMask backtrack = 0;  ///< DPOR: branches scheduled for exploration
    AgentMask sub_agents = 0;    ///< DPOR summary: agents acted below
    std::uint64_t sub_nodes = 0; ///< DPOR summary: nodes touched below
    std::uint64_t dedup_key = 0; ///< visited key (summary write-back)
    /// id -> canonical rank at this node (symmetry + DPOR write-back only).
    std::vector<std::uint32_t> rank;
    branch_index_t next_branch = 0;  ///< sequential fallback (> 64 agents)
    bool rewire = false;             ///< branches = rewiring candidate strides
    branch_index_t rewire_branches = 0;  ///< candidate count of a rewire node
    sim::AgentId entered_agent = 0;  ///< edge into this node (parent's pick)
    sim::NodeId entered_n1 = 0;      ///< that edge's footprint
    sim::NodeId entered_n2 = 0;
  };

  enum class NodeClass { Open, Leaf, DedupLeaf };

  /// What classify() learned at a node, for the DFS to thread into frames:
  /// the visited key of an open node, or the stored subtree summary
  /// (translated back to concrete agent ids) of a dedup hit.
  struct DedupHit {
    std::uint64_t key = 0;
    AgentMask sub_agents = 0;
    std::uint64_t sub_nodes = 0;
    bool summary_valid = false;
  };

  [[nodiscard]] static AgentMask bit(sim::AgentId agent) noexcept {
    return AgentMask{1} << agent;
  }
  [[nodiscard]] static std::uint64_t node_bit(sim::NodeId node) noexcept {
    return std::uint64_t{1} << node;
  }
  [[nodiscard]] bool masks_usable() const noexcept {
    return cur_.agent_count() <= kMaskAgents;
  }
  [[nodiscard]] bool should_stop() const noexcept {
    return stop_flag_ != nullptr && stop_flag_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] Frame make_frame(AgentMask sleep, sim::AgentId entered,
                                 sim::NodeId n1, sim::NodeId n2,
                                 std::uint64_t dedup_key) {
    if (fault_mode_ && cur_.pending_rewire()) {
      // A pending rewiring is its own choice-tree level: branches are the
      // candidate stride indices. The path-dependent prunings are forced
      // off under event plans (mc::check), so the frame only needs the
      // sequential branch cursor.
      ++stats.states_expanded;
      Frame f;
      f.rewire = true;
      f.rewire_branches =
          static_cast<branch_index_t>(cur_.rewire_candidate_count());
      f.sleep = sleep;
      f.entered_agent = entered;
      f.entered_n1 = n1;
      f.entered_n2 = n2;
      f.dedup_key = dedup_key;
      return f;
    }
    sort_enabled();
    ++stats.states_expanded;
    Frame f;
    f.agents = sorted_;
    f.sleep = sleep;
    f.entered_agent = entered;
    f.entered_n1 = n1;
    f.entered_n2 = n2;
    f.dedup_key = dedup_key;
    if (masks_usable()) {
      for (const sim::AgentId a : f.agents) f.enabled_mask |= bit(a);
    }
    if (options_.dpor) {
      // FG initialization: schedule one branch; every other branch runs
      // only if some deeper race re-arms it (dpor_push_update /
      // dpor_dedup_update).
      const AgentMask awake = f.enabled_mask & ~f.sleep;
      f.backtrack = awake == 0 ? 0 : awake & (~awake + 1);  // lowest bit
      if (options_.symmetry && options_.dedup_states) {
        f.rank = canon_.rank_table();  // for the pop-time summary write-back
      }
    } else {
      f.backtrack = ~AgentMask{0};
    }
    return f;
  }

  /// Next branch of `f` to explore, or -1 when the frame is exhausted.
  /// Bitmask-driven (lowest eligible agent id = sorted branch order, so the
  /// walk order matches the historical sequential scan when DPOR is off);
  /// falls back to a plain scan when the instance exceeds the mask width,
  /// where sleep sets and DPOR are auto-disabled anyway.
  [[nodiscard]] int pick_branch(Frame& f) {
    if (f.rewire) {
      if (f.next_branch >= f.rewire_branches) return -1;
      return static_cast<int>(f.next_branch++);
    }
    if (!masks_usable()) {
      if (f.next_branch >= f.agents.size()) return -1;
      return static_cast<int>(f.next_branch++);
    }
    const AgentMask avail =
        f.backtrack & f.enabled_mask & ~f.done & ~f.sleep;
    if (avail == 0) return -1;
    const auto agent =
        static_cast<sim::AgentId>(std::countr_zero(avail));
    f.done |= bit(agent);
    const auto it = std::lower_bound(f.agents.begin(), f.agents.end(), agent);
    return static_cast<int>(it - f.agents.begin());
  }

  /// Pops the exhausted top frame: accounts the branches DPOR / sleep sets
  /// left unexplored, writes the subtree summary back to the visited entry,
  /// and propagates both the sleep-set edge rule and the summary to the
  /// parent.
  void pop_frame(std::vector<Frame>& stack) {
    Frame& f = stack.back();
    if (masks_usable()) {
      const AgentMask unexplored = f.enabled_mask & ~f.done;
      stats.sleep_pruned += std::popcount(unexplored & f.sleep);
      if (options_.dpor) {
        stats.dpor_pruned += std::popcount(unexplored & ~f.sleep);
      }
    }
    if (options_.dpor && options_.dedup_states && shared_ == nullptr) {
      const auto it = visited_.find(f.dedup_key);
      if (it != visited_.end()) {
        it->second.sub_agents |= options_.symmetry
                                     ? map_mask(f.sub_agents, f.rank)
                                     : f.sub_agents;
        it->second.sub_nodes |= f.sub_nodes;
        it->second.summary_recorded = true;
      }
    }
    const sim::AgentId entered = f.entered_agent;
    const AgentMask sub_agents = f.sub_agents | bit(entered);
    const std::uint64_t sub_nodes =
        f.sub_nodes | node_bit(f.entered_n1) | node_bit(f.entered_n2);
    stack.pop_back();
    if (!stack.empty()) {
      path_.pop_back();
      at_tip_ = false;
      Frame& parent = stack.back();
      if (options_.sleep_sets) parent.sleep |= bit(entered);
      if (options_.dpor) {
        parent.sub_agents |= sub_agents;
        parent.sub_nodes |= sub_nodes;
      }
    }
  }

  /// The FG race scan for the freshly pushed top frame: for every branch p
  /// enabled there, find the DEEPEST stack edge dependent with p's next
  /// action (same agent, or intersecting {node, next(node)} footprints) and
  /// re-arm p at that edge's pre-state — the heart of dynamic POR. cur_
  /// must be positioned at the new frame's state.
  void dpor_push_update(std::vector<Frame>& stack) {
    if (stack.size() < 2) return;
    const Frame& top = stack.back();
    for (const sim::AgentId p : top.agents) {
      const sim::ActionFootprint pfp = sim::action_footprint(cur_, p);
      for (std::size_t i = stack.size() - 1; i >= 1; --i) {
        const Frame& child = stack[i];  // edge stack[i-1] -> stack[i]
        const bool dependent =
            child.entered_agent == p ||
            sim::ActionFootprint{child.entered_n1, child.entered_n2}.overlaps(
                pfp);
        if (!dependent) continue;
        Frame& pre = stack[i - 1];
        if ((pre.enabled_mask & bit(p)) != 0) {
          pre.backtrack |= bit(p);
        } else {
          pre.backtrack = pre.enabled_mask;
        }
        break;
      }
    }
  }

  /// Stateful-DPOR repair on a dedup cut: the skipped subtree's transitions
  /// (aggregated as agent / node masks) may race with edges on the current
  /// stack — the cut edge included — and those races can no longer seed
  /// backtrack points from below, so fully re-arm every pre-state whose edge
  /// intersects the summary. The cut edge (cut_agent, cut_n1, cut_n2) is not
  /// a stack frame, but its pre-state IS stack.back(): a subtree transition
  /// racing with it would, in the unskipped walk, have re-armed exactly that
  /// frame (the Yang et al. repair), so stack.back() is checked against the
  /// RAW subtree summary while deeper frames see the summary plus the cut
  /// edge's own footprint. A hit without a recorded summary (should not
  /// occur; defensive) re-arms every frame, stack.back() included.
  void dpor_dedup_update(std::vector<Frame>& stack, const DedupHit& hit,
                         sim::AgentId cut_agent, sim::NodeId cut_n1,
                         sim::NodeId cut_n2) {
    Frame& top = stack.back();
    const bool cut_races =
        !hit.summary_valid || ((hit.sub_agents >> cut_agent) & 1) != 0 ||
        ((node_bit(cut_n1) | node_bit(cut_n2)) & hit.sub_nodes) != 0;
    if (cut_races) {
      // FG rule at the cut edge's pre-state: every subtree transition's
      // agent is in the summary mask, so when they are all enabled here,
      // re-arming exactly those suffices; a missing summary or a disabled
      // summary agent forces the full re-arm.
      if (hit.summary_valid && (hit.sub_agents & ~top.enabled_mask) == 0) {
        top.backtrack |= hit.sub_agents;
      } else {
        top.backtrack = top.enabled_mask;
      }
    }
    const AgentMask sub_agents = hit.sub_agents | bit(cut_agent);
    const std::uint64_t sub_nodes =
        hit.sub_nodes | node_bit(cut_n1) | node_bit(cut_n2);
    for (std::size_t i = stack.size(); i >= 2; --i) {
      const Frame& child = stack[i - 1];
      const bool races =
          !hit.summary_valid ||
          ((sub_agents >> child.entered_agent) & 1) != 0 ||
          ((node_bit(child.entered_n1) | node_bit(child.entered_n2)) &
           sub_nodes) != 0;
      if (races) {
        Frame& pre = stack[i - 2];
        pre.backtrack = pre.enabled_mask;
      }
    }
  }

  /// Re-executes the current prefix from C_0 through a Strict-mode
  /// ReplayScheduler: the divergence check on every backtrack. A prefix that
  /// no longer replays exactly means the simulator is not deterministic in
  /// the pick sequence — a checker-invalidating bug, reported loudly.
  void reposition() {
    cur_.reset(instance_);
    if (!path_.empty()) {
      if (fault_mode_) {
        reposition_with_faults();
      } else {
        explore::ReplayScheduler replayer(path_, explore::ReplayMode::Strict);
        replayer.reset(cur_.agent_count());
        for (std::size_t i = 0; i < path_.size(); ++i) {
          if (!cur_.step(replayer)) {
            throw std::logic_error("mc: prefix replay hit quiescence early");
          }
        }
        if (replayer.diverged()) {
          throw std::logic_error("mc: strict prefix replay diverged: " +
                                 replayer.divergence());
        }
        ++stats.replays;
        stats.total_actions += path_.size();
        if (shared_actions_ != nullptr) {
          shared_actions_->fetch_add(path_.size(), std::memory_order_relaxed);
        }
      }
    }
    at_tip_ = true;
  }

  /// Fault-mode prefix replay: entries at pending-rewire points are
  /// candidate stride indices (no simulator action), everything else an
  /// index into the sorted enabled set — the same interpretation the DFS
  /// used when it recorded the path, with the Strict divergence contract
  /// enforced manually. ExecutionState::step() cannot drive this: it
  /// resolves a pending rewiring and picks an agent in one call, which
  /// over-consumes when the prefix ENDS at a rewiring point (the DFS
  /// backtracks to rewire nodes to try their sibling strides).
  void reposition_with_faults() {
    std::size_t actions = 0;
    for (std::size_t i = 0; i < path_.size(); ++i) {
      const branch_index_t entry = path_[i];
      if (cur_.pending_rewire()) {
        if (entry >= cur_.rewire_candidate_count()) {
          throw std::logic_error(
              "mc: rewiring index out of range on prefix replay "
              "(determinism bug)");
        }
        cur_.apply_rewire(entry);
        continue;
      }
      sort_enabled();
      if (entry >= sorted_.size()) {
        throw std::logic_error(
            "mc: choice out of range on prefix replay (determinism bug)");
      }
      if (!cur_.step_agent(sorted_[entry])) {
        throw std::logic_error("mc: prefix replay hit quiescence early");
      }
      ++actions;
    }
    ++stats.replays;
    stats.total_actions += actions;
    if (shared_actions_ != nullptr) {
      shared_actions_->fetch_add(actions, std::memory_order_relaxed);
    }
  }

  void sort_enabled() {
    sorted_.assign(cur_.enabled().begin(), cur_.enabled().end());
    std::sort(sorted_.begin(), sorted_.end());
  }

  void step(sim::AgentId agent) {
    if (!cur_.step_agent(agent)) {
      throw std::logic_error("mc: picked agent not enabled");
    }
    ++stats.total_actions;
    if (shared_actions_ != nullptr) {
      shared_actions_->fetch_add(1, std::memory_order_relaxed);
    }
    stats.max_depth = std::max(stats.max_depth, path_.size());
  }

  /// Sleeping agents that stay asleep across the edge taken by `agent`:
  /// those whose pending action is independent of it (conservative
  /// footprint disjointness on {node, next(node)}). `enabled_agents` is the
  /// node's enabled set (sleep ⊆ enabled always holds — see model_check.h).
  [[nodiscard]] AgentMask inherit_sleep(
      const std::vector<sim::AgentId>& enabled_agents, AgentMask sleep,
      sim::AgentId agent) const {
    if (!options_.sleep_sets || sleep == 0) return 0;
    AgentMask child = 0;
    for (const sim::AgentId z : enabled_agents) {
      if ((sleep & bit(z)) != 0 && independent(z, agent)) child |= bit(z);
    }
    return child;
  }

  [[nodiscard]] bool independent(sim::AgentId a, sim::AgentId b) const {
    return sim::independent_actions(cur_, a, b);
  }

  /// Dedup key of the configuration cur_ currently sits at. With symmetry
  /// on this also refreshes the canonicalizer's rank tables for mask
  /// translation.
  [[nodiscard]] std::uint64_t dedup_key_of_current() {
    return options_.symmetry ? canon_.canonical_digest(cur_)
                             : cur_.config_digest();
  }

  /// Key for a shard/tree root frame — only needed for the DPOR summary
  /// write-back, so skip the digest work otherwise.
  [[nodiscard]] std::uint64_t root_dedup_key() {
    if (options_.dpor && options_.dedup_states && shared_ == nullptr) {
      return dedup_key_of_current();
    }
    return 0;
  }

  [[nodiscard]] static AgentMask map_mask(
      AgentMask mask, const std::vector<std::uint32_t>& rank) {
    if (rank.empty()) return mask;  // identity (symmetry off)
    AgentMask out = 0;
    for (std::size_t id = 0; id < rank.size() && id < kMaskAgents; ++id) {
      if ((mask >> id) & 1) out |= AgentMask{1} << rank[id];
    }
    return out;
  }

  /// Classifies the configuration just stepped into. Open means interior:
  /// the caller pushes a frame / emits a BFS child. Everything else is a
  /// leaf — quiescent schedule, violation, action limit, budget stop, or a
  /// dedup hit (reported separately so DPOR can replay the skipped
  /// subtree's summary). Mirrors the fuzzer's drive_checked verdicts
  /// exactly, so a counterexample replays to the same failure.
  [[nodiscard]] NodeClass classify(AgentMask sleep, std::size_t prev_tokens,
                                   DedupHit* hit) {
    const sim::CheckResult invariants = oracle_.check_action(cur_, prev_tokens);
    if (!invariants) {
      violation = {path_, "invariant: " + invariants.reason};
      signal_stop();
      return NodeClass::Leaf;
    }
    if (cur_.quiescent()) {
      ++stats.schedules;
      const sim::CheckResult goal = oracle_.check_goal(cur_);
      if (!goal) {
        violation = {path_, "goal: " + goal.reason};
        signal_stop();
      }
      return NodeClass::Leaf;
    }
    if (cur_.actions_executed() >= cur_.max_actions()) {
      ++stats.schedules;
      violation = {path_, "action limit reached (livelock or broken algorithm)"};
      signal_stop();
      return NodeClass::Leaf;
    }
    if (budget_ != kUnlimited && actions_spent() >= budget_) {
      budget_stop = true;
      return NodeClass::Leaf;
    }
    if (!options_.dedup_states) return NodeClass::Open;

    const std::uint64_t key = dedup_key_of_current();
    hit->key = key;
    if (shared_ != nullptr) {
      switch (shared_->insert(key)) {
        case LockFreeVisitedSet::Insert::Claimed:
          return NodeClass::Open;
        case LockFreeVisitedSet::Insert::Present:
          ++stats.states_deduped;
          return NodeClass::DedupLeaf;
        case LockFreeVisitedSet::Insert::Full:
          budget_stop = true;  // undersized table: degrade, never lie
          return NodeClass::Leaf;
      }
    }
    const AgentMask stored_sleep =
        options_.symmetry ? canon_.to_canonical(sleep) : sleep;
    VisitedEntry& entry = visited_[key];
    for (const AgentMask mask : entry.masks) {
      if ((mask & stored_sleep) == mask) {  // stored ⊆ current: covered
        ++stats.states_deduped;
        hit->sub_agents = options_.symmetry
                              ? canon_.from_canonical(entry.sub_agents)
                              : entry.sub_agents;
        hit->sub_nodes = entry.sub_nodes;
        hit->summary_valid = entry.summary_recorded;
        return NodeClass::DedupLeaf;
      }
    }
    // The new mask dominates any stored superset (it will be explored
    // with more branches awake); drop the dominated entries.
    entry.masks.erase(
        std::remove_if(entry.masks.begin(), entry.masks.end(),
                       [stored_sleep](AgentMask mask) {
                         return (stored_sleep & mask) == stored_sleep;
                       }),
        entry.masks.end());
    entry.masks.push_back(stored_sleep);
    return NodeClass::Open;
  }

  [[nodiscard]] std::size_t actions_spent() const noexcept {
    return shared_actions_ != nullptr
               ? shared_actions_->load(std::memory_order_relaxed)
               : stats.total_actions;
  }

  void signal_stop() noexcept {
    if (stop_flag_ != nullptr) {
      stop_flag_->store(true, std::memory_order_relaxed);
    }
  }

  const sim::Instance& instance_;
  const sim::GoalOracle& oracle_;
  const McOptions& options_;
  sim::ExecutionState& cur_;
  std::size_t budget_ = kUnlimited;
  VisitedMap visited_;
  LockFreeVisitedSet* shared_ = nullptr;
  std::atomic<std::size_t>* shared_actions_ = nullptr;
  std::atomic<bool>* stop_flag_ = nullptr;
  SymmetryCanonicalizer canon_;
  /// True when the instance's fault plan has events: rewire choice levels
  /// exist and prefixes replay through reposition_with_faults().
  const bool fault_mode_ = false;
  std::vector<branch_index_t> path_;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across nodes
  bool at_tip_ = false;
};

/// Builds the replayable counterexample trace for a violating path: digest
/// and note are refreshed from the trace's own replay (the same
/// drive-checked semantics), so the artifact is self-verifying like every
/// recorded/shrunk trace.
[[nodiscard]] explore::ScheduleTrace materialize_counterexample(
    const CheckRequest& request, const std::vector<branch_index_t>& choices,
    const std::string& reason) {
  explore::ScheduleTrace trace;
  trace.algorithm = request.algorithm;
  trace.node_count =
      request.topology.empty() ? request.node_count : request.topology.size();
  trace.homes = request.homes;
  trace.topology = request.topology.empty()
                       ? "ring"
                       : std::string(request.topology.name());
  trace.problem = request.problem;
  trace.generator = "model-check";
  trace.set_fault_plan(merged_fault_plan(request));
  trace.max_actions = request.max_actions;  // cap-sensitive verdicts replay
  trace.choices = choices;
  const explore::ReplayOutcome outcome = explore::replay_trace(trace);
  trace.expected_digest = outcome.digest;
  trace.note = outcome.failed ? outcome.reason : reason;
  return trace;
}

void fold_stats(std::uint64_t& state, const McStats& stats) {
  fold64(state, stats.schedules);
  fold64(state, stats.states_expanded);
  fold64(state, stats.states_deduped);
  fold64(state, stats.sleep_pruned);
  fold64(state, stats.dpor_pruned);
  fold64(state, stats.replays);
  fold64(state, stats.total_actions);
  fold64(state, stats.max_depth);
  fold64(state, stats.shards);
}

void accumulate(McStats& into, const McStats& from) {
  into.schedules += from.schedules;
  into.states_expanded += from.states_expanded;
  into.states_deduped += from.states_deduped;
  into.sleep_pruned += from.sleep_pruned;
  into.dpor_pruned += from.dpor_pruned;
  into.replays += from.replays;
  into.total_actions += from.total_actions;
  into.max_depth = std::max(into.max_depth, from.max_depth);
}

}  // namespace

std::uint64_t ModelCheckReport::digest() const {
  std::uint64_t state = 0x3c0de1c4ec5e7ULL;  // "model-check" domain
  fold64(state, complete ? 1 : 0);
  fold64(state, ok ? 1 : 0);
  fold_stats(state, stats);
  fold64(state, counterexample ? counterexample->choices.size() + 1 : 0);
  if (counterexample) {
    for (const branch_index_t choice : counterexample->choices) {
      fold64(state, choice);
    }
  }
  return state;
}

ModelCheckReport check(const CheckRequest& request, const McOptions& options) {
  if (request.homes.empty()) {
    throw std::invalid_argument("mc::check: no agents (homes empty)");
  }
  // Max-enabled-set guard: every enabled set is a subset of the agents, so
  // bounding the agent count makes branch_index_t truncation structurally
  // impossible everywhere downstream.
  if (request.homes.size() >
      static_cast<std::size_t>(std::numeric_limits<branch_index_t>::max())) {
    throw std::invalid_argument(
        "mc::check: agent count exceeds branch_index_t range");
  }
  McOptions opts = options;
  if (request.homes.size() > kMaskAgents) {  // bitmask width
    opts.sleep_sets = false;
    opts.dpor = false;
  }
  if (request.faults.has_events()) {
    // Crash-stop faults and rewirings are global events the footprint
    // independence relation does not model (a crash at action t is not a
    // local transition two agents can commute around), so the path-dependent
    // prunings are unsound across fault boundaries and are forced off. The
    // BFS frontier phase is skipped too — rewiring choice levels exist only
    // in the DFS walk. Dedup (and, crash-free, symmetry) stay sound because
    // config_digest / canonical_digest fold the live fault state.
    opts.sleep_sets = false;
    opts.dpor = false;
    opts.frontier_target = 1;
  }
  if (request.faults.has_crashes()) {
    // A crash plan names concrete agent ids; quotienting by agent
    // relabelling would merge states whose futures differ (the named agent
    // dies, its image does not).
    opts.symmetry = false;
  }
  const std::size_t node_count =
      request.topology.empty() ? request.node_count : request.topology.size();
  if (node_count > 64) opts.dpor = false;  // summary masks are node bitmasks
  if (opts.shared_visited && opts.dedup_states) {
    // The shared claim set turns the walk into a closure over the state
    // DAG; path-dependent prunings are unsound against racing claims.
    opts.sleep_sets = false;
    opts.dpor = false;
  } else {
    opts.shared_visited = false;  // meaningless without dedup
  }
  if (opts.frontier_target == 0) opts.frontier_target = 1;

  const sim::Instance instance = build_instance(request);
  // One immutable oracle for the whole walk, shared by the root explorer
  // and every worker shard (check_goal/check_action are const and
  // stateless).
  const std::unique_ptr<sim::GoalOracle> oracle =
      core::make_goal_oracle(request.algorithm, request.problem);
  const std::size_t budget =
      opts.budget_actions == 0 ? kUnlimited : opts.budget_actions;

  std::unique_ptr<LockFreeVisitedSet> shared;
  std::atomic<std::size_t> shared_actions{0};
  std::atomic<bool> shared_stop{false};
  if (opts.shared_visited) {
    const std::size_t capacity = opts.shared_visited_capacity != 0
                                     ? opts.shared_visited_capacity
                                     : (std::size_t{1} << 22);
    shared = std::make_unique<LockFreeVisitedSet>(capacity);
  }
  LockFreeVisitedSet* shared_ptr = shared.get();
  std::atomic<std::size_t>* actions_ptr =
      opts.shared_visited ? &shared_actions : nullptr;
  std::atomic<bool>* stop_ptr = opts.shared_visited ? &shared_stop : nullptr;

  ModelCheckReport report;

  // ---- frontier phase (serial, deterministic) -------------------------------
  core::RunContext root_context;
  Explorer root(instance, *oracle, opts, root_context.state(), budget, {},
                shared_ptr, actions_ptr, stop_ptr);
  std::vector<ShardNode> level = {{{}, 0}};
  bool resolved_in_bfs = false;
  if (opts.frontier_target > 1) {
    std::vector<ShardNode> next;
    while (level.size() < opts.frontier_target && !root.violation &&
           !root.budget_stop) {
      next.clear();
      root.expand_level(level, next);
      level.swap(next);
      if (level.empty()) {  // the whole tree fit above the frontier
        resolved_in_bfs = true;
        break;
      }
    }
  }
  report.stats = root.stats;
  std::optional<std::pair<std::vector<branch_index_t>, std::string>> violation =
      root.violation;
  bool budget_stop = root.budget_stop;

  // ---- shard phase ----------------------------------------------------------
  if (!violation && !budget_stop && !resolved_in_bfs) {
    const std::vector<ShardNode> shards = std::move(level);
    report.stats.shards = shards.size();
    // Deterministic budget split: what the frontier phase left, divided
    // across shards (remainder to the first ones). Never depends on workers.
    // In shared mode the budget is global instead — shards meter the one
    // atomic action counter, and the exceeded/not verdict is a function of
    // the closure's total work, not of the racing split.
    std::vector<std::size_t> shard_budget(shards.size(), kUnlimited);
    if (budget != kUnlimited) {
      if (opts.shared_visited) {
        std::fill(shard_budget.begin(), shard_budget.end(), budget);
      } else {
        const std::size_t remaining =
            budget > report.stats.total_actions
                ? budget - report.stats.total_actions
                : 0;
        for (std::size_t i = 0; i < shards.size(); ++i) {
          shard_budget[i] = remaining / shards.size() +
                            (i < remaining % shards.size() ? 1 : 0);
        }
      }
    }

    struct ShardOutcome {
      McStats stats;
      bool budget_stop = false;
      std::optional<std::pair<std::vector<branch_index_t>, std::string>>
          violation;
    };
    std::vector<ShardOutcome> outcomes(shards.size());
    const std::size_t workers = resolve_workers(shards.size(), opts.workers);
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    // Each shard copies the frontier phase's visited map as its seed: states
    // the frontier already resolved are covered by some shard's subtree, so
    // re-encounters skip (soundness argument in the header). Per-shard maps
    // never cross worker boundaries — determinism like the campaign engine.
    // In shared mode the maps are empty and the claim set carries it all.
    const VisitedMap& seed = root.visited();
    parallel_for_workers(
        shards.size(), workers, [&](std::size_t worker, std::size_t i) {
          Explorer shard(instance, *oracle, opts, contexts[worker]->state(),
                         shard_budget[i], seed, shared_ptr, actions_ptr,
                         stop_ptr);
          shard.dfs(shards[i].prefix, shards[i].sleep);
          outcomes[i] = {shard.stats, shard.budget_stop,
                         std::move(shard.violation)};
        });
    for (const ShardOutcome& outcome : outcomes) {  // index order: determinism
      accumulate(report.stats, outcome.stats);
      budget_stop = budget_stop || outcome.budget_stop;
      if (!violation && outcome.violation) violation = outcome.violation;
    }
  }

  // ---- verdict --------------------------------------------------------------
  if (violation) {
    if (opts.shared_visited) {
      // Which shard reaches a violating state first is a race; the
      // existence of one is not. Re-check without the shared set so the
      // counterexample (and every count) comes from the deterministic tree
      // walk — byte-identical at any worker count.
      McOptions fallback = options;
      fallback.shared_visited = false;
      return check(request, fallback);
    }
    report.ok = false;
    report.complete = false;
    report.verdict = "violation";
    report.failure_reason = violation->second;
    report.counterexample =
        materialize_counterexample(request, violation->first, violation->second);
  } else if (budget_stop) {
    report.ok = true;
    report.complete = false;
    report.verdict = "budget-exhausted";
  } else {
    report.ok = true;
    report.complete = true;
    report.verdict = "verified";
  }
  return report;
}

ModelCheckReport check_with_faults(const CheckRequest& request,
                                   const FaultBudget& budget,
                                   const McOptions& options) {
  const std::size_t horizon = budget.max_fault_action;
  const std::size_t k = request.homes.size();
  const std::size_t node_count =
      request.topology.empty() ? request.node_count : request.topology.size();

  // Materialize the plan space up front (budgets are tiny by design — the
  // product of crash assignments and rewiring-point sets stays in the
  // hundreds). The empty extension comes first in both generators, so the
  // clean plan is always checked first.
  std::vector<std::vector<sim::CrashFault>> crash_sets;
  {
    std::vector<sim::CrashFault> cur;
    const auto gen = [&](auto&& self, std::size_t next_agent) -> void {
      crash_sets.push_back(cur);
      if (cur.size() >= budget.crashes) return;
      for (std::size_t a = next_agent; a < k; ++a) {
        for (std::size_t t = 0; t <= horizon; ++t) {
          cur.push_back(
              sim::CrashFault{static_cast<sim::AgentId>(a), t});
          self(self, a + 1);
          cur.pop_back();
        }
      }
    };
    gen(gen, 0);
  }
  std::vector<std::vector<std::size_t>> rewire_sets = {{}};
  if (sim::rewire_candidate_count(node_count) > 0) {
    std::vector<std::size_t> cur;
    rewire_sets.clear();
    const auto gen = [&](auto&& self, std::size_t next_t) -> void {
      rewire_sets.push_back(cur);
      if (cur.size() >= budget.rewires) return;
      for (std::size_t t = next_t; t <= horizon; ++t) {
        cur.push_back(t);
        self(self, t + 1);
        cur.pop_back();
      }
    };
    gen(gen, 0);
  }

  ModelCheckReport aggregate;
  aggregate.ok = true;
  aggregate.complete = true;
  for (const std::vector<sim::CrashFault>& crashes : crash_sets) {
    for (const std::vector<std::size_t>& rewires : rewire_sets) {
      // Skip extensions that collide with the request's own plan (duplicate
      // crash agents / rewiring points are invalid, not interesting).
      const bool conflict =
          std::any_of(crashes.begin(), crashes.end(),
                      [&](const sim::CrashFault& c) {
                        return std::any_of(
                            request.faults.crashes.begin(),
                            request.faults.crashes.end(),
                            [&](const sim::CrashFault& have) {
                              return have.agent == c.agent;
                            });
                      }) ||
          std::any_of(rewires.begin(), rewires.end(), [&](std::size_t t) {
            return std::find(request.faults.rewire_at.begin(),
                             request.faults.rewire_at.end(),
                             t) != request.faults.rewire_at.end();
          });
      if (conflict) continue;
      CheckRequest sub = request;
      sub.faults.crashes.insert(sub.faults.crashes.end(), crashes.begin(),
                                crashes.end());
      sub.faults.rewire_at.insert(sub.faults.rewire_at.end(), rewires.begin(),
                                  rewires.end());
      sub.faults.normalize();
      const ModelCheckReport sub_report = check(sub, options);
      accumulate(aggregate.stats, sub_report.stats);
      aggregate.stats.shards += sub_report.stats.shards;
      if (!sub_report.ok) {
        aggregate.ok = false;
        aggregate.complete = false;
        aggregate.verdict = sub_report.verdict;
        aggregate.failure_reason = sub_report.failure_reason;
        aggregate.counterexample = sub_report.counterexample;
        return aggregate;
      }
      if (!sub_report.complete) aggregate.complete = false;
    }
  }
  aggregate.verdict = aggregate.complete ? "verified" : "budget-exhausted";
  return aggregate;
}

// ---- campaign integration ---------------------------------------------------

GridReport check_grid(const exp::CampaignGrid& grid, const McOptions& options) {
  // The scheduler axis is what the checker replaces: collapse it so each
  // instance is checked once. Home configurations are scheduler-independent
  // by the campaign's substream contract, so these are byte-for-byte the
  // instances the sampled cells ran.
  exp::CampaignGrid collapsed = grid;
  collapsed.schedulers = {grid.schedulers.empty()
                              ? sim::SchedulerKind::Synchronous
                              : grid.schedulers.front()};
  const std::vector<exp::Scenario> scenarios = exp::expand(collapsed);

  GridReport report;
  report.cells.reserve(scenarios.size());
  for (const exp::Scenario& s : scenarios) {
    GridCell cell;
    cell.algorithm = s.algorithm;
    cell.family = s.family;
    cell.node_count = s.node_count;
    cell.agent_count = s.agent_count;
    cell.symmetry = s.symmetry;
    cell.repetition = s.repetition;
    cell.problem = s.problem;
    cell.homes = exp::scenario_homes(collapsed, s);

    CheckRequest request;
    request.algorithm = s.algorithm;
    request.problem = s.problem;
    request.node_count = s.node_count;
    request.homes = cell.homes;
    request.fault_non_fifo = grid.sim_options.fault_non_fifo_links;
    request.fault_min_phase = grid.sim_options.fault_non_fifo_min_phase;
    request.faults = grid.sim_options.faults;
    request.max_actions = grid.sim_options.max_actions;
    cell.report = check(request, options);

    if (!cell.report.ok) {
      ++report.violations;
    } else if (!cell.report.complete) {
      ++report.budget_exhausted;
    }
    report.cells.push_back(std::move(cell));
  }
  return report;
}

std::uint64_t GridReport::digest() const {
  std::uint64_t state = 0x36c1dc4ec5e7ULL;  // "mc-grid-check" domain
  fold64(state, cells.size());
  for (const GridCell& cell : cells) {
    fold64(state, static_cast<std::uint64_t>(cell.algorithm));
    fold64(state, static_cast<std::uint64_t>(cell.family));
    fold64(state, cell.node_count);
    fold64(state, cell.agent_count);
    fold64(state, cell.symmetry);
    fold64(state, cell.repetition);
    // Folded only for explicit problems: an all-Auto grid's digest is
    // byte-identical to the pre-ProblemSpec engine (pinned baselines).
    if (cell.problem.kind != core::Problem::Auto) {
      fold64(state, static_cast<std::uint64_t>(cell.problem.kind));
      fold64(state, cell.problem.gather_g);
    }
    fold64(state, cell.report.digest());
  }
  fold64(state, violations);
  fold64(state, budget_exhausted);
  return state;
}

Table GridReport::summary_table() const {
  // The "problem" column appears only when some cell names an explicit
  // problem, so all-Auto grids render their historical layout.
  const bool show_problem =
      std::any_of(cells.begin(), cells.end(), [](const GridCell& cell) {
        return cell.problem.kind != core::Problem::Auto;
      });
  std::vector<std::string> headers = {
      "algorithm", "family",       "n",           "k",       "l",
      "rep",       "schedules",    "states",      "deduped", "sleep-pruned",
      "dpor-pruned", "actions",    "verdict"};
  if (show_problem) headers.insert(headers.begin() + 1, "problem");
  Table table(std::move(headers));
  for (const GridCell& cell : cells) {
    const McStats& s = cell.report.stats;
    std::vector<std::string> row = {
        std::string(core::to_string(cell.algorithm)),
        std::string(exp::to_string(cell.family)), Table::num(cell.node_count),
        Table::num(cell.agent_count), Table::num(cell.symmetry),
        Table::num(static_cast<std::size_t>(cell.repetition)),
        Table::num(s.schedules), Table::num(s.states_expanded),
        Table::num(s.states_deduped), Table::num(s.sleep_pruned),
        Table::num(s.dpor_pruned), Table::num(s.total_actions),
        cell.report.complete && cell.report.ok
            ? "verified over all schedules"
            : (cell.report.ok ? "budget" : "VIOLATION")};
    if (show_problem) row.insert(row.begin() + 1, core::to_string(cell.problem));
    table.add_row(std::move(row));
  }
  return table;
}

std::string GridReport::summary() const {
  std::ostringstream out;
  out << summary_table();
  out << "cells: " << cells.size() << "   violations: " << violations
      << "   budget-exhausted: " << budget_exhausted << '\n';
  for (const GridCell& cell : cells) {
    if (cell.report.ok) continue;
    out << "  VIOLATION " << core::to_string(cell.algorithm) << " n="
        << cell.node_count << " k=" << cell.agent_count << ": "
        << cell.report.failure_reason << '\n';
  }
  return out.str();
}

}  // namespace udring::mc
