// udring/util/visited_set.h
//
// A lock-free, fixed-capacity, open-addressing hash set of 64-bit keys with
// insert-if-absent ("claim") semantics, built for mc::check's shared visited
// set: frontier shards race to claim configuration digests, and exactly one
// shard wins each key — the winner expands the state, every loser skips it.
//
// ## Protocol
//
// The table is a power-of-two array of std::atomic<uint64_t> slots, value 0
// meaning empty. insert(key) linearly probes from splitmix64(key):
//
//   1. load the slot (acquire). If it holds `key`, the key is Present.
//   2. If the slot is empty, try CAS(0 -> key, acq_rel). Success means this
//      caller Claimed the key. On failure, re-examine the value the CAS
//      returned: if it is `key`, a racing caller claimed it first (Present);
//      otherwise a different key collided into the slot — continue probing.
//   3. If the slot holds a different key, continue to the next slot.
//
// The load-bearing rule is that a prober may never *skip* an empty slot
// without CASing it: if thread A claims key X at slot i while thread B
// (also inserting X) reads slot i as still empty, B's CAS at i fails and
// returns X, converting B's insert into a Present hit. Skipping on a plain
// load instead would let B claim X again at a later slot — two winners, and
// mc would expand the state twice. tools/litmus_tests/ pins this protocol
// and its memory orderings in herd7 form; tests/test_visited_set.cpp hammers
// it from real threads (the TSan CI job runs both that test and the mc
// bench against this set).
//
// ## Orderings
//
// Membership alone needs only the CAS's read-modify-write atomicity (per-slot
// total order). The acquire/release pair is the contract for extensions that
// publish a payload next to the key (e.g. sleep masks beside digests): a
// writer must release-store the payload before the key CAS publishes it, and
// a reader that observed the key via an acquire load may then read the
// payload. Keeping acq_rel now means such an extension cannot silently
// weaken the protocol.
//
// ## Capacity
//
// Capacity is fixed at construction (lock-free growth is deliberately out of
// scope). When the table is nearly full or a probe run exceeds its bound,
// insert returns Full; mc treats that exactly like budget exhaustion
// (complete = false), so an undersized table degrades a verdict to
// "budget-exhausted", never to a wrong "verified".
//
// The 7/8-of-capacity fill limit is approximate, not strict: the gate reads
// size_ before the claiming CAS, so N threads racing at the boundary can all
// pass it and claim up to N-1 keys past the limit. The overshoot is bounded
// by the thread count, and the 1/8 headroom (plus the probe-run bound) keeps
// the table below physical capacity regardless, so correctness — exactly one
// Claimed per key, Present after Claimed — is unaffected. Consequently,
// near the limit WHICH insert first observes Full (via the gate or a
// clustered probe run) depends on the racing claim order; callers that need
// a deterministic complete/incomplete boundary must size the table so the
// key population fits comfortably under the limit (see mc/model_check.h).
//
// Key 0 is remapped to a fixed odd constant so 0 can serve as the empty
// sentinel — one more 2^-64 collision on top of the digest's own, the same
// accepted risk as every digest-keyed map in this codebase.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace udring {

class LockFreeVisitedSet {
 public:
  enum class Insert {
    Claimed,  ///< key was absent; this caller inserted it (exactly one winner)
    Present,  ///< key was already in the set
    Full,     ///< table too full to decide; caller must stop, not assume
  };

  /// Capacity is rounded up to a power of two, minimum 64 slots.
  explicit LockFreeVisitedSet(std::size_t min_capacity);

  LockFreeVisitedSet(const LockFreeVisitedSet&) = delete;
  LockFreeVisitedSet& operator=(const LockFreeVisitedSet&) = delete;

  /// Thread-safe insert-if-absent; see the protocol above. Exactly one call
  /// per distinct key (across all threads, for the set's lifetime) returns
  /// Claimed, unless the table fills up first.
  [[nodiscard]] Insert insert(std::uint64_t key) noexcept;

  /// Number of keys claimed so far. Exact once all inserting threads have
  /// been joined; a racing snapshot otherwise.
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::size_t mask_ = 0;       // capacity - 1 (capacity is a power of two)
  std::size_t max_probe_ = 0;  // probe-run bound before reporting Full
  std::size_t fill_limit_ = 0; // claimed-key ceiling (~7/8 of capacity; racing
                               // claims may overshoot by threads-1 — header)
  std::atomic<std::size_t> size_{0};
};

}  // namespace udring
