#include "util/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace udring {

bool write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path);
  out << text;
  out.flush();
  return out.good();
}

std::optional<std::string> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

bool write_binary_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::remove(temp.c_str());
      return false;
    }
  }
  // POSIX rename over an existing target is atomic: a concurrent reader (or
  // a kill -9 between these lines) sees either the previous complete file or
  // the new one, never a prefix.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

}  // namespace udring
