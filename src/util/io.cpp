#include "util/io.h"

#include <fstream>

namespace udring {

bool write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path);
  out << text;
  out.flush();
  return out.good();
}

}  // namespace udring
