#include "util/visited_set.h"

#include <algorithm>
#include <bit>

#include "util/rng.h"

namespace udring {

namespace {

/// Stand-in for key 0 so the empty sentinel stays unambiguous.
constexpr std::uint64_t kZeroKeySurrogate = 0x9e3779b97f4a7c15ULL;

}  // namespace

LockFreeVisitedSet::LockFreeVisitedSet(std::size_t min_capacity) {
  const std::size_t capacity = std::bit_ceil(std::max<std::size_t>(min_capacity, 64));
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  mask_ = capacity - 1;
  // A probe run this long means heavy clustering near the fill limit; giving
  // up keeps insert O(1) and only ever degrades toward Full, which callers
  // must treat as "stop", never as "absent".
  max_probe_ = std::min<std::size_t>(capacity, 256);
  fill_limit_ = capacity - capacity / 8;
}

LockFreeVisitedSet::Insert LockFreeVisitedSet::insert(
    std::uint64_t key) noexcept {
  if (key == 0) key = kZeroKeySurrogate;
  // splitmix64 advances its state argument in place; hash a copy, or the
  // table would store key + golden-ratio instead of key (and the state that
  // lands exactly on 0 would masquerade as the empty sentinel).
  std::uint64_t hash_state = key;
  std::size_t index = static_cast<std::size_t>(splitmix64(hash_state)) & mask_;
  for (std::size_t probe = 0; probe < max_probe_; ++probe) {
    std::atomic<std::uint64_t>& slot = slots_[index];
    std::uint64_t seen = slot.load(std::memory_order_acquire);
    if (seen == key) return Insert::Present;
    if (seen == 0) {
      // The fill limit gates CLAIMING only — keys already in the table must
      // keep answering Present after the table refuses new ones. The gate is
      // check-then-CAS, so racing claimers can overshoot the limit by up to
      // threads-1 keys; the header's headroom argument covers why that is
      // harmless (and why the limit is documented as approximate).
      if (size_.load(std::memory_order_relaxed) >= fill_limit_) {
        return Insert::Full;
      }
      // Never skip an empty slot on a plain load: CAS it, and let a failed
      // CAS tell us what landed there first (see the header's protocol).
      std::uint64_t expected = 0;
      if (slot.compare_exchange_strong(expected, key,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return Insert::Claimed;
      }
      if (expected == key) return Insert::Present;
      // A different key raced into the slot; fall through and keep probing.
    }
    index = (index + 1) & mask_;
  }
  return Insert::Full;
}

}  // namespace udring
