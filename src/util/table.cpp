#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace udring {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::num(std::size_t value) { return std::to_string(value); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      if (c == 0) {
        out << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      } else {
        out << std::right << std::setw(static_cast<int>(width[c])) << row[c];
      }
    }
    out << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  table.print(out);
  return out;
}

void print_section(std::ostream& out, std::string_view title) {
  out << '\n' << "== " << title << " " << std::string(std::max<std::size_t>(4, 76 - title.size()), '=') << '\n';
}

}  // namespace udring
