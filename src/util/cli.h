// udring/util/cli.h
//
// A tiny command-line flag parser for the example binaries. Supports the
// unambiguous forms `--name=value`, boolean `--name`, and `--help`; anything
// else is positional. Examples stay dependency-free while still being
// configurable (ring size, agent count, scheduler, seed).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace udring {

/// Parsed command line. Construct from main()'s argc/argv, then query flags.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Registers a flag for --help output and returns its value if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& name,
                                               const std::string& help,
                                               const std::string& fallback = "");

  /// Typed accessors with defaults. Invalid numbers throw std::invalid_argument.
  [[nodiscard]] std::size_t get_size(const std::string& name, std::size_t fallback,
                                     const std::string& help);
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t fallback,
                                      const std::string& help);
  [[nodiscard]] bool get_flag(const std::string& name, const std::string& help);

  /// True if --help was passed; callers should print_help() and exit.
  [[nodiscard]] bool wants_help() const noexcept { return help_requested_; }

  /// Prints a usage block listing every flag registered via get* calls.
  void print_help(const std::string& program_description) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // name -> (help text, default shown in --help)
  mutable std::vector<std::array<std::string, 3>> registered_;
  bool help_requested_ = false;

  void register_flag(const std::string& name, const std::string& help,
                     const std::string& fallback) const;
};

}  // namespace udring
