// udring/util/quantile_sketch.h
//
// A mergeable fixed-universe quantile sketch for the campaign engine's
// per-cell tail statistics (p50/p90/p99 moves and makespan).
//
// Why not a classic t-digest: centroid-based digests are ORDER-DEPENDENT —
// merging {A,B} then C yields different centroids than {A,C} then B — and
// the campaign engine's whole determinism contract rests on folds being
// commutative and associative, because work stealing hands workers (and
// shard processes hand machines) arbitrary scenario subsets. This sketch
// therefore compresses like a t-digest (fixed size, log-scaled resolution,
// coarser where values are large) but stores COUNTS in a fixed bucket
// universe, so merging is element-wise integer addition: commutative,
// associative, exact. Any partition of a value stream over any workers,
// lanes, shards or checkpoint intervals folds to the same bytes — the same
// argument (and the same guarantee) as CellStats' integer sums.
//
// Bucket universe (fixed, value-independent):
//   values 0..255          -> one bucket each (exact — small move counts,
//                             the common case, lose nothing)
//   values >= 256          -> log2 buckets with 16 sub-buckets per octave
//                             (relative error <= 1/16 within a bucket)
// for a total universe of kBucketCount = 1152 possible buckets. Storage is
// sparse (sorted (bucket, count) pairs): a cell's values cluster, so a
// typical sketch holds a handful of entries; the dense worst case is the
// fixed size the universe bounds.
//
// Exact min/max ride along so the extremes reported are never interpolated.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace udring {

class QuantileSketch {
 public:
  /// One sparse entry: `count` observations whose value maps to `bucket`.
  struct Entry {
    std::uint16_t bucket = 0;
    std::uint64_t count = 0;
    bool operator==(const Entry&) const = default;
  };

  /// Total number of representable buckets (the dense universe bound).
  static constexpr std::size_t kBucketCount = 1152;

  /// Folds one observation in. O(log entries) search + O(entries) insert for
  /// a new bucket; cells see few distinct buckets, so amortized this is the
  /// cost of a binary search.
  void add(std::uint64_t value, std::uint64_t count = 1);

  /// Element-wise merge: bucket counts add, min/max combine. Commutative and
  /// associative by construction. Throws std::overflow_error if any bucket
  /// count (or the total) would wrap — a merged cross-machine sweep that
  /// big must fail loudly, not report garbage tails.
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Exact extremes (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return total_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  /// The q-quantile estimate, q in [0, 1] (clamped). Exact for values below
  /// 256; within 1/16 relative error above. Deterministic: integer rank
  /// selection plus integer interpolation inside the landing bucket. Returns
  /// 0 on an empty sketch.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Sparse state, sorted ascending by bucket — the serialization surface.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Rebuilds a sketch from serialized state. Validates: entries sorted
  /// strictly ascending, buckets < kBucketCount, non-zero counts, counts sum
  /// to `total` without wrapping, min/max consistent with emptiness. Throws
  /// std::invalid_argument on malformed input (a corrupt shard file must not
  /// become a quietly-wrong sketch).
  [[nodiscard]] static QuantileSketch from_entries(std::vector<Entry> entries,
                                                   std::uint64_t min_value,
                                                   std::uint64_t max_value);

  bool operator==(const QuantileSketch&) const = default;

  /// The bucket a value maps to (exposed for tests pinning the mapping).
  [[nodiscard]] static std::uint16_t bucket_of(std::uint64_t value) noexcept;
  /// Inclusive-exclusive value range [lo, hi) a bucket represents.
  [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t> bucket_range(
      std::uint16_t bucket) noexcept;

 private:
  std::vector<Entry> entries_;  // sorted ascending by bucket, counts > 0
  std::uint64_t total_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace udring
