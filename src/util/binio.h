// udring/util/binio.h
//
// Tiny binary serialization helpers for the shard-file format (exp/shard.h):
// a growing byte buffer with fixed-width little-endian integer writes, and a
// bounds-checked reader that throws on truncation instead of reading
// garbage. Everything is explicit-width and endian-pinned so a shard file
// written on one machine merges on another — the whole point of the format.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace udring {

/// Append-only byte buffer. All integers little-endian, fixed width.
class BinaryWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }

  void u16(std::uint16_t value) {
    for (int shift = 0; shift < 16; shift += 8) {
      buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
    }
  }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
    }
  }

  /// Length-prefixed (u64) byte string.
  void str(std::string_view text) {
    u64(text.size());
    buffer_.append(text);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked sequential reader over a byte buffer. Every overrun — a
/// truncated or corrupt shard file — throws std::runtime_error carrying
/// `context` so the error names the file being parsed, not just "bad read".
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes, std::string context = {})
      : bytes_(bytes), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[position_++]);
  }

  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(read(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(read(4)); }
  [[nodiscard]] std::uint64_t u64() { return read(8); }

  [[nodiscard]] std::string str() {
    const std::uint64_t length = u64();
    need(length);
    std::string text(bytes_.substr(position_, length));
    position_ += length;
    return text;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - position_;
  }
  [[nodiscard]] bool at_end() const noexcept { return remaining() == 0; }

  /// Fails unless the whole buffer was consumed — trailing bytes mean the
  /// reader and writer disagree about the format, never harmless padding.
  void expect_end() const;

 private:
  void need(std::uint64_t count) const;
  [[nodiscard]] std::uint64_t read(unsigned bytes);

  std::string_view bytes_;
  std::size_t position_ = 0;
  std::string context_;
};

}  // namespace udring
