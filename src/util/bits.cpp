// udring/util/bits.cpp — compile-time checks for the header-only helpers.

#include "util/bits.h"

namespace udring {

static_assert(bit_width(0) == 1);
static_assert(bit_width(1) == 1);
static_assert(bit_width(2) == 2);
static_assert(bit_width(255) == 8);
static_assert(bit_width(256) == 9);

static_assert(ceil_div(10, 3) == 4);
static_assert(ceil_div(9, 3) == 3);
static_assert(ceil_div(1, 7) == 1);

static_assert(ceil_log2(1) == 0);
static_assert(ceil_log2(2) == 1);
static_assert(ceil_log2(3) == 2);
static_assert(ceil_log2(1024) == 10);

static_assert(gcd(12, 18) == 6);
static_assert(gcd(0, 5) == 5);
static_assert(gcd(7, 13) == 1);

static_assert(is_pow2(1) && is_pow2(64) && !is_pow2(0) && !is_pow2(12));

}  // namespace udring
