#include "util/quantile_sketch.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace udring {

namespace {

/// Values below this map one-to-one onto buckets (exact representation).
constexpr std::uint64_t kExactLimit = 256;
/// Sub-buckets per octave above the exact range: 2^4 = 16, so relative
/// error within a bucket is bounded by 1/16.
constexpr unsigned kSubBits = 4;
constexpr std::uint64_t kSubBuckets = 1u << kSubBits;
/// First octave with log buckets: values in [2^8, 2^9).
constexpr unsigned kFirstExponent = 8;

[[nodiscard]] std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  if (sum < a) {
    throw std::overflow_error(
        "QuantileSketch: bucket count overflow on merge (the merged sweep "
        "exceeds 2^64 observations in one bucket)");
  }
  return sum;
}

}  // namespace

std::uint16_t QuantileSketch::bucket_of(std::uint64_t value) noexcept {
  if (value < kExactLimit) return static_cast<std::uint16_t>(value);
  const unsigned exponent = 63u - static_cast<unsigned>(std::countl_zero(value));
  const std::uint64_t sub = (value >> (exponent - kSubBits)) & (kSubBuckets - 1);
  return static_cast<std::uint16_t>(kExactLimit +
                                    (exponent - kFirstExponent) * kSubBuckets +
                                    sub);
}

std::pair<std::uint64_t, std::uint64_t> QuantileSketch::bucket_range(
    std::uint16_t bucket) noexcept {
  if (bucket < kExactLimit) return {bucket, std::uint64_t{bucket} + 1};
  const unsigned index = static_cast<unsigned>(bucket - kExactLimit);
  const unsigned exponent = kFirstExponent + index / kSubBuckets;
  const std::uint64_t sub = index % kSubBuckets;
  const std::uint64_t lo =
      (std::uint64_t{1} << exponent) + (sub << (exponent - kSubBits));
  const std::uint64_t width = std::uint64_t{1} << (exponent - kSubBits);
  // The top bucket of the top octave ends at 2^64; saturate the open bound.
  const std::uint64_t hi =
      lo + width < lo ? std::numeric_limits<std::uint64_t>::max() : lo + width;
  return {lo, hi};
}

void QuantileSketch::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::uint16_t bucket = bucket_of(value);
  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), bucket,
      [](const Entry& entry, std::uint16_t b) { return entry.bucket < b; });
  if (at != entries_.end() && at->bucket == bucket) {
    at->count = checked_add(at->count, count);
  } else {
    entries_.insert(at, Entry{bucket, count});
  }
  total_ = checked_add(total_, count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.total_ == 0) return;
  // Sorted two-way merge: element-wise addition over the shared bucket
  // universe. No ordering decision is ever taken on values, which is what
  // keeps this commutative (and shard/worker/checkpoint-order invariant).
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->bucket < b->bucket) {
      merged.push_back(*a++);
    } else if (b->bucket < a->bucket) {
      merged.push_back(*b++);
    } else {
      merged.push_back(Entry{a->bucket, checked_add(a->count, b->count)});
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, entries_.end());
  merged.insert(merged.end(), b, other.entries_.end());
  entries_ = std::move(merged);
  total_ = checked_add(total_, other.total_);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Integer rank selection: the 0-indexed order statistic floor(q*(N-1)),
  // the "lower" empirical quantile — deterministic, no floating-point
  // accumulation across buckets.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t cumulative = 0;
  for (const Entry& entry : entries_) {
    if (rank < cumulative + entry.count) {
      auto [lo, hi] = bucket_range(entry.bucket);
      // Clamp the bucket to the exact observed extremes so tails never
      // report values outside [min, max].
      lo = std::max(lo, min_);
      hi = std::min(hi, max_ + 1 < max_ ? max_ : max_ + 1);
      if (hi <= lo + 1) return static_cast<double>(lo);
      // Uniform interpolation inside the landing bucket by position.
      const std::uint64_t position = rank - cumulative;
      return static_cast<double>(lo) +
             static_cast<double>(hi - 1 - lo) * static_cast<double>(position) /
                 static_cast<double>(entry.count);
    }
    cumulative += entry.count;
  }
  return static_cast<double>(max_);  // unreachable for a consistent sketch
}

QuantileSketch QuantileSketch::from_entries(std::vector<Entry> entries,
                                            std::uint64_t min_value,
                                            std::uint64_t max_value) {
  QuantileSketch sketch;
  std::uint64_t total = 0;
  std::uint16_t previous = 0;
  bool first = true;
  for (const Entry& entry : entries) {
    if (entry.bucket >= kBucketCount) {
      throw std::invalid_argument("QuantileSketch: bucket out of universe");
    }
    if (!first && entry.bucket <= previous) {
      throw std::invalid_argument("QuantileSketch: entries not sorted");
    }
    if (entry.count == 0) {
      throw std::invalid_argument("QuantileSketch: zero-count entry");
    }
    const std::uint64_t sum = total + entry.count;
    if (sum < total) {
      throw std::invalid_argument("QuantileSketch: total overflows");
    }
    total = sum;
    previous = entry.bucket;
    first = false;
  }
  if (total == 0) {
    if (min_value != std::numeric_limits<std::uint64_t>::max() ||
        max_value != 0) {
      throw std::invalid_argument(
          "QuantileSketch: empty sketch with non-sentinel extremes");
    }
    return sketch;
  }
  if (min_value > max_value) {
    throw std::invalid_argument("QuantileSketch: min > max");
  }
  if (bucket_of(min_value) != entries.front().bucket ||
      bucket_of(max_value) != entries.back().bucket) {
    throw std::invalid_argument(
        "QuantileSketch: extremes disagree with bucket span");
  }
  sketch.entries_ = std::move(entries);
  sketch.total_ = total;
  sketch.min_ = min_value;
  sketch.max_ = max_value;
  return sketch;
}

}  // namespace udring
