// udring/util/rng.cpp — xoshiro256** implementation.
//
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators" (2018). Public-domain algorithm.

#include "util/rng.h"

#include <algorithm>

namespace udring {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  if (std::all_of(state_.begin(), state_.end(),
                  [](std::uint64_t w) { return w == 0; })) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: draw until the value falls inside the largest
  // multiple of `bound`, guaranteeing exact uniformity.
  //
  // Power-of-two fast path: 2^64 − bound equals ~0 − (~0 % bound) and
  // draw & (bound − 1) equals draw % bound, so the draw count and the
  // returned values are bit-identical to the general path (the frozen
  // stream contract) minus two hardware divisions. Scheduler draws hit this
  // constantly — enabled-set sizes are powers of two whenever k is.
  if ((bound & (bound - 1)) == 0) {
    const std::uint64_t limit = std::uint64_t{0} - bound;
    std::uint64_t draw = (*this)();
    while (draw >= limit) {
      draw = (*this)();
    }
    return draw & (bound - 1);
  }
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return draw % bound;
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::substream(std::uint64_t index) const noexcept {
  // Frozen derivation (see rng.h): depends only on (seed_, index).
  std::uint64_t state = seed_ ^ kSubstreamSalt;
  const std::uint64_t mixed = splitmix64(state);
  state ^= index * 0x9e3779b97f4a7c15ULL;
  return Rng(mixed ^ splitmix64(state));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace udring
