#include "util/cli.h"

#include <array>
#include <iostream>
#include <stdexcept>

namespace udring {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "udring";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      // Only the unambiguous forms: --name=value, or bare --name (boolean).
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      } else {
        values_[arg.substr(2)] = "true";  // boolean flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

void Cli::register_flag(const std::string& name, const std::string& help,
                        const std::string& fallback) const {
  for (const auto& entry : registered_) {
    if (entry[0] == name) return;
  }
  registered_.push_back({name, help, fallback});
}

std::optional<std::string> Cli::get(const std::string& name, const std::string& help,
                                    const std::string& fallback) {
  register_flag(name, help, fallback);
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback.empty() ? std::nullopt : std::optional<std::string>(fallback);
  }
  return it->second;
}

std::size_t Cli::get_size(const std::string& name, std::size_t fallback,
                          const std::string& help) {
  register_flag(name, help, std::to_string(fallback));
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return static_cast<std::size_t>(std::stoull(it->second));
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t fallback,
                           const std::string& help) {
  register_flag(name, help, std::to_string(fallback));
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

bool Cli::get_flag(const std::string& name, const std::string& help) {
  register_flag(name, help, "false");
  const auto it = values_.find(name);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

void Cli::print_help(const std::string& program_description) const {
  std::cout << program_ << " — " << program_description << "\n\nFlags:\n";
  for (const auto& [name, help, fallback] : registered_) {
    std::cout << "  --" << name;
    if (!fallback.empty()) std::cout << " (default: " << fallback << ")";
    std::cout << "\n      " << help << "\n";
  }
  std::cout << "  --help\n      Show this message.\n";
}

}  // namespace udring
