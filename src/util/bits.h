// udring/util/bits.h
//
// Small integer helpers used throughout udring: bit widths for the paper's
// memory accounting (a counter whose value is bounded by m costs
// bit_width(m) bits), ceiling division for ⌈n/k⌉ target intervals, and
// checked narrowing.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace udring {

/// Number of bits needed to represent `value` (0 needs 1 bit by convention,
/// so that a counter that only ever holds 0 still occupies storage).
[[nodiscard]] constexpr std::size_t bit_width(std::uint64_t value) noexcept {
  return value == 0 ? 1 : static_cast<std::size_t>(std::bit_width(value));
}

/// ⌈a / b⌉ for b > 0.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// ⌈log2(value)⌉ for value >= 1; ceil_log2(1) == 0.
[[nodiscard]] constexpr std::size_t ceil_log2(std::size_t value) noexcept {
  std::size_t bits = 0;
  std::size_t power = 1;
  while (power < value) {
    power *= 2;
    ++bits;
  }
  return bits;
}

/// Greatest common divisor (Euclid); gcd(0, b) == b.
[[nodiscard]] constexpr std::size_t gcd(std::size_t a, std::size_t b) noexcept {
  while (b != 0) {
    const std::size_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// True if `value` is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::size_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Checked narrowing conversion; throws std::overflow_error on loss.
template <typename To, typename From>
[[nodiscard]] constexpr To checked_cast(From value) {
  const To narrowed = static_cast<To>(value);
  if (static_cast<From>(narrowed) != value ||
      ((narrowed < To{}) != (value < From{}))) {
    throw std::overflow_error("udring::checked_cast: value out of range");
  }
  return narrowed;
}

}  // namespace udring
