// udring/util/parallel.h
//
// The repo's one sharding primitive. Campaigns, the schedule fuzzer and the
// batch drivers all parallelize the same way: N independent index-owned
// tasks, atomic work stealing, order-sensitive folding *after* the join —
// which is what makes every sharded artifact byte-identical at any worker
// count. Living in util/ (below core/), it is usable by every layer.

#pragma once

#include <cstddef>
#include <functional>

namespace udring {

/// Resolves a worker-count request against a task count: 0 means hardware
/// concurrency; the result is clamped to [1, max(count, 1)]. This is the
/// sizing rule every pooled driver uses to build its per-worker state
/// *before* launching (the pool must exist before the first task runs).
[[nodiscard]] std::size_t resolve_workers(std::size_t count,
                                          std::size_t workers) noexcept;

/// Calls fn(worker, i) for every i in [0, count) across resolve_workers()
/// threads with atomic work stealing. `worker` identifies the executing
/// thread (0 ≤ worker < returned count) and is stable for that thread's
/// whole pass — it is the index into per-worker pooled state (ExecutionState
/// arenas, scheduler caches). fn must be safe to call concurrently on
/// distinct indices and should write only to index-owned or worker-owned
/// state; determinism then comes for free by folding results in index order
/// after this returns. If fn throws, the pool stops early and the first
/// exception is rethrown on the calling thread after the join. Returns the
/// worker count actually used.
std::size_t parallel_for_workers(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Worker-oblivious form: calls fn(i) for every i in [0, count). Same
/// contract as parallel_for_workers otherwise.
std::size_t parallel_for_index(std::size_t count, std::size_t workers,
                               const std::function<void(std::size_t)>& fn);

/// Pump form, for drivers that interleave several in-flight indices per
/// worker (the lane-batched campaign engine): each worker thread runs
/// body(worker, claim) ONCE, pulling indices itself through claim() — which
/// atomically returns the next unclaimed index in [0, count), or `count`
/// when the range is exhausted. The same atomic-cursor stealing as
/// parallel_for_workers, with the loop inverted so the body can hold B
/// claimed indices open at a time. If a body throws, the cursor is drained
/// so other workers' claims stop, and the first exception is rethrown after
/// the join. workers == 1 runs the body inline on the calling thread.
/// Returns the worker count actually used.
std::size_t parallel_pump_workers(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t,
                             const std::function<std::size_t()>&)>& body);

}  // namespace udring
