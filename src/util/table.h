// udring/util/table.h
//
// Minimal aligned console tables. The bench binaries print the same kind of
// rows/series the paper's Table 1 and figures report; this keeps their
// output readable and diff-able without pulling in a formatting library.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace udring {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"n", "k", "moves", "moves/kn"});
///   t.add_row({"64", "8", "812", "1.59"});
///   std::cout << t;
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with to_string / fixed precision.
  static std::string num(double value, int precision = 2);
  static std::string num(std::size_t value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule; columns are right-aligned except the first.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& out, const Table& table);

/// Draws a titled section separator used between bench sub-reports.
void print_section(std::ostream& out, std::string_view title);

}  // namespace udring
