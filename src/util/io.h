// udring/util/io.h
//
// Tiny file-IO helpers shared by the tool binaries.

#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace udring {

/// Writes `text` to `path` and flushes; false when the stream failed at any
/// point (missing directory, full disk). Trace artifacts are the repo's
/// evidence — a lost one must never look written, which is why every tool
/// checks this result instead of fire-and-forgetting an ofstream.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   std::string_view text);

/// Reads a whole file as raw bytes; nullopt when it does not exist or any
/// read fails. Binary-safe (no newline translation) — the shard loader's
/// input primitive.
[[nodiscard]] std::optional<std::string> read_binary_file(
    const std::string& path);

/// Atomically replaces `path` with `bytes`: writes `path` + ".tmp", flushes,
/// then renames over the target, so a reader (or a process killed mid-write)
/// only ever observes the old complete file or the new complete file — the
/// checkpoint durability primitive. False when any step fails; on failure
/// the temporary is removed and `path` is untouched.
[[nodiscard]] bool write_binary_file_atomic(const std::string& path,
                                            std::string_view bytes);

}  // namespace udring
