// udring/util/io.h
//
// Tiny file-IO helpers shared by the tool binaries.

#pragma once

#include <string>
#include <string_view>

namespace udring {

/// Writes `text` to `path` and flushes; false when the stream failed at any
/// point (missing directory, full disk). Trace artifacts are the repo's
/// evidence — a lost one must never look written, which is why every tool
/// checks this result instead of fire-and-forgetting an ofstream.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   std::string_view text);

}  // namespace udring
