#include "util/binio.h"

#include <stdexcept>

namespace udring {

namespace {
[[noreturn]] void fail(const std::string& context, const char* what) {
  throw std::runtime_error((context.empty() ? std::string("binary input")
                                            : context) +
                           ": " + what);
}
}  // namespace

void BinaryReader::need(std::uint64_t count) const {
  if (count > remaining()) fail(context_, "truncated (unexpected end of data)");
}

std::uint64_t BinaryReader::read(unsigned bytes) {
  need(bytes);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes_[position_ + i]))
             << (8 * i);
  }
  position_ += bytes;
  return value;
}

void BinaryReader::expect_end() const {
  if (!at_end()) fail(context_, "trailing bytes after the last field");
}

}  // namespace udring
