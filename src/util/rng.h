// udring/util/rng.h
//
// Deterministic, seedable random number generation for udring.
//
// Everything random in this repository (schedules, initial configurations,
// property-test sweeps) goes through Rng so that any run is reproducible
// from its printed seed. The generator is xoshiro256** seeded via splitmix64
// — small, fast, and identical across platforms (unlike distribution classes
// in <random>, whose output is implementation-defined).

#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace udring {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Folds `value` into a running 64-bit digest state with a full splitmix64
/// avalanche per word. Every order-sensitive digest in the repo (campaign
/// results, event logs, fuzz reports, substream keys) uses this one fold so
/// the idiom cannot drift between copies; each digest seeds `state` with its
/// own domain salt.
constexpr void fold64(std::uint64_t& state, std::uint64_t value) noexcept {
  std::uint64_t stream = state ^ value;
  state = splitmix64(stream);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Default seed; any fixed value works, this one spells "udring" in hex-ish.
  static constexpr std::uint64_t kDefaultSeed = 0x0dD121960D121960ULL;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = kDefaultSeed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0. Uses rejection
  /// sampling, so the result is exactly uniform.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly chosen element index for a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(below(size));
  }

  /// The seed this generator was constructed from (not the current state).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent child generator for substream `index`.
  ///
  /// The derivation depends only on (construction seed, index) — never on
  /// how many values this generator has drawn — so a sharded campaign that
  /// hands substream(i) to scenario i gets byte-identical scenario inputs
  /// regardless of worker count or scheduling order. Distinct indices yield
  /// statistically independent streams: the child seed is the XOR of two
  /// full splitmix64 avalanches over the salted seed, the second with
  /// index·φ64 folded into the splitmix state, so every bit of both seed
  /// and index diffuses into the child. substream(i) never equals the
  /// parent stream because of the salt.
  /// This derivation is frozen — a regression test pins its exact output —
  /// since changing it silently re-seeds every recorded campaign.
  [[nodiscard]] Rng substream(std::uint64_t index) const noexcept;

  /// Domain-separation salt for substream derivation ("seed feed" in hex-ish).
  static constexpr std::uint64_t kSubstreamSalt = 0x5eedfeedc0ffee42ULL;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = kDefaultSeed;
};

}  // namespace udring
