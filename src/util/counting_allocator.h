// udring/util/counting_allocator.h
//
// Global operator-new counting for allocation audits (bench_huge_instance's
// zero-steady-state-allocation gate, test_campaign's success-path pin).
//
// Include this from exactly ONE translation unit of a binary: it DEFINES
// the global replacement operator new/delete (non-inline, as replacement
// functions must be), so a second including TU fails loudly at link time.
// It is deliberately not part of the udring library — only audit binaries
// opt in.
//
// Under sanitizers the replacement is compiled out (UDRING_COUNTING_
// ALLOCATOR == 0) so ASan's own allocator interposition stays in charge;
// audits should skip their count assertions in that configuration (the
// macro is the gate) — allocation_count() then always reports 0.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define UDRING_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define UDRING_COUNTING_ALLOCATOR 0
#else
#define UDRING_COUNTING_ALLOCATOR 1
#endif
#else
#define UDRING_COUNTING_ALLOCATOR 1
#endif

namespace udring {
namespace detail {
#if UDRING_COUNTING_ALLOCATOR
// Relaxed ordering: measurement windows are single-threaded; cross-thread
// counts only need eventual totals, not ordering.
inline std::atomic<std::size_t> g_alloc_count{0};
#endif
}  // namespace detail

/// Every global operator new executed by this binary so far (0 when the
/// counting allocator is compiled out under sanitizers). Snapshot before
/// and after the measured region and diff.
[[nodiscard]] inline std::size_t allocation_count() noexcept {
#if UDRING_COUNTING_ALLOCATOR
  return detail::g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

}  // namespace udring

#if UDRING_COUNTING_ALLOCATOR
void* operator new(std::size_t size) {
  udring::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif
