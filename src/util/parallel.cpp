#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace udring {

std::size_t resolve_workers(std::size_t count, std::size_t workers) noexcept {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(
      1, std::min(workers, std::max<std::size_t>(1, count)));
}

std::size_t parallel_for_workers(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  workers = resolve_workers(count, workers);

  // Shard by atomic work-stealing over indices. Each index owns its output
  // slot, so the parallel phase shares no mutable state beyond the cursor;
  // all order-sensitive folding happens after the join. An exception from fn
  // would std::terminate the process if it escaped a worker thread, so the
  // first one is captured and rethrown on the calling thread after the join
  // (the remaining workers drain the cursor and stop).
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto work = [&](std::size_t worker) {
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < count; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      try {
        fn(worker, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        cursor.store(count, std::memory_order_relaxed);  // stop all workers
        return;
      }
    }
  };
  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(work, w);
    }
    for (std::thread& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return workers;
}

std::size_t parallel_for_index(std::size_t count, std::size_t workers,
                               const std::function<void(std::size_t)>& fn) {
  return parallel_for_workers(
      count, workers, [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

std::size_t parallel_pump_workers(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t,
                             const std::function<std::size_t()>&)>& body) {
  workers = resolve_workers(count, workers);

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const std::function<std::size_t()> claim = [&]() -> std::size_t {
    const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
    return i < count ? i : count;
  };
  const auto work = [&](std::size_t worker) {
    try {
      body(worker, claim);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      cursor.store(count, std::memory_order_relaxed);  // stop all workers
    }
  };
  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(work, w);
    }
    for (std::thread& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return workers;
}

}  // namespace udring
