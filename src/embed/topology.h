// udring/embed/topology.h
//
// Builders that turn §5's embeddings into native sim::Topology values, so
// tree and general-network workloads execute *in the core* instead of being
// copied onto a detached ring and mapped back by hand:
//
//  - euler_tour_topology:       tree → its Euler-tour virtual ring of
//                               2(n−1) steps (1 for the single-node tree),
//                               labels = tour nodes, ports = out-port per
//                               step.
//  - spanning_tree_topology:    connected graph → port-order DFS spanning
//                               tree → Euler tour (the paper's "construct a
//                               spanning tree and embed a ring in it").
//  - eulerian_circuit_topology: connected multigraph with all-even degrees
//                               → its Eulerian circuit as a virtual ring of
//                               E steps, every edge crossed exactly once
//                               per lap (tighter than the spanning-tree
//                               detour when the network is Eulerian).
//
// The executing core only sees size/successor; labels and ports ride along
// so results, reports and patrols map back to the physical network without
// any caller-side bookkeeping (core::RunReport::final_labels).

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "embed/euler_ring.h"
#include "embed/graph.h"
#include "embed/tree.h"
#include "sim/topology.h"

namespace udring::embed {

/// The Euler tour of `tree` rooted at `root` as a native topology.
[[nodiscard]] sim::Topology euler_tour_topology(const TreeNetwork& tree,
                                                TreeNodeId root = 0);

/// Topology from an already-built EulerRing (avoids re-touring when the
/// caller also needs the ring's first_position map).
[[nodiscard]] sim::Topology topology_from(const EulerRing& ring,
                                          const TreeNetwork& tree);

/// Spanning tree of `graph` (port-order DFS from `root`), then its Euler
/// tour. Runs every ring algorithm on an arbitrary connected network.
[[nodiscard]] sim::Topology spanning_tree_topology(const GraphNetwork& graph,
                                                   TreeNodeId root = 0);

/// The Eulerian circuit of a connected multigraph (parallel edges and
/// self-loops allowed) in which every node has even degree, as a virtual
/// ring of edge_count steps starting at node 0. Throws std::invalid_argument
/// when a degree is odd or the edges do not connect all nodes. The
/// single-node edgeless network yields the trivial 1-step ring.
[[nodiscard]] sim::Topology eulerian_circuit_topology(
    std::size_t node_count,
    const std::vector<std::pair<TreeNodeId, TreeNodeId>>& edges);

/// Maps distinct underlying homes to their *first* virtual positions on
/// `topology` (distinct by the Euler-tour first-visit property). Throws when
/// a home is not on the topology or appears twice.
[[nodiscard]] std::vector<std::size_t> virtual_homes(
    const sim::Topology& topology, const std::vector<TreeNodeId>& homes);

/// Draws k distinct underlying nodes uniformly (rejection sampling from
/// `rng`) and maps them to their first virtual positions — the one way the
/// fuzzer and the CLIs place agents on an embedded topology, kept here so
/// the draw cannot drift between copies. Throws when k exceeds the
/// underlying node count.
[[nodiscard]] std::vector<std::size_t> draw_virtual_homes(
    const sim::Topology& topology, std::size_t k, Rng& rng);

/// Random-network families the fuzzer and CLIs draw embedded instances
/// from. One definition of "a random tree/graph of n nodes" (including the
/// graph edge density), so the fuzzer's instance family and the CLIs'
/// --record instances cannot drift apart.
enum class RandomNetworkKind { Tree, Graph };

/// A random n-node network of the given kind as its native Euler-tour
/// topology: a uniform (Prüfer) random tree, or a random connected graph
/// with n/2 extra edges via its port-order DFS spanning tree.
[[nodiscard]] sim::Topology random_network_topology(RandomNetworkKind kind,
                                                    std::size_t node_count,
                                                    Rng& rng);

}  // namespace udring::embed
