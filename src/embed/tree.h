// udring/embed/tree.h
//
// Tree networks — the substrate for the paper's §5 future-work extension:
// "for tree networks agents embed the ring by the Euler tour technique,
// that is, if an agent moves in the tree network by the depth-first manner
// and visits 2(n−1) nodes, the agent can see the nodes as a virtual ring of
// 2(n−1) nodes."
//
// Nodes are anonymous (ids are instrumentation, as in the ring); what the
// model relies on is only local port labels — each node orders its incident
// edges, which is exactly what a DFS/Euler tour needs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace udring::embed {

using TreeNodeId = std::size_t;

/// An undirected tree on n ≥ 1 nodes with per-node ordered adjacency
/// (port labels). Immutable after construction.
class TreeNetwork {
 public:
  /// Builds from an edge list; throws unless the edges form a tree.
  TreeNetwork(std::size_t node_count,
              std::vector<std::pair<TreeNodeId, TreeNodeId>> edges);

  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return size() - 1; }

  /// Neighbours of `node` in port order.
  [[nodiscard]] const std::vector<TreeNodeId>& neighbors(TreeNodeId node) const {
    return adjacency_.at(node);
  }

  [[nodiscard]] std::size_t degree(TreeNodeId node) const {
    return adjacency_.at(node).size();
  }

  /// Hop distance between two nodes (BFS; instrumentation only).
  [[nodiscard]] std::size_t distance(TreeNodeId from, TreeNodeId to) const;

  /// Hop distances from `from` to every node (BFS).
  [[nodiscard]] std::vector<std::size_t> distances_from(TreeNodeId from) const;

 private:
  std::vector<std::vector<TreeNodeId>> adjacency_;
};

// ---- generators --------------------------------------------------------------

/// Path 0 − 1 − … − (n−1).
[[nodiscard]] TreeNetwork path_tree(std::size_t node_count);

/// Star with centre 0.
[[nodiscard]] TreeNetwork star_tree(std::size_t node_count);

/// Complete-as-possible binary tree, parent(i) = (i−1)/2.
[[nodiscard]] TreeNetwork binary_tree(std::size_t node_count);

/// Uniformly random labelled tree (random Prüfer sequence).
[[nodiscard]] TreeNetwork random_tree(std::size_t node_count, Rng& rng);

/// Caterpillar: a path spine with legs — a worst-case-ish diameter shape.
[[nodiscard]] TreeNetwork caterpillar_tree(std::size_t spine, std::size_t legs_per_node);

}  // namespace udring::embed
