// udring/embed/tree_deploy.h
//
// Uniform deployment on tree networks via the Euler-tour embedding (§5).
//
// Agents living on tree nodes are mapped to the virtual ring (each agent's
// home = the first tour position of its tree home; distinct tree homes give
// distinct virtual homes), any of the paper's ring algorithms runs
// unchanged, and the result maps back: an agent at virtual position v
// stands at tree node tour[v]. Uniformity is with respect to tour distance
// — agents end ⌊m/k⌋ or ⌈m/k⌉ tour steps apart (m = 2(n−1)) — which bounds
// the tree-level service interval: a patrol following the tour visits every
// node of the tree within one tour lap, so consecutive-agent tour gaps are
// exactly the patrol staleness bound on the tree.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/runner.h"
#include "embed/euler_ring.h"
#include "embed/tree.h"

namespace udring::embed {

struct TreeDeployReport {
  bool success = false;           ///< virtual-ring oracle passed
  std::string failure;            ///< oracle failure reason if any
  std::size_t virtual_ring_size = 0;           ///< m = 2(n−1)
  std::vector<std::size_t> virtual_positions;  ///< final ring positions (sorted)
  std::vector<TreeNodeId> tree_positions;      ///< tour[v] for each of them
  std::size_t total_moves = 0;    ///< = total tree edge traversals
  std::uint64_t makespan = 0;
  std::size_t max_memory_bits = 0;

  /// Worst/mean hop distance from any tree node to its nearest agent
  /// (instrumentation; computed on the tree, not the tour).
  std::size_t worst_tree_distance = 0;
  double mean_tree_distance = 0;
};

/// Runs `algorithm` for agents starting at distinct tree nodes `tree_homes`
/// via the Euler-tour embedding rooted at `root`.
[[nodiscard]] TreeDeployReport deploy_on_tree(
    const TreeNetwork& tree, const std::vector<TreeNodeId>& tree_homes,
    core::Algorithm algorithm, core::RunSpec base_spec = {},
    TreeNodeId root = 0);

/// Tree-coverage statistics for an arbitrary agent placement (hop metric).
[[nodiscard]] std::pair<std::size_t, double> tree_coverage(
    const TreeNetwork& tree, const std::vector<TreeNodeId>& agents);

}  // namespace udring::embed
