// udring/embed/euler_ring.h
//
// The Euler-tour ring embedding of §5: walking a tree depth-first and
// traversing every edge twice yields a closed walk of length 2(n−1); reading
// its steps as the nodes of a *virtual unidirectional ring* lets every ring
// algorithm run unchanged on the tree. One virtual move = one tree edge
// traversal, so the total moves on the virtual ring equal total tree moves,
// and the paper's "the total moves between the embedded ring and the
// original network is asymptotically equivalent" holds by construction.
//
// Modelling note (documented substitution): a token released at virtual
// node i marks the i-th tour step — concretely, a (tree node, out-port) mark
// — not the tree node as a whole. Agents following the same tour see these
// marks consistently, which is all the paper's algorithms need.

#pragma once

#include <cstddef>
#include <vector>

#include "embed/tree.h"

namespace udring::embed {

/// The Euler tour of a tree as a virtual ring.
class EulerRing {
 public:
  /// Builds the tour by iterative DFS from `root`, visiting neighbours in
  /// port order. For the single-node tree the virtual ring has one node.
  explicit EulerRing(const TreeNetwork& tree, TreeNodeId root = 0);

  /// Virtual ring size: 2(n−1) for n ≥ 2, else 1.
  [[nodiscard]] std::size_t size() const noexcept { return tour_.size(); }

  /// Tree node visited at virtual position v.
  [[nodiscard]] TreeNodeId tree_node(std::size_t virtual_node) const {
    return tour_.at(virtual_node);
  }

  /// The whole tour, tour()[v] = tree node at virtual position v; moving
  /// from virtual v to v+1 crosses the tree edge
  /// (tour()[v], tour()[(v+1) % size()]).
  [[nodiscard]] const std::vector<TreeNodeId>& tour() const noexcept { return tour_; }

  /// First virtual position whose tour step is `node` (every tree node
  /// appears at least once). Used to place agents: distinct tree homes map
  /// to distinct virtual homes.
  [[nodiscard]] std::size_t first_position(TreeNodeId node) const {
    return first_position_.at(node);
  }

  /// All virtual positions of a tree node (deg(node) many for n ≥ 2).
  [[nodiscard]] std::vector<std::size_t> positions_of(TreeNodeId node) const;

 private:
  std::vector<TreeNodeId> tour_;
  std::vector<std::size_t> first_position_;
};

}  // namespace udring::embed
