#include "embed/graph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace udring::embed {

GraphNetwork::GraphNetwork(std::size_t node_count,
                           std::vector<std::pair<TreeNodeId, TreeNodeId>> edges)
    : adjacency_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("GraphNetwork: need at least one node");
  }
  std::set<std::pair<TreeNodeId, TreeNodeId>> seen;
  for (const auto& [a, b] : edges) {
    if (a >= node_count || b >= node_count || a == b) {
      throw std::invalid_argument("GraphNetwork: bad edge");
    }
    if (!seen.insert({std::min(a, b), std::max(a, b)}).second) {
      throw std::invalid_argument("GraphNetwork: parallel edge");
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++edge_count_;
  }
  // Connectivity.
  std::vector<bool> visited(node_count, false);
  std::deque<TreeNodeId> frontier = {0};
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const TreeNodeId node = frontier.front();
    frontier.pop_front();
    for (const TreeNodeId next : adjacency_[node]) {
      if (!visited[next]) {
        visited[next] = true;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  if (reached != node_count) {
    throw std::invalid_argument("GraphNetwork: graph is not connected");
  }
}

TreeNetwork GraphNetwork::spanning_tree(TreeNodeId root) const {
  if (root >= size()) {
    throw std::invalid_argument("spanning_tree: root out of range");
  }
  std::vector<std::pair<TreeNodeId, TreeNodeId>> tree_edges;
  tree_edges.reserve(size() - 1);
  std::vector<bool> visited(size(), false);
  // Iterative DFS in port order — the deterministic walk an agent with local
  // port labels would perform.
  std::vector<std::pair<TreeNodeId, std::size_t>> stack = {{root, 0}};
  visited[root] = true;
  while (!stack.empty()) {
    auto& [node, port] = stack.back();
    if (port >= adjacency_[node].size()) {
      stack.pop_back();
      continue;
    }
    const TreeNodeId next = adjacency_[node][port++];
    if (!visited[next]) {
      visited[next] = true;
      tree_edges.emplace_back(node, next);
      stack.emplace_back(next, 0);
    }
  }
  return TreeNetwork(size(), std::move(tree_edges));
}

GraphNetwork random_connected_graph(std::size_t node_count, std::size_t extra_edges,
                                    Rng& rng) {
  const TreeNetwork backbone = random_tree(node_count, rng);
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  std::set<std::pair<TreeNodeId, TreeNodeId>> seen;
  for (TreeNodeId a = 0; a < node_count; ++a) {
    for (const TreeNodeId b : backbone.neighbors(a)) {
      if (a < b) {
        edges.emplace_back(a, b);
        seen.insert({a, b});
      }
    }
  }
  const std::size_t max_extra =
      node_count * (node_count - 1) / 2 - (node_count - 1);
  extra_edges = std::min(extra_edges, max_extra);
  std::size_t added = 0;
  while (added < extra_edges) {
    const auto a = static_cast<TreeNodeId>(rng.below(node_count));
    const auto b = static_cast<TreeNodeId>(rng.below(node_count));
    if (a == b) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (!seen.insert(key).second) continue;
    edges.push_back(key);
    ++added;
  }
  return GraphNetwork(node_count, std::move(edges));
}

GraphNetwork grid_graph(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("grid_graph: empty grid");
  }
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return GraphNetwork(rows * cols, std::move(edges));
}

GraphNetwork complete_graph(std::size_t node_count) {
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId a = 0; a < node_count; ++a) {
    for (TreeNodeId b = a + 1; b < node_count; ++b) {
      edges.emplace_back(a, b);
    }
  }
  return GraphNetwork(node_count, std::move(edges));
}

GraphNetwork cycle_graph(std::size_t node_count) {
  if (node_count < 3) {
    throw std::invalid_argument("cycle_graph: need at least 3 nodes");
  }
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId i = 0; i < node_count; ++i) {
    edges.emplace_back(i, (i + 1) % node_count);
  }
  return GraphNetwork(node_count, std::move(edges));
}

}  // namespace udring::embed
