#include "embed/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace udring::embed {

namespace {

/// Out-port (adjacency index) of the step a → b in `adjacency`. Tours of
/// simple networks have a unique match per (a, b).
[[nodiscard]] std::size_t port_of(const std::vector<TreeNodeId>& neighbors,
                                  TreeNodeId to) {
  const auto at = std::find(neighbors.begin(), neighbors.end(), to);
  if (at == neighbors.end()) {
    throw std::logic_error("embed: tour step is not an edge");
  }
  return static_cast<std::size_t>(at - neighbors.begin());
}

}  // namespace

sim::Topology topology_from(const EulerRing& ring, const TreeNetwork& tree) {
  const std::vector<TreeNodeId>& tour = ring.tour();
  std::vector<std::size_t> ports;
  ports.reserve(tour.size());
  for (std::size_t v = 0; v < tour.size(); ++v) {
    const TreeNodeId from = tour[v];
    const TreeNodeId to = tour[(v + 1) % tour.size()];
    // The single-node tour stays put; call its one "port" 0.
    ports.push_back(from == to ? 0 : port_of(tree.neighbors(from), to));
  }
  return sim::Topology::virtual_ring(tour.size(), tour, std::move(ports),
                                     "euler-tree");
}

sim::Topology euler_tour_topology(const TreeNetwork& tree, TreeNodeId root) {
  return topology_from(EulerRing(tree, root), tree);
}

sim::Topology spanning_tree_topology(const GraphNetwork& graph,
                                     TreeNodeId root) {
  const TreeNetwork tree = graph.spanning_tree(root);
  const EulerRing ring(tree, root);
  const std::vector<TreeNodeId>& tour = ring.tour();
  // Port view against the *graph's* adjacency: the walk crosses physical
  // graph edges, and that is the port a deployed patrol would take.
  std::vector<std::size_t> ports;
  ports.reserve(tour.size());
  for (std::size_t v = 0; v < tour.size(); ++v) {
    const TreeNodeId from = tour[v];
    const TreeNodeId to = tour[(v + 1) % tour.size()];
    ports.push_back(from == to ? 0 : port_of(graph.neighbors(from), to));
  }
  return sim::Topology::virtual_ring(tour.size(), tour, std::move(ports),
                                     "euler-graph");
}

sim::Topology eulerian_circuit_topology(
    std::size_t node_count,
    const std::vector<std::pair<TreeNodeId, TreeNodeId>>& edges) {
  if (node_count == 0) {
    throw std::invalid_argument("eulerian_circuit_topology: no nodes");
  }
  if (edges.empty()) {
    if (node_count != 1) {
      throw std::invalid_argument("eulerian_circuit_topology: disconnected");
    }
    return sim::Topology::virtual_ring(1, {0}, {0}, "eulerian-circuit");
  }

  struct Incidence {
    TreeNodeId to;
    std::size_t edge;
  };
  std::vector<std::vector<Incidence>> incident(node_count);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    if (a >= node_count || b >= node_count) {
      throw std::invalid_argument("eulerian_circuit_topology: edge out of range");
    }
    incident[a].push_back({b, e});
    if (a != b) {
      incident[b].push_back({a, e});
    } else {
      // A self-loop contributes 2 to the degree and is walked once.
      incident[a].push_back({a, e});
    }
  }
  for (TreeNodeId v = 0; v < node_count; ++v) {
    if (incident[v].size() % 2 != 0) {
      throw std::invalid_argument(
          "eulerian_circuit_topology: node " + std::to_string(v) +
          " has odd degree (no Eulerian circuit)");
    }
    if (incident[v].empty()) {
      throw std::invalid_argument(
          "eulerian_circuit_topology: node " + std::to_string(v) +
          " is isolated (disconnected)");
    }
  }

  // Hierholzer's algorithm, iterative: walk unused edges from node 0,
  // emitting the circuit on backtrack. Deterministic in the edge-list order.
  std::vector<std::size_t> cursor(node_count, 0);
  std::vector<bool> used(edges.size(), false);
  std::vector<TreeNodeId> stack = {0};
  std::vector<TreeNodeId> circuit;
  circuit.reserve(edges.size() + 1);
  while (!stack.empty()) {
    const TreeNodeId v = stack.back();
    std::size_t& at = cursor[v];
    while (at < incident[v].size() && used[incident[v][at].edge]) ++at;
    if (at == incident[v].size()) {
      circuit.push_back(v);
      stack.pop_back();
    } else {
      const Incidence& step = incident[v][at];
      used[step.edge] = true;
      stack.push_back(step.to);
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  if (circuit.size() != edges.size() + 1) {
    throw std::invalid_argument(
        "eulerian_circuit_topology: disconnected (circuit misses edges)");
  }
  circuit.pop_back();  // closed walk: last node == first node == 0

  // Port view: re-walk the circuit assigning each step the lowest unused
  // incident entry that reaches the next node (the circuit guarantees one
  // exists).
  std::fill(used.begin(), used.end(), false);
  std::vector<std::size_t> ports;
  ports.reserve(circuit.size());
  for (std::size_t v = 0; v < circuit.size(); ++v) {
    const TreeNodeId from = circuit[v];
    const TreeNodeId to = circuit[(v + 1) % circuit.size()];
    std::size_t port = incident[from].size();
    for (std::size_t p = 0; p < incident[from].size(); ++p) {
      if (incident[from][p].to == to && !used[incident[from][p].edge]) {
        used[incident[from][p].edge] = true;
        port = p;
        break;
      }
    }
    if (port == incident[from].size()) {
      throw std::logic_error("eulerian_circuit_topology: port reconstruction");
    }
    ports.push_back(port);
  }

  const std::size_t steps = circuit.size();  // before the move: argument
                                             // evaluation order is unspecified
  return sim::Topology::virtual_ring(steps, std::move(circuit),
                                     std::move(ports), "eulerian-circuit");
}

sim::Topology random_network_topology(RandomNetworkKind kind,
                                      std::size_t node_count, Rng& rng) {
  switch (kind) {
    case RandomNetworkKind::Tree:
      return euler_tour_topology(random_tree(node_count, rng));
    case RandomNetworkKind::Graph:
      return spanning_tree_topology(
          random_connected_graph(node_count, node_count / 2, rng));
  }
  throw std::invalid_argument("random_network_topology: unknown kind");
}

std::vector<std::size_t> draw_virtual_homes(const sim::Topology& topology,
                                            std::size_t k, Rng& rng) {
  const std::size_t n = topology.underlying_node_count();
  if (k > n) {
    throw std::invalid_argument(
        "draw_virtual_homes: more agents than underlying nodes");
  }
  std::vector<TreeNodeId> underlying;
  std::vector<bool> used(n, false);
  underlying.reserve(k);
  while (underlying.size() < k) {
    const auto node = static_cast<TreeNodeId>(rng.below(n));
    if (used[node]) continue;
    used[node] = true;
    underlying.push_back(node);
  }
  return virtual_homes(topology, underlying);
}

std::vector<std::size_t> virtual_homes(const sim::Topology& topology,
                                       const std::vector<TreeNodeId>& homes) {
  std::vector<std::size_t> first(topology.underlying_node_count(),
                                 static_cast<std::size_t>(-1));
  for (std::size_t v = 0; v < topology.size(); ++v) {
    const TreeNodeId node = topology.label(v);
    if (first[node] == static_cast<std::size_t>(-1)) first[node] = v;
  }
  std::vector<std::size_t> mapped;
  mapped.reserve(homes.size());
  for (const TreeNodeId home : homes) {
    if (home >= first.size() || first[home] == static_cast<std::size_t>(-1)) {
      throw std::invalid_argument("virtual_homes: home not on the topology");
    }
    mapped.push_back(first[home]);
  }
  std::vector<std::size_t> check = mapped;
  std::sort(check.begin(), check.end());
  if (std::adjacent_find(check.begin(), check.end()) != check.end()) {
    throw std::invalid_argument("virtual_homes: homes must be distinct");
  }
  return mapped;
}

}  // namespace udring::embed
