// udring/embed/graph.h
//
// General networks — the second half of the §5 future-work extension: "For
// general network, agents can embed a ring by constructing a spanning tree
// and embedding a ring in the spanning tree."
//
// GraphNetwork is a connected undirected graph with per-node port order; a
// DFS spanning tree (deterministic in the port order, so every agent builds
// the same tree from the same root mark) turns any connected network into a
// TreeNetwork, and the Euler-tour machinery does the rest. Combined with
// deploy_on_tree this runs the paper's ring algorithms unchanged on
// arbitrary connected topologies.

#pragma once

#include <cstddef>
#include <vector>

#include "embed/tree.h"
#include "util/rng.h"

namespace udring::embed {

/// Connected undirected simple graph with ordered adjacency.
class GraphNetwork {
 public:
  /// Throws unless the edge list describes a connected simple graph.
  GraphNetwork(std::size_t node_count,
               std::vector<std::pair<TreeNodeId, TreeNodeId>> edges);

  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }
  [[nodiscard]] const std::vector<TreeNodeId>& neighbors(TreeNodeId node) const {
    return adjacency_.at(node);
  }

  /// The DFS spanning tree from `root` (port-order deterministic). Node ids
  /// are preserved, so tree homes and coverage stay directly comparable.
  [[nodiscard]] TreeNetwork spanning_tree(TreeNodeId root = 0) const;

 private:
  std::vector<std::vector<TreeNodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

// ---- generators --------------------------------------------------------------

/// Connected Erdős–Rényi-style graph: a random tree plus `extra_edges`
/// random non-parallel edges.
[[nodiscard]] GraphNetwork random_connected_graph(std::size_t node_count,
                                                  std::size_t extra_edges, Rng& rng);

/// rows × cols grid (4-neighbour).
[[nodiscard]] GraphNetwork grid_graph(std::size_t rows, std::size_t cols);

/// Complete graph K_n.
[[nodiscard]] GraphNetwork complete_graph(std::size_t node_count);

/// Ring of `node_count` nodes (sanity case: the embedding of a ring).
[[nodiscard]] GraphNetwork cycle_graph(std::size_t node_count);

}  // namespace udring::embed
