#include "embed/tree.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace udring::embed {

TreeNetwork::TreeNetwork(std::size_t node_count,
                         std::vector<std::pair<TreeNodeId, TreeNodeId>> edges)
    : adjacency_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("TreeNetwork: need at least one node");
  }
  if (edges.size() != node_count - 1) {
    throw std::invalid_argument("TreeNetwork: a tree has exactly n-1 edges");
  }
  for (const auto& [a, b] : edges) {
    if (a >= node_count || b >= node_count || a == b) {
      throw std::invalid_argument("TreeNetwork: bad edge");
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
  // Connectivity check: n-1 edges + connected ⇒ tree (no explicit cycle check
  // needed).
  if (node_count > 1) {
    std::vector<bool> seen(node_count, false);
    std::deque<TreeNodeId> frontier = {0};
    seen[0] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
      const TreeNodeId node = frontier.front();
      frontier.pop_front();
      for (const TreeNodeId next : adjacency_[node]) {
        if (!seen[next]) {
          seen[next] = true;
          ++reached;
          frontier.push_back(next);
        }
      }
    }
    if (reached != node_count) {
      throw std::invalid_argument("TreeNetwork: edges do not connect all nodes");
    }
  }
}

std::vector<std::size_t> TreeNetwork::distances_from(TreeNodeId from) const {
  std::vector<std::size_t> dist(size(), static_cast<std::size_t>(-1));
  std::deque<TreeNodeId> frontier = {from};
  dist.at(from) = 0;
  while (!frontier.empty()) {
    const TreeNodeId node = frontier.front();
    frontier.pop_front();
    for (const TreeNodeId next : adjacency_[node]) {
      if (dist[next] == static_cast<std::size_t>(-1)) {
        dist[next] = dist[node] + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist;
}

std::size_t TreeNetwork::distance(TreeNodeId from, TreeNodeId to) const {
  return distances_from(from).at(to);
}

TreeNetwork path_tree(std::size_t node_count) {
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId i = 0; i + 1 < node_count; ++i) edges.emplace_back(i, i + 1);
  return TreeNetwork(node_count, std::move(edges));
}

TreeNetwork star_tree(std::size_t node_count) {
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId i = 1; i < node_count; ++i) edges.emplace_back(0, i);
  return TreeNetwork(node_count, std::move(edges));
}

TreeNetwork binary_tree(std::size_t node_count) {
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId i = 1; i < node_count; ++i) edges.emplace_back((i - 1) / 2, i);
  return TreeNetwork(node_count, std::move(edges));
}

TreeNetwork random_tree(std::size_t node_count, Rng& rng) {
  if (node_count <= 2) {
    return path_tree(node_count);
  }
  // Random Prüfer sequence of length n-2 → uniformly random labelled tree.
  std::vector<TreeNodeId> pruefer(node_count - 2);
  for (auto& value : pruefer) {
    value = static_cast<TreeNodeId>(rng.below(node_count));
  }
  std::vector<std::size_t> degree(node_count, 1);
  for (const TreeNodeId node : pruefer) ++degree[node];

  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  edges.reserve(node_count - 1);
  // Standard decoding with a pointer + leaf candidate.
  std::size_t ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  std::size_t leaf = ptr;
  for (const TreeNodeId node : pruefer) {
    edges.emplace_back(leaf, node);
    if (--degree[node] == 1 && node < ptr) {
      leaf = node;
    } else {
      ++ptr;
      while (ptr < node_count && degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, node_count - 1);
  return TreeNetwork(node_count, std::move(edges));
}

TreeNetwork caterpillar_tree(std::size_t spine, std::size_t legs_per_node) {
  if (spine == 0) throw std::invalid_argument("caterpillar_tree: empty spine");
  std::vector<std::pair<TreeNodeId, TreeNodeId>> edges;
  for (TreeNodeId i = 0; i + 1 < spine; ++i) edges.emplace_back(i, i + 1);
  TreeNodeId next = spine;
  for (TreeNodeId i = 0; i < spine; ++i) {
    for (std::size_t leg = 0; leg < legs_per_node; ++leg) {
      edges.emplace_back(i, next++);
    }
  }
  return TreeNetwork(next, std::move(edges));
}

}  // namespace udring::embed
