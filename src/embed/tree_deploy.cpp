#include "embed/tree_deploy.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "embed/topology.h"

namespace udring::embed {

std::pair<std::size_t, double> tree_coverage(const TreeNetwork& tree,
                                             const std::vector<TreeNodeId>& agents) {
  if (agents.empty()) {
    throw std::invalid_argument("tree_coverage: no agents");
  }
  // Multi-source BFS from all agent nodes.
  std::vector<std::size_t> best(tree.size(), static_cast<std::size_t>(-1));
  std::vector<TreeNodeId> frontier;
  for (const TreeNodeId agent : agents) {
    if (best.at(agent) == static_cast<std::size_t>(-1)) {
      best[agent] = 0;
      frontier.push_back(agent);
    }
  }
  std::size_t depth = 0;
  std::size_t worst = 0;
  double total = 0;
  while (!frontier.empty()) {
    std::vector<TreeNodeId> next_frontier;
    for (const TreeNodeId node : frontier) {
      worst = std::max(worst, best[node]);
      total += static_cast<double>(best[node]);
      for (const TreeNodeId next : tree.neighbors(node)) {
        if (best[next] == static_cast<std::size_t>(-1)) {
          best[next] = depth + 1;
          next_frontier.push_back(next);
        }
      }
    }
    frontier = std::move(next_frontier);
    ++depth;
  }
  return {worst, total / static_cast<double>(tree.size())};
}

TreeDeployReport deploy_on_tree(const TreeNetwork& tree,
                                const std::vector<TreeNodeId>& tree_homes,
                                core::Algorithm algorithm,
                                core::RunSpec base_spec, TreeNodeId root) {
  const std::set<TreeNodeId> distinct(tree_homes.begin(), tree_homes.end());
  if (distinct.size() != tree_homes.size()) {
    throw std::invalid_argument("deploy_on_tree: tree homes must be distinct");
  }

  // Native topology path: the Euler tour *is* the instance's topology, so
  // the core executes the tree workload directly and maps results back via
  // the labels view — no detached copy ring, no caller-side re-mapping.
  core::RunSpec spec = std::move(base_spec);
  spec.topology = euler_tour_topology(tree, root);
  spec.node_count = spec.topology.size();
  spec.homes = virtual_homes(spec.topology, tree_homes);

  const core::RunReport ring_report = core::run_algorithm(algorithm, spec);

  TreeDeployReport report;
  report.success = ring_report.success;
  report.failure = ring_report.failure;
  report.virtual_ring_size = spec.topology.size();
  report.virtual_positions = ring_report.final_positions;
  report.total_moves = ring_report.total_moves;
  report.makespan = ring_report.makespan;
  report.max_memory_bits = ring_report.max_memory_bits;
  report.tree_positions = ring_report.final_labels;
  if (!report.tree_positions.empty()) {
    // Note: two agents may map to the same *tree* node (a node appears
    // deg(node) times on the tour); they still occupy distinct tour steps.
    const auto [worst, mean] = tree_coverage(tree, report.tree_positions);
    report.worst_tree_distance = worst;
    report.mean_tree_distance = mean;
  }
  return report;
}

}  // namespace udring::embed
