#include "embed/euler_ring.h"

#include <stdexcept>

namespace udring::embed {

EulerRing::EulerRing(const TreeNetwork& tree, TreeNodeId root)
    : first_position_(tree.size(), static_cast<std::size_t>(-1)) {
  if (root >= tree.size()) {
    throw std::invalid_argument("EulerRing: root out of range");
  }
  if (tree.size() == 1) {
    tour_ = {root};
    first_position_[root] = 0;
    return;
  }

  tour_.reserve(2 * (tree.size() - 1));
  // Iterative DFS; next_port_[v] is the next neighbour index to descend to.
  std::vector<std::size_t> next_port(tree.size(), 0);
  std::vector<TreeNodeId> parent(tree.size(), static_cast<TreeNodeId>(-1));
  TreeNodeId current = root;
  parent[root] = root;

  // Each step appends the node we are leaving; the closed walk visits every
  // edge twice, so the tour has exactly 2(n-1) steps.
  do {
    const auto& neighbors = tree.neighbors(current);
    bool descended = false;
    while (next_port[current] < neighbors.size()) {
      const TreeNodeId next = neighbors[next_port[current]++];
      if (next == parent[current] && next != current) continue;
      // Unvisited child (a tree has no cross edges).
      if (first_position_[next] != static_cast<std::size_t>(-1)) continue;
      parent[next] = current;
      if (first_position_[current] == static_cast<std::size_t>(-1)) {
        first_position_[current] = tour_.size();
      }
      tour_.push_back(current);
      current = next;
      descended = true;
      break;
    }
    if (!descended) {
      // Done with this subtree: go back up.
      if (first_position_[current] == static_cast<std::size_t>(-1)) {
        first_position_[current] = tour_.size();
      }
      tour_.push_back(current);
      current = parent[current];
    }
  } while (!(current == root && next_port[root] >= tree.neighbors(root).size()));

  if (tour_.size() != 2 * (tree.size() - 1)) {
    throw std::logic_error("EulerRing: tour length mismatch (not a tree?)");
  }
}

std::vector<std::size_t> EulerRing::positions_of(TreeNodeId node) const {
  std::vector<std::size_t> positions;
  for (std::size_t v = 0; v < tour_.size(); ++v) {
    if (tour_[v] == node) positions.push_back(v);
  }
  return positions;
}

}  // namespace udring::embed
