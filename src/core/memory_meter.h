// udring/core/memory_meter.h
//
// Bit accounting that makes the paper's space bounds measurable.
//
// Convention (matching how the paper counts): a scalar variable whose value
// is bounded by m occupies bit_width(m) bits; an array of length L with
// elements bounded by m occupies L · bit_width(m) bits; booleans occupy one
// bit. Algorithms report the *current* total through
// AgentProgram::memory_bits(); the simulator records the peak.

#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bits.h"

namespace udring::core {

class MemoryMeter {
 public:
  /// Adds one scalar holding `value`.
  MemoryMeter& counter(std::uint64_t value) {
    bits_ += udring::bit_width(value);
    return *this;
  }

  /// Adds one boolean flag.
  MemoryMeter& flag() {
    bits_ += 1;
    return *this;
  }

  /// Adds an array of `length` elements, each bounded by `max_element`.
  MemoryMeter& array(std::size_t length, std::uint64_t max_element) {
    bits_ += length * udring::bit_width(max_element);
    return *this;
  }

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }

 private:
  std::size_t bits_ = 0;
};

}  // namespace udring::core
