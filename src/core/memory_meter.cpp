// udring/core/memory_meter.cpp — header-only; this TU pins the target.

#include "core/memory_meter.h"

namespace udring::core {

static_assert(sizeof(MemoryMeter) > 0);

}  // namespace udring::core
