#include "core/runner.h"

#include <stdexcept>
#include <utility>

#include "core/disperse_ring.h"
#include "core/gather_ring.h"
#include "core/known_k_full.h"
#include "core/known_k_logmem.h"
#include "core/rendezvous.h"
#include "core/unknown_relaxed.h"
#include "sim/batch_arena.h"
#include "util/parallel.h"

namespace udring::core {

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::KnownKFull: return "known-k-full";
    case Algorithm::KnownNFull: return "known-n-full";
    case Algorithm::KnownKLogMem: return "known-k-logmem";
    case Algorithm::KnownKLogMemStrict: return "known-k-logmem-strict";
    case Algorithm::UnknownRelaxed: return "unknown-relaxed";
    case Algorithm::Rendezvous: return "rendezvous";
    case Algorithm::GatherRing: return "gather-ring";
    case Algorithm::DisperseRing: return "disperse-ring";
  }
  return "?";
}

sim::ProgramFactory make_program_factory(Algorithm algorithm, std::size_t k,
                                         std::size_t n,
                                         const ProblemSpec& problem) {
  switch (algorithm) {
    case Algorithm::KnownKFull:
      return [k](sim::AgentId) { return std::make_unique<KnownKFullAgent>(k); };
    case Algorithm::KnownNFull:
      return [n](sim::AgentId) { return std::make_unique<KnownNFullAgent>(n); };
    case Algorithm::KnownKLogMem:
      return [k](sim::AgentId) { return std::make_unique<KnownKLogMemAgent>(k); };
    case Algorithm::KnownKLogMemStrict:
      return [k](sim::AgentId) {
        return std::make_unique<KnownKLogMemAgent>(
            k, KnownKLogMemAgent::Options{.strict_paper = true});
      };
    case Algorithm::UnknownRelaxed:
      return [](sim::AgentId) { return std::make_unique<UnknownRelaxedAgent>(); };
    case Algorithm::Rendezvous:
      return [k](sim::AgentId) { return std::make_unique<RendezvousAgent>(k); };
    case Algorithm::GatherRing: {
      // g = 0 means total gathering; the agent realizes it as g = k, which
      // degenerates to exactly the rendezvous protocol.
      const std::size_t resolved_g = resolve_problem(algorithm, problem).gather_g;
      const std::size_t g = resolved_g == 0 ? k : resolved_g;
      return [k, g](sim::AgentId) {
        return std::make_unique<PartialGatherAgent>(k, g);
      };
    }
    case Algorithm::DisperseRing:
      return [k](sim::AgentId) { return std::make_unique<DisperseAgent>(k); };
  }
  throw std::invalid_argument("make_program_factory: unknown algorithm");
}

sim::Instance make_instance(Algorithm algorithm, const RunSpec& spec) {
  // A non-empty topology supersedes node_count; KnownNFull's knowledge of n
  // is the *virtual* ring size either way (that is the ring the agents walk).
  //
  // Walk order is required here: the goal oracles (check_positions_uniform's
  // gap arithmetic) and the schedule-trace replay contract both assume
  // virtual position order == walk order. Topology::closed_walk's explicit
  // successor permutations execute fine at the sim layer (build an
  // sim::Instance directly), but running one through the algorithm drivers
  // would silently mis-judge uniformity — reject it loudly instead.
  if (!spec.topology.empty() && !spec.topology.is_ring_order()) {
    throw std::invalid_argument(
        "make_instance: algorithm drivers require a ring-order topology "
        "(implicit successor); explicit closed walks run via sim::Instance");
  }
  sim::Topology topology =
      spec.topology.empty() ? sim::Topology::ring(spec.node_count)
                            : spec.topology;
  const std::size_t n = topology.size();
  return sim::Instance(
      std::move(topology), spec.homes,
      make_program_factory(algorithm, spec.homes.size(), n, spec.problem),
      spec.sim_options);
}

std::unique_ptr<sim::Simulator> make_simulator(Algorithm algorithm,
                                               const RunSpec& spec) {
  return std::make_unique<sim::Simulator>(
      std::make_shared<const sim::Instance>(make_instance(algorithm, spec)));
}

sim::CheckResult evaluate_goal(Algorithm algorithm, const ProblemSpec& problem,
                               const sim::Simulator& sim) {
  return make_goal_oracle(algorithm, problem)->check_goal(sim);
}

sim::CheckResult evaluate_goal(Algorithm algorithm, const sim::Simulator& sim) {
  return evaluate_goal(algorithm, ProblemSpec{}, sim);
}

namespace {

/// Shared epilogue of the one-shot and pooled paths: oracle + measures.
RunReport finish_report(const sim::GoalOracle& oracle,
                        const ProblemSpec& resolved,
                        const sim::ExecutionState& state,
                        const sim::Scheduler& scheduler,
                        const sim::RunResult& result) {
  RunReport report;
  report.result = result;
  report.problem = resolved;
  if (result.quiescent()) {
    const sim::CheckResult goal = oracle.check_goal(state);
    report.success = goal.ok;
    report.failure = goal.reason;
  } else {
    report.success = false;
    report.failure = "action limit reached (livelock or broken algorithm)";
  }
  report.total_moves = state.metrics().total_moves();
  report.makespan = state.metrics().makespan();
  report.scheduler_rounds = scheduler.rounds();
  report.max_memory_bits = state.metrics().max_memory_bits();
  report.moves_by_phase = state.metrics().moves_by_phase();
  report.final_positions = state.staying_nodes();
  if (state.topology().has_labels()) {
    report.final_labels.reserve(report.final_positions.size());
    for (const std::size_t v : report.final_positions) {
      report.final_labels.push_back(state.topology().label(v));
    }
  }
  return report;
}

}  // namespace

RunReport run_algorithm(Algorithm algorithm, const RunSpec& spec) {
  const sim::Instance instance = make_instance(algorithm, spec);
  sim::ExecutionState state;
  state.reset(instance);
  auto scheduler =
      sim::make_scheduler(spec.scheduler, spec.seed, spec.homes.size());
  const sim::RunResult result = state.run(*scheduler);
  const auto oracle = make_goal_oracle(algorithm, spec.problem);
  return finish_report(*oracle, resolve_problem(algorithm, spec.problem),
                       state, *scheduler, result);
}

sim::Scheduler& RunContext::scheduler(sim::SchedulerKind kind,
                                      std::uint64_t seed,
                                      std::size_t agent_count) {
  auto& slot = schedulers_[static_cast<std::size_t>(kind)];
  if (!slot) {
    slot = sim::make_scheduler(kind, seed, agent_count);
  } else {
    // Cached object: swap in this run's seed; ExecutionState::run will
    // reset() it, which re-derives all mutable state from the seed (the
    // pooled reuse contract in sim/scheduler.h).
    slot->reseed(seed);
  }
  return *slot;
}

const sim::GoalOracle& OracleCache::get(Algorithm algorithm,
                                        const ProblemSpec& problem) {
  if (!oracle_ || algorithm_ != algorithm || problem_ != problem) {
    oracle_ = make_goal_oracle(algorithm, problem);
    algorithm_ = algorithm;
    problem_ = problem;
  }
  return *oracle_;
}

const sim::GoalOracle& RunContext::oracle(Algorithm algorithm,
                                          const ProblemSpec& problem) {
  return oracles_.get(algorithm, problem);
}

LanePool::LanePool(std::size_t lanes) : lanes_(lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("LanePool: lane count must be positive");
  }
}

const sim::Instance& LanePool::emplace_instance(std::size_t lane,
                                                Algorithm algorithm,
                                                const RunSpec& spec) {
  return lanes_[lane].instance.emplace(make_instance(algorithm, spec));
}

sim::Scheduler& LanePool::scheduler(std::size_t lane, sim::SchedulerKind kind,
                                    std::uint64_t seed,
                                    std::size_t agent_count) {
  auto& slot = lanes_[lane].schedulers[static_cast<std::size_t>(kind)];
  if (!slot) {
    slot = sim::make_scheduler(kind, seed, agent_count);
  } else {
    slot->reseed(seed);
  }
  return *slot;
}

RunReport RunContext::run(Algorithm algorithm, const RunSpec& spec) {
  // The Instance lives in the context so state_ remains inspectable after
  // this returns (and the arena pointer never dangles between runs).
  instance_.emplace(make_instance(algorithm, spec));
  state_.reset(*instance_);
  sim::Scheduler& sched =
      scheduler(spec.scheduler, spec.seed, spec.homes.size());
  const sim::RunResult result = state_.run(sched);
  return finish_report(oracle(algorithm, spec.problem),
                       resolve_problem(algorithm, spec.problem), state_, sched,
                       result);
}

std::vector<RunReport> run_many(Algorithm algorithm,
                                const std::vector<RunSpec>& specs,
                                std::size_t workers, std::size_t lanes) {
  std::vector<RunReport> reports(specs.size());
  const std::size_t resolved = resolve_workers(specs.size(), workers);
  if (lanes > 1) {
    // Lane-batched engine: each worker interleaves `lanes` in-flight specs
    // through a BatchArena, with the same finish_report epilogue and the
    // same "exception: " accounting as the scalar path below (a spec that
    // throws at build or finish time fills its own report slot and frees
    // the lane for the next claim).
    parallel_pump_workers(
        specs.size(), resolved,
        [&](std::size_t /*worker*/,
            const std::function<std::size_t()>& claim) {
          LanePool pool(lanes);
          sim::BatchArena arena(lanes);
          std::vector<const sim::Scheduler*> lane_scheduler(lanes, nullptr);
          const auto record_exception = [&](std::size_t i,
                                            const std::exception& error) {
            reports[i] = RunReport{};
            reports[i].success = false;
            reports[i].failure = std::string("exception: ") + error.what();
          };
          arena.run(
              [&](std::size_t lane) {
                for (std::size_t i = claim(); i < specs.size(); i = claim()) {
                  try {
                    const RunSpec& spec = specs[i];
                    const sim::Instance& instance =
                        pool.emplace_instance(lane, algorithm, spec);
                    sim::Scheduler& scheduler = pool.scheduler(
                        lane, spec.scheduler, spec.seed, spec.homes.size());
                    arena.load(lane, instance, scheduler, spec.scheduler, i);
                    lane_scheduler[lane] = &scheduler;
                    return true;
                  } catch (const std::exception& error) {
                    record_exception(i, error);
                  }
                }
                return false;
              },
              [&](std::size_t lane, std::uint64_t ticket,
                  const sim::RunResult& result) {
                const std::size_t i = static_cast<std::size_t>(ticket);
                try {
                  reports[i] = finish_report(
                      pool.oracle(algorithm, specs[i].problem),
                      resolve_problem(algorithm, specs[i].problem),
                      arena.state(lane), *lane_scheduler[lane], result);
                } catch (const std::exception& error) {
                  record_exception(i, error);
                }
              },
              [&](std::size_t /*lane*/, std::uint64_t ticket,
                  std::exception_ptr error) {
                try {
                  std::rethrow_exception(error);
                } catch (const std::exception& caught) {
                  record_exception(static_cast<std::size_t>(ticket), caught);
                }
              });
        });
    return reports;
  }
  // One arena per worker, built before the pool starts; deque-free because
  // RunContext is neither copyable nor movable.
  std::vector<std::unique_ptr<RunContext>> contexts;
  contexts.reserve(resolved);
  for (std::size_t w = 0; w < resolved; ++w) {
    contexts.push_back(std::make_unique<RunContext>());
  }
  parallel_for_workers(specs.size(), resolved,
                       [&](std::size_t worker, std::size_t i) {
                         try {
                           reports[i] = contexts[worker]->run(algorithm, specs[i]);
                         } catch (const std::exception& error) {
                           reports[i] = RunReport{};
                           reports[i].success = false;
                           reports[i].failure =
                               std::string("exception: ") + error.what();
                         }
                       });
  return reports;
}

}  // namespace udring::core
