#include "core/runner.h"

#include <stdexcept>

#include "core/known_k_full.h"
#include "core/known_k_logmem.h"
#include "core/rendezvous.h"
#include "core/unknown_relaxed.h"

namespace udring::core {

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::KnownKFull: return "known-k-full";
    case Algorithm::KnownNFull: return "known-n-full";
    case Algorithm::KnownKLogMem: return "known-k-logmem";
    case Algorithm::KnownKLogMemStrict: return "known-k-logmem-strict";
    case Algorithm::UnknownRelaxed: return "unknown-relaxed";
    case Algorithm::Rendezvous: return "rendezvous";
  }
  return "?";
}

sim::ProgramFactory make_program_factory(Algorithm algorithm, std::size_t k,
                                         std::size_t n) {
  switch (algorithm) {
    case Algorithm::KnownKFull:
      return [k](sim::AgentId) { return std::make_unique<KnownKFullAgent>(k); };
    case Algorithm::KnownNFull:
      return [n](sim::AgentId) { return std::make_unique<KnownNFullAgent>(n); };
    case Algorithm::KnownKLogMem:
      return [k](sim::AgentId) { return std::make_unique<KnownKLogMemAgent>(k); };
    case Algorithm::KnownKLogMemStrict:
      return [k](sim::AgentId) {
        return std::make_unique<KnownKLogMemAgent>(
            k, KnownKLogMemAgent::Options{.strict_paper = true});
      };
    case Algorithm::UnknownRelaxed:
      return [](sim::AgentId) { return std::make_unique<UnknownRelaxedAgent>(); };
    case Algorithm::Rendezvous:
      return [k](sim::AgentId) { return std::make_unique<RendezvousAgent>(k); };
  }
  throw std::invalid_argument("make_program_factory: unknown algorithm");
}

std::unique_ptr<sim::Simulator> make_simulator(Algorithm algorithm,
                                               const RunSpec& spec) {
  return std::make_unique<sim::Simulator>(
      spec.node_count, spec.homes,
      make_program_factory(algorithm, spec.homes.size(), spec.node_count),
      spec.sim_options);
}

sim::CheckResult evaluate_goal(Algorithm algorithm, const sim::Simulator& sim) {
  switch (algorithm) {
    case Algorithm::KnownKFull:
    case Algorithm::KnownNFull:
    case Algorithm::KnownKLogMem:
    case Algorithm::KnownKLogMemStrict:
      return sim::check_uniform_deployment_with_termination(sim);
    case Algorithm::UnknownRelaxed:
      return sim::check_uniform_deployment_without_termination(sim);
    case Algorithm::Rendezvous: {
      // Gathered, or the instance proven unsolvable by every agent.
      bool all_unsolvable = true;
      bool any_unsolvable = false;
      for (sim::AgentId id = 0; id < sim.agent_count(); ++id) {
        const auto& agent =
            dynamic_cast<const RendezvousAgent&>(sim.program(id));
        all_unsolvable = all_unsolvable && agent.detected_unsolvable();
        any_unsolvable = any_unsolvable || agent.detected_unsolvable();
      }
      if (all_unsolvable) return sim::CheckResult::pass();
      if (any_unsolvable) {
        return sim::CheckResult::fail(
            "agents disagree on solvability of the rendezvous instance");
      }
      return sim::check_gathered(sim);
    }
  }
  throw std::invalid_argument("evaluate_goal: unknown algorithm");
}

RunReport run_algorithm(Algorithm algorithm, const RunSpec& spec) {
  auto simulator = make_simulator(algorithm, spec);
  auto scheduler =
      sim::make_scheduler(spec.scheduler, spec.seed, spec.homes.size());

  RunReport report;
  report.result = simulator->run(*scheduler);
  if (report.result.quiescent()) {
    const sim::CheckResult goal = evaluate_goal(algorithm, *simulator);
    report.success = goal.ok;
    report.failure = goal.reason;
  } else {
    report.success = false;
    report.failure = "action limit reached (livelock or broken algorithm)";
  }
  report.total_moves = simulator->metrics().total_moves();
  report.makespan = simulator->metrics().makespan();
  report.scheduler_rounds = scheduler->rounds();
  report.max_memory_bits = simulator->metrics().max_memory_bits();
  report.moves_by_phase = simulator->metrics().moves_by_phase();
  report.final_positions = simulator->staying_nodes();
  return report;
}

}  // namespace udring::core
