#include "core/runner.h"

#include <stdexcept>
#include <utility>

#include "core/known_k_full.h"
#include "core/known_k_logmem.h"
#include "core/rendezvous.h"
#include "core/unknown_relaxed.h"
#include "util/parallel.h"

namespace udring::core {

std::string_view to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::KnownKFull: return "known-k-full";
    case Algorithm::KnownNFull: return "known-n-full";
    case Algorithm::KnownKLogMem: return "known-k-logmem";
    case Algorithm::KnownKLogMemStrict: return "known-k-logmem-strict";
    case Algorithm::UnknownRelaxed: return "unknown-relaxed";
    case Algorithm::Rendezvous: return "rendezvous";
  }
  return "?";
}

sim::ProgramFactory make_program_factory(Algorithm algorithm, std::size_t k,
                                         std::size_t n) {
  switch (algorithm) {
    case Algorithm::KnownKFull:
      return [k](sim::AgentId) { return std::make_unique<KnownKFullAgent>(k); };
    case Algorithm::KnownNFull:
      return [n](sim::AgentId) { return std::make_unique<KnownNFullAgent>(n); };
    case Algorithm::KnownKLogMem:
      return [k](sim::AgentId) { return std::make_unique<KnownKLogMemAgent>(k); };
    case Algorithm::KnownKLogMemStrict:
      return [k](sim::AgentId) {
        return std::make_unique<KnownKLogMemAgent>(
            k, KnownKLogMemAgent::Options{.strict_paper = true});
      };
    case Algorithm::UnknownRelaxed:
      return [](sim::AgentId) { return std::make_unique<UnknownRelaxedAgent>(); };
    case Algorithm::Rendezvous:
      return [k](sim::AgentId) { return std::make_unique<RendezvousAgent>(k); };
  }
  throw std::invalid_argument("make_program_factory: unknown algorithm");
}

sim::Instance make_instance(Algorithm algorithm, const RunSpec& spec) {
  // A non-empty topology supersedes node_count; KnownNFull's knowledge of n
  // is the *virtual* ring size either way (that is the ring the agents walk).
  //
  // Walk order is required here: the goal oracles (check_positions_uniform's
  // gap arithmetic) and the schedule-trace replay contract both assume
  // virtual position order == walk order. Topology::closed_walk's explicit
  // successor permutations execute fine at the sim layer (build an
  // sim::Instance directly), but running one through the algorithm drivers
  // would silently mis-judge uniformity — reject it loudly instead.
  if (!spec.topology.empty() && !spec.topology.is_ring_order()) {
    throw std::invalid_argument(
        "make_instance: algorithm drivers require a ring-order topology "
        "(implicit successor); explicit closed walks run via sim::Instance");
  }
  sim::Topology topology =
      spec.topology.empty() ? sim::Topology::ring(spec.node_count)
                            : spec.topology;
  const std::size_t n = topology.size();
  return sim::Instance(std::move(topology), spec.homes,
                       make_program_factory(algorithm, spec.homes.size(), n),
                       spec.sim_options);
}

std::unique_ptr<sim::Simulator> make_simulator(Algorithm algorithm,
                                               const RunSpec& spec) {
  return std::make_unique<sim::Simulator>(
      std::make_shared<const sim::Instance>(make_instance(algorithm, spec)));
}

sim::CheckResult evaluate_goal(Algorithm algorithm, const sim::Simulator& sim) {
  switch (algorithm) {
    case Algorithm::KnownKFull:
    case Algorithm::KnownNFull:
    case Algorithm::KnownKLogMem:
    case Algorithm::KnownKLogMemStrict:
      return sim::check_uniform_deployment_with_termination(sim);
    case Algorithm::UnknownRelaxed:
      return sim::check_uniform_deployment_without_termination(sim);
    case Algorithm::Rendezvous: {
      // Gathered, or the instance proven unsolvable by every agent.
      bool all_unsolvable = true;
      bool any_unsolvable = false;
      for (sim::AgentId id = 0; id < sim.agent_count(); ++id) {
        const auto& agent =
            dynamic_cast<const RendezvousAgent&>(sim.program(id));
        all_unsolvable = all_unsolvable && agent.detected_unsolvable();
        any_unsolvable = any_unsolvable || agent.detected_unsolvable();
      }
      if (all_unsolvable) return sim::CheckResult::pass();
      if (any_unsolvable) {
        return sim::CheckResult::fail(
            "agents disagree on solvability of the rendezvous instance");
      }
      return sim::check_gathered(sim);
    }
  }
  throw std::invalid_argument("evaluate_goal: unknown algorithm");
}

namespace {

/// Shared epilogue of the one-shot and pooled paths: oracle + measures.
RunReport finish_report(Algorithm algorithm, const sim::ExecutionState& state,
                        const sim::Scheduler& scheduler,
                        const sim::RunResult& result) {
  RunReport report;
  report.result = result;
  if (result.quiescent()) {
    const sim::CheckResult goal = evaluate_goal(algorithm, state);
    report.success = goal.ok;
    report.failure = goal.reason;
  } else {
    report.success = false;
    report.failure = "action limit reached (livelock or broken algorithm)";
  }
  report.total_moves = state.metrics().total_moves();
  report.makespan = state.metrics().makespan();
  report.scheduler_rounds = scheduler.rounds();
  report.max_memory_bits = state.metrics().max_memory_bits();
  report.moves_by_phase = state.metrics().moves_by_phase();
  report.final_positions = state.staying_nodes();
  if (state.topology().has_labels()) {
    report.final_labels.reserve(report.final_positions.size());
    for (const std::size_t v : report.final_positions) {
      report.final_labels.push_back(state.topology().label(v));
    }
  }
  return report;
}

}  // namespace

RunReport run_algorithm(Algorithm algorithm, const RunSpec& spec) {
  const sim::Instance instance = make_instance(algorithm, spec);
  sim::ExecutionState state;
  state.reset(instance);
  auto scheduler =
      sim::make_scheduler(spec.scheduler, spec.seed, spec.homes.size());
  const sim::RunResult result = state.run(*scheduler);
  return finish_report(algorithm, state, *scheduler, result);
}

sim::Scheduler& RunContext::scheduler(sim::SchedulerKind kind,
                                      std::uint64_t seed,
                                      std::size_t agent_count) {
  auto& slot = schedulers_[static_cast<std::size_t>(kind)];
  if (!slot) {
    slot = sim::make_scheduler(kind, seed, agent_count);
  } else {
    // Cached object: swap in this run's seed; ExecutionState::run will
    // reset() it, which re-derives all mutable state from the seed (the
    // pooled reuse contract in sim/scheduler.h).
    slot->reseed(seed);
  }
  return *slot;
}

RunReport RunContext::run(Algorithm algorithm, const RunSpec& spec) {
  // The Instance lives in the context so state_ remains inspectable after
  // this returns (and the arena pointer never dangles between runs).
  instance_.emplace(make_instance(algorithm, spec));
  state_.reset(*instance_);
  sim::Scheduler& sched =
      scheduler(spec.scheduler, spec.seed, spec.homes.size());
  const sim::RunResult result = state_.run(sched);
  return finish_report(algorithm, state_, sched, result);
}

std::vector<RunReport> run_many(Algorithm algorithm,
                                const std::vector<RunSpec>& specs,
                                std::size_t workers) {
  std::vector<RunReport> reports(specs.size());
  const std::size_t resolved = resolve_workers(specs.size(), workers);
  // One arena per worker, built before the pool starts; deque-free because
  // RunContext is neither copyable nor movable.
  std::vector<std::unique_ptr<RunContext>> contexts;
  contexts.reserve(resolved);
  for (std::size_t w = 0; w < resolved; ++w) {
    contexts.push_back(std::make_unique<RunContext>());
  }
  parallel_for_workers(specs.size(), resolved,
                       [&](std::size_t worker, std::size_t i) {
                         try {
                           reports[i] = contexts[worker]->run(algorithm, specs[i]);
                         } catch (const std::exception& error) {
                           reports[i] = RunReport{};
                           reports[i].success = false;
                           reports[i].failure =
                               std::string("exception: ") + error.what();
                         }
                       });
  return reports;
}

}  // namespace udring::core
