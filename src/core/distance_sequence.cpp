#include "core/distance_sequence.h"

#include <algorithm>
#include <stdexcept>

namespace udring::core {

DistanceSeq shift(const DistanceSeq& d, std::size_t x) {
  if (d.empty()) return {};
  x %= d.size();
  DistanceSeq out;
  out.reserve(d.size());
  out.insert(out.end(), d.begin() + static_cast<std::ptrdiff_t>(x), d.end());
  out.insert(out.end(), d.begin(), d.begin() + static_cast<std::ptrdiff_t>(x));
  return out;
}

std::size_t sum(const DistanceSeq& d) {
  std::size_t total = 0;
  for (const Distance v : d) total += v;
  return total;
}

int compare_rotations(const DistanceSeq& d, std::size_t x, std::size_t y) {
  const std::size_t k = d.size();
  if (k == 0) return 0;
  x %= k;
  y %= k;
  for (std::size_t i = 0; i < k; ++i) {
    const Distance a = d[(x + i) % k];
    const Distance b = d[(y + i) % k];
    if (a < b) return -1;
    if (a > b) return 1;
  }
  return 0;
}

std::size_t min_rotation_naive(const DistanceSeq& d) {
  std::size_t best = 0;
  for (std::size_t x = 1; x < d.size(); ++x) {
    if (compare_rotations(d, x, best) < 0) best = x;
  }
  return best;
}

std::size_t min_rotation_booth(const DistanceSeq& d) {
  // Booth's least-rotation algorithm on the doubled sequence, O(k) time and
  // O(k) extra space. Returns the smallest index among minimal rotations.
  const std::size_t k = d.size();
  if (k <= 1) return 0;

  const auto at = [&](std::size_t i) -> Distance { return d[i % k]; };
  // failure function over the doubled string, f[i] in [-1, i)
  std::vector<std::ptrdiff_t> f(2 * k, -1);
  std::size_t least = 0;
  for (std::size_t j = 1; j < 2 * k; ++j) {
    const Distance sigma = at(j);
    std::ptrdiff_t i = f[j - least - 1];
    while (i != -1 && sigma != at(least + static_cast<std::size_t>(i) + 1)) {
      if (sigma < at(least + static_cast<std::size_t>(i) + 1)) {
        least = j - static_cast<std::size_t>(i) - 1;
      }
      i = f[static_cast<std::size_t>(i)];
    }
    if (i == -1 && sigma != at(least)) {
      if (sigma < at(least)) {
        least = j;
      }
      f[j - least] = -1;
    } else {
      f[j - least] = i + 1;
    }
  }
  return least % k;
}

std::size_t period(const DistanceSeq& d) {
  const std::size_t k = d.size();
  if (k == 0) return 0;
  for (std::size_t p = 1; p <= k / 2; ++p) {
    if (k % p != 0) continue;
    bool repeats = true;
    for (std::size_t i = p; i < k && repeats; ++i) {
      repeats = (d[i] == d[i - p]);
    }
    if (repeats) return p;
  }
  return k;
}

bool is_periodic(const DistanceSeq& d) { return !d.empty() && period(d) < d.size(); }

std::size_t symmetry_degree(const DistanceSeq& d) {
  if (d.empty()) return 0;
  return d.size() / period(d);
}

DistanceSeq aperiodic_factor(const DistanceSeq& d) {
  const std::size_t p = period(d);
  return DistanceSeq(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(p));
}

bool is_m_fold_repetition(const DistanceSeq& d, std::size_t m) {
  if (m == 0 || d.empty() || d.size() % m != 0) return false;
  const std::size_t p = d.size() / m;
  for (std::size_t i = p; i < d.size(); ++i) {
    if (d[i] != d[i - p]) return false;
  }
  return true;
}

bool cube_is_prefix_of_cube(const DistanceSeq& b, const DistanceSeq& a) {
  if (a.empty()) return b.empty();
  const std::size_t prefix_len = 3 * b.size();
  if (prefix_len > 3 * a.size()) return false;
  for (std::size_t i = 0; i < prefix_len; ++i) {
    if (b[i % b.size()] != a[i % a.size()]) return false;
  }
  return true;
}

DistanceSeq distances_from_positions(std::vector<std::size_t> positions,
                                     std::size_t node_count) {
  if (positions.empty()) {
    throw std::invalid_argument("distances_from_positions: no positions");
  }
  std::sort(positions.begin(), positions.end());
  if (std::adjacent_find(positions.begin(), positions.end()) != positions.end()) {
    throw std::invalid_argument("distances_from_positions: duplicate positions");
  }
  if (positions.back() >= node_count) {
    throw std::invalid_argument("distances_from_positions: position out of range");
  }
  DistanceSeq d;
  d.reserve(positions.size());
  for (std::size_t i = 0; i + 1 < positions.size(); ++i) {
    d.push_back(positions[i + 1] - positions[i]);
  }
  d.push_back(node_count - positions.back() + positions.front());
  return d;
}

DistanceSeq config_distance_sequence(std::vector<std::size_t> positions,
                                     std::size_t node_count) {
  const DistanceSeq d = distances_from_positions(std::move(positions), node_count);
  return shift(d, min_rotation(d));
}

std::size_t config_symmetry_degree(std::vector<std::size_t> positions,
                                   std::size_t node_count) {
  return symmetry_degree(distances_from_positions(std::move(positions), node_count));
}

std::uint64_t hash_sequence(std::uint64_t seed, const DistanceSeq& d) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(d.size());
  for (const Distance v : d) mix(v);
  return h;
}

}  // namespace udring::core
