// udring/core/premature_halt.h
//
// A deliberately *wrong* algorithm that makes Theorem 5 executable.
//
// Theorem 5 (§4.1): with no knowledge of k or n, no algorithm solves uniform
// deployment *with termination detection*. The proof takes any terminating
// algorithm, runs it on a ring R, then builds a larger ring R' (Fig 7) whose
// first qn + n nodes repeat R's initial configuration; by Lemma 1 the agents
// there cannot tell the difference within qn rounds, so they halt exactly as
// in R — at spacing n/k, which is wrong for R'.
//
// PrematureHaltAgent is the natural candidate such an adversary defeats: it
// runs the Algorithm-4 estimating phase (stop at the first 4-fold repetition
// of the observed distance sequence), deploys by its estimate, and — unlike
// Algorithm 6 — *halts* instead of suspending. On rings whose configuration
// admits no misleading repetition every agent estimates (n, k) exactly and
// the algorithm "solves" uniform deployment with termination; on the Fig 7
// construction it terminates prematurely and fails. The pair of runs is the
// paper's impossibility argument made concrete (tests/test_impossibility.cpp,
// bench_fig7_impossibility, examples/impossibility_demo).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "sim/agent.h"

namespace udring::core {

class PrematureHaltAgent final : public sim::AgentProgram {
 public:
  enum Phase : std::size_t { kEstimating = 0, kDeploying = 1 };

  PrematureHaltAgent() = default;

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "premature-halt"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"estimating", "deploying"};
  }

  [[nodiscard]] std::size_t estimated_n() const noexcept { return n_est_; }
  [[nodiscard]] std::size_t estimated_k() const noexcept { return k_est_; }

 private:
  DistanceSeq d_;
  std::size_t n_est_ = 0;
  std::size_t k_est_ = 0;
  std::size_t rank_ = 0;
};

}  // namespace udring::core
