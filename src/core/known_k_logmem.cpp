#include "core/known_k_logmem.h"

#include <tuple>
#include <variant>

#include "core/distance_sequence.h"
#include "core/memory_meter.h"
#include "sim/message.h"
#include "util/bits.h"

namespace udring::core {

namespace {

/// Lexicographic ID comparison: (d, fNum) ordered by distance, then count.
[[nodiscard]] int compare_ids(std::size_t d1, std::size_t f1, std::size_t d2,
                              std::size_t f2) noexcept {
  if (std::tie(d1, f1) < std::tie(d2, f2)) return -1;
  if (std::tie(d1, f1) > std::tie(d2, f2)) return 1;
  return 0;
}

}  // namespace

KnownKLogMemAgent::KnownKLogMemAgent(std::size_t k, Options options)
    : k_(k), options_(options) {}

sim::Behavior KnownKLogMemAgent::run(sim::AgentContext& ctx) {
  // ==== selection phase (Algorithm 2) =======================================
  ctx.set_phase(kSelection);
  ctx.release_token();

  while (role_ == Role::Active) {
    // One sub-phase: a full circuit measuring IDs of all active agents.
    tokens_seen_ = 0;
    identical_ = true;
    min_ = true;
    memory_changed();
    const bool first_circuit = (sub_phase_ == 1);

    // -- measure ID_i = (d_own_, fnum_own_): walk to the next active node.
    // Active node: token, no staying agent (its owner is traversing).
    // Follower node: token plus a staying agent. tokens_seen_ == k means the
    // walk returned home (every home keeps its token forever).
    d_own_ = 0;
    fnum_own_ = 0;
    memory_changed();
    for (;;) {
      co_await ctx.move();
      ++d_own_;
      memory_changed();
      if (first_circuit) ++n_;  // n accumulates over the first circuit
      if (ctx.tokens_here() == 0) continue;
      ++tokens_seen_;
      if (ctx.others_staying_here() == 0) break;  // next active node (or home)
      ++fnum_own_;
    }
    if (tokens_seen_ == k_) {
      // Only this agent is still active: it walked the whole ring without
      // meeting another active node (Algorithm 2, line 6). fnum_own_ counted
      // every follower, so the whole ring is its segment.
      role_ = Role::Leader;
      memory_changed();
      break;
    }

    // -- measure ID_next of the next active agent (lines 7–9).
    d_next_ = 0;
    fnum_next_ = 0;
    memory_changed();
    for (;;) {
      co_await ctx.move();
      ++d_next_;
      memory_changed();
      if (first_circuit) ++n_;
      if (ctx.tokens_here() == 0) continue;
      ++tokens_seen_;
      if (ctx.others_staying_here() == 0) break;
      ++fnum_next_;
    }
    if (compare_ids(d_own_, fnum_own_, d_next_, fnum_next_) != 0) identical_ = false;
    if (compare_ids(d_own_, fnum_own_, d_next_, fnum_next_) > 0) min_ = false;

    // -- measure every further active agent's ID until back home (10–14).
    while (tokens_seen_ != k_) {
      d_other_ = 0;
      fnum_other_ = 0;
      memory_changed();
      for (;;) {
        co_await ctx.move();
        ++d_other_;
        memory_changed();
        if (first_circuit) ++n_;
        if (ctx.tokens_here() == 0) continue;
        ++tokens_seen_;
        if (ctx.others_staying_here() == 0) break;
        ++fnum_other_;
      }
      if (compare_ids(d_own_, fnum_own_, d_other_, fnum_other_) != 0) {
        identical_ = false;
      }
      if (compare_ids(d_own_, fnum_own_, d_other_, fnum_other_) > 0) min_ = false;
    }

    // -- decide (lines 15–17). The agent is now back at its home node.
    if (identical_) {
      role_ = Role::Leader;  // all active agents share one ID: base nodes found
      memory_changed();
    } else if (!min_ ||
               compare_ids(d_own_, fnum_own_, d_next_, fnum_next_) == 0) {
      role_ = Role::Follower;  // not minimal, or a non-last member of a run
      memory_changed();
    } else {
      ++sub_phase_;  // survive into the next sub-phase
      memory_changed();
    }
  }

  // ==== deployment phase (Algorithm 3) ======================================
  ctx.set_phase(kDeployment);

  if (role_ == Role::Leader) {
    // Segment geometry from the final ID: fnum_own_ followers per segment,
    // per_seg = fnum_own_ + 1 targets, and the n ≠ ck remainder split.
    const std::size_t per_seg = fnum_own_ + 1;
    const std::size_t remainder = n_ % k_;
    const sim::BaseInfoMessage geometry_template{
        /*t_base=*/0,
        /*seg_agents=*/per_seg,
        /*ceil_gaps=*/remainder * per_seg / k_,
        /*floor_gap=*/n_ / k_,
    };

    // Walk the segment, waking each follower with its token count to the
    // next base node (lines 4–9).
    walk_count_ = 0;
    memory_changed();
    while (walk_count_ != fnum_own_) {
      do {
        co_await ctx.move();
      } while (ctx.tokens_here() == 0);
      sim::BaseInfoMessage info = geometry_template;
      info.t_base = fnum_own_ - walk_count_;
      ctx.broadcast(info);
      ++walk_count_;
      memory_changed();
    }
    // Move to the next base node — this leader's own target — and halt.
    do {
      co_await ctx.move();
    } while (ctx.tokens_here() == 0);
    co_return;
  }

  // Follower: wait for the leader's notification (line 16).
  sim::BaseInfoMessage info;
  for (bool informed = false; !informed;) {
    co_await ctx.wait_message();
    for (const sim::Message& message : ctx.inbox()) {
      if (const auto* base_info = std::get_if<sim::BaseInfoMessage>(&message)) {
        info = *base_info;
        informed = true;
        break;
      }
    }
  }

  // Walk to the nearest base node: pass t_base token nodes (line 17).
  walk_count_ = 0;
  memory_changed();
  while (walk_count_ != info.t_base) {
    co_await ctx.move();
    if (ctx.tokens_here() != 0) {
      ++walk_count_;
      memory_changed();
    }
  }

  // Probe target positions until a vacant one is found (lines 18–21).
  // target_index_ cycles 1..per_seg through the §3.1.1 interval pattern;
  // index per_seg lands on a base node. In strict_paper mode the base stop
  // is probed like any target (the literal pseudocode — racy, see header);
  // by default it is skipped, reserved for its leader.
  target_index_ = 0;
  memory_changed();
  for (;;) {
    ++target_index_;
    memory_changed();
    const std::size_t hop =
        info.floor_gap + (target_index_ <= info.ceil_gaps ? 1 : 0);
    for (std::size_t step = 0; step < hop; ++step) {
      co_await ctx.move();
    }
    const bool at_base_node = (target_index_ == info.seg_agents);
    if ((!at_base_node || options_.strict_paper) &&
        ctx.others_staying_here() == 0) {
      co_return;  // claim this vacant target and halt
    }
    if (at_base_node) {
      target_index_ = 0;
      memory_changed();
    }
  }
}

std::size_t KnownKLogMemAgent::compute_memory_bits() const {
  // Scalars only — this is the point of Algorithm 2. Every counter is
  // bounded by n (distances), k (counts) or log k (sub-phase index).
  return MemoryMeter{}
      .counter(k_)
      .counter(sub_phase_)
      .counter(n_)
      .counter(tokens_seen_)
      .counter(d_own_)
      .counter(fnum_own_)
      .counter(d_next_)
      .counter(fnum_next_)
      .counter(d_other_)
      .counter(fnum_other_)
      .flag()  // identical_
      .flag()  // min_
      .counter(static_cast<std::uint64_t>(role_))
      .counter(walk_count_)
      .counter(target_index_)
      .bits();
}

std::uint64_t KnownKLogMemAgent::state_hash() const {
  return hash_sequence(0x416c676f32ULL,  // "Algo2"
                       {sub_phase_, n_, tokens_seen_, d_own_, fnum_own_, d_next_,
                        fnum_next_, d_other_, fnum_other_,
                        static_cast<std::size_t>(identical_),
                        static_cast<std::size_t>(min_),
                        static_cast<std::size_t>(role_), walk_count_,
                        target_index_});
}

}  // namespace udring::core
