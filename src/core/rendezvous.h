// udring/core/rendezvous.h
//
// Token-based rendezvous baseline (the paper's conceptual contrast, §1.3).
//
// Rendezvous requires all agents to *gather at one node* — it breaks
// symmetry, and is therefore unsolvable from periodic (symmetric) initial
// configurations: no deterministic algorithm can separate agents whose views
// are identical. Uniform deployment attains symmetry instead and is solvable
// from every initial configuration — the paper's headline contrast.
//
// This baseline makes the contrast executable: each agent (knowing k) drops
// its token, records the distance sequence over one circuit, and
//  - if the sequence is aperiodic, walks to the unique base node (the lexmin
//    rotation's start) — all agents gather there and halt;
//  - if the sequence is periodic, reports the instance unsolvable and halts
//    at home (a correct algorithm must not even exist for this case; the
//    detection mirrors the classical impossibility argument).
//
// bench_rendezvous_contrast measures the fraction of configurations each
// problem can solve side by side with the uniform-deployment algorithms.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "core/problem.h"
#include "sim/agent.h"

namespace udring::core {

class RendezvousAgent final : public sim::AgentProgram,
                              public UnsolvabilityAware {
 public:
  enum Phase : std::size_t { kExplore = 0, kGather = 1 };

  explicit RendezvousAgent(std::size_t k) : k_(k) {}

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "rendezvous"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"explore", "gather"};
  }

  /// True if the agent proved the instance unsolvable (periodic view).
  [[nodiscard]] bool detected_unsolvable() const noexcept override {
    return unsolvable_;
  }

 private:
  std::size_t k_;
  DistanceSeq d_;
  std::size_t n_ = 0;
  bool unsolvable_ = false;
};

}  // namespace udring::core
