#include "core/disperse_ring.h"

#include <algorithm>

#include "core/memory_meter.h"

namespace udring::core {

sim::Behavior DisperseAgent::run(sim::AgentContext& ctx) {
  ctx.set_phase(kExplore);
  ctx.release_token();

  for (std::size_t j = 0; j < k_; ++j) {
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
  }
  n_ = sum(d_);
  memory_changed();

  // Settle r nodes past the nearest forward base (rank-0) home; distinct
  // ranks off period-spaced bases give pairwise-distinct targets (see the
  // header argument).
  ctx.set_phase(kSettle);
  const std::size_t rank = min_rotation(d_);
  std::size_t dis_settle = rank;
  for (std::size_t i = 0; i < rank; ++i) dis_settle += d_[i];
  for (std::size_t i = 0; i < dis_settle; ++i) {
    co_await ctx.move();
  }
  co_return;
}

std::size_t DisperseAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .counter(k_)
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_))
      .counter(n_)
      .bits();
}

std::uint64_t DisperseAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x4d15bULL, d_);  // "DISP"-ish tag
  h = hash_sequence(h, {n_});
  return h;
}

}  // namespace udring::core
