#include "core/problem.h"

#include <stdexcept>

#include "core/runner.h"

namespace udring::core {

std::string_view to_string(Problem problem) noexcept {
  switch (problem) {
    case Problem::Auto: return "auto";
    case Problem::Deploy: return "deploy";
    case Problem::Gather: return "gather";
    case Problem::Disperse: return "disperse";
  }
  return "?";
}

Problem problem_from_name(std::string_view name) {
  if (name == "auto") return Problem::Auto;
  if (name == "deploy") return Problem::Deploy;
  if (name == "gather") return Problem::Gather;
  if (name == "disperse") return Problem::Disperse;
  throw std::invalid_argument("unknown problem: " + std::string(name));
}

std::string to_string(const ProblemSpec& spec) {
  if (spec.kind == Problem::Gather && spec.gather_g != 0) {
    return "gather(g=" + std::to_string(spec.gather_g) + ")";
  }
  return std::string(to_string(spec.kind));
}

Problem natural_problem(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::KnownKFull:
    case Algorithm::KnownNFull:
    case Algorithm::KnownKLogMem:
    case Algorithm::KnownKLogMemStrict:
    case Algorithm::UnknownRelaxed:
      return Problem::Deploy;
    case Algorithm::Rendezvous:
    case Algorithm::GatherRing:
      return Problem::Gather;
    case Algorithm::DisperseRing:
      return Problem::Disperse;
  }
  return Problem::Deploy;
}

ProblemSpec resolve_problem(Algorithm algorithm,
                            const ProblemSpec& requested) noexcept {
  ProblemSpec resolved = requested;
  if (resolved.kind == Problem::Auto) {
    resolved.kind = natural_problem(algorithm);
    // Rendezvous natively gathers *everyone*; GatherRing keeps the spec's
    // group size (default 2).
    if (algorithm == Algorithm::Rendezvous) resolved.gather_g = 0;
  }
  if (resolved.kind != Problem::Gather) resolved.gather_g = 0;
  return resolved;
}

namespace {

/// Gathering-family goal: the configuration predicate (total gathering for
/// g = 0, g-partial gathering otherwise), with the unsolvability escape
/// hatch for UnsolvabilityAware programs — all agents proved the instance
/// unsolvable and halted at home is a correct outcome; a split verdict is
/// a bug.
class GatherOracle final : public sim::GoalOracle {
 public:
  explicit GatherOracle(std::size_t g) noexcept : g_(g) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return g_ == 0 ? "rendezvous" : "g-partial-gathering";
  }

  [[nodiscard]] sim::CheckResult check_goal(
      const sim::Simulator& sim) const override {
    bool all_unsolvable = true;
    bool any_unsolvable = false;
    for (sim::AgentId id = 0; id < sim.agent_count(); ++id) {
      const auto* aware =
          dynamic_cast<const UnsolvabilityAware*>(&sim.program(id));
      const bool unsolvable = aware != nullptr && aware->detected_unsolvable();
      all_unsolvable = all_unsolvable && unsolvable;
      any_unsolvable = any_unsolvable || unsolvable;
    }
    if (all_unsolvable && sim.agent_count() != 0) {
      return sim::CheckResult::pass();
    }
    if (any_unsolvable) {
      return sim::CheckResult::fail(
          g_ == 0 ? "agents disagree on solvability of the rendezvous instance"
                  : "agents disagree on solvability of the gathering instance");
    }
    return g_ == 0 ? sim::check_gathered(sim)
                   : sim::check_partial_gathering(sim, g_);
  }

 private:
  std::size_t g_;
};

}  // namespace

std::unique_ptr<sim::GoalOracle> make_goal_oracle(Algorithm algorithm,
                                                  const ProblemSpec& requested) {
  const ProblemSpec resolved = resolve_problem(algorithm, requested);
  switch (resolved.kind) {
    case Problem::Deploy:
      // UnknownRelaxed terminates in the suspended sense (Definition 2);
      // every other deployer halts (Definition 1).
      return std::make_unique<sim::UniformDeploymentOracle>(
          algorithm != Algorithm::UnknownRelaxed);
    case Problem::Gather:
      return std::make_unique<GatherOracle>(resolved.gather_g);
    case Problem::Disperse:
      return std::make_unique<sim::DispersionOracle>();
    case Problem::Auto:
      break;  // resolve_problem never returns Auto
  }
  throw std::invalid_argument("make_goal_oracle: unresolved problem");
}

}  // namespace udring::core
