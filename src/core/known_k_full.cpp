#include "core/known_k_full.h"

#include <algorithm>

#include "core/memory_meter.h"
#include "core/targets.h"

namespace udring::core {

KnownKFullAgent::KnownKFullAgent(std::size_t k) : k_(k) { d_.reserve(k); }

sim::Behavior KnownKFullAgent::run(sim::AgentContext& ctx) {
  // --- selection phase (Algorithm 1, lines 1–10) ---------------------------
  // The first action is the arrival at the home node (initial-buffer rule),
  // so the token lands before any other agent can act here.
  ctx.set_phase(kSelection);
  ctx.release_token();

  for (std::size_t j = 0; j < k_; ++j) {
    // Move to the nearest token node, measuring the distance. Every home
    // node keeps its token forever, so after k token sightings the agent has
    // completed exactly one circuit and is back home.
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
  }
  n_ = sum(d_);
  memory_changed();

  // --- deployment phase (lines 12–18) --------------------------------------
  ctx.set_phase(kDeployment);
  rank_ = min_rotation(d_);
  dis_base_ = 0;
  for (std::size_t i = 0; i < rank_; ++i) dis_base_ += d_[i];
  memory_changed();

  // b = symmetry degree: on periodic configurations each period block elects
  // its own base node and rank_ < k/b indexes within the block.
  const TargetPlan plan = make_target_plan(n_, k_, symmetry_degree(d_));
  const std::size_t total = dis_base_ + plan.offset(rank_);
  for (std::size_t i = 0; i < total; ++i) {
    co_await ctx.move();
  }
  // Arriving at the target node, terminate (halt state, Definition 1).
  co_return;
}

std::size_t KnownKFullAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .counter(k_)
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_))
      .counter(n_)
      .counter(rank_)
      .counter(dis_base_)
      .bits();
}

std::uint64_t KnownKFullAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x416c676f31ULL, d_);  // "Algo1"
  h = hash_sequence(h, {n_, rank_, dis_base_});
  return h;
}

// ---- footnote-2 variant: knowledge of n instead of k ------------------------

KnownNFullAgent::KnownNFullAgent(std::size_t n) : n_(n) {}

sim::Behavior KnownNFullAgent::run(sim::AgentContext& ctx) {
  // Selection: identical walk, but the circuit ends when the accumulated
  // distance reaches n; k comes out as the number of token sightings.
  ctx.set_phase(kSelection);
  ctx.release_token();

  std::size_t dis = 0;
  while (traveled_ < n_) {
    co_await ctx.move();
    ++traveled_;
    ++dis;
    if (ctx.tokens_here() != 0) {
      d_.push_back(dis);
      dis = 0;
    }
    memory_changed();
  }
  // Back home: the last recorded distance closes the circuit, so ΣD = n and
  // |D| = k.

  ctx.set_phase(kDeployment);
  rank_ = min_rotation(d_);
  dis_base_ = 0;
  for (std::size_t i = 0; i < rank_; ++i) dis_base_ += d_[i];
  memory_changed();

  const TargetPlan plan =
      make_target_plan(n_, d_.size(), symmetry_degree(d_));
  const std::size_t total = dis_base_ + plan.offset(rank_);
  for (std::size_t i = 0; i < total; ++i) {
    co_await ctx.move();
  }
  co_return;
}

std::size_t KnownNFullAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .counter(n_)
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_))
      .counter(traveled_)
      .counter(rank_)
      .counter(dis_base_)
      .bits();
}

std::uint64_t KnownNFullAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x416c676f314eULL, d_);  // "Algo1N"
  h = hash_sequence(h, {n_, traveled_, rank_, dis_base_});
  return h;
}

}  // namespace udring::core
