// udring/core/known_k_logmem.h
//
// Algorithms 2+3 (§3.2): uniform deployment with termination detection for
// agents that know k, using only O(log n) memory per agent, O(n log k) time
// and O(kn) total moves (Theorem 4).
//
// Selection phase (Algorithm 2): up to ⌈log k⌉ sub-phases. In each
// sub-phase every still-active agent travels one circuit and derives IDs
// from the geometry alone: its own ID (d_i, fNum_i) is the distance to the
// next active node and the number of follower nodes passed. Active nodes
// are token nodes with no staying agent (their owners are out traversing);
// follower nodes are token nodes with a staying agent. An agent survives a
// sub-phase iff its ID is the strict minimum w.r.t. its successor; if all
// remaining actives share one ID, they all become leaders and their home
// nodes are the base nodes (equidistant with equal home counts — the base
// node conditions).
//
// Deployment phase (Algorithm 3): each leader walks its segment, handing
// each follower the token count tBase to its base node, and halts on the
// next base node. A woken follower walks to that base node and then probes
// target positions (spaced by the §3.1.1 interval pattern), halting at the
// first vacant one.
//
// Modes: `strict_paper = true` follows the pseudocode literally: followers
// probe *every* target stop, including base nodes. On paper this looks racy
// — a follower could claim a base node before the leader destined for it
// arrives — but systematic adversarial search (every priority permutation
// plus thousands of random schedules; see tests/test_algo_logmem.cpp) finds
// no violation: FIFO links make any agent walking toward a base node queue
// *behind* the lagging leader and push it into its halt position first.
// The correctness of the literal pseudocode therefore leans on the FIFO
// non-overtaking property; on a substrate without FIFO links it would break.
// The default mode adds a belt-and-braces hardening that removes the
// dependency: the leader's message carries the segment geometry and
// followers skip base-node stops (reserved for leaders). Both modes pass the
// full suite; the strict mode is kept as a faithful-paper ablation.
// See DESIGN.md §6 and EXPERIMENTS.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/agent.h"

namespace udring::core {

class KnownKLogMemAgent final : public sim::AgentProgram {
 public:
  enum Phase : std::size_t { kSelection = 0, kDeployment = 1 };

  enum class Role : std::uint8_t { Active, Leader, Follower };

  struct Options {
    /// Follow Algorithm 3 to the letter (followers may halt on base nodes).
    bool strict_paper = false;
  };

  explicit KnownKLogMemAgent(std::size_t k) : KnownKLogMemAgent(k, Options{}) {}
  KnownKLogMemAgent(std::size_t k, Options options);

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "known-k-logmem"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"selection", "deployment"};
  }

  // ---- inspection (tests / experiments) -----------------------------------

  [[nodiscard]] Role role() const noexcept { return role_; }
  /// Sub-phases completed when selection ended (≤ ⌈log k⌉ + 1).
  [[nodiscard]] std::size_t sub_phases() const noexcept { return sub_phase_; }
  /// Ring size measured in the first sub-phase.
  [[nodiscard]] std::size_t measured_n() const noexcept { return n_; }
  /// Final own ID (valid for leaders: the segment geometry source).
  [[nodiscard]] std::size_t id_distance() const noexcept { return d_own_; }
  [[nodiscard]] std::size_t id_follower_count() const noexcept { return fnum_own_; }

 private:
  /// One "move to the next active node" walk, shared by the ID measurements.
  /// Implemented inline in run() — see the MeasureResult fields there.

  std::size_t k_;
  Options options_;

  // ---- O(log n) algorithm state: scalars only, no arrays ------------------
  std::size_t sub_phase_ = 1;
  std::size_t n_ = 0;            // measured ring size (after sub-phase 1)
  std::size_t tokens_seen_ = 0;  // token sightings in the current circuit
  std::size_t d_own_ = 0, fnum_own_ = 0;      // ID_i
  std::size_t d_next_ = 0, fnum_next_ = 0;    // ID_next
  std::size_t d_other_ = 0, fnum_other_ = 0;  // ID_other (reused)
  bool identical_ = true;
  bool min_ = true;
  Role role_ = Role::Active;

  // Deployment-phase scalars.
  std::size_t walk_count_ = 0;    // leader: followers informed; follower: tokens seen
  std::size_t target_index_ = 0;  // follower: position in the interval pattern
};

}  // namespace udring::core
