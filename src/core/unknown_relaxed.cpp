#include "core/unknown_relaxed.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "core/memory_meter.h"

namespace udring::core {

sim::Behavior UnknownRelaxedAgent::run(sim::AgentContext& ctx) {
  // ==== estimating phase (Algorithm 4) ======================================
  ctx.set_phase(kEstimating);
  ctx.release_token();

  std::size_t observed = 0;  // j in the pseudocode
  while (n_est_ == 0) {
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++nodes_;
      memory_changed();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
    ++observed;
    if (observed % 4 == 0 && is_m_fold_repetition(d_, 4)) {
      // D = S^4: the agent believes it circled the ring four times.
      k_est_ = observed / 4;
      n_est_ = 0;
      for (std::size_t i = 0; i < k_est_; ++i) n_est_ += d_[i];
      first_n_est_ = n_est_;
      memory_changed();
    }
  }

  for (;;) {
    // ==== patrolling phase (Algorithm 5) ====================================
    // (After a correction this doubles as the "move until nodes = 12n'"
    // catch-up of Algorithm 6 lines 17–18, which performs no sends; the
    // paper's complexity argument only relies on first-estimate patrollers
    // informing others, so informing here too is harmless — but we stay
    // faithful and only send during the *first* patrol.)
    ctx.set_phase(corrections_ == 0 ? kPatrolling : kDeploying);
    while (nodes_ != 12 * n_est_) {
      co_await ctx.move();
      ++nodes_;
      memory_changed();
      if (corrections_ == 0 && ctx.others_staying_here() > 0) {
        sim::EstimateMessage message;
        message.n_est = n_est_;
        message.k_est = k_est_;
        message.nodes_visited = nodes_;
        message.distance_seq = d_;
        ctx.broadcast(std::move(message));
      }
    }

    // ==== deployment phase (Algorithm 6, lines 1–10) ========================
    ctx.set_phase(kDeploying);
    rank_ = min_rotation(d_);  // < k_est_ because S is aperiodic
    dis_base_ = 0;
    for (std::size_t i = 0; i < rank_; ++i) dis_base_ += d_[i];
    memory_changed();

    // offset(rank) with the n' ≠ c·k' remainder rule (§3.1.1, one segment in
    // the agent's estimated world).
    const std::size_t floor_gap = n_est_ / k_est_;
    const std::size_t remainder = n_est_ % k_est_;
    const std::size_t offset =
        rank_ * floor_gap + std::min(rank_, remainder);

    for (std::size_t i = 0; i < dis_base_ + offset; ++i) {
      co_await ctx.move();
      ++nodes_;
      memory_changed();
    }

    // ==== suspended state (Algorithm 6, lines 12–19) ========================
    ctx.set_phase(kSuspendedPhase);
    for (;;) {
      co_await ctx.suspend();
      const auto resume = pick_resume_message(ctx.inbox());
      if (!resume.has_value()) continue;  // condition failed: stay suspended

      const auto& [message, t] = *resume;
      n_est_ = message.n_est;
      k_est_ = message.k_est;
      d_ = shift(message.distance_seq, t);  // D re-anchored at this agent's home
      ++corrections_;
      memory_changed();
      break;
    }
    // Catch up to 12·n'ℓ total moves (always ahead of nodes_; Lemma 5), then
    // redeploy from the loop top. 12n' is a multiple of n', so the position
    // after the catch-up is the home node shifted by 0 mod n'.
  }
}

std::optional<std::pair<sim::EstimateMessage, std::size_t>>
UnknownRelaxedAgent::pick_resume_message(
    const std::vector<sim::Message>& inbox) const {
  std::optional<std::pair<sim::EstimateMessage, std::size_t>> best;
  for (const sim::Message& raw : inbox) {
    const auto* message = std::get_if<sim::EstimateMessage>(&raw);
    if (message == nullptr) continue;
    // Condition 1: the sender's estimate is at least twice ours.
    if (2 * n_est_ > message->n_est) continue;
    if (message->nodes_visited < nodes_) continue;
    const DistanceSeq& dl = message->distance_seq;  // S_ℓ⁴
    const std::size_t period_len = message->k_est;
    const std::size_t period_sum = message->n_est;
    if (dl.size() != 4 * period_len || period_sum == 0) continue;

    // Condition 2: an offset t whose prefix sum equals the travel
    // difference, taken over the *periodic extension* of Dℓ. The pseudocode
    // bounds t by |Dℓ| = 4k'ℓ, but a patroller whose visits to this node all
    // have nodesℓ − nodes > 4n'ℓ could then never satisfy the condition (a
    // concrete instance: the packed Theorem-1 configuration, where the agent
    // at the arc's head suspends with n' = 1 before any correct estimator
    // leaves its estimating phase — see DESIGN.md §6 item 7). Since Dℓ is
    // S_ℓ⁴, reducing the difference modulo n'ℓ = ΣS_ℓ is the same alignment
    // over the extension and restores Lemma 5's own counting.
    const std::size_t diff = (message->nodes_visited - nodes_) % period_sum;
    std::size_t t = 0;
    std::size_t prefix = 0;
    while (t < period_len && prefix < diff) {
      prefix += dl[t];
      ++t;
    }
    if (prefix != diff) continue;

    // ... such that our whole D is the window of the extension starting at t.
    bool aligned = true;
    for (std::size_t j = 0; j < d_.size() && aligned; ++j) {
      aligned = (d_[j] == dl[(t + j) % period_len]);
    }
    if (!aligned) continue;

    if (!best.has_value() || message->n_est > best->first.n_est) {
      best.emplace(*message, t);
    }
  }
  return best;
}

std::size_t UnknownRelaxedAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_est_))
      .counter(n_est_)
      .counter(k_est_)
      .counter(nodes_)
      .counter(rank_)
      .counter(dis_base_)
      .bits();
}

std::uint64_t UnknownRelaxedAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x416c676f343536ULL, d_);  // "Algo456"
  h = hash_sequence(h, {n_est_, k_est_, nodes_, rank_, dis_base_});
  return h;
}

}  // namespace udring::core
