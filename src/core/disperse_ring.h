// udring/core/disperse_ring.h
//
// Asynchronous dispersion on the token ring (per Pattanayak et al.,
// "Optimal Dispersion Under Asynchrony"): the agents must end halted with
// *exactly one* settled agent per occupied node — the complement of
// gathering, and a relaxation of uniform deployment (distinct positions,
// but no spacing requirement).
//
// On a ring with distinct home nodes dispersion is solvable from *every*
// initial configuration — symmetric agents simply settle at symmetric
// (hence distinct) nodes — so unlike rendezvous and g-partial gathering
// there is no unsolvability escape hatch.
//
// Protocol (each agent knows k):
//   1. explore — drop the token, record the distance sequence D over one
//      full circuit (k token sightings); compute the Booth rank
//      r = min_rotation(D), which lies in [0, period(D)).
//   2. settle — walk forward sum(D[0 .. r)) nodes to the nearest rank-0
//      (base) agent's home, then r further nodes, and halt. Agents sharing
//      a base node carry distinct ranks (each rank occurs once per period
//      window), so their offsets differ; agents of different base nodes
//      settle in disjoint windows [base, base + p) — consecutive base
//      homes are n*p/k >= p nodes apart since k <= n. Hence all settled
//      positions are distinct.
//
// Moves are O(n + k) per agent; memory is O(k log n) bits (the distance
// sequence dominates), matching the other distance-sequence protocols.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "sim/agent.h"

namespace udring::core {

class DisperseAgent final : public sim::AgentProgram {
 public:
  enum Phase : std::size_t { kExplore = 0, kSettle = 1 };

  explicit DisperseAgent(std::size_t k) : k_(k) {}

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return "disperse-ring";
  }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"explore", "settle"};
  }

 private:
  std::size_t k_;
  DistanceSeq d_;
  std::size_t n_ = 0;
};

}  // namespace udring::core
