// udring/core/targets.h
//
// Target-node arithmetic for uniform deployment, including the paper's
// §3.1.1 extension to n ≠ ck.
//
// With b base nodes (b = the configuration's symmetry degree for
// Algorithm 1; the number of elected leaders for Algorithm 2), the ring
// splits into b segments of identical length n/b. Each segment holds
// per_seg = k/b targets: the base node itself plus per_seg − 1 interior
// targets. Writing r = n mod k, each segment's first r/b inter-target gaps
// are ⌈n/k⌉ and the rest ⌊n/k⌋ — the paper's rule for distributing the
// remainder. (b | n, b | k and therefore b | r always hold; see §3.1.1.)

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace udring::core {

struct TargetPlan {
  std::size_t n = 0;          ///< ring size
  std::size_t k = 0;          ///< number of agents
  std::size_t bases = 0;      ///< b: number of base nodes
  std::size_t seg_len = 0;    ///< n / b
  std::size_t per_seg = 0;    ///< k / b: targets per segment (incl. base)
  std::size_t ceil_gaps = 0;  ///< r / b: leading ⌈n/k⌉ gaps per segment
  std::size_t floor_gap = 0;  ///< ⌊n/k⌋

  /// Offset of the j-th target from its segment's base node, 0 ≤ j ≤ per_seg
  /// (offset(per_seg) == seg_len, the next base node).
  [[nodiscard]] std::size_t offset(std::size_t j) const {
    return j * floor_gap + std::min(j, ceil_gaps);
  }

  /// Distance from target j−1 to target j (1 ≤ j ≤ per_seg).
  [[nodiscard]] std::size_t interval(std::size_t j) const {
    return floor_gap + (j <= ceil_gaps && j >= 1 ? 1 : 0);
  }
};

/// Builds the plan; throws std::invalid_argument unless b | n, b | k and
/// k ≤ n with all quantities positive.
[[nodiscard]] TargetPlan make_target_plan(std::size_t n, std::size_t k,
                                          std::size_t bases);

/// All k global target positions given the position of one base node
/// (instrumentation / expected-value computation in tests).
[[nodiscard]] std::vector<std::size_t> all_targets(const TargetPlan& plan,
                                                   std::size_t base_node);

}  // namespace udring::core
