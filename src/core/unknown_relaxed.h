// udring/core/unknown_relaxed.h
//
// Algorithms 4+5+6 (§4.2): relaxed uniform deployment (no termination
// detection) for agents with *no knowledge of k or n*. With the initial
// configuration's symmetry degree l, the costs are O((k/l)·log(n/l)) memory,
// O(n/l) time and O(kn/l) total moves (Theorem 6) — the more symmetric the
// start, the cheaper the run.
//
// Estimating phase (Alg 4): record inter-token distances until the observed
//   sequence is a 4-fold repetition D = S⁴; estimate k' = |S|, n' = ΣS.
//   Misestimates are possible but bounded: n' ≤ n/2 (Lemma 3), and in an
//   aperiodic ring at least one agent estimates n exactly (Lemma 4). In an
//   (N, l)-ring every agent converges to the fundamental-ring size N = n/l
//   (Lemmas 7–9) — the source of the 1/l speedup.
//
// Patrolling phase (Alg 5): keep moving until 12·n' total moves, handing
//   (n', k', nodes, D) to any staying (i.e. prematurely suspended) agent.
//
// Deployment phase (Alg 6): rank = min-rotation index of D; walk
//   disBase + offset(rank) to the target and enter the suspended state
//   (Definition 2). A suspended agent woken by a message with n' ≤ n'ℓ/2
//   whose window aligns (Dℓ offset t with prefix-sum = nodesℓ − nodes)
//   adopts the larger estimate, tops its move count up to 12·n'ℓ — a
//   multiple of n'ℓ, so its position is home + disBase + offset mod n'ℓ,
//   exactly as if it had deployed from home — and redeploys.
//
// Reproduction note: the resume condition's offset t must be taken over the
// *periodic extension* of Dℓ (equivalently, nodesℓ − nodes reduced modulo
// n'ℓ). Read with t bounded by |Dℓ| = 4k'ℓ, as the pseudocode literally
// states, there are instances where no patroller visit ever satisfies the
// condition and a misestimating agent stays wrong forever — e.g. the packed
// Theorem-1 configuration (the head-of-arc agent estimates n' = 1 and parks
// before any correct estimator finishes estimating, so every later visit has
// nodesℓ − nodes > 4n'ℓ). See DESIGN.md §6 item 7 and
// tests/test_algo_relaxed.cpp (PackedConfigurationRegression).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "sim/agent.h"
#include "sim/message.h"

namespace udring::core {

class UnknownRelaxedAgent final : public sim::AgentProgram {
 public:
  enum Phase : std::size_t {
    kEstimating = 0,
    kPatrolling = 1,
    kDeploying = 2,
    kSuspendedPhase = 3,
  };

  UnknownRelaxedAgent() = default;

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "unknown-relaxed"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"estimating", "patrolling", "deploying", "suspended"};
  }

  // ---- inspection (tests / experiments) -----------------------------------

  /// Current estimates (0 while still estimating).
  [[nodiscard]] std::size_t estimated_n() const noexcept { return n_est_; }
  [[nodiscard]] std::size_t estimated_k() const noexcept { return k_est_; }
  /// The very first estimate from the estimating phase (Lemma 3/4 tests).
  [[nodiscard]] std::size_t first_estimate_n() const noexcept { return first_n_est_; }
  /// Total nodes visited ("nodes" in the pseudocode).
  [[nodiscard]] std::size_t nodes_visited() const noexcept { return nodes_; }
  /// Times this agent adopted a larger estimate from a message.
  [[nodiscard]] std::size_t corrections() const noexcept { return corrections_; }
  [[nodiscard]] const DistanceSeq& distance_sequence() const noexcept { return d_; }

 private:
  /// Examines delivered messages; if one satisfies the Algorithm-6 resume
  /// conditions, returns the shift t and the message (best = largest n'ℓ).
  [[nodiscard]] std::optional<std::pair<sim::EstimateMessage, std::size_t>>
  pick_resume_message(const std::vector<sim::Message>& inbox) const;

  // Algorithm state (named members for memory accounting & state hashing).
  DistanceSeq d_;
  std::size_t n_est_ = 0;
  std::size_t k_est_ = 0;
  std::size_t nodes_ = 0;
  std::size_t rank_ = 0;
  std::size_t dis_base_ = 0;

  // Instrumentation only (not counted in memory_bits).
  std::size_t first_n_est_ = 0;
  std::size_t corrections_ = 0;
};

}  // namespace udring::core
