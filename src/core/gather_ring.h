// udring/core/gather_ring.h
//
// g-partial gathering on the token ring (Shibata et al.'s companion problem
// line to uniform deployment): the agents must end with every occupied node
// hosting at least g co-located, halted agents.
//
// Partial gathering sits strictly between rendezvous (g = k) and "stay
// put" (g = 1): it does not require full symmetry breaking, only enough to
// split the agents into groups of >= g. That makes it solvable from many
// periodic configurations rendezvous cannot handle — but not all:
//
//   Let D be an agent's recorded distance sequence over one circuit and
//   p = period(D): the k agents fall into p rank classes (rotation ranks of
//   D), each class holding k/p agents at mutually symmetric positions.
//   Under a synchronous schedule, same-class agents behave identically and
//   their final positions stay translates of one another — so any single
//   node receives at most one agent per class, i.e. at most p agents.
//   With p < g no node can reach g occupants, and the problem is
//   unsolvable by any deterministic algorithm; the agent reports this and
//   halts at home (mirroring the rendezvous baseline's periodic-view
//   detection). With p >= g, the ranks are partitioned into contiguous
//   blocks of >= g classes and each block gathers at its lowest rank's
//   base node, giving every meeting point >= g co-located agents.
//
// Protocol (each agent knows k and g):
//   1. explore — drop the token, record the distance sequence D over one
//      full circuit (k token sightings); compute p = period(D) and the
//      Booth rank r = min_rotation(D) in [0, p).
//   2. gather — with G = floor(p / g) groups, the agent's group is
//      j = min(r / g, G - 1) (the last group absorbs the remainder ranks),
//      and it walks forward to the home of the rank-(j*g) agent of its
//      block: sum(D[0 .. r - j*g)) moves. Group sizes are g (last: up to
//      2g - 1) rank classes, each class holding k/p agents.
//
// Moves are O(k + n) per agent; memory is O(k log n) bits — the distance
// sequence dominates, exactly as in the rendezvous baseline.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "core/problem.h"
#include "sim/agent.h"

namespace udring::core {

class PartialGatherAgent final : public sim::AgentProgram,
                                 public UnsolvabilityAware {
 public:
  enum Phase : std::size_t { kExplore = 0, kGather = 1 };

  /// `k` agents, groups of at least `g` (g = 0 is normalized to 1: plain
  /// termination at home).
  PartialGatherAgent(std::size_t k, std::size_t g)
      : k_(k), g_(g == 0 ? 1 : g) {}

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "gather-ring"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"explore", "gather"};
  }

  /// True if the agent proved the instance unsolvable for this g
  /// (period(D) < g: fewer symmetry classes than the group size).
  [[nodiscard]] bool detected_unsolvable() const noexcept override {
    return unsolvable_;
  }

 private:
  std::size_t k_;
  std::size_t g_;
  DistanceSeq d_;
  std::size_t n_ = 0;
  bool unsolvable_ = false;
};

}  // namespace udring::core
