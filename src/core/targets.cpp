#include "core/targets.h"

#include <algorithm>
#include <stdexcept>

namespace udring::core {

TargetPlan make_target_plan(std::size_t n, std::size_t k, std::size_t bases) {
  if (n == 0 || k == 0 || bases == 0) {
    throw std::invalid_argument("make_target_plan: zero argument");
  }
  if (k > n) throw std::invalid_argument("make_target_plan: k > n");
  if (n % bases != 0 || k % bases != 0) {
    throw std::invalid_argument("make_target_plan: b must divide n and k");
  }
  TargetPlan plan;
  plan.n = n;
  plan.k = k;
  plan.bases = bases;
  plan.seg_len = n / bases;
  plan.per_seg = k / bases;
  plan.floor_gap = n / k;
  const std::size_t r = n % k;
  // b | n and b | k imply b | r (r = n − k·⌊n/k⌋).
  plan.ceil_gaps = r / bases;
  return plan;
}

std::vector<std::size_t> all_targets(const TargetPlan& plan, std::size_t base_node) {
  std::vector<std::size_t> targets;
  targets.reserve(plan.k);
  for (std::size_t seg = 0; seg < plan.bases; ++seg) {
    const std::size_t seg_base = (base_node + seg * plan.seg_len) % plan.n;
    for (std::size_t j = 0; j < plan.per_seg; ++j) {
      targets.push_back((seg_base + plan.offset(j)) % plan.n);
    }
  }
  std::sort(targets.begin(), targets.end());
  return targets;
}

}  // namespace udring::core
