#include "core/gather_ring.h"

#include <algorithm>

#include "core/memory_meter.h"

namespace udring::core {

sim::Behavior PartialGatherAgent::run(sim::AgentContext& ctx) {
  ctx.set_phase(kExplore);
  ctx.release_token();

  for (std::size_t j = 0; j < k_; ++j) {
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
  }
  n_ = sum(d_);
  memory_changed();

  const std::size_t p = period(d_);
  if (p < g_) {
    // Fewer rank classes than the group size: no node can collect g agents
    // (see the header's impossibility argument). Report and stop at home.
    unsolvable_ = true;
    memory_changed();
    co_return;
  }

  // Rank classes [0, p) split into G contiguous blocks of g (the last block
  // absorbs the p mod g remainder ranks). Every agent walks forward to the
  // home of its block's lowest-rank agent: rank r sits r token-gaps behind
  // its region's base (rank 0), so the rank-(j*g) home lies r - j*g gaps
  // ahead — sum of that many leading entries of D.
  ctx.set_phase(kGather);
  const std::size_t rank = min_rotation(d_);
  const std::size_t groups = p / g_;
  const std::size_t group = std::min(rank / g_, groups - 1);
  const std::size_t gaps_ahead = rank - group * g_;
  std::size_t dis_meet = 0;
  for (std::size_t i = 0; i < gaps_ahead; ++i) dis_meet += d_[i];
  for (std::size_t i = 0; i < dis_meet; ++i) {
    co_await ctx.move();
  }
  co_return;
}

std::size_t PartialGatherAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .counter(k_)
      .counter(g_)
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_))
      .counter(n_)
      .flag()
      .bits();
}

std::uint64_t PartialGatherAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x6a7485ULL, d_);  // "GAT"-ish tag
  h = hash_sequence(h, {g_, n_, static_cast<std::size_t>(unsolvable_)});
  return h;
}

}  // namespace udring::core
