// udring/core/runner.h
//
// One-call experiment drivers: build an Instance for an initial
// configuration, run a chosen algorithm under a chosen scheduler, check the
// appropriate correctness oracle, and collect the paper's three complexity
// measures. Tests, benches and examples all go through this layer.
//
// Two forms:
//  - run_algorithm(spec): the historical one-shot — builds everything,
//    runs, tears down. Right for a single run.
//  - RunContext + run_many(specs): the pooled form — a RunContext owns a
//    reusable sim::ExecutionState arena and a per-kind scheduler cache, so
//    a worker that executes thousands of runs performs O(k) allocations per
//    run (agent programs + coroutine frames) instead of O(n). run_many
//    shards a spec list over util::parallel_for_workers with one RunContext
//    per worker. exp::run_campaign and the src/explore fuzzer sit on the
//    same machinery.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/problem.h"
#include "sim/checker.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace udring::core {

enum class Algorithm {
  KnownKFull,         ///< Algorithm 1  (§3.1)
  KnownNFull,         ///< Algorithm 1, knowledge of n instead of k (footnote 2)
  KnownKLogMem,       ///< Algorithms 2+3 (§3.2), hardened deployment
  KnownKLogMemStrict, ///< Algorithms 2+3, literal pseudocode (FIFO-dependent)
  UnknownRelaxed,     ///< Algorithms 4+5+6 (§4.2)
  Rendezvous,         ///< baseline (contrast experiments)
  GatherRing,         ///< g-partial gathering (companion problem family)
  DisperseRing,       ///< asynchronous dispersion (companion problem family)
};

[[nodiscard]] std::string_view to_string(Algorithm algorithm) noexcept;

/// Factory for `k` agents of the given algorithm on an n-ring. `n` is needed
/// only by the KnownNFull variant (0 is fine for all others); `problem`
/// supplies problem parameters to parameterized families (GatherRing reads
/// the resolved gathering group size g).
[[nodiscard]] sim::ProgramFactory make_program_factory(
    Algorithm algorithm, std::size_t k, std::size_t n = 0,
    const ProblemSpec& problem = {});

struct RunSpec {
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;  ///< distinct home nodes; k = homes.size()
  /// The structure to execute on. Empty (default) = the plain unidirectional
  /// ring of `node_count` nodes. Non-empty = run natively on this topology
  /// (Euler-tour tree ring, Eulerian graph circuit, explicit closed walk);
  /// it supersedes node_count and `homes` are virtual positions on it.
  sim::Topology topology;
  sim::SchedulerKind scheduler = sim::SchedulerKind::RoundRobin;
  std::uint64_t seed = 1;
  sim::SimOptions sim_options;
  /// Which goal the run is judged against (and, for parameterized
  /// algorithm families, the problem parameters). Auto = the algorithm's
  /// natural problem — the pre-ProblemSpec behavior.
  ProblemSpec problem;
};

struct RunReport {
  sim::RunResult result;
  bool success = false;       ///< goal oracle for the resolved problem passed
  std::string failure;        ///< oracle failure reason (when !success)
  ProblemSpec problem;        ///< the *resolved* problem the oracle verified
  std::size_t total_moves = 0;
  std::uint64_t makespan = 0;            ///< causal ideal-time
  std::uint64_t scheduler_rounds = 0;    ///< lockstep rounds (synchronous only)
  std::size_t max_memory_bits = 0;
  std::vector<std::size_t> moves_by_phase;
  std::vector<std::size_t> final_positions;  ///< sorted staying positions
  /// final_positions mapped through the topology's labels — the underlying
  /// network node each deployed agent stands at. Empty for label-free
  /// topologies (the plain ring is its own network).
  std::vector<std::size_t> final_labels;
};

/// The Instance `spec` describes for `algorithm` — the immutable half of a
/// run, executable any number of times by any ExecutionState.
[[nodiscard]] sim::Instance make_instance(Algorithm algorithm,
                                          const RunSpec& spec);

/// Runs `algorithm` on the configuration described by `spec` and evaluates
/// the goal oracle of spec.problem (Auto = the algorithm's natural
/// problem: Definition 1 for the known-k algorithms, Definition 2 for the
/// relaxed algorithm, gathering for rendezvous/gather-ring — where a
/// correctly detected unsolvable instance also counts as success —
/// dispersion for disperse-ring).
[[nodiscard]] RunReport run_algorithm(Algorithm algorithm, const RunSpec& spec);

/// Lower-level variant when the caller needs the simulator afterwards:
/// builds a self-contained simulator (it owns its Instance) without running.
[[nodiscard]] std::unique_ptr<sim::Simulator> make_simulator(Algorithm algorithm,
                                                             const RunSpec& spec);

/// Evaluates the goal oracle of `problem` (resolved against `algorithm`)
/// on a finished simulator. One-shot convenience over make_goal_oracle;
/// drivers that judge many runs should build the oracle once instead.
[[nodiscard]] sim::CheckResult evaluate_goal(Algorithm algorithm,
                                             const ProblemSpec& problem,
                                             const sim::Simulator& sim);

/// Evaluates the algorithm's *natural* goal against a finished simulator
/// (equivalent to passing ProblemSpec{} above).
[[nodiscard]] sim::CheckResult evaluate_goal(Algorithm algorithm,
                                             const sim::Simulator& sim);

/// Cached goal oracle keyed by (algorithm, problem): rebuilt only when the
/// pair changes, so a campaign sweeping one cell re-judges thousands of runs
/// with zero oracle allocations. The cache primitive behind RunContext and
/// LanePool.
class OracleCache {
 public:
  [[nodiscard]] const sim::GoalOracle& get(Algorithm algorithm,
                                           const ProblemSpec& problem);

 private:
  std::unique_ptr<sim::GoalOracle> oracle_;
  Algorithm algorithm_ = Algorithm::KnownKFull;
  ProblemSpec problem_;
};

/// A reusable per-worker run arena: one pooled ExecutionState plus a cached
/// scheduler per SchedulerKind (reseed()ed for every run). Construct once,
/// call run() per spec; everything n-sized is recycled between runs.
///
/// Not thread-safe — one RunContext per worker thread is the intended shape
/// (see run_many). Between run() calls the state() holds the *finished*
/// configuration of the last run, so callers can inspect it before the next
/// run resets it.
class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Pooled equivalent of run_algorithm(algorithm, spec).
  [[nodiscard]] RunReport run(Algorithm algorithm, const RunSpec& spec);

  /// The pooled arena; valid after the first run() until the next one.
  [[nodiscard]] sim::ExecutionState& state() noexcept { return state_; }

  /// The cached scheduler for `kind`, reseeded and ready; creates it on
  /// first use. Exposed for drivers that step the state manually.
  [[nodiscard]] sim::Scheduler& scheduler(sim::SchedulerKind kind,
                                          std::uint64_t seed,
                                          std::size_t agent_count);

  /// The cached goal oracle for (algorithm, problem); rebuilt only when the
  /// pair changes, so a campaign sweeping one cell re-judges thousands of
  /// runs with zero oracle allocations.
  [[nodiscard]] const sim::GoalOracle& oracle(Algorithm algorithm,
                                              const ProblemSpec& problem);

 private:
  sim::ExecutionState state_;
  /// The Instance of the current/last run — kept alive so state_ stays
  /// inspectable after run() returns; emplaced in place per run.
  std::optional<sim::Instance> instance_;
  std::array<std::unique_ptr<sim::Scheduler>, sim::kSchedulerKindCount>
      schedulers_;
  OracleCache oracles_;
};

/// Per-worker pooled scaffolding for the lane-batched campaign engine
/// (sim::BatchArena): lane ℓ owns an Instance slot — emplaced per scenario
/// and kept alive while the lane's ExecutionState references it — and a
/// per-SchedulerKind scheduler cache with RunContext::scheduler's exact
/// reseed contract, so each lane's scheduler sequence is byte-identical to
/// the one a scalar per-worker RunContext would have produced for the same
/// scenario. The goal-oracle cache is shared across lanes (oracles are
/// stateless judges keyed by (algorithm, problem)).
///
/// Not thread-safe — one LanePool (and one BatchArena) per worker thread.
class LanePool {
 public:
  explicit LanePool(std::size_t lanes);
  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  /// Builds the Instance for (algorithm, spec) into lane storage. The
  /// returned reference stays valid until this lane's next emplace.
  const sim::Instance& emplace_instance(std::size_t lane, Algorithm algorithm,
                                        const RunSpec& spec);

  /// The lane's cached scheduler for `kind`, reseeded for this run.
  [[nodiscard]] sim::Scheduler& scheduler(std::size_t lane,
                                          sim::SchedulerKind kind,
                                          std::uint64_t seed,
                                          std::size_t agent_count);

  [[nodiscard]] const sim::GoalOracle& oracle(Algorithm algorithm,
                                              const ProblemSpec& problem) {
    return oracles_.get(algorithm, problem);
  }

 private:
  struct Lane {
    std::optional<sim::Instance> instance;
    std::array<std::unique_ptr<sim::Scheduler>, sim::kSchedulerKindCount>
        schedulers;
  };
  std::vector<Lane> lanes_;
  OracleCache oracles_;
};

/// Runs every spec through `algorithm` across a worker pool (0 = hardware
/// concurrency). Reports are index-aligned with `specs`; a spec that throws
/// yields a report with success = false and the exception text in `failure`.
///
/// `lanes` selects the engine, exactly like CampaignOptions::batch_lanes
/// minus the auto policy: 1 (default) = one RunContext per worker, the
/// scalar pooled driver; > 1 = each worker interleaves that many in-flight
/// specs through a sim::BatchArena + LanePool, retiring and refilling lanes
/// independently. Reports are byte-identical either way (the lane engine
/// runs the same per-spec computation through the same finish_report
/// epilogue; tests/test_pooling.cpp pins the equality).
[[nodiscard]] std::vector<RunReport> run_many(Algorithm algorithm,
                                              const std::vector<RunSpec>& specs,
                                              std::size_t workers = 0,
                                              std::size_t lanes = 1);

}  // namespace udring::core
