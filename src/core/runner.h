// udring/core/runner.h
//
// One-call experiment driver: build a Simulator for an initial
// configuration, run a chosen algorithm under a chosen scheduler, check the
// appropriate correctness oracle, and collect the paper's three complexity
// measures. Tests, benches and examples all go through this layer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/checker.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace udring::core {

enum class Algorithm {
  KnownKFull,         ///< Algorithm 1  (§3.1)
  KnownNFull,         ///< Algorithm 1, knowledge of n instead of k (footnote 2)
  KnownKLogMem,       ///< Algorithms 2+3 (§3.2), hardened deployment
  KnownKLogMemStrict, ///< Algorithms 2+3, literal pseudocode (FIFO-dependent)
  UnknownRelaxed,     ///< Algorithms 4+5+6 (§4.2)
  Rendezvous,         ///< baseline (contrast experiments)
};

[[nodiscard]] std::string_view to_string(Algorithm algorithm) noexcept;

/// Factory for `k` agents of the given algorithm on an n-ring. `n` is needed
/// only by the KnownNFull variant (0 is fine for all others).
[[nodiscard]] sim::ProgramFactory make_program_factory(Algorithm algorithm,
                                                       std::size_t k,
                                                       std::size_t n = 0);

struct RunSpec {
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;  ///< distinct home nodes; k = homes.size()
  sim::SchedulerKind scheduler = sim::SchedulerKind::RoundRobin;
  std::uint64_t seed = 1;
  sim::SimOptions sim_options;
};

struct RunReport {
  sim::RunResult result;
  bool success = false;       ///< oracle for this algorithm's goal passed
  std::string failure;        ///< oracle failure reason (when !success)
  std::size_t total_moves = 0;
  std::uint64_t makespan = 0;            ///< causal ideal-time
  std::uint64_t scheduler_rounds = 0;    ///< lockstep rounds (synchronous only)
  std::size_t max_memory_bits = 0;
  std::vector<std::size_t> moves_by_phase;
  std::vector<std::size_t> final_positions;  ///< sorted staying positions
};

/// Runs `algorithm` on the configuration described by `spec` and evaluates
/// the matching oracle: Definition 1 for the known-k algorithms,
/// Definition 2 for the relaxed algorithm, gathering for rendezvous (where
/// a correctly detected unsolvable instance also counts as success).
[[nodiscard]] RunReport run_algorithm(Algorithm algorithm, const RunSpec& spec);

/// Lower-level variant when the caller needs the simulator afterwards:
/// builds the simulator only.
[[nodiscard]] std::unique_ptr<sim::Simulator> make_simulator(Algorithm algorithm,
                                                             const RunSpec& spec);

/// Evaluates the algorithm's oracle against a finished simulator.
[[nodiscard]] sim::CheckResult evaluate_goal(Algorithm algorithm,
                                             const sim::Simulator& sim);

}  // namespace udring::core
