#include "core/rendezvous.h"

#include <algorithm>

#include "core/memory_meter.h"

namespace udring::core {

sim::Behavior RendezvousAgent::run(sim::AgentContext& ctx) {
  ctx.set_phase(kExplore);
  ctx.release_token();

  for (std::size_t j = 0; j < k_; ++j) {
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
  }
  n_ = sum(d_);
  memory_changed();

  if (is_periodic(d_)) {
    // Symmetric views: gathering is impossible (classical rendezvous lower
    // bound). Report and stop at home.
    unsolvable_ = true;
    memory_changed();
    co_return;
  }

  // Aperiodic: the lexicographically minimal rotation starts at a unique
  // agent; everyone walks to that agent's home node.
  ctx.set_phase(kGather);
  const std::size_t rank = min_rotation(d_);
  std::size_t dis_base = 0;
  for (std::size_t i = 0; i < rank; ++i) dis_base += d_[i];
  for (std::size_t i = 0; i < dis_base; ++i) {
    co_await ctx.move();
  }
  co_return;
}

std::size_t RendezvousAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .counter(k_)
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_))
      .counter(n_)
      .flag()
      .bits();
}

std::uint64_t RendezvousAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x52445aULL, d_);  // "RDZ"
  h = hash_sequence(h, {n_, static_cast<std::size_t>(unsolvable_)});
  return h;
}

}  // namespace udring::core
