// udring/core/known_k_full.h
//
// Algorithm 1 (§3.1): uniform deployment *with termination detection* for
// agents that know k. O(k log n) memory, O(n) time, O(kn) total moves —
// time-optimal (Theorem 3).
//
// Selection phase:  release the token at the home node, travel one full
//                   circuit (k token nodes) recording the distance sequence
//                   D; n = ΣD. The agent whose rotation of D is
//                   lexicographically minimal owns the base node; the agent
//                   itself is the rank-th agent to that base, where rank is
//                   the minimal x with shift(D, x) = Dmin.
//
// Deployment phase: move disBase = D[0]+…+D[rank−1] to the base node, then
//                   offset(rank) further to the target node and halt. The
//                   offset uses the §3.1.1 rule for n ≠ ck: within each of
//                   the b = l base segments the first r/b gaps are ⌈n/k⌉,
//                   the rest ⌊n/k⌋ (r = n mod k, l = symmetry degree).
//
// On periodic configurations every period block elects its own base node;
// ranks are taken within the block, so the deployment is collision-free by
// arithmetic alone — no runtime coordination is needed after selection.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/distance_sequence.h"
#include "sim/agent.h"

namespace udring::core {

class KnownKFullAgent final : public sim::AgentProgram {
 public:
  /// Phase indices reported through AgentContext::set_phase.
  enum Phase : std::size_t { kSelection = 0, kDeployment = 1 };

  explicit KnownKFullAgent(std::size_t k);

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "known-k-full"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"selection", "deployment"};
  }

  // ---- inspection (tests / experiments) -----------------------------------

  /// The recorded distance sequence; complete after the selection phase.
  [[nodiscard]] const DistanceSeq& distance_sequence() const noexcept { return d_; }
  /// Ring size measured during selection (0 before completion).
  [[nodiscard]] std::size_t measured_n() const noexcept { return n_; }
  /// This agent's rank relative to its base node.
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  /// Distance from the home node to the base node.
  [[nodiscard]] std::size_t dis_base() const noexcept { return dis_base_; }

 private:
  std::size_t k_;

  // Algorithm state (named members so memory_bits/state_hash see them).
  DistanceSeq d_;
  std::size_t n_ = 0;
  std::size_t rank_ = 0;
  std::size_t dis_base_ = 0;
};

/// Footnote 2 of the paper: "agents with knowledge of n can similarly solve
/// the problem" — the same two-phase algorithm, but the agent detects
/// completing its circuit by accumulated distance (= n) instead of by
/// counting k tokens, and learns k = |D| on the way. Costs are identical to
/// Algorithm 1; the two variants must land every agent on the same target
/// (tests/test_algo_full.cpp cross-checks them).
class KnownNFullAgent final : public sim::AgentProgram {
 public:
  enum Phase : std::size_t { kSelection = 0, kDeployment = 1 };

  explicit KnownNFullAgent(std::size_t n);

  sim::Behavior run(sim::AgentContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "known-n-full"; }
  [[nodiscard]] std::size_t compute_memory_bits() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] std::vector<std::string_view> phase_names() const override {
    return {"selection", "deployment"};
  }

  /// Number of agents learned during the circuit (0 before completion).
  [[nodiscard]] std::size_t measured_k() const noexcept { return d_.size(); }
  [[nodiscard]] const DistanceSeq& distance_sequence() const noexcept { return d_; }
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

 private:
  std::size_t n_;

  DistanceSeq d_;
  std::size_t traveled_ = 0;
  std::size_t rank_ = 0;
  std::size_t dis_base_ = 0;
};

}  // namespace udring::core
