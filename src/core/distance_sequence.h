// udring/core/distance_sequence.h
//
// Distance-sequence combinatorics (§2.1, §3.1, §4.2 of the paper).
//
// A configuration of k agents on an n-ring is summarized by its distance
// sequence D = (d_0, …, d_{k-1}): d_j is the forward distance from the j-th
// token node to the (j+1)-th. The paper's algorithms reduce to operations on
// these sequences:
//
//  - shift(D, x):            cyclic rotation (the paper's shift).
//  - min_rotation(D):        index of the lexicographically minimal rotation
//                            (selects the base node). Two implementations —
//                            naive O(k²) and Booth O(k) — form an ablation
//                            pair and cross-check each other in tests.
//  - period / symmetry:      the minimal p | k with D = (prefix p)^{k/p};
//                            the symmetry degree is l = k / p (Fig 1).
//  - is_m_fold_repetition:   the estimator's 4-fold repetition test
//                            (Algorithm 4).
//  - Lemma 2 primitive:      if B³ is a prefix of A³ with |B| < |A|, then
//                            |B| ≤ |A|/2 or B is periodic — the engine of
//                            the misestimation bound (Lemma 3).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace udring::core {

using Distance = std::size_t;
using DistanceSeq = std::vector<Distance>;

/// shift(D, x) = (d_x, …, d_{k-1}, d_0, …, d_{x-1}); x may exceed |D| and is
/// taken modulo |D|. shift of an empty sequence is empty.
[[nodiscard]] DistanceSeq shift(const DistanceSeq& d, std::size_t x);

/// Sum of all elements (= n when D is a full configuration's sequence).
[[nodiscard]] std::size_t sum(const DistanceSeq& d);

/// Index x of the lexicographically minimal rotation; ties broken by the
/// smallest x. Naive O(k²) reference implementation.
[[nodiscard]] std::size_t min_rotation_naive(const DistanceSeq& d);

/// Booth's algorithm, O(k). Same contract as min_rotation_naive.
[[nodiscard]] std::size_t min_rotation_booth(const DistanceSeq& d);

/// Production entry point (Booth).
[[nodiscard]] inline std::size_t min_rotation(const DistanceSeq& d) {
  return min_rotation_booth(d);
}

/// The minimal period p ≥ 1 such that p divides |D| and D is the (|D|/p)-fold
/// repetition of its first p elements. For an aperiodic sequence p = |D|.
[[nodiscard]] std::size_t period(const DistanceSeq& d);

/// True iff period(d) < |d| (the ring/configuration is periodic, §2.1).
[[nodiscard]] bool is_periodic(const DistanceSeq& d);

/// Symmetry degree l = |D| / period(D)  (Fig 1); l ∈ [1, k].
[[nodiscard]] std::size_t symmetry_degree(const DistanceSeq& d);

/// The first period(D) elements — the aperiodic factor S with D = S^l.
[[nodiscard]] DistanceSeq aperiodic_factor(const DistanceSeq& d);

/// True iff |d| = m·p for some p and d equals m concatenated copies of its
/// first p = |d|/m elements. The Algorithm-4 estimator uses m = 4.
[[nodiscard]] bool is_m_fold_repetition(const DistanceSeq& d, std::size_t m);

/// True iff b³ (three concatenated copies of b) is a prefix of a³. Requires
/// nothing about relative lengths; used to state Lemma 2 in tests.
[[nodiscard]] bool cube_is_prefix_of_cube(const DistanceSeq& b, const DistanceSeq& a);

/// Lexicographic comparison of rotations without materializing them:
/// compares shift(d, x) against shift(d, y). Returns <0, 0, >0.
[[nodiscard]] int compare_rotations(const DistanceSeq& d, std::size_t x, std::size_t y);

// ---- configuration-level helpers -------------------------------------------

/// Distance sequence of the configuration whose agent homes are `positions`
/// (distinct, unsorted OK) on an n-ring, starting from the smallest
/// position's agent.
[[nodiscard]] DistanceSeq distances_from_positions(std::vector<std::size_t> positions,
                                                   std::size_t node_count);

/// The paper's D(C_0): the lexicographically minimal rotation of the
/// configuration's distance sequence.
[[nodiscard]] DistanceSeq config_distance_sequence(std::vector<std::size_t> positions,
                                                   std::size_t node_count);

/// Symmetry degree l of the configuration (Fig 1): l-fold repetition of an
/// aperiodic factor.
[[nodiscard]] std::size_t config_symmetry_degree(std::vector<std::size_t> positions,
                                                 std::size_t node_count);

/// FNV-1a style hash of a sequence — used by AgentProgram::state_hash
/// implementations.
[[nodiscard]] std::uint64_t hash_sequence(std::uint64_t seed, const DistanceSeq& d);

}  // namespace udring::core
