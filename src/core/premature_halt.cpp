#include "core/premature_halt.h"

#include <algorithm>

#include "core/memory_meter.h"

namespace udring::core {

sim::Behavior PrematureHaltAgent::run(sim::AgentContext& ctx) {
  // Estimating phase — Algorithm 4 verbatim.
  ctx.set_phase(kEstimating);
  ctx.release_token();
  std::size_t observed = 0;
  while (n_est_ == 0) {
    std::size_t dis = 0;
    do {
      co_await ctx.move();
      ++dis;
    } while (ctx.tokens_here() == 0);
    d_.push_back(dis);
    memory_changed();
    ++observed;
    if (observed % 4 == 0 && is_m_fold_repetition(d_, 4)) {
      k_est_ = observed / 4;
      for (std::size_t i = 0; i < k_est_; ++i) n_est_ += d_[i];
      memory_changed();
    }
  }

  // Deploy by the estimate — and halt, claiming termination. This is the
  // step Theorem 5 forbids: the estimate may describe a smaller ring.
  ctx.set_phase(kDeploying);
  rank_ = min_rotation(d_);
  memory_changed();
  std::size_t dis_base = 0;
  for (std::size_t i = 0; i < rank_; ++i) dis_base += d_[i];
  const std::size_t offset =
      rank_ * (n_est_ / k_est_) + std::min(rank_, n_est_ % k_est_);
  for (std::size_t i = 0; i < dis_base + offset; ++i) {
    co_await ctx.move();
  }
  co_return;
}

std::size_t PrematureHaltAgent::compute_memory_bits() const {
  const std::uint64_t max_d =
      d_.empty() ? 1 : *std::max_element(d_.begin(), d_.end());
  return MemoryMeter{}
      .array(d_.size(), std::max<std::uint64_t>(max_d, n_est_))
      .counter(n_est_)
      .counter(k_est_)
      .counter(rank_)
      .bits();
}

std::uint64_t PrematureHaltAgent::state_hash() const {
  std::uint64_t h = hash_sequence(0x50726548616cULL, d_);  // "PreHal"
  h = hash_sequence(h, {n_est_, k_est_, rank_});
  return h;
}

}  // namespace udring::core
