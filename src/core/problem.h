// udring/core/problem.h
//
// First-class problem selection: which coordination goal a run is verified
// against, decoupled from which algorithm produced the run.
//
// A ProblemSpec names the problem kind plus its parameters (today: the
// gathering group size g). Every driver layer (RunSpec, the fuzzer's
// FuzzOptions/RecordRequest, mc::CheckRequest, exp::CampaignGrid) carries a
// ProblemSpec and turns it into a sim::GoalOracle via make_goal_oracle();
// the default Problem::Auto resolves to the algorithm's natural problem, so
// all pre-redesign call sites keep their exact behavior.
//
// The three problems:
//   deploy   — uniform deployment (the source paper; Definitions 1/2)
//   gather   — g-partial gathering (Shibata et al.'s companion line):
//              all agents halt and every occupied node hosts >= g of
//              them; g = 0 means total gathering (rendezvous)
//   disperse — dispersion (Pattanayak et al.): all agents halt with
//              exactly one settled agent per occupied node

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/checker.h"

namespace udring::core {

enum class Algorithm;

enum class Problem : std::uint8_t {
  Auto,      ///< resolve to the algorithm's natural problem (the default)
  Deploy,    ///< uniform deployment on the ring
  Gather,    ///< g-partial gathering (g = 0: total gathering / rendezvous)
  Disperse,  ///< dispersion: one settled agent per occupied node
};

[[nodiscard]] std::string_view to_string(Problem problem) noexcept;

/// Parses "auto" | "deploy" | "gather" | "disperse"; throws
/// std::invalid_argument otherwise (CLI and trace parsing).
[[nodiscard]] Problem problem_from_name(std::string_view name);

/// The problem a run is judged against. Aggregate; extend only at the end —
/// drivers aggregate-initialize it positionally.
struct ProblemSpec {
  Problem kind = Problem::Auto;
  /// Gathering group size g. 0 = total gathering (every agent at one node,
  /// the rendezvous goal). Ignored by Deploy/Disperse — resolve_problem
  /// normalizes it to 0 there so specs compare cleanly.
  std::size_t gather_g = 2;

  auto operator<=>(const ProblemSpec&) const = default;
};

/// Human-readable form for tables and describe() lines: "deploy",
/// "gather(g=2)", "gather", "disperse", "auto".
[[nodiscard]] std::string to_string(const ProblemSpec& spec);

/// The problem an algorithm natively solves (what Auto resolves to).
[[nodiscard]] Problem natural_problem(Algorithm algorithm) noexcept;

/// Resolves Auto to natural_problem(algorithm) and normalizes parameters:
/// gather_g is forced to 0 for non-Gather kinds, and Auto-resolved
/// Rendezvous gathers totally (g = 0) while Auto-resolved GatherRing keeps
/// the spec's g (default 2). Never returns Auto.
[[nodiscard]] ProblemSpec resolve_problem(Algorithm algorithm,
                                          const ProblemSpec& requested) noexcept;

/// Implemented by agent programs that can prove their instance unsolvable
/// (periodic initial configurations, Theorem 2-style impossibility). The
/// gather-family oracles treat "every agent detected unsolvability and
/// halted" as success and a split verdict as failure — mirroring the
/// original rendezvous oracle.
class UnsolvabilityAware {
 public:
  virtual ~UnsolvabilityAware() = default;
  [[nodiscard]] virtual bool detected_unsolvable() const noexcept = 0;
};

/// The one way drivers obtain an oracle: resolves `requested` against the
/// algorithm and builds the goal oracle for the resulting problem —
/// UniformDeploymentOracle (Definition 1, or Definition 2 for
/// UnknownRelaxed), an unsolvability-aware gathering oracle, or
/// DispersionOracle. The oracle is immutable and shareable across threads.
[[nodiscard]] std::unique_ptr<sim::GoalOracle> make_goal_oracle(
    Algorithm algorithm, const ProblemSpec& requested = {});

}  // namespace udring::core
