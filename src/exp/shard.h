// udring/exp/shard.h
//
// Durable sharded campaigns: a versioned binary shard-file format plus the
// checkpoint/resume and multi-process primitives built on it.
//
// The streaming campaign path made per-cell accumulation exact and
// commutative precisely so partial CellAccumulators merge byte-identically
// — this header takes that property across process (and machine)
// boundaries. A ShardFile is one serialized CampaignAccumulator plus the
// provenance needed to merge it safely:
//
//   - a grid FINGERPRINT: a digest of the grid's full cell expansion, the
//     seed/repetition plan, the sim options, and every CampaignOption that
//     affects results (sample caps, memory budget). Two shard files merge
//     only if their fingerprints match — merging sweeps of different grids
//     (or the same grid under different caps) would silently mix
//     incomparable numbers.
//   - the covered SCENARIO RANGE [range_begin, range_end) of the admitted
//     expansion, so the merger can reject overlapping ranges (a
//     double-submitted shard would double-count every run and failure
//     sample) and detect gaps.
//   - skip bookkeeping (cells dropped by a binding memory budget), which is
//     a function of (grid, options) and therefore identical across shards.
//
// Determinism contract, end to end: run_campaign_streaming(grid, o) ==
// merge of run_campaign_shard over ANY contiguous partition of the admitted
// expansion == resume-from-any-checkpoint — byte for byte, pinned against
// CampaignResult::digest(). The argument is the same one the in-process
// engine already makes: every fold (integer sums, quantile-sketch bucket
// adds, wrapping scenario hash, lowest-index sample selection) is
// commutative and associative, so shard/checkpoint boundaries are just
// another partition of the scenario set. merge_shards still merges in
// ascending range order (= shard index) so even a hypothetical
// order-sensitive future field would stay deterministic.
//
// All integers little-endian fixed-width (util/binio.h); files written
// atomically (write-temp + rename) so a reader never observes a torn file.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/campaign.h"

namespace udring::exp {

/// One serialized partial campaign: header + provenance + aggregate.
struct ShardFile {
  /// "UDS2" little-endian; bumped in lockstep with kVersion on layout change.
  /// v2: cell keys carry the fault-axis plan (sim::FaultPlan).
  static constexpr std::uint32_t kMagic = 0x32534455u;
  static constexpr std::uint32_t kVersion = 2;

  /// Digest of grid expansion + result-affecting options (grid_fingerprint).
  std::uint64_t fingerprint = 0;
  /// Scenario count of the full admitted expansion this shard is a slice of.
  std::uint64_t scenario_total = 0;
  /// Covered contiguous range [range_begin, range_end) of that expansion.
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
  /// The sample caps the aggregate was folded under (also inside the
  /// fingerprint; stored plainly so merge_shards can bound its own folds
  /// without re-deriving options).
  std::uint64_t max_failures_per_cell = 0;
  std::uint64_t max_recorded_failures = 0;
  /// Memory-budget skip bookkeeping — a function of (grid, options), so
  /// identical in every shard of a sweep (the fingerprint guarantees it).
  std::uint64_t cells_skipped = 0;
  std::uint64_t scenarios_skipped = 0;
  std::vector<CellKey> skipped_cell_samples;
  /// The folded scenarios of [range_begin, range_end).
  CampaignAccumulator aggregate;
};

/// Fingerprint of everything that must match for two partial folds to be
/// mergeable: the admitted cell expansion (every CellKey, in order), seeds,
/// base_seed, the sim options, the sample caps and the memory budget.
/// Deliberately excludes workers / batch_lanes / checkpoint options — they
/// change how fast a shard runs, never what it computes.
[[nodiscard]] std::uint64_t grid_fingerprint(const CampaignGrid& grid,
                                             const CampaignOptions& options);

/// Serializes to the versioned binary layout.
[[nodiscard]] std::string encode_shard(const ShardFile& shard);

/// Parses and validates a shard image. `context` names the source (file
/// path) in error messages. Throws std::runtime_error on a bad magic,
/// unsupported version, truncation, trailing bytes, or any structurally
/// invalid field (unknown enum value, unsorted/duplicate cells, inconsistent
/// sketch state, range_begin > range_end, range beyond scenario_total).
[[nodiscard]] ShardFile decode_shard(std::string_view bytes,
                                     const std::string& context = {});

/// Atomically writes `shard` to `path` (write-temp + rename, see
/// util/io.h). Throws std::runtime_error when any IO step fails — a
/// checkpoint that silently failed to persist is worse than a crash.
void write_shard_file(const std::string& path, const ShardFile& shard);

/// Reads and decodes `path`. Throws std::runtime_error when the file is
/// missing, unreadable, or fails decode_shard validation.
[[nodiscard]] ShardFile load_shard_file(const std::string& path);

/// Runs contiguous slice `shard_index` of `shard_count` equal slices of the
/// grid's admitted expansion ([i·S/N, (i+1)·S/N) — the slices tile the
/// expansion exactly) and returns the folded shard. Honors
/// options.checkpoint_path / checkpoint_every_scenarios for durable
/// per-shard progress: the checkpoint file is this shard's own ShardFile at
/// a watermark, resumed on restart after fingerprint + range validation.
/// This is the worker side of the multi-process driver: N processes running
/// shards 0..N-1 and merging produce the same bytes as one process.
[[nodiscard]] ShardFile run_campaign_shard(const CampaignGrid& grid,
                                           const CampaignOptions& options,
                                           std::size_t shard_index,
                                           std::size_t shard_count);

/// Folds shard files into the final CampaignResult (streamed form; digest/
/// cells/failure samples byte-identical to the single-process run when the
/// shards tile the expansion). Validation, all fail-loud:
///   - at least one shard; all fingerprints, totals and caps identical
///   - ranges must not overlap — an overlapping pair (double-submitted
///     shard) would double-count runs and failure samples, so it is an
///     error naming both ranges, never a quiet merge
///   - unless `allow_partial`, the ranges must tile [0, scenario_total)
///     exactly (no gaps); with it, gaps merge and scenario_count reflects
///     only the covered scenarios
/// Cell sums merge with saturation checks (std::overflow_error on wrap).
/// Shards merge in ascending range order regardless of argument order.
[[nodiscard]] CampaignResult merge_shards(std::vector<ShardFile> shards,
                                          bool allow_partial = false);

}  // namespace udring::exp
