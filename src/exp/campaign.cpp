#include "exp/campaign.h"

#include <bit>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/generators.h"
#include "core/distance_sequence.h"
#include "util/bits.h"

namespace udring::exp {

std::string_view to_string(ConfigFamily family) noexcept {
  switch (family) {
    case ConfigFamily::RandomAny: return "random-any";
    case ConfigFamily::RandomAperiodic: return "random-aperiodic";
    case ConfigFamily::Packed: return "packed";
    case ConfigFamily::Periodic: return "periodic";
    case ConfigFamily::Uniform: return "uniform";
  }
  return "?";
}

std::vector<std::size_t> draw_homes(ConfigFamily family, std::size_t n,
                                    std::size_t k, std::size_t l, Rng& rng) {
  switch (family) {
    case ConfigFamily::RandomAny:
      return gen::random_homes(n, k, rng);
    case ConfigFamily::RandomAperiodic: {
      auto homes = gen::random_homes(n, k, rng);
      for (int i = 0; i < 64 && core::config_symmetry_degree(homes, n) != 1; ++i) {
        homes = gen::random_homes(n, k, rng);
      }
      return homes;
    }
    case ConfigFamily::Packed:
      return gen::packed_quarter_homes(n, k);
    case ConfigFamily::Periodic:
      return gen::periodic_homes(n, k, l, rng);
    case ConfigFamily::Uniform:
      return gen::uniform_homes(n, k);
  }
  return gen::random_homes(n, k, rng);
}

namespace {

/// Mirrors the generators' preconditions so expansion can skip infeasible
/// grid points instead of recording them as failures.
[[nodiscard]] bool feasible(ConfigFamily family, std::size_t n, std::size_t k,
                            std::size_t l) {
  if (k == 0 || n == 0 || k > n) return false;
  switch (family) {
    case ConfigFamily::Packed:
      return k <= ceil_div(n, 4);
    case ConfigFamily::Periodic:
      return l > 0 && n % l == 0 && k % l == 0 && k / l <= n / l &&
             (k / l > 1 || l == k);
    case ConfigFamily::RandomAny:
    case ConfigFamily::RandomAperiodic:
    case ConfigFamily::Uniform:
      return true;
  }
  return false;
}

/// Families that ignore `l` collapse every symmetry value to l = 1 so the
/// grid does not silently multiply identical scenarios.
[[nodiscard]] bool uses_symmetry(ConfigFamily family) noexcept {
  return family == ConfigFamily::Periodic;
}

/// Substream index for a scenario's randomness. Covers the *instance*
/// coordinates (family, n, k, l, repetition) but deliberately not the
/// algorithm or scheduler: every algorithm × scheduler cell of a grid is
/// measured on the same drawn configurations, so cross-algorithm and
/// cross-scheduler columns are paired comparisons, as in the paper's tables.
[[nodiscard]] std::uint64_t instance_key(const Scenario& s) noexcept {
  std::uint64_t key = 0;
  fold64(key, static_cast<std::uint64_t>(s.family));
  fold64(key, s.node_count);
  fold64(key, s.agent_count);
  fold64(key, s.symmetry);
  fold64(key, s.repetition);
  return key;
}

ScenarioResult run_one(const Scenario& scenario, const CampaignGrid& grid,
                       bool record_final_positions, core::RunContext& ctx) {
  ScenarioResult out;
  try {
    Rng rng = Rng(grid.base_seed).substream(instance_key(scenario));
    core::RunSpec spec;
    spec.node_count = scenario.node_count;
    spec.homes = draw_homes(scenario.family, scenario.node_count,
                            scenario.agent_count, scenario.symmetry, rng);
    spec.seed = rng();  // scheduler randomness, independent of the homes draw
    spec.scheduler = scenario.scheduler;
    spec.sim_options = grid.sim_options;
    const core::RunReport report = ctx.run(scenario.algorithm, spec);
    out.success = report.success;
    out.failure = report.failure;
    out.total_moves = report.total_moves;
    out.makespan = report.makespan;
    out.max_memory_bits = report.max_memory_bits;
    out.actions = report.result.actions;
    if (record_final_positions) out.final_positions = report.final_positions;
  } catch (const std::exception& error) {
    out.success = false;
    out.failure = std::string("exception: ") + error.what();
  }
  return out;
}

[[nodiscard]] std::string describe(const Scenario& s) {
  std::ostringstream text;
  text << core::to_string(s.algorithm) << ' ' << to_string(s.family) << ' '
       << sim::to_string(s.scheduler) << " n=" << s.node_count
       << " k=" << s.agent_count << " l=" << s.symmetry
       << " rep=" << s.repetition;
  return text.str();
}

}  // namespace

std::vector<Scenario> expand(const CampaignGrid& grid) {
  std::vector<std::pair<std::size_t, std::size_t>> points = grid.instances;
  if (points.empty()) {
    for (const std::size_t n : grid.node_counts) {
      for (const std::size_t k : grid.agent_counts) {
        points.emplace_back(n, k);
      }
    }
  }
  std::vector<Scenario> scenarios;
  for (const core::Algorithm algorithm : grid.algorithms) {
    for (const ConfigFamily family : grid.families) {
      for (const sim::SchedulerKind scheduler : grid.schedulers) {
        for (const auto& [n, k] : points) {
          bool first_symmetry = true;
          for (const std::size_t l : grid.symmetries) {
            const std::size_t effective_l = uses_symmetry(family) ? l : 1;
            if (!uses_symmetry(family) && !first_symmetry) continue;
            first_symmetry = false;
            if (!feasible(family, n, k, effective_l)) continue;
            for (std::uint64_t rep = 0; rep < grid.seeds; ++rep) {
              Scenario s;
              s.index = scenarios.size();
              s.algorithm = algorithm;
              s.family = family;
              s.scheduler = scheduler;
              s.node_count = n;
              s.agent_count = k;
              s.symmetry = effective_l;
              s.repetition = rep;
              scenarios.push_back(s);
            }
          }
        }
      }
    }
  }
  return scenarios;
}

Averages CellStats::averages() const {
  Averages avg;
  avg.runs = runs;
  const double denominator = runs > 0 ? static_cast<double>(runs) : 1.0;
  avg.moves = moves_sum / denominator;
  avg.makespan = makespan_sum / denominator;
  avg.memory_bits = memory_bits_sum / denominator;
  avg.success_rate = static_cast<double>(successes) / denominator;
  return avg;
}

const CellStats* CampaignResult::cell(const CellKey& key) const {
  const auto found = cells.find(key);
  return found == cells.end() ? nullptr : &found->second;
}

Averages CampaignResult::averages(const CellKey& key) const {
  const CellStats* stats = cell(key);
  return stats ? stats->averages() : Averages{};
}

namespace {
/// Init state for CampaignResult::digest — its own domain, deliberately
/// distinct from Rng::kSubstreamSalt so the result-hash and the
/// substream-derivation domains stay separated.
constexpr std::uint64_t kDigestSalt = 0xd16e57eeda7a600dULL;
}  // namespace

std::uint64_t CampaignResult::digest() const {
  std::uint64_t state = kDigestSalt;
  fold64(state, scenarios.size());
  for (const ScenarioResult& r : results) {
    fold64(state, r.success ? 1 : 0);
    fold64(state, r.total_moves);
    fold64(state, r.makespan);
    fold64(state, r.max_memory_bits);
    fold64(state, r.actions);
    fold64(state, r.final_positions.size());
    for (const std::size_t position : r.final_positions) fold64(state, position);
  }
  for (const auto& [key, stats] : cells) {
    fold64(state, static_cast<std::uint64_t>(key.algorithm));
    fold64(state, static_cast<std::uint64_t>(key.family));
    fold64(state, static_cast<std::uint64_t>(key.scheduler));
    fold64(state, key.node_count);
    fold64(state, key.agent_count);
    fold64(state, key.symmetry);
    fold64(state, stats.runs);
    fold64(state, stats.successes);
    fold64(state, std::bit_cast<std::uint64_t>(stats.moves_sum));
    fold64(state, std::bit_cast<std::uint64_t>(stats.makespan_sum));
    fold64(state, std::bit_cast<std::uint64_t>(stats.memory_bits_sum));
    fold64(state, stats.actions_sum);
  }
  fold64(state, failures);
  return state;
}

Table CampaignResult::summary_table() const {
  Table table({"algorithm", "family", "scheduler", "n", "k", "l", "runs",
               "ok", "moves", "time", "mem bits"});
  for (const auto& [key, stats] : cells) {
    const Averages avg = stats.averages();
    table.add_row({std::string(core::to_string(key.algorithm)),
                   std::string(to_string(key.family)),
                   std::string(sim::to_string(key.scheduler)),
                   Table::num(key.node_count), Table::num(key.agent_count),
                   Table::num(key.symmetry), Table::num(stats.runs),
                   Table::num(avg.success_rate * 100.0, 1) + "%",
                   Table::num(avg.moves, 1), Table::num(avg.makespan, 1),
                   Table::num(avg.memory_bits, 1)});
  }
  return table;
}

std::string CampaignResult::summary() const {
  std::ostringstream text;
  text << summary_table();
  text << "scenarios: " << scenarios.size() << "  failures: " << failures
       << "  workers: " << workers_used << "  digest: " << std::hex << digest()
       << std::dec << '\n';
  for (const std::string& sample : failure_samples) {
    text << "  FAIL " << sample << '\n';
  }
  return text.str();
}

CampaignResult run_campaign(const CampaignGrid& grid,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.scenarios = expand(grid);
  result.results.resize(result.scenarios.size());

  // One pooled RunContext per worker: every scenario a worker executes
  // reuses the same ExecutionState arena and scheduler cache, so a
  // 1000-instance campaign performs O(workers), not O(instances),
  // steady-state heap allocations. Scenario *outputs* still go to
  // index-owned slots — pooling changes where the arena lives, not the
  // determinism story.
  const std::size_t workers =
      resolve_workers(result.scenarios.size(), options.workers);
  std::vector<std::unique_ptr<core::RunContext>> contexts;
  contexts.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    contexts.push_back(std::make_unique<core::RunContext>());
  }
  result.workers_used = parallel_for_workers(
      result.scenarios.size(), workers, [&](std::size_t worker, std::size_t i) {
        result.results[i] =
            run_one(result.scenarios[i], grid, options.record_final_positions,
                    *contexts[worker]);
      });

  // Deterministic aggregation: fold in scenario-index order, so cell sums
  // (floating point, order-sensitive) are bitwise identical at any worker
  // count.
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const Scenario& s = result.scenarios[i];
    const ScenarioResult& r = result.results[i];
    CellStats& stats = result.cells[CellKey{s.algorithm, s.family, s.scheduler,
                                            s.node_count, s.agent_count,
                                            s.symmetry}];
    ++stats.runs;
    if (r.success) {
      ++stats.successes;
    } else {
      ++result.failures;
      if (result.failure_samples.size() < options.max_recorded_failures) {
        result.failure_samples.push_back(describe(s) + ": " + r.failure);
      }
    }
    stats.moves_sum += static_cast<double>(r.total_moves);
    stats.makespan_sum += static_cast<double>(r.makespan);
    stats.memory_bits_sum += static_cast<double>(r.max_memory_bits);
    stats.actions_sum += r.actions;
  }
  return result;
}

std::vector<std::size_t> scenario_homes(const CampaignGrid& grid,
                                        const Scenario& s) {
  // Must mirror run_one's draw exactly: the substream then the homes.
  Rng rng = Rng(grid.base_seed).substream(instance_key(s));
  return draw_homes(s.family, s.node_count, s.agent_count, s.symmetry, rng);
}

Averages measure_cell(core::Algorithm algorithm, ConfigFamily family,
                      std::size_t n, std::size_t k, std::size_t l,
                      std::size_t seeds, sim::SchedulerKind scheduler,
                      std::uint64_t base_seed) {
  CampaignGrid grid;
  grid.algorithms = {algorithm};
  grid.families = {family};
  grid.schedulers = {scheduler};
  grid.node_counts = {n};
  grid.agent_counts = {k};
  grid.symmetries = {l};
  grid.seeds = seeds;
  grid.base_seed = base_seed;
  const Averages avg = run_campaign(grid).averages(
      CellKey{algorithm, family, scheduler, n, k,
              family == ConfigFamily::Periodic ? l : 1});
  if (avg.runs == 0) {
    std::ostringstream what;
    what << "measure_cell: infeasible cell " << to_string(family) << " n=" << n
         << " k=" << k << " l=" << l;
    throw std::invalid_argument(what.str());
  }
  return avg;
}

}  // namespace udring::exp
