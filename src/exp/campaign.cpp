#include "exp/campaign.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/generators.h"
#include "core/distance_sequence.h"
#include "exp/shard.h"
#include "sim/batch_arena.h"
#include "util/bits.h"

namespace udring::exp {

std::string_view to_string(ConfigFamily family) noexcept {
  switch (family) {
    case ConfigFamily::RandomAny: return "random-any";
    case ConfigFamily::RandomAperiodic: return "random-aperiodic";
    case ConfigFamily::Packed: return "packed";
    case ConfigFamily::Periodic: return "periodic";
    case ConfigFamily::Uniform: return "uniform";
  }
  return "?";
}

std::vector<std::size_t> draw_homes(ConfigFamily family, std::size_t n,
                                    std::size_t k, std::size_t l, Rng& rng) {
  switch (family) {
    case ConfigFamily::RandomAny:
      return gen::random_homes(n, k, rng);
    case ConfigFamily::RandomAperiodic: {
      auto homes = gen::random_homes(n, k, rng);
      for (int i = 0; i < 64 && core::config_symmetry_degree(homes, n) != 1; ++i) {
        homes = gen::random_homes(n, k, rng);
      }
      return homes;
    }
    case ConfigFamily::Packed:
      return gen::packed_quarter_homes(n, k);
    case ConfigFamily::Periodic:
      return gen::periodic_homes(n, k, l, rng);
    case ConfigFamily::Uniform:
      return gen::uniform_homes(n, k);
  }
  return gen::random_homes(n, k, rng);
}

namespace {

/// Mirrors the generators' preconditions so expansion can skip infeasible
/// grid points instead of recording them as failures.
[[nodiscard]] bool feasible(ConfigFamily family, std::size_t n, std::size_t k,
                            std::size_t l) {
  if (k == 0 || n == 0 || k > n) return false;
  switch (family) {
    case ConfigFamily::Packed:
      return k <= ceil_div(n, 4);
    case ConfigFamily::Periodic:
      return l > 0 && n % l == 0 && k % l == 0 && k / l <= n / l &&
             (k / l > 1 || l == k);
    case ConfigFamily::RandomAny:
    case ConfigFamily::RandomAperiodic:
    case ConfigFamily::Uniform:
      return true;
  }
  return false;
}

/// Families that ignore `l` collapse every symmetry value to l = 1 so the
/// grid does not silently multiply identical scenarios.
[[nodiscard]] bool uses_symmetry(ConfigFamily family) noexcept {
  return family == ConfigFamily::Periodic;
}

/// The fault-axis analogue of feasible(): a plan that names a crash agent
/// ≥ k, or rewires a ring too small to have a coprime stride, is skipped at
/// that grid point instead of recorded as an exception failure.
[[nodiscard]] bool fault_feasible(const sim::FaultPlan& plan, std::size_t n,
                                  std::size_t k) {
  try {
    plan.validate(n, k);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// Substream index for a scenario's randomness. Covers the *instance*
/// coordinates (family, n, k, l, repetition) but deliberately not the
/// algorithm or scheduler: every algorithm × scheduler cell of a grid is
/// measured on the same drawn configurations, so cross-algorithm and
/// cross-scheduler columns are paired comparisons, as in the paper's tables.
[[nodiscard]] std::uint64_t instance_key(const Scenario& s) noexcept {
  std::uint64_t key = 0;
  fold64(key, static_cast<std::uint64_t>(s.family));
  fold64(key, s.node_count);
  fold64(key, s.agent_count);
  fold64(key, s.symmetry);
  fold64(key, s.repetition);
  return key;
}

/// Builds the RunSpec scenario `s` executes — the substream derivation both
/// engines (and scenario_homes) share: homes drawn from the instance-keyed
/// substream, then one extra draw for the scheduler seed.
[[nodiscard]] core::RunSpec make_scenario_spec(const Scenario& scenario,
                                               const CampaignGrid& grid) {
  Rng rng = Rng(grid.base_seed).substream(instance_key(scenario));
  core::RunSpec spec;
  spec.node_count = scenario.node_count;
  spec.homes = draw_homes(scenario.family, scenario.node_count,
                          scenario.agent_count, scenario.symmetry, rng);
  spec.seed = rng();  // scheduler randomness, independent of the homes draw
  spec.scheduler = scenario.scheduler;
  spec.sim_options = grid.sim_options;
  // The fault axis replaces (not merges with) any grid-wide baseline plan:
  // each cell's label must describe exactly what its runs execute under.
  if (!scenario.fault.empty()) spec.sim_options.faults = scenario.fault;
  spec.problem = scenario.problem;
  return spec;
}

[[nodiscard]] std::string describe(const Scenario& s) {
  std::ostringstream text;
  text << core::to_string(s.algorithm) << ' ' << to_string(s.family) << ' '
       << sim::to_string(s.scheduler) << " n=" << s.node_count
       << " k=" << s.agent_count << " l=" << s.symmetry
       << " rep=" << s.repetition;
  // Appended only for an explicit problem so historical descriptions (and
  // the failure-sample strings built from them) stay byte-identical.
  if (s.problem.kind != core::Problem::Auto) {
    text << " problem=" << core::to_string(s.problem);
  }
  if (!s.fault.empty()) text << " fault=" << s.fault.label();
  return text.str();
}

/// Init state for the per-scenario outcome hash (see hash_scenario); its own
/// domain, distinct from the digest and substream salts.
constexpr std::uint64_t kScenarioHashSalt = 0x5ce7a210ba5eedULL;

/// One scenario's contribution to CampaignResult::scenario_hash: a
/// well-mixed 64-bit word over (index, outcome). Contributions combine by
/// wrapping addition — commutative and associative — so any partition of
/// the scenario set over any workers sums to the same value; the index
/// inside the hash is what keeps the sum sensitive to results landing on
/// the wrong scenario.
[[nodiscard]] std::uint64_t hash_scenario(std::size_t index,
                                          const ScenarioResult& r) {
  std::uint64_t h = kScenarioHashSalt;
  fold64(h, index);
  fold64(h, r.success ? 1 : 0);
  fold64(h, r.total_moves);
  fold64(h, r.makespan);
  fold64(h, r.max_memory_bits);
  fold64(h, r.actions);
  const std::span<const std::size_t> positions = r.final_positions();
  fold64(h, positions.size());
  for (const std::size_t position : positions) fold64(h, position);
  return h;
}

using SampleBuffer = FailureSamples;

/// Would insert_bounded keep an entry with this index? Checked before the
/// description string is built, so a failure-heavy sweep formats only the
/// ≤ cap samples it keeps, not every failing scenario.
[[nodiscard]] bool wants_index(const SampleBuffer& buffer, std::size_t cap,
                               std::size_t index) noexcept {
  return cap != 0 && (buffer.size() < cap || index < buffer.back().first);
}

/// Inserts (index, text) into a buffer that keeps the `cap` lowest-index
/// entries in ascending order. Workers see scenarios in work-stealing order,
/// so "first N failures" must mean "lowest N indices", maintained by
/// bounded insertion — that is what makes failure samples identical at any
/// worker count and across aggregation paths.
void insert_bounded(SampleBuffer& buffer, std::size_t cap, std::size_t index,
                    std::string text) {
  if (cap == 0) return;
  auto at = std::upper_bound(
      buffer.begin(), buffer.end(), index,
      [](std::size_t i, const auto& entry) { return i < entry.first; });
  // Duplicate-index guard: a scenario contributes at most one failure, so an
  // index already present means the same sample is being folded twice — a
  // merge of overlapping partial folds. merge_shards rejects overlapping
  // ranges outright; this guard keeps the accumulator merge itself from ever
  // double-counting a sample (defense in depth, pinned in test_campaign.cpp).
  if (at != buffer.begin() && std::prev(at)->first == index) return;
  if (at == buffer.end() && buffer.size() >= cap) return;
  buffer.insert(at, {index, std::move(text)});
  if (buffer.size() > cap) buffer.pop_back();
}

/// Folds one scenario's measures into its cell accumulator — THE
/// aggregation step, shared verbatim by the materialized fold and the
/// streaming per-worker fold so the two paths cannot drift.
void fold_into_cell(CellStats& stats, const ScenarioResult& r) {
  ++stats.runs;
  if (r.success) ++stats.successes;
  stats.moves_sum += r.total_moves;
  stats.makespan_sum += r.makespan;
  stats.memory_bits_sum += r.max_memory_bits;
  stats.actions_sum += r.actions;
  stats.moves_sketch.add(r.total_moves);
  stats.makespan_sketch.add(r.makespan);
}

/// Samples one failing scenario into the cell and global buffers, building
/// the description string at most once — and only when one of the bounded
/// buffers will actually keep it. Shared by both aggregation paths.
void sample_failure(CellStats& stats, SampleBuffer& global, const Scenario& s,
                    const ScenarioResult& r, const CampaignOptions& options) {
  const bool cell_wants =
      wants_index(stats.failure_samples, options.max_failures_per_cell, s.index);
  const bool global_wants =
      wants_index(global, options.max_recorded_failures, s.index);
  if (!cell_wants && !global_wants) return;
  std::string description = describe(s) + ": " + std::string(r.failure());
  if (cell_wants) {
    insert_bounded(stats.failure_samples, options.max_failures_per_cell,
                   s.index, description);
  }
  if (global_wants) {
    insert_bounded(global, options.max_recorded_failures, s.index,
                   std::move(description));
  }
}

// ---- lane-batched execution (sim::BatchArena) -------------------------------

/// Auto heuristic bounds. Lanes pay off when a lane's whole arena (state,
/// queues, coroutine frames) is small enough that B of them stay cheap and
/// per-scenario setup/retirement is a visible fraction of the run — AND the
/// scenario stream is long enough to amortize warming B arenas instead of
/// one (B−1 extra n-sized buffer growths per worker, ~tens of µs, which a
/// 32-scenario smoke grid would pay as a net loss). Big rings and short
/// streams keep the scalar engine.
constexpr std::size_t kAutoLanes = 4;
constexpr std::size_t kAutoLaneMaxNodes = 4096;
constexpr std::size_t kAutoLaneMinScenariosPerWorker = 256;

/// The lane count the engine actually uses (see CampaignOptions::batch_lanes:
/// 0 = auto, 1 = scalar, >1 = explicit). A pure performance policy: results
/// are byte-identical whichever engine runs.
[[nodiscard]] std::size_t resolve_batch_lanes(const CampaignGrid& grid,
                                              const CampaignOptions& options,
                                              std::size_t scenario_count,
                                              std::size_t workers) {
  if (options.batch_lanes != 0) return options.batch_lanes;
  if (scenario_count < kAutoLaneMinScenariosPerWorker * workers) return 1;
  std::size_t max_n = 0;
  for (const auto& [n, k] : grid.instances) max_n = std::max(max_n, n);
  if (grid.instances.empty()) {
    for (const std::size_t n : grid.node_counts) max_n = std::max(max_n, n);
  }
  return max_n <= kAutoLaneMaxNodes ? kAutoLanes : 1;
}

/// Lean epilogue of the lane-batched engine: exactly the fields the
/// aggregation folds consume — core::finish_report's success/failure
/// derivation (oracle on quiescence, the action-limit text otherwise), the
/// three complexity measures, the action count, and the final positions only
/// when requested. None of the report-only extras (moves_by_phase, labels,
/// string copies) the scalar RunReport allocates and the campaign discards.
[[nodiscard]] ScenarioResult finish_scenario(const sim::GoalOracle& oracle,
                                             const sim::ExecutionState& state,
                                             const sim::RunResult& result,
                                             bool record_final_positions) {
  ScenarioResult out;
  if (result.quiescent()) {
    const sim::CheckResult goal = oracle.check_goal(state);
    out.success = goal.ok;
    if (!goal.ok) out.ensure_cold().failure = goal.reason;
  } else {
    out.success = false;
    out.ensure_cold().failure =
        "action limit reached (livelock or broken algorithm)";
  }
  out.total_moves = state.metrics().total_moves();
  out.makespan = state.metrics().makespan();
  out.max_memory_bits = state.metrics().max_memory_bits();
  out.actions = result.actions;
  if (record_final_positions) {
    out.ensure_cold().final_positions = state.staying_nodes();
  }
  return out;
}

[[nodiscard]] ScenarioResult exception_result(const std::exception& error) {
  ScenarioResult out;
  out.success = false;
  out.ensure_cold().failure = std::string("exception: ") + error.what();
  return out;
}

/// One scenario on the scalar (lanes == 1) engine, through the same lean
/// epilogue the lane-batched path uses — build the spec and instance, reset
/// the worker's pooled state, run, judge. `instance_slot` is worker-owned
/// storage keeping the Instance alive while ctx.state() references it
/// (RunContext::run would do this internally, but would also assemble a full
/// RunReport — moves_by_phase, sorted positions, label mapping — that the
/// campaign folds immediately discard).
ScenarioResult run_one(const Scenario& scenario, const CampaignGrid& grid,
                       bool record_final_positions, core::RunContext& ctx,
                       std::optional<sim::Instance>& instance_slot) {
  try {
    const core::RunSpec spec = make_scenario_spec(scenario, grid);
    const sim::Instance& instance =
        instance_slot.emplace(core::make_instance(scenario.algorithm, spec));
    ctx.state().reset(instance);
    sim::Scheduler& scheduler =
        ctx.scheduler(spec.scheduler, spec.seed, spec.homes.size());
    const sim::RunResult result = ctx.state().run(scheduler);
    return finish_scenario(ctx.oracle(scenario.algorithm, scenario.problem),
                           ctx.state(), result, record_final_positions);
  } catch (const std::exception& error) {
    return exception_result(error);
  }
}

/// The lane-batched scenario loop shared by both aggregation paths: each
/// worker owns a LanePool + BatchArena of `lanes` lanes and pumps scenario
/// indices from the shared work-stealing cursor, so up to workers × lanes
/// scenarios are in flight; finished lanes retire individually and refill
/// from the stream. emit(worker, scenario, result) is called once per
/// claimed scenario, on the claiming worker's thread, in lane-retirement
/// order — safe because every fold the callers apply is commutative and
/// index-keyed (the same argument that makes work stealing itself sound).
///
/// Exception parity with the scalar path, stage by stage: a scenario whose
/// spec/instance build throws (feed), whose run throws (an algorithm bug
/// surfacing through Behavior::resume), or whose oracle throws (retire) is
/// emitted as a failure with "exception: " + what — exactly run_one's catch.
/// Returns the worker count used.
std::size_t run_scenarios_batched(
    const CampaignGrid& grid, const std::vector<CellKey>& cells,
    std::size_t begin, std::size_t end, std::size_t workers, std::size_t lanes,
    bool record_final_positions,
    const std::function<void(std::size_t worker, const Scenario& s,
                             ScenarioResult&& r)>& emit) {
  // The claim cursor hands out local offsets in [0, end - begin); scenarios
  // keep their GLOBAL expansion index (begin + offset) everywhere — in the
  // substream derivation, the scenario hash and the failure samples — so a
  // range run is literally a subset of the whole-expansion run.
  const std::size_t count = end - begin;
  return parallel_pump_workers(
      count, workers,
      [&](std::size_t worker, const std::function<std::size_t()>& claim) {
        core::LanePool pool(lanes);
        sim::BatchArena arena(lanes);
        std::vector<Scenario> in_flight(lanes);

        const auto feed = [&](std::size_t lane) -> bool {
          for (;;) {
            const std::size_t local = claim();
            if (local >= count) return false;
            const std::size_t i = begin + local;
            const Scenario s = scenario_at(cells, grid.seeds, i);
            try {
              const core::RunSpec spec = make_scenario_spec(s, grid);
              sim::Scheduler& scheduler = pool.scheduler(
                  lane, spec.scheduler, spec.seed, spec.homes.size());
              const sim::Instance& instance =
                  pool.emplace_instance(lane, s.algorithm, spec);
              arena.load(lane, instance, scheduler, spec.scheduler, i);
              in_flight[lane] = s;
              return true;
            } catch (const std::exception& error) {
              emit(worker, s, exception_result(error));
              // The lane is still empty — claim the next scenario for it.
            }
          }
        };
        const auto retire = [&](std::size_t lane, std::uint64_t /*ticket*/,
                                const sim::RunResult& result) {
          const Scenario& s = in_flight[lane];
          ScenarioResult out;
          try {
            out = finish_scenario(pool.oracle(s.algorithm, s.problem),
                                  arena.state(lane), result,
                                  record_final_positions);
          } catch (const std::exception& error) {
            out = exception_result(error);
          }
          emit(worker, s, std::move(out));
        };
        const auto on_error = [&](std::size_t lane, std::uint64_t /*ticket*/,
                                  std::exception_ptr error) {
          try {
            std::rethrow_exception(std::move(error));
          } catch (const std::exception& e) {
            emit(worker, in_flight[lane], exception_result(e));
          }
          // A non-std::exception rethrow escapes to parallel_pump_workers,
          // which is where the scalar path sends it too.
        };
        arena.run(feed, retire, on_error);
      });
}

}  // namespace

std::vector<CellKey> expand_cells(const CampaignGrid& grid) {
  std::vector<std::pair<std::size_t, std::size_t>> points = grid.instances;
  if (points.empty()) {
    for (const std::size_t n : grid.node_counts) {
      for (const std::size_t k : grid.agent_counts) {
        points.emplace_back(n, k);
      }
    }
  }
  // The fault axis in canonical form: an empty axis means the single
  // fault-free plan, and every plan is normalized here so cell keys (and
  // hence digests and merge ordering) never depend on how the caller spelled
  // an equivalent plan.
  std::vector<sim::FaultPlan> fault_plans = grid.fault_plans;
  if (fault_plans.empty()) fault_plans.push_back({});
  for (sim::FaultPlan& plan : fault_plans) plan.normalize();
  std::vector<CellKey> cells;
  for (const core::Algorithm algorithm : grid.algorithms) {
    for (const core::ProblemSpec& problem : grid.problems) {
      for (const sim::FaultPlan& fault : fault_plans) {
        for (const ConfigFamily family : grid.families) {
          for (const sim::SchedulerKind scheduler : grid.schedulers) {
            for (const auto& [n, k] : points) {
              bool first_symmetry = true;
              for (const std::size_t l : grid.symmetries) {
                const std::size_t effective_l = uses_symmetry(family) ? l : 1;
                if (!uses_symmetry(family) && !first_symmetry) continue;
                first_symmetry = false;
                if (!feasible(family, n, k, effective_l)) continue;
                if (!fault_feasible(fault, n, k)) continue;
                cells.push_back(CellKey{algorithm, family, scheduler, n, k,
                                        effective_l, problem, fault});
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::size_t expansion_size(const CampaignGrid& grid) {
  return expand_cells(grid).size() * grid.seeds;
}

Scenario scenario_at(const std::vector<CellKey>& cells, std::size_t seeds,
                     std::size_t index) {
  const CellKey& cell = cells.at(index / seeds);
  Scenario s;
  s.index = index;
  s.algorithm = cell.algorithm;
  s.family = cell.family;
  s.scheduler = cell.scheduler;
  s.node_count = cell.node_count;
  s.agent_count = cell.agent_count;
  s.symmetry = cell.symmetry;
  s.repetition = index % seeds;
  s.problem = cell.problem;
  s.fault = cell.fault;
  return s;
}

std::vector<Scenario> expand(const CampaignGrid& grid) {
  // Built over the compact cell expansion so the materialized and streaming
  // paths agree on scenario order by construction.
  const std::vector<CellKey> cells = expand_cells(grid);
  std::vector<Scenario> scenarios;
  scenarios.reserve(cells.size() * grid.seeds);
  for (std::size_t i = 0; i < cells.size() * grid.seeds; ++i) {
    scenarios.push_back(scenario_at(cells, grid.seeds, i));
  }
  return scenarios;
}

Averages CellStats::averages() const {
  Averages avg;
  avg.runs = runs;
  const double denominator = runs > 0 ? static_cast<double>(runs) : 1.0;
  avg.moves = static_cast<double>(moves_sum) / denominator;
  avg.makespan = static_cast<double>(makespan_sum) / denominator;
  avg.memory_bits = static_cast<double>(memory_bits_sum) / denominator;
  avg.success_rate = static_cast<double>(successes) / denominator;
  avg.moves_p50 = moves_sketch.quantile(0.50);
  avg.moves_p90 = moves_sketch.quantile(0.90);
  avg.moves_p99 = moves_sketch.quantile(0.99);
  avg.makespan_p50 = makespan_sketch.quantile(0.50);
  avg.makespan_p90 = makespan_sketch.quantile(0.90);
  avg.makespan_p99 = makespan_sketch.quantile(0.99);
  return avg;
}

namespace {
/// Checked accumulate for the merge paths: cross-machine sweeps can push a
/// sum past 2^64, and a wrapped sum reports plausible-looking garbage —
/// fail loudly instead, naming the field.
void merge_sum(std::uint64_t& into, std::uint64_t from, const char* field) {
  const std::uint64_t sum = into + from;
  if (sum < into) {
    throw std::overflow_error(std::string("campaign merge: ") + field +
                              " overflows 64 bits (the merged sweep is too "
                              "large for exact sums; split the report)");
  }
  into = sum;
}
}  // namespace

void merge_cell_stats(CellStats& into, CellStats&& from,
                      std::size_t max_failures_per_cell) {
  std::uint64_t runs = into.runs;
  merge_sum(runs, from.runs, "runs");
  into.runs = static_cast<std::size_t>(runs);
  std::uint64_t successes = into.successes;
  merge_sum(successes, from.successes, "successes");
  into.successes = static_cast<std::size_t>(successes);
  merge_sum(into.moves_sum, from.moves_sum, "moves_sum");
  merge_sum(into.makespan_sum, from.makespan_sum, "makespan_sum");
  merge_sum(into.memory_bits_sum, from.memory_bits_sum, "memory_bits_sum");
  merge_sum(into.actions_sum, from.actions_sum, "actions_sum");
  into.moves_sketch.merge(from.moves_sketch);
  into.makespan_sketch.merge(from.makespan_sketch);
  for (auto& [index, text] : from.failure_samples) {
    insert_bounded(into.failure_samples, max_failures_per_cell, index,
                   std::move(text));
  }
}

void merge_accumulators(CampaignAccumulator& into, CampaignAccumulator&& from,
                        std::size_t max_failures_per_cell,
                        std::size_t max_recorded_failures) {
  into.scenario_hash += from.scenario_hash;  // wrapping by design
  std::uint64_t failures = into.failures;
  merge_sum(failures, from.failures, "failures");
  into.failures = static_cast<std::size_t>(failures);
  for (auto& [key, stats] : from.cells) {
    merge_cell_stats(into.cells[key], std::move(stats), max_failures_per_cell);
  }
  for (auto& [index, text] : from.failure_samples) {
    insert_bounded(into.failure_samples, max_recorded_failures, index,
                   std::move(text));
  }
}

const CellStats* CampaignResult::cell(const CellKey& key) const {
  const auto found = cells.find(key);
  return found == cells.end() ? nullptr : &found->second;
}

Averages CampaignResult::averages(const CellKey& key) const {
  const CellStats* stats = cell(key);
  return stats ? stats->averages() : Averages{};
}

namespace {
/// Init state for CampaignResult::digest — its own domain, deliberately
/// distinct from Rng::kSubstreamSalt so the result-hash and the
/// substream-derivation domains stay separated.
constexpr std::uint64_t kDigestSalt = 0xd16e57eeda7a600dULL;
}  // namespace

std::uint64_t CampaignResult::digest() const {
  std::uint64_t state = kDigestSalt;
  fold64(state, scenario_count);
  // The per-scenario component is the cached commutative hash-sum: the
  // streaming path has no results vector to walk, and the materialized path
  // computes the identical sum during aggregation.
  fold64(state, scenario_hash);
  for (const auto& [key, stats] : cells) {
    fold64(state, static_cast<std::uint64_t>(key.algorithm));
    fold64(state, static_cast<std::uint64_t>(key.family));
    fold64(state, static_cast<std::uint64_t>(key.scheduler));
    fold64(state, key.node_count);
    fold64(state, key.agent_count);
    fold64(state, key.symmetry);
    // Folded only for an explicit problem: the default Auto axis reproduces
    // the pre-problem digest bytes (BENCH_campaign.json et al. stay pinned).
    if (key.problem.kind != core::Problem::Auto) {
      fold64(state, static_cast<std::uint64_t>(key.problem.kind));
      fold64(state, key.problem.gather_g);
    }
    // Same contract for the fault axis: empty plans fold nothing, so
    // fault-free campaigns keep their pre-fault digest bytes.
    if (!key.fault.empty()) key.fault.fold_into(state);
    fold64(state, stats.runs);
    fold64(state, stats.successes);
    fold64(state, stats.moves_sum);
    fold64(state, stats.makespan_sum);
    fold64(state, stats.memory_bits_sum);
    fold64(state, stats.actions_sum);
  }
  fold64(state, failures);
  fold64(state, cells_skipped);
  fold64(state, scenarios_skipped);
  return state;
}

namespace {
/// "p50/p90/p99" tail-statistics cell, compact (one decimal only when the
/// interpolated estimate is fractional).
[[nodiscard]] std::string quantile_triple(double p50, double p90, double p99) {
  const auto one = [](double v) {
    return v == static_cast<double>(static_cast<std::uint64_t>(v))
               ? Table::num(static_cast<std::size_t>(v))
               : Table::num(v, 1);
  };
  return one(p50) + "/" + one(p90) + "/" + one(p99);
}
}  // namespace

Table CampaignResult::summary_table() const {
  // The "problem" and "fault" columns appear only when some cell carries an
  // explicit problem / a non-empty fault plan, so all-Auto fault-free
  // campaigns render their historical layout.
  bool show_problem = false;
  bool show_fault = false;
  for (const auto& [key, stats] : cells) {
    if (key.problem.kind != core::Problem::Auto) show_problem = true;
    if (!key.fault.empty()) show_fault = true;
  }
  std::vector<std::string> headers = {
      "algorithm", "family", "scheduler", "n", "k", "l", "runs", "ok",
      "moves", "moves p50/90/99", "time", "time p50/90/99", "mem bits"};
  if (show_fault) headers.insert(headers.begin() + 1, "fault");
  if (show_problem) headers.insert(headers.begin() + 1, "problem");
  Table table(std::move(headers));
  for (const auto& [key, stats] : cells) {
    const Averages avg = stats.averages();
    std::vector<std::string> row = {
        std::string(core::to_string(key.algorithm)),
        std::string(to_string(key.family)),
        std::string(sim::to_string(key.scheduler)), Table::num(key.node_count),
        Table::num(key.agent_count), Table::num(key.symmetry),
        Table::num(stats.runs), Table::num(avg.success_rate * 100.0, 1) + "%",
        Table::num(avg.moves, 1), quantile_triple(avg.moves_p50, avg.moves_p90,
                                                  avg.moves_p99),
        Table::num(avg.makespan, 1),
        quantile_triple(avg.makespan_p50, avg.makespan_p90, avg.makespan_p99),
        Table::num(avg.memory_bits, 1)};
    if (show_fault) {
      row.insert(row.begin() + 1,
                 key.fault.empty() ? "none" : key.fault.label());
    }
    if (show_problem) row.insert(row.begin() + 1, core::to_string(key.problem));
    table.add_row(std::move(row));
  }
  return table;
}

std::string CampaignResult::summary() const {
  std::ostringstream text;
  text << summary_table();
  text << "scenarios: " << scenario_count << "  failures: " << failures
       << "  workers: " << workers_used << "  digest: " << std::hex << digest()
       << std::dec << '\n';
  if (cells_skipped != 0) {
    text << "SKIPPED " << cells_skipped << " cell(s) / " << scenarios_skipped
         << " scenario(s) over the memory budget";
    for (const CellKey& key : skipped_cell_samples) {
      text << "\n  skipped " << core::to_string(key.algorithm) << ' '
           << to_string(key.family) << ' ' << sim::to_string(key.scheduler)
           << " n=" << key.node_count << " k=" << key.agent_count
           << " l=" << key.symmetry;
      if (key.problem.kind != core::Problem::Auto) {
        text << " problem=" << core::to_string(key.problem);
      }
      if (!key.fault.empty()) text << " fault=" << key.fault.label();
    }
    text << '\n';
  }
  for (const std::string& sample : failure_samples) {
    text << "  FAIL " << sample << '\n';
  }
  return text.str();
}

CampaignResult run_campaign(const CampaignGrid& grid,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.scenarios = expand(grid);
  result.results.resize(result.scenarios.size());
  result.scenario_count = result.scenarios.size();

  // One pooled RunContext per worker: every scenario a worker executes
  // reuses the same ExecutionState arena and scheduler cache, so a
  // 1000-instance campaign performs O(workers), not O(instances),
  // steady-state heap allocations. Scenario *outputs* still go to
  // index-owned slots — pooling changes where the arena lives, not the
  // determinism story. With batch_lanes ≠ 1 the pooled arena is a
  // BatchArena of lanes instead of one RunContext — same outputs, same
  // slots, B scenarios in flight per worker.
  const std::size_t workers =
      resolve_workers(result.scenarios.size(), options.workers);
  const std::size_t lanes =
      resolve_batch_lanes(grid, options, result.scenarios.size(), workers);
  if (lanes > 1) {
    result.workers_used = run_scenarios_batched(
        grid, expand_cells(grid), 0, result.scenarios.size(), workers, lanes,
        options.record_final_positions,
        [&](std::size_t /*worker*/, const Scenario& s, ScenarioResult&& r) {
          result.results[s.index] = std::move(r);
        });
  } else {
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    std::vector<std::optional<sim::Instance>> instances(workers);
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    result.workers_used = parallel_for_workers(
        result.scenarios.size(), workers,
        [&](std::size_t worker, std::size_t i) {
          result.results[i] = run_one(result.scenarios[i], grid,
                                      options.record_final_positions,
                                      *contexts[worker], instances[worker]);
        });
  }

  // Aggregation in scenario-index order. Every fold below is
  // order-independent anyway (integer sums, commutative hash-sum,
  // lowest-index sampling) — the same folds the streaming path applies
  // per worker — so this loop and a streaming merge produce identical
  // bytes; walking in index order here is just the natural iteration.
  SampleBuffer samples;
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const Scenario& s = result.scenarios[i];
    const ScenarioResult& r = result.results[i];
    result.scenario_hash += hash_scenario(i, r);
    CellStats& stats = result.cells[CellKey{s.algorithm, s.family, s.scheduler,
                                            s.node_count, s.agent_count,
                                            s.symmetry, s.problem, s.fault}];
    fold_into_cell(stats, r);
    if (!r.success) {
      ++result.failures;
      sample_failure(stats, samples, s, r, options);
    }
  }
  result.failure_samples.reserve(samples.size());
  for (auto& entry : samples) {
    result.failure_samples.push_back(std::move(entry.second));
  }
  return result;
}

std::size_t streaming_cell_footprint_bytes(
    const CampaignOptions& options) noexcept {
  // A map node (key + stats + tree overhead) plus an allowance per sampled
  // failure string (description + heap block). Deliberately generous: the
  // budget exists to keep a sweep from exhausting the host, not to
  // byte-count the allocator.
  constexpr std::size_t kNodeBytes =
      sizeof(CellKey) + sizeof(CellStats) + 64;  // red-black node overhead
  constexpr std::size_t kSampleBytes = 160;
  // The two quantile sketches store sparse (bucket, count) entries on the
  // heap. A cell's sketches hold at most one entry per distinct measured
  // value, and the sub-bucketed log universe collapses large values, so a
  // flat allowance sized for a few hundred distinct buckets per cell covers
  // realistic sweeps with the same generosity as the rest of the estimate.
  constexpr std::size_t kSketchBytes = 2048;
  return kNodeBytes + kSketchBytes +
         options.max_failures_per_cell * kSampleBytes;
}

AdmittedExpansion admit_cells(const CampaignGrid& grid,
                              const CampaignOptions& options) {
  // Budget enforcement happens before any scenario runs, on the compact
  // expansion: cells are admitted in expansion order until one aggregation
  // store would exceed the budget, the rest are skipped and reported. The
  // admitted set depends only on (grid, options) — never on the worker
  // count, nor on shard or checkpoint boundaries — so the digest contract
  // survives a binding budget under any partition of the work.
  AdmittedExpansion out;
  out.cells = expand_cells(grid);
  std::size_t admitted = out.cells.size();
  if (options.memory_budget_bytes != 0) {
    admitted = std::min(
        admitted,
        options.memory_budget_bytes / streaming_cell_footprint_bytes(options));
  }
  out.cells_skipped = out.cells.size() - admitted;
  out.scenarios_skipped = out.cells_skipped * grid.seeds;
  for (std::size_t c = admitted;
       c < out.cells.size() && out.skipped_cell_samples.size() < 8; ++c) {
    out.skipped_cell_samples.push_back(out.cells[c]);
  }
  out.cells.resize(admitted);
  return out;
}

std::size_t admitted_scenario_count(const CampaignGrid& grid,
                                    const CampaignOptions& options) {
  return admit_cells(grid, options).cells.size() * grid.seeds;
}

std::size_t run_campaign_range(const CampaignGrid& grid,
                               const CampaignOptions& options,
                               std::size_t begin, std::size_t end,
                               CampaignAccumulator& into) {
  const AdmittedExpansion admitted = admit_cells(grid, options);
  const std::vector<CellKey>& cells = admitted.cells;
  const std::size_t total = cells.size() * grid.seeds;
  if (begin > end || end > total) {
    std::ostringstream what;
    what << "run_campaign_range: range [" << begin << ", " << end
         << ") outside the admitted expansion of " << total << " scenarios";
    throw std::invalid_argument(what.str());
  }
  if (begin == end) return 0;
  const std::size_t count = end - begin;
  const std::size_t workers = resolve_workers(count, options.workers);

  // Per-worker state: the pooled RunContext (as in the materialized path)
  // plus the streaming path's whole point — a private CampaignAccumulator
  // the worker folds each ScenarioResult into the moment the scenario
  // finishes. The result is discarded right after; nothing per-scenario
  // survives the fold.
  std::vector<CampaignAccumulator> accumulators(workers);

  // The worker-local fold both engines below share: commutative and
  // index-keyed, so per-lane retirement order (batched) and index-claim
  // order (scalar) land on the same accumulator bytes. Scenario indices are
  // GLOBAL expansion indices throughout, which is what lets a range run
  // merge byte-identically into the whole.
  const auto fold = [&](std::size_t worker, const Scenario& s,
                        const ScenarioResult& r) {
    CampaignAccumulator& acc = accumulators[worker];
    acc.scenario_hash += hash_scenario(s.index, r);
    CellStats& stats = acc.cells[cells[s.index / grid.seeds]];
    fold_into_cell(stats, r);
    if (!r.success) {
      ++acc.failures;
      sample_failure(stats, acc.failure_samples, s, r, options);
    }
  };

  const std::size_t lanes = resolve_batch_lanes(grid, options, count, workers);
  std::size_t used = 0;
  if (lanes > 1) {
    used = run_scenarios_batched(
        grid, cells, begin, end, workers, lanes,
        /*record_final_positions=*/false,
        [&](std::size_t worker, const Scenario& s, ScenarioResult&& r) {
          fold(worker, s, r);
        });
  } else {
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    std::vector<std::optional<sim::Instance>> instances(workers);
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    used = parallel_for_workers(
        count, workers, [&](std::size_t worker, std::size_t local) {
          const Scenario s = scenario_at(cells, grid.seeds, begin + local);
          fold(worker, s,
               run_one(s, grid, /*record_final_positions=*/false,
                       *contexts[worker], instances[worker]));
        });
  }

  // Merge. Work stealing hands workers arbitrary scenario subsets, so every
  // fold inside merge_accumulators is commutative-exact: integer sums,
  // wrapping hash-sum, lowest-index bounded sample merges. Any worker count
  // — and the materialized index-order fold — lands on the same bytes.
  for (CampaignAccumulator& acc : accumulators) {
    merge_accumulators(into, std::move(acc), options.max_failures_per_cell,
                       options.max_recorded_failures);
  }
  return used;
}

void finalize_streaming_result(CampaignResult& result,
                               CampaignAccumulator&& merged) {
  result.cells = std::move(merged.cells);
  result.scenario_hash = merged.scenario_hash;
  result.failures = merged.failures;
  result.failure_samples.clear();
  result.failure_samples.reserve(merged.failure_samples.size());
  for (auto& [index, text] : merged.failure_samples) {
    static_cast<void>(index);
    result.failure_samples.push_back(std::move(text));
  }
}

CampaignResult run_campaign_streaming(const CampaignGrid& grid,
                                      const CampaignOptions& options) {
  // The whole-expansion streaming run is shard 0 of 1: the range engine and
  // the checkpoint loop live behind run_campaign_shard (exp/shard.cpp), so
  // in-process, resumed and multi-process sweeps share one code path — that
  // sharing IS the byte-identity argument.
  std::vector<ShardFile> shards;
  shards.push_back(run_campaign_shard(grid, options, 0, 1));
  CampaignResult result = merge_shards(std::move(shards));
  result.workers_used = resolve_workers(result.scenario_count, options.workers);
  return result;
}

std::vector<std::size_t> scenario_homes(const CampaignGrid& grid,
                                        const Scenario& s) {
  // Must mirror run_one's draw exactly: the substream then the homes.
  Rng rng = Rng(grid.base_seed).substream(instance_key(s));
  return draw_homes(s.family, s.node_count, s.agent_count, s.symmetry, rng);
}

Averages measure_cell(core::Algorithm algorithm, ConfigFamily family,
                      std::size_t n, std::size_t k, std::size_t l,
                      std::size_t seeds, sim::SchedulerKind scheduler,
                      std::uint64_t base_seed) {
  CampaignGrid grid;
  grid.algorithms = {algorithm};
  grid.families = {family};
  grid.schedulers = {scheduler};
  grid.node_counts = {n};
  grid.agent_counts = {k};
  grid.symmetries = {l};
  grid.seeds = seeds;
  grid.base_seed = base_seed;
  // Cells are all a measurement needs, so take the streaming path: the
  // bench binaries' grid sweeps then run in O(cells) memory at any n
  // (identical averages — the two paths share the aggregation fold).
  const Averages avg = run_campaign_streaming(grid).averages(
      CellKey{algorithm, family, scheduler, n, k,
              family == ConfigFamily::Periodic ? l : 1});
  if (avg.runs == 0) {
    std::ostringstream what;
    what << "measure_cell: infeasible cell " << to_string(family) << " n=" << n
         << " k=" << k << " l=" << l;
    throw std::invalid_argument(what.str());
  }
  return avg;
}

}  // namespace udring::exp
