#include "exp/campaign.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "config/generators.h"
#include "core/distance_sequence.h"
#include "sim/batch_arena.h"
#include "util/bits.h"

namespace udring::exp {

std::string_view to_string(ConfigFamily family) noexcept {
  switch (family) {
    case ConfigFamily::RandomAny: return "random-any";
    case ConfigFamily::RandomAperiodic: return "random-aperiodic";
    case ConfigFamily::Packed: return "packed";
    case ConfigFamily::Periodic: return "periodic";
    case ConfigFamily::Uniform: return "uniform";
  }
  return "?";
}

std::vector<std::size_t> draw_homes(ConfigFamily family, std::size_t n,
                                    std::size_t k, std::size_t l, Rng& rng) {
  switch (family) {
    case ConfigFamily::RandomAny:
      return gen::random_homes(n, k, rng);
    case ConfigFamily::RandomAperiodic: {
      auto homes = gen::random_homes(n, k, rng);
      for (int i = 0; i < 64 && core::config_symmetry_degree(homes, n) != 1; ++i) {
        homes = gen::random_homes(n, k, rng);
      }
      return homes;
    }
    case ConfigFamily::Packed:
      return gen::packed_quarter_homes(n, k);
    case ConfigFamily::Periodic:
      return gen::periodic_homes(n, k, l, rng);
    case ConfigFamily::Uniform:
      return gen::uniform_homes(n, k);
  }
  return gen::random_homes(n, k, rng);
}

namespace {

/// Mirrors the generators' preconditions so expansion can skip infeasible
/// grid points instead of recording them as failures.
[[nodiscard]] bool feasible(ConfigFamily family, std::size_t n, std::size_t k,
                            std::size_t l) {
  if (k == 0 || n == 0 || k > n) return false;
  switch (family) {
    case ConfigFamily::Packed:
      return k <= ceil_div(n, 4);
    case ConfigFamily::Periodic:
      return l > 0 && n % l == 0 && k % l == 0 && k / l <= n / l &&
             (k / l > 1 || l == k);
    case ConfigFamily::RandomAny:
    case ConfigFamily::RandomAperiodic:
    case ConfigFamily::Uniform:
      return true;
  }
  return false;
}

/// Families that ignore `l` collapse every symmetry value to l = 1 so the
/// grid does not silently multiply identical scenarios.
[[nodiscard]] bool uses_symmetry(ConfigFamily family) noexcept {
  return family == ConfigFamily::Periodic;
}

/// Substream index for a scenario's randomness. Covers the *instance*
/// coordinates (family, n, k, l, repetition) but deliberately not the
/// algorithm or scheduler: every algorithm × scheduler cell of a grid is
/// measured on the same drawn configurations, so cross-algorithm and
/// cross-scheduler columns are paired comparisons, as in the paper's tables.
[[nodiscard]] std::uint64_t instance_key(const Scenario& s) noexcept {
  std::uint64_t key = 0;
  fold64(key, static_cast<std::uint64_t>(s.family));
  fold64(key, s.node_count);
  fold64(key, s.agent_count);
  fold64(key, s.symmetry);
  fold64(key, s.repetition);
  return key;
}

/// Builds the RunSpec scenario `s` executes — the substream derivation both
/// engines (and scenario_homes) share: homes drawn from the instance-keyed
/// substream, then one extra draw for the scheduler seed.
[[nodiscard]] core::RunSpec make_scenario_spec(const Scenario& scenario,
                                               const CampaignGrid& grid) {
  Rng rng = Rng(grid.base_seed).substream(instance_key(scenario));
  core::RunSpec spec;
  spec.node_count = scenario.node_count;
  spec.homes = draw_homes(scenario.family, scenario.node_count,
                          scenario.agent_count, scenario.symmetry, rng);
  spec.seed = rng();  // scheduler randomness, independent of the homes draw
  spec.scheduler = scenario.scheduler;
  spec.sim_options = grid.sim_options;
  spec.problem = scenario.problem;
  return spec;
}

[[nodiscard]] std::string describe(const Scenario& s) {
  std::ostringstream text;
  text << core::to_string(s.algorithm) << ' ' << to_string(s.family) << ' '
       << sim::to_string(s.scheduler) << " n=" << s.node_count
       << " k=" << s.agent_count << " l=" << s.symmetry
       << " rep=" << s.repetition;
  // Appended only for an explicit problem so historical descriptions (and
  // the failure-sample strings built from them) stay byte-identical.
  if (s.problem.kind != core::Problem::Auto) {
    text << " problem=" << core::to_string(s.problem);
  }
  return text.str();
}

/// Init state for the per-scenario outcome hash (see hash_scenario); its own
/// domain, distinct from the digest and substream salts.
constexpr std::uint64_t kScenarioHashSalt = 0x5ce7a210ba5eedULL;

/// One scenario's contribution to CampaignResult::scenario_hash: a
/// well-mixed 64-bit word over (index, outcome). Contributions combine by
/// wrapping addition — commutative and associative — so any partition of
/// the scenario set over any workers sums to the same value; the index
/// inside the hash is what keeps the sum sensitive to results landing on
/// the wrong scenario.
[[nodiscard]] std::uint64_t hash_scenario(std::size_t index,
                                          const ScenarioResult& r) {
  std::uint64_t h = kScenarioHashSalt;
  fold64(h, index);
  fold64(h, r.success ? 1 : 0);
  fold64(h, r.total_moves);
  fold64(h, r.makespan);
  fold64(h, r.max_memory_bits);
  fold64(h, r.actions);
  const std::span<const std::size_t> positions = r.final_positions();
  fold64(h, positions.size());
  for (const std::size_t position : positions) fold64(h, position);
  return h;
}

using SampleBuffer = std::vector<std::pair<std::size_t, std::string>>;

/// Would insert_bounded keep an entry with this index? Checked before the
/// description string is built, so a failure-heavy sweep formats only the
/// ≤ cap samples it keeps, not every failing scenario.
[[nodiscard]] bool wants_index(const SampleBuffer& buffer, std::size_t cap,
                               std::size_t index) noexcept {
  return cap != 0 && (buffer.size() < cap || index < buffer.back().first);
}

/// Inserts (index, text) into a buffer that keeps the `cap` lowest-index
/// entries in ascending order. Workers see scenarios in work-stealing order,
/// so "first N failures" must mean "lowest N indices", maintained by
/// bounded insertion — that is what makes failure samples identical at any
/// worker count and across aggregation paths.
void insert_bounded(SampleBuffer& buffer, std::size_t cap, std::size_t index,
                    std::string text) {
  if (cap == 0) return;
  auto at = std::upper_bound(
      buffer.begin(), buffer.end(), index,
      [](std::size_t i, const auto& entry) { return i < entry.first; });
  if (at == buffer.end() && buffer.size() >= cap) return;
  buffer.insert(at, {index, std::move(text)});
  if (buffer.size() > cap) buffer.pop_back();
}

/// Folds one scenario's measures into its cell accumulator — THE
/// aggregation step, shared verbatim by the materialized fold and the
/// streaming per-worker fold so the two paths cannot drift.
void fold_into_cell(CellStats& stats, const ScenarioResult& r) {
  ++stats.runs;
  if (r.success) ++stats.successes;
  stats.moves_sum += r.total_moves;
  stats.makespan_sum += r.makespan;
  stats.memory_bits_sum += r.max_memory_bits;
  stats.actions_sum += r.actions;
}

/// Samples one failing scenario into the cell and global buffers, building
/// the description string at most once — and only when one of the bounded
/// buffers will actually keep it. Shared by both aggregation paths.
void sample_failure(CellStats& stats, SampleBuffer& global, const Scenario& s,
                    const ScenarioResult& r, const CampaignOptions& options) {
  const bool cell_wants =
      wants_index(stats.failure_samples, options.max_failures_per_cell, s.index);
  const bool global_wants =
      wants_index(global, options.max_recorded_failures, s.index);
  if (!cell_wants && !global_wants) return;
  std::string description = describe(s) + ": " + std::string(r.failure());
  if (cell_wants) {
    insert_bounded(stats.failure_samples, options.max_failures_per_cell,
                   s.index, description);
  }
  if (global_wants) {
    insert_bounded(global, options.max_recorded_failures, s.index,
                   std::move(description));
  }
}

// ---- lane-batched execution (sim::BatchArena) -------------------------------

/// Auto heuristic bounds. Lanes pay off when a lane's whole arena (state,
/// queues, coroutine frames) is small enough that B of them stay cheap and
/// per-scenario setup/retirement is a visible fraction of the run — AND the
/// scenario stream is long enough to amortize warming B arenas instead of
/// one (B−1 extra n-sized buffer growths per worker, ~tens of µs, which a
/// 32-scenario smoke grid would pay as a net loss). Big rings and short
/// streams keep the scalar engine.
constexpr std::size_t kAutoLanes = 4;
constexpr std::size_t kAutoLaneMaxNodes = 4096;
constexpr std::size_t kAutoLaneMinScenariosPerWorker = 256;

/// The lane count the engine actually uses (see CampaignOptions::batch_lanes:
/// 0 = auto, 1 = scalar, >1 = explicit). A pure performance policy: results
/// are byte-identical whichever engine runs.
[[nodiscard]] std::size_t resolve_batch_lanes(const CampaignGrid& grid,
                                              const CampaignOptions& options,
                                              std::size_t scenario_count,
                                              std::size_t workers) {
  if (options.batch_lanes != 0) return options.batch_lanes;
  if (scenario_count < kAutoLaneMinScenariosPerWorker * workers) return 1;
  std::size_t max_n = 0;
  for (const auto& [n, k] : grid.instances) max_n = std::max(max_n, n);
  if (grid.instances.empty()) {
    for (const std::size_t n : grid.node_counts) max_n = std::max(max_n, n);
  }
  return max_n <= kAutoLaneMaxNodes ? kAutoLanes : 1;
}

/// Lean epilogue of the lane-batched engine: exactly the fields the
/// aggregation folds consume — core::finish_report's success/failure
/// derivation (oracle on quiescence, the action-limit text otherwise), the
/// three complexity measures, the action count, and the final positions only
/// when requested. None of the report-only extras (moves_by_phase, labels,
/// string copies) the scalar RunReport allocates and the campaign discards.
[[nodiscard]] ScenarioResult finish_scenario(const sim::GoalOracle& oracle,
                                             const sim::ExecutionState& state,
                                             const sim::RunResult& result,
                                             bool record_final_positions) {
  ScenarioResult out;
  if (result.quiescent()) {
    const sim::CheckResult goal = oracle.check_goal(state);
    out.success = goal.ok;
    if (!goal.ok) out.ensure_cold().failure = goal.reason;
  } else {
    out.success = false;
    out.ensure_cold().failure =
        "action limit reached (livelock or broken algorithm)";
  }
  out.total_moves = state.metrics().total_moves();
  out.makespan = state.metrics().makespan();
  out.max_memory_bits = state.metrics().max_memory_bits();
  out.actions = result.actions;
  if (record_final_positions) {
    out.ensure_cold().final_positions = state.staying_nodes();
  }
  return out;
}

[[nodiscard]] ScenarioResult exception_result(const std::exception& error) {
  ScenarioResult out;
  out.success = false;
  out.ensure_cold().failure = std::string("exception: ") + error.what();
  return out;
}

/// One scenario on the scalar (lanes == 1) engine, through the same lean
/// epilogue the lane-batched path uses — build the spec and instance, reset
/// the worker's pooled state, run, judge. `instance_slot` is worker-owned
/// storage keeping the Instance alive while ctx.state() references it
/// (RunContext::run would do this internally, but would also assemble a full
/// RunReport — moves_by_phase, sorted positions, label mapping — that the
/// campaign folds immediately discard).
ScenarioResult run_one(const Scenario& scenario, const CampaignGrid& grid,
                       bool record_final_positions, core::RunContext& ctx,
                       std::optional<sim::Instance>& instance_slot) {
  try {
    const core::RunSpec spec = make_scenario_spec(scenario, grid);
    const sim::Instance& instance =
        instance_slot.emplace(core::make_instance(scenario.algorithm, spec));
    ctx.state().reset(instance);
    sim::Scheduler& scheduler =
        ctx.scheduler(spec.scheduler, spec.seed, spec.homes.size());
    const sim::RunResult result = ctx.state().run(scheduler);
    return finish_scenario(ctx.oracle(scenario.algorithm, scenario.problem),
                           ctx.state(), result, record_final_positions);
  } catch (const std::exception& error) {
    return exception_result(error);
  }
}

/// The lane-batched scenario loop shared by both aggregation paths: each
/// worker owns a LanePool + BatchArena of `lanes` lanes and pumps scenario
/// indices from the shared work-stealing cursor, so up to workers × lanes
/// scenarios are in flight; finished lanes retire individually and refill
/// from the stream. emit(worker, scenario, result) is called once per
/// claimed scenario, on the claiming worker's thread, in lane-retirement
/// order — safe because every fold the callers apply is commutative and
/// index-keyed (the same argument that makes work stealing itself sound).
///
/// Exception parity with the scalar path, stage by stage: a scenario whose
/// spec/instance build throws (feed), whose run throws (an algorithm bug
/// surfacing through Behavior::resume), or whose oracle throws (retire) is
/// emitted as a failure with "exception: " + what — exactly run_one's catch.
/// Returns the worker count used.
std::size_t run_scenarios_batched(
    const CampaignGrid& grid, const std::vector<CellKey>& cells,
    std::size_t scenario_count, std::size_t workers, std::size_t lanes,
    bool record_final_positions,
    const std::function<void(std::size_t worker, const Scenario& s,
                             ScenarioResult&& r)>& emit) {
  return parallel_pump_workers(
      scenario_count, workers,
      [&](std::size_t worker, const std::function<std::size_t()>& claim) {
        core::LanePool pool(lanes);
        sim::BatchArena arena(lanes);
        std::vector<Scenario> in_flight(lanes);

        const auto feed = [&](std::size_t lane) -> bool {
          for (;;) {
            const std::size_t i = claim();
            if (i >= scenario_count) return false;
            const Scenario s = scenario_at(cells, grid.seeds, i);
            try {
              const core::RunSpec spec = make_scenario_spec(s, grid);
              sim::Scheduler& scheduler = pool.scheduler(
                  lane, spec.scheduler, spec.seed, spec.homes.size());
              const sim::Instance& instance =
                  pool.emplace_instance(lane, s.algorithm, spec);
              arena.load(lane, instance, scheduler, spec.scheduler, i);
              in_flight[lane] = s;
              return true;
            } catch (const std::exception& error) {
              emit(worker, s, exception_result(error));
              // The lane is still empty — claim the next scenario for it.
            }
          }
        };
        const auto retire = [&](std::size_t lane, std::uint64_t /*ticket*/,
                                const sim::RunResult& result) {
          const Scenario& s = in_flight[lane];
          ScenarioResult out;
          try {
            out = finish_scenario(pool.oracle(s.algorithm, s.problem),
                                  arena.state(lane), result,
                                  record_final_positions);
          } catch (const std::exception& error) {
            out = exception_result(error);
          }
          emit(worker, s, std::move(out));
        };
        const auto on_error = [&](std::size_t lane, std::uint64_t /*ticket*/,
                                  std::exception_ptr error) {
          try {
            std::rethrow_exception(std::move(error));
          } catch (const std::exception& e) {
            emit(worker, in_flight[lane], exception_result(e));
          }
          // A non-std::exception rethrow escapes to parallel_pump_workers,
          // which is where the scalar path sends it too.
        };
        arena.run(feed, retire, on_error);
      });
}

}  // namespace

std::vector<CellKey> expand_cells(const CampaignGrid& grid) {
  std::vector<std::pair<std::size_t, std::size_t>> points = grid.instances;
  if (points.empty()) {
    for (const std::size_t n : grid.node_counts) {
      for (const std::size_t k : grid.agent_counts) {
        points.emplace_back(n, k);
      }
    }
  }
  std::vector<CellKey> cells;
  for (const core::Algorithm algorithm : grid.algorithms) {
    for (const core::ProblemSpec& problem : grid.problems) {
      for (const ConfigFamily family : grid.families) {
        for (const sim::SchedulerKind scheduler : grid.schedulers) {
          for (const auto& [n, k] : points) {
            bool first_symmetry = true;
            for (const std::size_t l : grid.symmetries) {
              const std::size_t effective_l = uses_symmetry(family) ? l : 1;
              if (!uses_symmetry(family) && !first_symmetry) continue;
              first_symmetry = false;
              if (!feasible(family, n, k, effective_l)) continue;
              cells.push_back(CellKey{algorithm, family, scheduler, n, k,
                                      effective_l, problem});
            }
          }
        }
      }
    }
  }
  return cells;
}

std::size_t expansion_size(const CampaignGrid& grid) {
  return expand_cells(grid).size() * grid.seeds;
}

Scenario scenario_at(const std::vector<CellKey>& cells, std::size_t seeds,
                     std::size_t index) {
  const CellKey& cell = cells.at(index / seeds);
  Scenario s;
  s.index = index;
  s.algorithm = cell.algorithm;
  s.family = cell.family;
  s.scheduler = cell.scheduler;
  s.node_count = cell.node_count;
  s.agent_count = cell.agent_count;
  s.symmetry = cell.symmetry;
  s.repetition = index % seeds;
  s.problem = cell.problem;
  return s;
}

std::vector<Scenario> expand(const CampaignGrid& grid) {
  // Built over the compact cell expansion so the materialized and streaming
  // paths agree on scenario order by construction.
  const std::vector<CellKey> cells = expand_cells(grid);
  std::vector<Scenario> scenarios;
  scenarios.reserve(cells.size() * grid.seeds);
  for (std::size_t i = 0; i < cells.size() * grid.seeds; ++i) {
    scenarios.push_back(scenario_at(cells, grid.seeds, i));
  }
  return scenarios;
}

Averages CellStats::averages() const {
  Averages avg;
  avg.runs = runs;
  const double denominator = runs > 0 ? static_cast<double>(runs) : 1.0;
  avg.moves = static_cast<double>(moves_sum) / denominator;
  avg.makespan = static_cast<double>(makespan_sum) / denominator;
  avg.memory_bits = static_cast<double>(memory_bits_sum) / denominator;
  avg.success_rate = static_cast<double>(successes) / denominator;
  return avg;
}

const CellStats* CampaignResult::cell(const CellKey& key) const {
  const auto found = cells.find(key);
  return found == cells.end() ? nullptr : &found->second;
}

Averages CampaignResult::averages(const CellKey& key) const {
  const CellStats* stats = cell(key);
  return stats ? stats->averages() : Averages{};
}

namespace {
/// Init state for CampaignResult::digest — its own domain, deliberately
/// distinct from Rng::kSubstreamSalt so the result-hash and the
/// substream-derivation domains stay separated.
constexpr std::uint64_t kDigestSalt = 0xd16e57eeda7a600dULL;
}  // namespace

std::uint64_t CampaignResult::digest() const {
  std::uint64_t state = kDigestSalt;
  fold64(state, scenario_count);
  // The per-scenario component is the cached commutative hash-sum: the
  // streaming path has no results vector to walk, and the materialized path
  // computes the identical sum during aggregation.
  fold64(state, scenario_hash);
  for (const auto& [key, stats] : cells) {
    fold64(state, static_cast<std::uint64_t>(key.algorithm));
    fold64(state, static_cast<std::uint64_t>(key.family));
    fold64(state, static_cast<std::uint64_t>(key.scheduler));
    fold64(state, key.node_count);
    fold64(state, key.agent_count);
    fold64(state, key.symmetry);
    // Folded only for an explicit problem: the default Auto axis reproduces
    // the pre-problem digest bytes (BENCH_campaign.json et al. stay pinned).
    if (key.problem.kind != core::Problem::Auto) {
      fold64(state, static_cast<std::uint64_t>(key.problem.kind));
      fold64(state, key.problem.gather_g);
    }
    fold64(state, stats.runs);
    fold64(state, stats.successes);
    fold64(state, stats.moves_sum);
    fold64(state, stats.makespan_sum);
    fold64(state, stats.memory_bits_sum);
    fold64(state, stats.actions_sum);
  }
  fold64(state, failures);
  fold64(state, cells_skipped);
  fold64(state, scenarios_skipped);
  return state;
}

Table CampaignResult::summary_table() const {
  // The "problem" column appears only when some cell carries an explicit
  // problem, so all-Auto campaigns render their historical layout.
  bool show_problem = false;
  for (const auto& [key, stats] : cells) {
    if (key.problem.kind != core::Problem::Auto) show_problem = true;
  }
  std::vector<std::string> headers = {"algorithm", "family", "scheduler", "n",
                                      "k", "l", "runs", "ok", "moves", "time",
                                      "mem bits"};
  if (show_problem) headers.insert(headers.begin() + 1, "problem");
  Table table(std::move(headers));
  for (const auto& [key, stats] : cells) {
    const Averages avg = stats.averages();
    std::vector<std::string> row = {
        std::string(core::to_string(key.algorithm)),
        std::string(to_string(key.family)),
        std::string(sim::to_string(key.scheduler)), Table::num(key.node_count),
        Table::num(key.agent_count), Table::num(key.symmetry),
        Table::num(stats.runs), Table::num(avg.success_rate * 100.0, 1) + "%",
        Table::num(avg.moves, 1), Table::num(avg.makespan, 1),
        Table::num(avg.memory_bits, 1)};
    if (show_problem) row.insert(row.begin() + 1, core::to_string(key.problem));
    table.add_row(std::move(row));
  }
  return table;
}

std::string CampaignResult::summary() const {
  std::ostringstream text;
  text << summary_table();
  text << "scenarios: " << scenario_count << "  failures: " << failures
       << "  workers: " << workers_used << "  digest: " << std::hex << digest()
       << std::dec << '\n';
  if (cells_skipped != 0) {
    text << "SKIPPED " << cells_skipped << " cell(s) / " << scenarios_skipped
         << " scenario(s) over the memory budget";
    for (const CellKey& key : skipped_cell_samples) {
      text << "\n  skipped " << core::to_string(key.algorithm) << ' '
           << to_string(key.family) << ' ' << sim::to_string(key.scheduler)
           << " n=" << key.node_count << " k=" << key.agent_count
           << " l=" << key.symmetry;
      if (key.problem.kind != core::Problem::Auto) {
        text << " problem=" << core::to_string(key.problem);
      }
    }
    text << '\n';
  }
  for (const std::string& sample : failure_samples) {
    text << "  FAIL " << sample << '\n';
  }
  return text.str();
}

CampaignResult run_campaign(const CampaignGrid& grid,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.scenarios = expand(grid);
  result.results.resize(result.scenarios.size());
  result.scenario_count = result.scenarios.size();

  // One pooled RunContext per worker: every scenario a worker executes
  // reuses the same ExecutionState arena and scheduler cache, so a
  // 1000-instance campaign performs O(workers), not O(instances),
  // steady-state heap allocations. Scenario *outputs* still go to
  // index-owned slots — pooling changes where the arena lives, not the
  // determinism story. With batch_lanes ≠ 1 the pooled arena is a
  // BatchArena of lanes instead of one RunContext — same outputs, same
  // slots, B scenarios in flight per worker.
  const std::size_t workers =
      resolve_workers(result.scenarios.size(), options.workers);
  const std::size_t lanes =
      resolve_batch_lanes(grid, options, result.scenarios.size(), workers);
  if (lanes > 1) {
    result.workers_used = run_scenarios_batched(
        grid, expand_cells(grid), result.scenarios.size(), workers, lanes,
        options.record_final_positions,
        [&](std::size_t /*worker*/, const Scenario& s, ScenarioResult&& r) {
          result.results[s.index] = std::move(r);
        });
  } else {
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    std::vector<std::optional<sim::Instance>> instances(workers);
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    result.workers_used = parallel_for_workers(
        result.scenarios.size(), workers,
        [&](std::size_t worker, std::size_t i) {
          result.results[i] = run_one(result.scenarios[i], grid,
                                      options.record_final_positions,
                                      *contexts[worker], instances[worker]);
        });
  }

  // Aggregation in scenario-index order. Every fold below is
  // order-independent anyway (integer sums, commutative hash-sum,
  // lowest-index sampling) — the same folds the streaming path applies
  // per worker — so this loop and a streaming merge produce identical
  // bytes; walking in index order here is just the natural iteration.
  SampleBuffer samples;
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const Scenario& s = result.scenarios[i];
    const ScenarioResult& r = result.results[i];
    result.scenario_hash += hash_scenario(i, r);
    CellStats& stats = result.cells[CellKey{s.algorithm, s.family, s.scheduler,
                                            s.node_count, s.agent_count,
                                            s.symmetry, s.problem}];
    fold_into_cell(stats, r);
    if (!r.success) {
      ++result.failures;
      sample_failure(stats, samples, s, r, options);
    }
  }
  result.failure_samples.reserve(samples.size());
  for (auto& entry : samples) {
    result.failure_samples.push_back(std::move(entry.second));
  }
  return result;
}

std::size_t streaming_cell_footprint_bytes(
    const CampaignOptions& options) noexcept {
  // A map node (key + stats + tree overhead) plus an allowance per sampled
  // failure string (description + heap block). Deliberately generous: the
  // budget exists to keep a sweep from exhausting the host, not to
  // byte-count the allocator.
  constexpr std::size_t kNodeBytes =
      sizeof(CellKey) + sizeof(CellStats) + 64;  // red-black node overhead
  constexpr std::size_t kSampleBytes = 160;
  return kNodeBytes + options.max_failures_per_cell * kSampleBytes;
}

CampaignResult run_campaign_streaming(const CampaignGrid& grid,
                                      const CampaignOptions& options) {
  CampaignResult result;
  result.streamed = true;
  const std::vector<CellKey> cells = expand_cells(grid);

  // Budget enforcement happens before any scenario runs, on the compact
  // expansion: cells are admitted in expansion order until one aggregation
  // store would exceed the budget, the rest are skipped and reported. The
  // admitted set depends only on (grid, options), never on the worker
  // count, so the digest contract survives a binding budget.
  std::size_t admitted = cells.size();
  if (options.memory_budget_bytes != 0) {
    admitted = std::min(
        admitted,
        options.memory_budget_bytes / streaming_cell_footprint_bytes(options));
  }
  result.cells_skipped = cells.size() - admitted;
  result.scenarios_skipped = result.cells_skipped * grid.seeds;
  for (std::size_t c = admitted; c < cells.size() &&
                                 result.skipped_cell_samples.size() < 8; ++c) {
    result.skipped_cell_samples.push_back(cells[c]);
  }

  const std::size_t scenario_count = admitted * grid.seeds;
  result.scenario_count = scenario_count;
  const std::size_t workers = resolve_workers(scenario_count, options.workers);

  // Per-worker state: the pooled RunContext (as in the materialized path)
  // plus this path's whole point — a private CellAccumulator the worker
  // folds each ScenarioResult into the moment the scenario finishes. The
  // result is discarded right after; nothing per-scenario survives the
  // fold.
  struct CellAccumulator {
    std::map<CellKey, CellStats> cells;
    std::uint64_t scenario_hash = 0;
    std::size_t failures = 0;
    SampleBuffer samples;
  };
  std::vector<CellAccumulator> accumulators(workers);

  // The worker-local fold both engines below share: commutative and
  // index-keyed, so per-lane retirement order (batched) and index-claim
  // order (scalar) land on the same accumulator bytes.
  const auto fold = [&](std::size_t worker, const Scenario& s,
                        const ScenarioResult& r) {
    CellAccumulator& acc = accumulators[worker];
    acc.scenario_hash += hash_scenario(s.index, r);
    CellStats& stats = acc.cells[cells[s.index / grid.seeds]];
    fold_into_cell(stats, r);
    if (!r.success) {
      ++acc.failures;
      sample_failure(stats, acc.samples, s, r, options);
    }
  };

  const std::size_t lanes =
      resolve_batch_lanes(grid, options, scenario_count, workers);
  if (lanes > 1) {
    result.workers_used = run_scenarios_batched(
        grid, cells, scenario_count, workers, lanes,
        /*record_final_positions=*/false,
        [&](std::size_t worker, const Scenario& s, ScenarioResult&& r) {
          fold(worker, s, r);
        });
  } else {
    std::vector<std::unique_ptr<core::RunContext>> contexts;
    std::vector<std::optional<sim::Instance>> instances(workers);
    contexts.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      contexts.push_back(std::make_unique<core::RunContext>());
    }
    result.workers_used = parallel_for_workers(
        scenario_count, workers, [&](std::size_t worker, std::size_t i) {
          const Scenario s = scenario_at(cells, grid.seeds, i);
          fold(worker, s,
               run_one(s, grid, /*record_final_positions=*/false,
                       *contexts[worker], instances[worker]));
        });
  }

  // Merge. Work stealing hands workers arbitrary scenario subsets, so every
  // combination below is commutative-exact: integer sums, wrapping
  // hash-sum, lowest-index bounded sample merges. Any worker count — and
  // the materialized index-order fold — lands on the same bytes.
  SampleBuffer samples;
  for (CellAccumulator& acc : accumulators) {
    result.scenario_hash += acc.scenario_hash;
    result.failures += acc.failures;
    for (auto& [key, stats] : acc.cells) {
      CellStats& merged = result.cells[key];
      merged.runs += stats.runs;
      merged.successes += stats.successes;
      merged.moves_sum += stats.moves_sum;
      merged.makespan_sum += stats.makespan_sum;
      merged.memory_bits_sum += stats.memory_bits_sum;
      merged.actions_sum += stats.actions_sum;
      for (auto& [index, text] : stats.failure_samples) {
        insert_bounded(merged.failure_samples, options.max_failures_per_cell,
                       index, std::move(text));
      }
    }
    for (auto& [index, text] : acc.samples) {
      insert_bounded(samples, options.max_recorded_failures, index,
                     std::move(text));
    }
  }
  result.failure_samples.reserve(samples.size());
  for (auto& entry : samples) {
    result.failure_samples.push_back(std::move(entry.second));
  }
  return result;
}

std::vector<std::size_t> scenario_homes(const CampaignGrid& grid,
                                        const Scenario& s) {
  // Must mirror run_one's draw exactly: the substream then the homes.
  Rng rng = Rng(grid.base_seed).substream(instance_key(s));
  return draw_homes(s.family, s.node_count, s.agent_count, s.symmetry, rng);
}

Averages measure_cell(core::Algorithm algorithm, ConfigFamily family,
                      std::size_t n, std::size_t k, std::size_t l,
                      std::size_t seeds, sim::SchedulerKind scheduler,
                      std::uint64_t base_seed) {
  CampaignGrid grid;
  grid.algorithms = {algorithm};
  grid.families = {family};
  grid.schedulers = {scheduler};
  grid.node_counts = {n};
  grid.agent_counts = {k};
  grid.symmetries = {l};
  grid.seeds = seeds;
  grid.base_seed = base_seed;
  // Cells are all a measurement needs, so take the streaming path: the
  // bench binaries' grid sweeps then run in O(cells) memory at any n
  // (identical averages — the two paths share the aggregation fold).
  const Averages avg = run_campaign_streaming(grid).averages(
      CellKey{algorithm, family, scheduler, n, k,
              family == ConfigFamily::Periodic ? l : 1});
  if (avg.runs == 0) {
    std::ostringstream what;
    what << "measure_cell: infeasible cell " << to_string(family) << " n=" << n
         << " k=" << k << " l=" << l;
    throw std::invalid_argument(what.str());
  }
  return avg;
}

}  // namespace udring::exp
