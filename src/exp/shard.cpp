#include "exp/shard.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/binio.h"
#include "util/io.h"
#include "util/rng.h"

namespace udring::exp {

namespace {

/// Domain salt for grid_fingerprint — its own constant so the fingerprint,
/// the result digest (kDigestSalt) and the Rng substream derivation can
/// never collide even on identical folded values.
constexpr std::uint64_t kFingerprintSalt = 0x5d4a12df00d5ee3bULL;

void fold_cell_key(std::uint64_t& state, const CellKey& key) {
  fold64(state, static_cast<std::uint64_t>(key.algorithm));
  fold64(state, static_cast<std::uint64_t>(key.family));
  fold64(state, static_cast<std::uint64_t>(key.scheduler));
  fold64(state, key.node_count);
  fold64(state, key.agent_count);
  fold64(state, key.symmetry);
  fold64(state, static_cast<std::uint64_t>(key.problem.kind));
  fold64(state, key.problem.gather_g);
  // Folded only when non-empty so fault-free sweeps keep their pre-fault
  // fingerprints (a v1 checkpoint of such a sweep stays resumable in spirit;
  // the file format itself is gated by kVersion regardless).
  if (!key.fault.empty()) key.fault.fold_into(state);
}

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw std::runtime_error((context.empty() ? std::string("shard")
                                            : "shard '" + context + "'") +
                           ": " + what);
}

// ---- encoding -------------------------------------------------------------

void encode_cell_key(BinaryWriter& out, const CellKey& key) {
  out.u8(static_cast<std::uint8_t>(key.algorithm));
  out.u8(static_cast<std::uint8_t>(key.family));
  out.u8(static_cast<std::uint8_t>(key.scheduler));
  out.u64(key.node_count);
  out.u64(key.agent_count);
  out.u64(key.symmetry);
  out.u8(static_cast<std::uint8_t>(key.problem.kind));
  out.u64(key.problem.gather_g);
  const sim::FaultPlan& plan = key.fault;
  out.u64(plan.crashes.size());
  for (const sim::CrashFault& crash : plan.crashes) {
    out.u64(crash.agent);
    out.u64(crash.at_action);
  }
  out.u8(plan.non_fifo ? 1 : 0);
  out.u64(plan.non_fifo_min_phase);
  out.u64(plan.non_fifo_until_action);
  out.u64(plan.drop_count);
  out.u64(plan.drop_from_action);
  out.u64(plan.dup_count);
  out.u64(plan.dup_from_action);
  out.u64(plan.rewire_at.size());
  for (const std::size_t at : plan.rewire_at) out.u64(at);
}

void encode_sketch(BinaryWriter& out, const QuantileSketch& sketch) {
  // An empty sketch's stored minimum is the uint64 sentinel (min() masks it
  // to 0 for reporting); from_entries validates against the raw form.
  out.u64(sketch.empty() ? std::numeric_limits<std::uint64_t>::max()
                         : sketch.min());
  out.u64(sketch.max());
  out.u64(sketch.entries().size());
  for (const QuantileSketch::Entry& entry : sketch.entries()) {
    out.u16(entry.bucket);
    out.u64(entry.count);
  }
}

void encode_samples(BinaryWriter& out, const FailureSamples& samples) {
  out.u64(samples.size());
  for (const auto& [index, text] : samples) {
    out.u64(index);
    out.str(text);
  }
}

// ---- decoding (every field validated: a corrupt or hand-edited shard file
// must fail the merge loudly, never fold garbage into a sweep) -------------

constexpr std::uint64_t kAlgorithmCount =
    static_cast<std::uint64_t>(core::Algorithm::DisperseRing) + 1;
constexpr std::uint64_t kConfigFamilyCount =
    static_cast<std::uint64_t>(ConfigFamily::Uniform) + 1;
constexpr std::uint64_t kProblemCount =
    static_cast<std::uint64_t>(core::Problem::Disperse) + 1;

/// Guards a count prefix against the bytes that must back it, so a corrupt
/// length cannot drive a multi-gigabyte reserve before the reader trips on
/// truncation.
std::size_t checked_count(BinaryReader& in, const std::string& context,
                          std::uint64_t count, std::size_t min_entry_bytes,
                          const char* what) {
  if (count > in.remaining() / min_entry_bytes) {
    fail(context, std::string(what) + " count " + std::to_string(count) +
                      " exceeds the bytes that could back it");
  }
  return static_cast<std::size_t>(count);
}

CellKey decode_cell_key(BinaryReader& in, const std::string& context) {
  CellKey key{};
  const std::uint8_t algorithm = in.u8();
  const std::uint8_t family = in.u8();
  const std::uint8_t scheduler = in.u8();
  if (algorithm >= kAlgorithmCount) fail(context, "unknown algorithm value");
  if (family >= kConfigFamilyCount) fail(context, "unknown family value");
  if (scheduler >= sim::kSchedulerKindCount) {
    fail(context, "unknown scheduler value");
  }
  key.algorithm = static_cast<core::Algorithm>(algorithm);
  key.family = static_cast<ConfigFamily>(family);
  key.scheduler = static_cast<sim::SchedulerKind>(scheduler);
  key.node_count = static_cast<std::size_t>(in.u64());
  key.agent_count = static_cast<std::size_t>(in.u64());
  key.symmetry = static_cast<std::size_t>(in.u64());
  const std::uint8_t problem = in.u8();
  if (problem >= kProblemCount) fail(context, "unknown problem value");
  key.problem.kind = static_cast<core::Problem>(problem);
  key.problem.gather_g = static_cast<std::size_t>(in.u64());
  sim::FaultPlan& plan = key.fault;
  const std::size_t crash_count =
      checked_count(in, context, in.u64(), 16, "crash fault");
  plan.crashes.reserve(crash_count);
  for (std::size_t i = 0; i < crash_count; ++i) {
    sim::CrashFault crash;
    crash.agent = static_cast<sim::AgentId>(in.u64());
    crash.at_action = static_cast<std::size_t>(in.u64());
    plan.crashes.push_back(crash);
  }
  const std::uint8_t non_fifo = in.u8();
  if (non_fifo > 1) fail(context, "bad fault non-FIFO flag");
  plan.non_fifo = non_fifo != 0;
  plan.non_fifo_min_phase = static_cast<std::size_t>(in.u64());
  plan.non_fifo_until_action = static_cast<std::size_t>(in.u64());
  plan.drop_count = static_cast<std::size_t>(in.u64());
  plan.drop_from_action = static_cast<std::size_t>(in.u64());
  plan.dup_count = static_cast<std::size_t>(in.u64());
  plan.dup_from_action = static_cast<std::size_t>(in.u64());
  const std::size_t rewire_count =
      checked_count(in, context, in.u64(), 8, "rewire point");
  plan.rewire_at.reserve(rewire_count);
  for (std::size_t i = 0; i < rewire_count; ++i) {
    plan.rewire_at.push_back(static_cast<std::size_t>(in.u64()));
  }
  // Cell keys store plans in the canonical form expand_cells writes; a plan
  // validate() rejects (or a non-normalized one) cannot have come from this
  // encoder.
  try {
    plan.validate(key.node_count, key.agent_count);
  } catch (const std::invalid_argument& error) {
    fail(context, std::string("invalid cell fault plan: ") + error.what());
  }
  return key;
}

QuantileSketch decode_sketch(BinaryReader& in, const std::string& context) {
  const std::uint64_t min_value = in.u64();
  const std::uint64_t max_value = in.u64();
  const std::size_t count =
      checked_count(in, context, in.u64(), 10, "sketch entry");
  std::vector<QuantileSketch::Entry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QuantileSketch::Entry entry;
    entry.bucket = in.u16();
    entry.count = in.u64();
    entries.push_back(entry);
  }
  try {
    return QuantileSketch::from_entries(std::move(entries), min_value,
                                        max_value);
  } catch (const std::invalid_argument& error) {
    fail(context, std::string("invalid sketch state: ") + error.what());
  }
}

FailureSamples decode_samples(BinaryReader& in, const std::string& context) {
  const std::size_t count =
      checked_count(in, context, in.u64(), 16, "failure sample");
  FailureSamples samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index = static_cast<std::size_t>(in.u64());
    if (!samples.empty() && index <= samples.back().first) {
      fail(context, "failure samples not strictly ascending by index");
    }
    samples.emplace_back(index, in.str());
  }
  return samples;
}

CellStats decode_cell_stats(BinaryReader& in, const std::string& context) {
  CellStats stats;
  stats.runs = static_cast<std::size_t>(in.u64());
  stats.successes = static_cast<std::size_t>(in.u64());
  stats.moves_sum = in.u64();
  stats.makespan_sum = in.u64();
  stats.memory_bits_sum = in.u64();
  stats.actions_sum = in.u64();
  if (stats.successes > stats.runs) fail(context, "successes exceed runs");
  stats.failure_samples = decode_samples(in, context);
  stats.moves_sketch = decode_sketch(in, context);
  stats.makespan_sketch = decode_sketch(in, context);
  if (stats.moves_sketch.total() != stats.runs ||
      stats.makespan_sketch.total() != stats.runs) {
    fail(context, "sketch totals disagree with the cell's run count");
  }
  return stats;
}

}  // namespace

std::uint64_t grid_fingerprint(const CampaignGrid& grid,
                               const CampaignOptions& options) {
  // Everything a merge must agree on, nothing a merge may ignore: the
  // admitted expansion already folds the whole grid (axes, feasibility
  // skips, a binding memory budget), and the scenarios themselves are a pure
  // function of (cell, repetition, base_seed, sim options). Workers, lanes
  // and checkpoint cadence are deliberately absent — they choose how the
  // sweep runs, never what it computes.
  const AdmittedExpansion admitted = admit_cells(grid, options);
  std::uint64_t state = kFingerprintSalt;
  fold64(state, admitted.cells.size());
  for (const CellKey& key : admitted.cells) fold_cell_key(state, key);
  fold64(state, admitted.cells_skipped);
  fold64(state, admitted.scenarios_skipped);
  fold64(state, grid.seeds);
  fold64(state, grid.base_seed);
  fold64(state, grid.sim_options.record_events ? 1 : 0);
  fold64(state, grid.sim_options.max_actions);
  fold64(state, grid.sim_options.fault_non_fifo_links ? 1 : 0);
  fold64(state, grid.sim_options.fault_non_fifo_min_phase);
  // Result-affecting like the legacy pair above; folded only when non-empty
  // so fault-free fingerprints keep their historical values. (The per-cell
  // fault-axis plans are already inside fold_cell_key.)
  if (!grid.sim_options.faults.empty()) {
    grid.sim_options.faults.fold_into(state);
  }
  fold64(state, options.max_recorded_failures);
  fold64(state, options.max_failures_per_cell);
  fold64(state, options.memory_budget_bytes);
  return state;
}

std::string encode_shard(const ShardFile& shard) {
  BinaryWriter out;
  out.u32(ShardFile::kMagic);
  out.u32(ShardFile::kVersion);
  out.u64(shard.fingerprint);
  out.u64(shard.scenario_total);
  out.u64(shard.range_begin);
  out.u64(shard.range_end);
  out.u64(shard.max_failures_per_cell);
  out.u64(shard.max_recorded_failures);
  out.u64(shard.cells_skipped);
  out.u64(shard.scenarios_skipped);
  out.u64(shard.skipped_cell_samples.size());
  for (const CellKey& key : shard.skipped_cell_samples) {
    encode_cell_key(out, key);
  }
  out.u64(shard.aggregate.scenario_hash);
  out.u64(shard.aggregate.failures);
  encode_samples(out, shard.aggregate.failure_samples);
  out.u64(shard.aggregate.cells.size());
  for (const auto& [key, stats] : shard.aggregate.cells) {
    encode_cell_key(out, key);
    out.u64(stats.runs);
    out.u64(stats.successes);
    out.u64(stats.moves_sum);
    out.u64(stats.makespan_sum);
    out.u64(stats.memory_bits_sum);
    out.u64(stats.actions_sum);
    encode_samples(out, stats.failure_samples);
    encode_sketch(out, stats.moves_sketch);
    encode_sketch(out, stats.makespan_sketch);
  }
  return out.take();
}

ShardFile decode_shard(std::string_view bytes, const std::string& context) {
  BinaryReader in(bytes, context);
  if (in.u32() != ShardFile::kMagic) {
    fail(context, "bad magic (not a shard file)");
  }
  const std::uint32_t version = in.u32();
  if (version != ShardFile::kVersion) {
    fail(context, "unsupported shard version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(ShardFile::kVersion) + ")");
  }
  ShardFile shard;
  shard.fingerprint = in.u64();
  shard.scenario_total = in.u64();
  shard.range_begin = in.u64();
  shard.range_end = in.u64();
  shard.max_failures_per_cell = in.u64();
  shard.max_recorded_failures = in.u64();
  shard.cells_skipped = in.u64();
  shard.scenarios_skipped = in.u64();
  if (shard.range_begin > shard.range_end ||
      shard.range_end > shard.scenario_total) {
    fail(context, "scenario range [" + std::to_string(shard.range_begin) +
                      ", " + std::to_string(shard.range_end) +
                      ") is inconsistent with a total of " +
                      std::to_string(shard.scenario_total));
  }
  const std::size_t skipped =
      checked_count(in, context, in.u64(), 28, "skipped-cell sample");
  shard.skipped_cell_samples.reserve(skipped);
  for (std::size_t i = 0; i < skipped; ++i) {
    shard.skipped_cell_samples.push_back(decode_cell_key(in, context));
  }
  shard.aggregate.scenario_hash = in.u64();
  shard.aggregate.failures = static_cast<std::size_t>(in.u64());
  shard.aggregate.failure_samples = decode_samples(in, context);
  const std::size_t cell_count =
      checked_count(in, context, in.u64(), 76, "cell");
  std::uint64_t runs_covered = 0;
  for (std::size_t i = 0; i < cell_count; ++i) {
    CellKey key = decode_cell_key(in, context);
    if (!shard.aggregate.cells.empty() &&
        !(shard.aggregate.cells.rbegin()->first < key)) {
      fail(context, "cells not strictly ascending by key");
    }
    CellStats stats = decode_cell_stats(in, context);
    runs_covered += stats.runs;
    shard.aggregate.cells.emplace_hint(shard.aggregate.cells.end(),
                                       std::move(key), std::move(stats));
  }
  if (runs_covered != shard.range_end - shard.range_begin) {
    fail(context, "cell run counts sum to " + std::to_string(runs_covered) +
                      " but the covered range holds " +
                      std::to_string(shard.range_end - shard.range_begin) +
                      " scenarios");
  }
  in.expect_end();
  return shard;
}

void write_shard_file(const std::string& path, const ShardFile& shard) {
  if (!write_binary_file_atomic(path, encode_shard(shard))) {
    throw std::runtime_error("shard: failed to write '" + path +
                             "' (directory missing or disk full?)");
  }
}

ShardFile load_shard_file(const std::string& path) {
  const std::optional<std::string> bytes = read_binary_file(path);
  if (!bytes) {
    throw std::runtime_error("shard: cannot read '" + path + "'");
  }
  return decode_shard(*bytes, path);
}

ShardFile run_campaign_shard(const CampaignGrid& grid,
                             const CampaignOptions& options,
                             std::size_t shard_index,
                             std::size_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument(
        "run_campaign_shard: shard index " + std::to_string(shard_index) +
        " out of range for " + std::to_string(shard_count) + " shards");
  }
  const AdmittedExpansion admitted = admit_cells(grid, options);
  const std::size_t total = admitted.cells.size() * grid.seeds;
  // [i·S/N, (i+1)·S/N): the standard exact tiling — every scenario lands in
  // exactly one shard, sizes differ by at most one scenario.
  const std::size_t begin = shard_index * total / shard_count;
  const std::size_t end = (shard_index + 1) * total / shard_count;

  ShardFile shard;
  shard.fingerprint = grid_fingerprint(grid, options);
  shard.scenario_total = total;
  shard.range_begin = begin;
  shard.range_end = begin;  // advances with the watermark
  shard.max_failures_per_cell = options.max_failures_per_cell;
  shard.max_recorded_failures = options.max_recorded_failures;
  shard.cells_skipped = admitted.cells_skipped;
  shard.scenarios_skipped = admitted.scenarios_skipped;
  shard.skipped_cell_samples = admitted.skipped_cell_samples;

  std::size_t watermark = begin;
  const bool durable = !options.checkpoint_path.empty();
  if (durable) {
    // Resume: an existing checkpoint must be OUR checkpoint — same grid and
    // options (fingerprint), same shard slice — or resuming would silently
    // fold someone else's scenarios into this sweep.
    if (const std::optional<std::string> bytes =
            read_binary_file(options.checkpoint_path)) {
      ShardFile saved = decode_shard(*bytes, options.checkpoint_path);
      if (saved.fingerprint != shard.fingerprint) {
        throw std::runtime_error(
            "shard: checkpoint '" + options.checkpoint_path +
            "' belongs to a different grid/options (fingerprint mismatch); "
            "delete it or point the resume at the original sweep");
      }
      if (saved.scenario_total != total || saved.range_begin != begin ||
          saved.range_end > end) {
        throw std::runtime_error(
            "shard: checkpoint '" + options.checkpoint_path + "' covers [" +
            std::to_string(saved.range_begin) + ", " +
            std::to_string(saved.range_end) +
            ") which is not a prefix of this shard's range [" +
            std::to_string(begin) + ", " + std::to_string(end) + ")");
      }
      watermark = static_cast<std::size_t>(saved.range_end);
      shard.range_end = watermark;
      shard.aggregate = std::move(saved.aggregate);
    }
  }

  // Watermark blocks are just another partition of [begin, end): each block
  // folds through the same run_campaign_range engine and the same
  // commutative merge, so the final bytes cannot depend on where (or how
  // often) the checkpoints landed — or on a kill between two of them.
  const std::size_t block = options.checkpoint_every_scenarios == 0
                                ? (end > watermark ? end - watermark : 1)
                                : options.checkpoint_every_scenarios;
  std::size_t checkpoint_writes = 0;
  while (watermark < end) {
    const std::size_t next = std::min(end, watermark + block);
    run_campaign_range(grid, options, watermark, next, shard.aggregate);
    watermark = next;
    shard.range_end = watermark;
    if (durable) {
      write_shard_file(options.checkpoint_path, shard);
      ++checkpoint_writes;
      if (options.checkpoint_abort_after != 0 &&
          checkpoint_writes >= options.checkpoint_abort_after &&
          watermark < end) {
        throw CampaignAborted(
            "campaign aborted by checkpoint_abort_after with " +
                std::to_string(end - watermark) + " scenarios remaining " +
                "(checkpoint '" + options.checkpoint_path + "' is durable)",
            watermark - begin);
      }
    }
  }
  if (durable && checkpoint_writes == 0) {
    // Empty (or fully-resumed) shard: still leave a complete file behind —
    // the caller asked for durable output.
    write_shard_file(options.checkpoint_path, shard);
  }
  return shard;
}

CampaignResult merge_shards(std::vector<ShardFile> shards, bool allow_partial) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shards: no shard files given");
  }
  std::sort(shards.begin(), shards.end(),
            [](const ShardFile& a, const ShardFile& b) {
              return a.range_begin != b.range_begin
                         ? a.range_begin < b.range_begin
                         : a.range_end < b.range_end;
            });
  const ShardFile& first = shards.front();
  for (const ShardFile& shard : shards) {
    if (shard.fingerprint != first.fingerprint) {
      throw std::runtime_error(
          "merge_shards: fingerprint mismatch — the shards come from "
          "different grids or different result-affecting options and cannot "
          "be merged");
    }
    if (shard.scenario_total != first.scenario_total ||
        shard.max_failures_per_cell != first.max_failures_per_cell ||
        shard.max_recorded_failures != first.max_recorded_failures) {
      throw std::runtime_error(
          "merge_shards: shard headers disagree on scenario total or sample "
          "caps despite matching fingerprints (corrupt shard set)");
    }
  }
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    covered += shards[i].range_end - shards[i].range_begin;
    if (i + 1 < shards.size() &&
        shards[i].range_end > shards[i + 1].range_begin) {
      // Never merge through an overlap: the duplicated scenarios would be
      // double-counted in every sum, sketch and failure sample.
      throw std::runtime_error(
          "merge_shards: shard ranges [" +
          std::to_string(shards[i].range_begin) + ", " +
          std::to_string(shards[i].range_end) + ") and [" +
          std::to_string(shards[i + 1].range_begin) + ", " +
          std::to_string(shards[i + 1].range_end) +
          ") overlap — the same scenarios were submitted twice");
    }
  }
  if (!allow_partial && covered != first.scenario_total) {
    throw std::runtime_error(
        "merge_shards: shards cover " + std::to_string(covered) + " of " +
        std::to_string(first.scenario_total) +
        " scenarios (gap or missing shard); pass allow_partial to merge a "
        "partial sweep anyway");
  }

  CampaignAccumulator merged;
  for (ShardFile& shard : shards) {
    // Ascending range order (the sort above): the folds are commutative so
    // any order would do, but a deterministic one keeps even hypothetical
    // order-sensitive future fields reproducible.
    merge_accumulators(merged, std::move(shard.aggregate),
                       static_cast<std::size_t>(first.max_failures_per_cell),
                       static_cast<std::size_t>(first.max_recorded_failures));
  }

  CampaignResult result;
  result.streamed = true;
  result.scenario_count = static_cast<std::size_t>(covered);
  result.cells_skipped = static_cast<std::size_t>(first.cells_skipped);
  result.scenarios_skipped = static_cast<std::size_t>(first.scenarios_skipped);
  result.skipped_cell_samples = shards.front().skipped_cell_samples;
  finalize_streaming_result(result, std::move(merged));
  return result;
}

}  // namespace udring::exp
