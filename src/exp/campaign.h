// udring/exp/campaign.h
//
// The parallel experiment campaign engine.
//
// Every reproduction artifact in this repo — the Table-1 sweep, the figure
// benches, the stress suites — is the same shape of computation: a grid of
// scenarios (algorithm × configuration family × scheduler × n × k × l ×
// seed), each run in an isolated Simulator, reduced to per-cell averages.
// The engine makes that shape declarative and parallel:
//
//   CampaignGrid grid;
//   grid.algorithms  = {core::Algorithm::KnownKFull};
//   grid.node_counts = {64, 128, 256};
//   grid.agent_counts = {8, 16};
//   grid.seeds = 5;
//   CampaignResult result = run_campaign(grid, {.workers = 8});
//
// Determinism contract: the expansion order of a grid is fixed, every
// scenario's randomness derives from Rng(base_seed).substream(key) where the
// key covers the instance coordinates (family, n, k, l, repetition) — but
// not the algorithm or scheduler, so every algorithm × scheduler cell sees
// the same drawn configurations (paired comparisons) — and aggregation is
// *order-independent by construction*: cell sums are exact integers
// (associative), the per-scenario digest component is a commutative
// hash-sum, and failure samples keep the lowest scenario indices. The same
// grid therefore produces *byte-identical* results — digest(), summary(),
// every cell — at any worker count, and identically through either
// aggregation path (test_campaign.cpp / test_streaming.cpp pin this).
// Failures never abort the campaign; they are counted, sampled, and visible
// in the summary so a 10^5-scenario sweep reports every bad cell at once.
//
// Two aggregation paths share all of the above:
//  - run_campaign: materialized — every ScenarioResult is kept,
//    index-aligned with the expansion (the inspectable form benches like
//    fig2 need).
//  - run_campaign_streaming: workers fold each ScenarioResult into a
//    per-worker cell accumulator the moment the scenario finishes and the
//    accumulators merge after the join, so a 10^6-scenario sweep runs in
//    O(cells + workers) memory — no per-scenario storage, no materialized
//    expansion (scenarios are recomputed from their index on the fly), and
//    an optional memory budget that drops whole cells (reported, never
//    silent) instead of exhausting the host.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/runner.h"
#include "sim/fault.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "util/parallel.h"
#include "util/quantile_sketch.h"
#include "util/rng.h"
#include "util/table.h"

namespace udring::exp {

/// Initial-configuration families the paper's experiments draw from.
enum class ConfigFamily {
  RandomAny,        ///< uniform random homes, any symmetry
  RandomAperiodic,  ///< random homes re-drawn until symmetry degree 1
  Packed,           ///< Theorem-1 quarter-arc lower-bound witness
  Periodic,         ///< symmetry degree exactly l (requires l | n, l | k)
  Uniform,          ///< already uniformly deployed (fixed point)
};

[[nodiscard]] std::string_view to_string(ConfigFamily family) noexcept;

/// Draws a home configuration of the given family. Deterministic in `rng`.
[[nodiscard]] std::vector<std::size_t> draw_homes(ConfigFamily family,
                                                  std::size_t n, std::size_t k,
                                                  std::size_t l, Rng& rng);

/// One fully-instantiated point of a campaign grid.
struct Scenario {
  std::size_t index = 0;  ///< position in the grid's expansion (result slot)
  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  ConfigFamily family = ConfigFamily::RandomAny;
  sim::SchedulerKind scheduler = sim::SchedulerKind::Synchronous;
  std::size_t node_count = 0;   ///< n
  std::size_t agent_count = 0;  ///< k
  std::size_t symmetry = 1;     ///< l (Periodic family; 1 elsewhere)
  std::uint64_t repetition = 0; ///< seed repetition within the cell
  /// Goal the run is judged against (core::make_goal_oracle); Auto = the
  /// algorithm's natural problem.
  core::ProblemSpec problem;
  /// Fault profile the run executes under (sim::FaultPlan; empty = the
  /// fault-free paper model). Like the problem axis it does NOT enter the
  /// scenario substream key, so every fault cell of an (n, k, l, rep) point
  /// replays the same drawn configuration — degradation columns are paired
  /// faulty-vs-clean comparisons.
  sim::FaultPlan fault;
};

/// Declarative scenario grid: the cross product of all vectors, repeated
/// `seeds` times. Combinations that cannot exist are skipped during
/// expansion rather than failing the campaign: k > n always; Packed with
/// k > ⌈n/4⌉; Periodic unless l | n, l | k and an aperiodic factor exists.
///
/// (n, k) points come either from node_counts × agent_counts, or — when the
/// sweep pairs k to n (k = n/8 and friends) — from explicit `instances`,
/// which takes precedence when non-empty.
struct CampaignGrid {
  std::vector<core::Algorithm> algorithms;
  /// Problem axis: each algorithm is judged against each listed goal
  /// (core::ProblemSpec; the default single Auto entry = every algorithm's
  /// natural problem, which reproduces the historical expansion exactly).
  /// Like the instance coordinates, the problem does NOT enter the scenario
  /// substream key, so all problem cells of an (n, k, l, rep) point see the
  /// same drawn configuration — cross-problem comparisons are paired.
  std::vector<core::ProblemSpec> problems = {{}};
  /// Fault axis: every scenario runs under each listed sim::FaultPlan (the
  /// default single empty entry = the fault-free paper model, which
  /// reproduces the historical expansion and digest bytes exactly). A
  /// non-empty plan replaces sim_options.faults for its cells; crucially the
  /// axis is excluded from the scenario substream key, so each fault profile
  /// is measured on identical drawn configurations and the per-profile
  /// success-rate / moves / p99-makespan deltas are paired comparisons.
  std::vector<sim::FaultPlan> fault_plans = {{}};
  std::vector<ConfigFamily> families = {ConfigFamily::RandomAny};
  std::vector<sim::SchedulerKind> schedulers = {sim::SchedulerKind::Synchronous};
  std::vector<std::size_t> node_counts;
  std::vector<std::size_t> agent_counts;
  std::vector<std::pair<std::size_t, std::size_t>> instances;  ///< (n, k) pairs
  std::vector<std::size_t> symmetries = {1};
  std::size_t seeds = 1;          ///< repetitions per cell
  std::uint64_t base_seed = 1;    ///< root of every scenario substream
  sim::SimOptions sim_options;    ///< forwarded to every Simulator
};

/// The grid's deterministic expansion (loop order: algorithm, problem,
/// fault, family, scheduler, n, k, l, repetition), with infeasible
/// combinations skipped. Scenario i of the returned vector has index == i.
[[nodiscard]] std::vector<Scenario> expand(const CampaignGrid& grid);

/// Aggregation key: one cell of the reported table (seed repetitions of the
/// same cell fold together). Also the compact O(cells) unit of the
/// expansion: the expansion IS expand_cells(grid) × seeds, repetition
/// innermost.
struct CellKey {
  core::Algorithm algorithm;
  ConfigFamily family;
  sim::SchedulerKind scheduler;
  std::size_t node_count;
  std::size_t agent_count;
  std::size_t symmetry;
  /// The grid's problem axis. Kept LAST with a default initializer: CellKey
  /// predates the field and is positionally aggregate-initialized at many
  /// call sites — extend this struct only at the end.
  core::ProblemSpec problem = {};
  /// The grid's fault axis (same extend-only-at-the-end rule; empty plan =
  /// the fault-free historical cell, which keeps default-initialized keys
  /// and digests byte-identical to the pre-fault layout).
  sim::FaultPlan fault = {};

  auto operator<=>(const CellKey&) const = default;
};

/// The grid's feasible cells in expansion order — the O(cells) form of the
/// expansion a streaming campaign iterates without ever materializing the
/// scenario list. expand(grid) == flatten(expand_cells(grid) × grid.seeds).
[[nodiscard]] std::vector<CellKey> expand_cells(const CampaignGrid& grid);

/// Number of scenarios expand(grid) would produce, in O(cells) memory.
[[nodiscard]] std::size_t expansion_size(const CampaignGrid& grid);

/// Scenario `index` of the expansion `cells` × `seeds` (repetition
/// innermost) — the O(1) random-access form of expand()[index].
[[nodiscard]] Scenario scenario_at(const std::vector<CellKey>& cells,
                                   std::size_t seeds, std::size_t index);

/// Outcome of one scenario. Written exactly once, into the scenario's own
/// slot of CampaignResult::results — workers never share accumulators.
/// The hot struct carries only the five measures; failure text and final
/// positions live behind one cold pointer, so the all-success sweep stores
/// ~48 bytes per scenario with zero per-scenario heap traffic
/// (test_campaign.cpp pins both with a counting allocator).
struct ScenarioResult {
  bool success = false;
  std::size_t total_moves = 0;
  std::uint64_t makespan = 0;
  std::size_t max_memory_bits = 0;
  std::size_t actions = 0;

  /// Off-path data: allocated only on failure or when the options request
  /// final positions.
  struct Cold {
    std::string failure;
    std::vector<std::size_t> final_positions;
  };
  std::unique_ptr<Cold> cold;

  /// The failure text ("" on the success path).
  [[nodiscard]] std::string_view failure() const noexcept {
    return cold ? std::string_view(cold->failure) : std::string_view{};
  }
  /// Final staying positions (empty unless record_final_positions was set).
  [[nodiscard]] std::span<const std::size_t> final_positions() const noexcept {
    return cold ? std::span<const std::size_t>(cold->final_positions)
                : std::span<const std::size_t>{};
  }
  [[nodiscard]] Cold& ensure_cold() {
    if (!cold) cold = std::make_unique<Cold>();
    return *cold;
  }
};

/// Seed-averaged measurements of one cell (the paper's three measures plus
/// the success rate), with the tail statistics a deployment actually wants:
/// p50/p90/p99 of moves and makespan from the cell's mergeable quantile
/// sketches (exact below 256, ≤ 1/16 relative error above).
struct Averages {
  double moves = 0;
  double makespan = 0;
  double memory_bits = 0;
  double success_rate = 0;
  std::size_t runs = 0;
  double moves_p50 = 0;
  double moves_p90 = 0;
  double moves_p99 = 0;
  double makespan_p50 = 0;
  double makespan_p90 = 0;
  double makespan_p99 = 0;
};

/// Lowest-index-N failure samples: (scenario index, description), ascending
/// by index, maintained by bounded insertion (see CampaignOptions caps).
using FailureSamples = std::vector<std::pair<std::size_t, std::string>>;

/// The per-cell accumulator both aggregation paths fold ScenarioResults
/// into. Sums are exact integers deliberately: integer addition is
/// associative, so per-worker partial accumulators merge to the *same
/// bytes* as an index-order fold — that associativity is what lets the
/// streaming path keep the worker-count-invariant digest contract without
/// ever ordering scenarios. A single process cannot overflow them (the
/// expansion is size_t-bounded and each scenario's measures are bounded by
/// its resolved action limit), but a cross-machine merged sweep CAN: the
/// shard/accumulator merge paths (merge_accumulators, exp::merge_shards)
/// therefore use checked addition and fail loudly on saturation instead of
/// wrapping into silently-wrong tables.
struct CellStats {
  std::size_t runs = 0;
  std::size_t successes = 0;
  std::uint64_t moves_sum = 0;
  std::uint64_t makespan_sum = 0;
  std::uint64_t memory_bits_sum = 0;
  std::uint64_t actions_sum = 0;
  /// The cell's lowest-index failing scenarios, ≤ max_failures_per_cell of
  /// them, ascending (scenario index, description) — failure *sampling*, so
  /// a cell that fails 10^5 times costs M strings, not 10^5.
  FailureSamples failure_samples;
  /// Mergeable per-cell quantile sketches over each scenario's total moves
  /// and makespan. Element-wise commutative merges (util/quantile_sketch.h),
  /// so — like the integer sums — they are byte-identical at any worker,
  /// lane, shard or checkpoint partition of the scenario set.
  QuantileSketch moves_sketch;
  QuantileSketch makespan_sketch;

  [[nodiscard]] Averages averages() const;
};

/// Merges `from` into `into` with CHECKED sums: any wrapping of runs/
/// successes or a measure sum throws std::overflow_error naming the field —
/// a merged cross-machine sweep that big must fail loudly, not report
/// garbage averages. `max_failures_per_cell` bounds the merged sample list.
void merge_cell_stats(CellStats& into, CellStats&& from,
                      std::size_t max_failures_per_cell);

struct CampaignOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t workers = 0;
  /// Record each scenario's final staying positions (materialized path
  /// only; the streaming path never stores per-scenario data).
  bool record_final_positions = false;
  /// How many failing scenarios to describe verbatim in the summary.
  std::size_t max_recorded_failures = 16;
  /// Failure strings kept per cell (CellStats::failure_samples).
  std::size_t max_failures_per_cell = 4;
  /// Streaming path only: byte budget for ONE aggregation store (each
  /// worker holds one during the run, the merged result is one more).
  /// When cells × streaming_cell_footprint_bytes() exceeds it, trailing
  /// cells of the expansion are skipped — their scenarios never run — and
  /// reported in cells_skipped / skipped_cell_samples. 0 = unlimited.
  /// Deliberately independent of the worker count so the digest contract
  /// holds even when the budget binds.
  std::size_t memory_budget_bytes = 0;
  /// Lane-batched execution (sim::BatchArena): how many in-flight scenarios
  /// each worker interleaves, stepping them in bounded round-robin chunks
  /// with per-lane retirement and refill. 1 = the scalar pooled path (one
  /// RunContext per worker — the historical engine, byte for byte).
  /// 0 (default) = auto: lanes engage for small-instance grids (max n ≤
  /// 4096) whose stream is long enough to amortize warming B arenas per
  /// worker (≥ 256 scenarios/worker); big rings and short smoke grids keep
  /// the scalar engine.
  /// Results are byte-identical at ANY value: every lane derives its
  /// randomness from the same per-scenario substream, drives its own
  /// per-lane reseeded scheduler, and the aggregation folds are commutative
  /// (tests/test_batch.cpp pins digest equality across lane × worker
  /// combinations).
  std::size_t batch_lanes = 0;
  /// Streaming path only: checkpoint/resume. When non-empty, the run folds
  /// scenarios in watermark blocks and atomically replaces this file (a
  /// versioned exp::ShardFile, write-temp + rename) after each block, so a
  /// kill -9 at any point loses at most one checkpoint interval. If the file
  /// already exists when the run starts, it is validated against the grid
  /// fingerprint (mismatch throws — resuming someone else's sweep corrupts
  /// both) and the run continues from its watermark. The final digest is
  /// byte-identical to an uninterrupted run at any kill/resume point: the
  /// watermark blocks are just another partition of the scenario set, and
  /// every fold is commutative (tests/test_shard.cpp pins this).
  std::string checkpoint_path{};
  /// Scenarios per checkpoint block (watermark granularity). 0 with a
  /// checkpoint_path set = write only the final file (a complete shard).
  std::size_t checkpoint_every_scenarios = 0;
  /// TEST/OPS HOOK: abort (throw CampaignAborted) after this many checkpoint
  /// writes if scenarios remain — simulates a mid-sweep kill with the
  /// on-disk state a real crash would leave. 0 = off.
  std::size_t checkpoint_abort_after = 0;
};

/// Thrown by the checkpoint_abort_after test hook after the requested number
/// of checkpoint writes. The checkpoint file on disk is exactly what a
/// process killed at that watermark would leave behind.
struct CampaignAborted : std::runtime_error {
  explicit CampaignAborted(const std::string& what, std::size_t watermark_)
      : std::runtime_error(what), watermark(watermark_) {}
  std::size_t watermark = 0;  ///< scenarios folded into the file so far
};

/// Conservative per-cell byte estimate the streaming budget divides by:
/// map-node + CellStats + sampled-failure-string allowance.
[[nodiscard]] std::size_t streaming_cell_footprint_bytes(
    const CampaignOptions& options) noexcept;

struct CampaignResult {
  std::vector<Scenario> scenarios;       ///< materialized path only
  std::vector<ScenarioResult> results;   ///< materialized path only
  std::map<CellKey, CellStats> cells;    ///< deterministic iteration order
  std::size_t scenario_count = 0;        ///< scenarios run (both paths)
  std::size_t failures = 0;
  std::vector<std::string> failure_samples;  ///< lowest-index N failures
  std::size_t workers_used = 0;
  bool streamed = false;                 ///< which path produced this
  /// Streaming budget bookkeeping: cells dropped to respect
  /// memory_budget_bytes (their scenarios were never run), plus the first
  /// few dropped keys for the report.
  std::size_t cells_skipped = 0;
  std::size_t scenarios_skipped = 0;
  std::vector<CellKey> skipped_cell_samples;
  /// Commutative (wrapping) sum of per-scenario outcome hashes — the
  /// scenario half of digest(), cached by both aggregation paths so the
  /// streaming one never needs the results it discarded.
  std::uint64_t scenario_hash = 0;

  [[nodiscard]] bool all_ok() const noexcept { return failures == 0; }

  /// Cell lookup; null when the cell is not in the grid (or fully skipped).
  [[nodiscard]] const CellStats* cell(const CellKey& key) const;

  /// Convenience: the averages of a cell, zeroed when absent.
  [[nodiscard]] Averages averages(const CellKey& key) const;

  /// 64-bit digest of every scenario outcome (index-keyed commutative
  /// hash-sum) and every aggregated cell (key-order fold). Equal digests at
  /// different worker counts — and between run_campaign and
  /// run_campaign_streaming on the same grid (with record_final_positions
  /// off) — is the determinism contract.
  [[nodiscard]] std::uint64_t digest() const;

  /// Aggregated per-cell table (one row per cell, expansion order).
  [[nodiscard]] Table summary_table() const;

  /// Rendered summary: the table plus failure count and samples. Two runs of
  /// the same grid compare byte-identical via this string.
  [[nodiscard]] std::string summary() const;
};

// The engine's sharding primitive moved down a layer to util/parallel.h
// (core::run_many needs it below exp/); the campaign engine and the
// schedule explorer now share udring::parallel_for_index /
// parallel_for_workers. Re-exported here for existing exp:: callers.
using udring::parallel_for_index;
using udring::parallel_for_workers;
using udring::resolve_workers;

/// Runs every scenario of `grid` across a worker pool and aggregates.
/// A scenario's randomness is Rng(grid.base_seed).substream(key), where the
/// key hashes only the instance coordinates (family, n, k, l, repetition):
/// home configurations and scheduler seeds never depend on which worker
/// runs the scenario or in what order, and algorithm/scheduler cells share
/// instances. Use scenario_homes() to recompute a scenario's configuration
/// externally — it applies the exact same derivation. A scenario that
/// throws is recorded as a failure with the exception text; the campaign
/// always completes.
[[nodiscard]] CampaignResult run_campaign(const CampaignGrid& grid,
                                          const CampaignOptions& options = {});

/// Streaming mode of run_campaign: identical scenarios, identical
/// per-scenario execution, but each worker folds every ScenarioResult into
/// its own cell accumulator the moment the scenario finishes, and the
/// accumulators merge (exactly — integer sums, commutative hash-sum,
/// lowest-index samples) after the join. The campaign holds O(cells +
/// workers) state regardless of scenario count: no results vector, no
/// materialized expansion (scenario i is recomputed from i on the fly), so
/// a 10^6-scenario sweep's resident set is flat. cells/digest()/summary()
/// are byte-identical to the materialized path on the same grid;
/// scenarios/results stay empty and record_final_positions is ignored.
[[nodiscard]] CampaignResult run_campaign_streaming(
    const CampaignGrid& grid, const CampaignOptions& options = {});

/// The order-invariant aggregation state the streaming path folds into —
/// now a first-class value so partial folds can cross process boundaries:
/// per-worker accumulators, checkpoint files and shard files all carry one,
/// and any merge order reproduces the in-process fold byte for byte (the
/// global failure samples keep their scenario indices here precisely so a
/// cross-shard merge can still select the lowest-index N).
struct CampaignAccumulator {
  std::map<CellKey, CellStats> cells;
  std::uint64_t scenario_hash = 0;  ///< commutative (wrapping by design)
  std::size_t failures = 0;
  FailureSamples failure_samples;
};

/// Merges `from` into `into`. Cell sums are CHECKED (std::overflow_error on
/// saturation, see merge_cell_stats); the scenario hash wraps by design;
/// sample buffers merge by lowest index under the given caps. Commutative
/// across any partition of a scenario set into accumulators.
void merge_accumulators(CampaignAccumulator& into, CampaignAccumulator&& from,
                        std::size_t max_failures_per_cell,
                        std::size_t max_recorded_failures);

/// Runs scenarios [begin, end) of the grid's budget-admitted expansion
/// (exactly the set run_campaign_streaming would run — a binding
/// memory_budget_bytes truncates the cell list identically here) and folds
/// them into `into` through the same per-worker-accumulator machinery,
/// honoring workers/batch_lanes. This is the primitive the checkpoint loop
/// and the multi-process shard driver (exp::run_campaign_shard) are built
/// on: run_campaign_streaming(grid, o) == fold of run_campaign_range over
/// any partition of [0, admitted scenario count). Throws
/// std::invalid_argument when end exceeds the admitted scenario count.
/// Returns the worker count used.
std::size_t run_campaign_range(const CampaignGrid& grid,
                               const CampaignOptions& options,
                               std::size_t begin, std::size_t end,
                               CampaignAccumulator& into);

/// The budget-admitted prefix of expand_cells(grid) plus the skip
/// bookkeeping for the dropped tail — the expansion the streaming engine,
/// the checkpoint loop and every shard of a multi-process sweep all iterate
/// (a function of (grid, options) only, never of workers — that is what
/// keeps the digest contract alive when the budget binds).
struct AdmittedExpansion {
  std::vector<CellKey> cells;  ///< admitted prefix, expansion order
  std::size_t cells_skipped = 0;
  std::size_t scenarios_skipped = 0;
  std::vector<CellKey> skipped_cell_samples;  ///< first ≤ 8 dropped keys
};

[[nodiscard]] AdmittedExpansion admit_cells(const CampaignGrid& grid,
                                            const CampaignOptions& options);

/// Number of scenarios the streaming path will actually run under these
/// options: expansion_size(grid) minus scenarios of cells skipped by a
/// binding memory_budget_bytes.
[[nodiscard]] std::size_t admitted_scenario_count(const CampaignGrid& grid,
                                                  const CampaignOptions& options);

/// Moves an accumulator's folds into a streamed CampaignResult (cells,
/// scenario hash, failure counts and sample texts). Shared by
/// run_campaign_streaming and exp::merge_shards so the two finishing paths
/// cannot drift.
void finalize_streaming_result(CampaignResult& result,
                               CampaignAccumulator&& merged);

/// The home configuration scenario `s` of `grid` runs on — the substream
/// contract makes it recomputable outside the engine, so reports can relate
/// initial configurations to outcomes without the engine storing them.
[[nodiscard]] std::vector<std::size_t> scenario_homes(const CampaignGrid& grid,
                                                      const Scenario& s);

/// Runs the single-cell campaign (n, k, l) × seeds and returns its averages
/// — the classic seed-averaged measurement the bench binaries report.
/// Throws std::invalid_argument when the cell is infeasible for the family
/// (l ∤ n, packed k > ⌈n/4⌉, …): a bench asking for an impossible cell is a
/// bug to surface, not a zero row to print.
[[nodiscard]] Averages measure_cell(core::Algorithm algorithm,
                                    ConfigFamily family, std::size_t n,
                                    std::size_t k, std::size_t l = 1,
                                    std::size_t seeds = 5,
                                    sim::SchedulerKind scheduler =
                                        sim::SchedulerKind::Synchronous,
                                    std::uint64_t base_seed = 1);

}  // namespace udring::exp
