#include "explore/fuzz.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "embed/topology.h"
#include "explore/replay.h"
#include "sim/checker.h"
#include "util/parallel.h"

namespace udring::explore {

std::string_view to_string(OracleMode mode) noexcept {
  switch (mode) {
    case OracleMode::Full: return "full";
    case OracleMode::Incremental: return "incremental";
  }
  return "?";
}

OracleMode oracle_mode_from_name(std::string_view name) {
  for (const OracleMode mode : {OracleMode::Full, OracleMode::Incremental}) {
    if (to_string(mode) == name) return mode;
  }
  throw std::invalid_argument("oracle_mode_from_name: unknown oracle '" +
                              std::string(name) + "'");
}

std::string_view to_string(FuzzTopology topology) noexcept {
  switch (topology) {
    case FuzzTopology::Ring: return "ring";
    case FuzzTopology::Tree: return "tree";
    case FuzzTopology::Graph: return "graph";
  }
  return "?";
}

FuzzTopology fuzz_topology_from_name(std::string_view name) {
  for (const FuzzTopology topology :
       {FuzzTopology::Ring, FuzzTopology::Tree, FuzzTopology::Graph}) {
    if (to_string(topology) == name) return topology;
  }
  throw std::invalid_argument("fuzz_topology_from_name: unknown topology '" +
                              std::string(name) + "'");
}

DrawnInstance draw_instance(FuzzTopology topology, std::size_t n, std::size_t k,
                            Rng& rng) {
  DrawnInstance out;
  const std::size_t agents = std::min(k, n);
  switch (topology) {
    case FuzzTopology::Ring:
      out.node_count = n;
      out.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, n, agents, 1, rng);
      break;
    case FuzzTopology::Tree:
    case FuzzTopology::Graph:
      // Draw the underlying network and embed it: the instance runs natively
      // on the Euler-tour virtual ring; homes are the first tour positions
      // of `agents` distinct underlying nodes (distinct by first-visit).
      out.topology = embed::random_network_topology(
          topology == FuzzTopology::Tree ? embed::RandomNetworkKind::Tree
                                         : embed::RandomNetworkKind::Graph,
          n, rng);
      out.node_count = out.topology.size();
      out.homes = embed::draw_virtual_homes(out.topology, agents, rng);
      break;
  }
  return out;
}

namespace {

/// Steps `sim` to completion under `scheduler` with per-action invariant
/// checking through `oracle` (which also judges the goal at quiescence).
/// Shared by the fuzzing and replay paths so both stop at the same action
/// with the same verdict — that is what makes a failing trace's digest
/// reproducible. `mode` picks the per-action checker: Full re-walks
/// everything each action; Incremental revalidates the action's footprint
/// in O(dirty) (equivalent verdicts — the checks are passive, so the
/// executed schedule and the event-log digest are mode-independent).
ReplayOutcome drive_checked(sim::ExecutionState& sim, sim::Scheduler& scheduler,
                            const sim::GoalOracle& oracle,
                            OracleMode mode = OracleMode::Full,
                            std::size_t full_check_every = 1024) {
  ReplayOutcome out;
  scheduler.attach(sim);
  scheduler.reset(sim.agent_count());
  std::size_t min_tokens = sim.total_tokens();
  const bool incremental = mode == OracleMode::Incremental;
  // One pooled checker per worker thread (run_fuzz workers are threads, so
  // this is exactly the per-worker-arena shape the pooled ExecutionState
  // uses): reset() rebinds it per run reusing the shadow buffers, instead
  // of reallocating O(n) state every fuzz iteration.
  static thread_local sim::IncrementalInvariantChecker checker;
  if (incremental) {
    checker.set_options(
        sim::IncrementalInvariantChecker::Options{.full_check_every =
                                                      full_check_every});
    if (const sim::CheckResult start = checker.reset(sim, min_tokens); !start) {
      out.failed = true;
      out.reason = "invariant: " + start.reason;
      out.actions = sim.actions_executed();
      out.digest = sim.log().digest();
      return out;
    }
  }
  while (sim.step(scheduler)) {
    const sim::CheckResult invariants = oracle.check_action(
        sim, min_tokens, incremental ? &checker : nullptr);
    min_tokens = sim.total_tokens();
    if (!invariants) {
      out.failed = true;
      out.reason = "invariant: " + invariants.reason;
      break;
    }
    if (sim.actions_executed() >= sim.max_actions() && !sim.quiescent()) {
      out.failed = true;
      out.reason = "action limit reached (livelock or broken algorithm)";
      break;
    }
  }
  if (!out.failed && sim.quiescent()) {
    const sim::CheckResult goal = oracle.check_goal(sim);
    if (!goal) {
      out.failed = true;
      out.reason = "goal: " + goal.reason;
    }
  }
  out.actions = sim.actions_executed();
  out.digest = sim.log().digest();
  return out;
}

[[nodiscard]] sim::Instance build_instance(const RecordRequest& request) {
  core::RunSpec spec;
  spec.node_count = request.node_count;
  spec.homes = request.homes;
  spec.topology = request.topology;
  spec.problem = request.problem;
  spec.sim_options.record_events = true;
  spec.sim_options.max_actions = request.max_actions;
  spec.sim_options.fault_non_fifo_links = request.fault_non_fifo;
  spec.sim_options.fault_non_fifo_min_phase = request.fault_min_phase;
  spec.sim_options.faults = request.faults;
  return core::make_instance(request.algorithm, spec);
}

/// The request's full fault plan: the structured plan with the two legacy
/// non-FIFO knobs merged in (the same merge the Instance ctor performs).
[[nodiscard]] sim::FaultPlan merged_fault_plan(const RecordRequest& request) {
  sim::FaultPlan plan = request.faults;
  plan.non_fifo = plan.non_fifo || request.fault_non_fifo;
  plan.non_fifo_min_phase =
      std::max(plan.non_fifo_min_phase, request.fault_min_phase);
  return plan;
}

}  // namespace

ScheduleTrace record_trace(const RecordRequest& request,
                           sim::ExecutionState* reuse) {
  ScheduleTrace trace;
  trace.algorithm = request.algorithm;
  trace.node_count = request.topology.empty() ? request.node_count
                                              : request.topology.size();
  trace.homes = request.homes;
  trace.topology = request.topology.empty()
                       ? "ring"
                       : std::string(request.topology.name());
  trace.problem = request.problem;
  trace.generator = std::string(to_string(request.kind));
  trace.seed = request.seed;
  trace.set_fault_plan(merged_fault_plan(request));
  trace.max_actions = request.max_actions;

  const sim::Instance instance = build_instance(request);
  sim::ExecutionState local;
  sim::ExecutionState& state = reuse != nullptr ? *reuse : local;
  state.reset(instance);
  RecordingScheduler recorder(
      make_explore_scheduler(request.kind, request.seed, trace.homes.size()));
  const auto goal_oracle =
      core::make_goal_oracle(request.algorithm, request.problem);
  const ReplayOutcome outcome =
      drive_checked(state, recorder, *goal_oracle, request.oracle,
                    request.oracle_full_check_every);
  trace.choices = recorder.choices();
  trace.expected_digest = outcome.digest;
  trace.note = outcome.failed ? outcome.reason : "ok";
  return trace;
}

ScheduleTrace record_trace(core::Algorithm algorithm, std::size_t node_count,
                           std::vector<std::size_t> homes,
                           ExploreSchedulerKind kind, std::uint64_t seed,
                           bool fault_non_fifo, std::size_t fault_min_phase,
                           std::size_t max_actions) {
  RecordRequest request;
  request.algorithm = algorithm;
  request.node_count = node_count;
  request.homes = std::move(homes);
  request.kind = kind;
  request.seed = seed;
  request.fault_non_fifo = fault_non_fifo;
  request.fault_min_phase = fault_min_phase;
  request.max_actions = max_actions;
  return record_trace(request);
}

ReplayOutcome replay_trace(const ScheduleTrace& trace, std::size_t max_actions,
                           sim::ExecutionState* reuse, OracleMode oracle,
                           std::size_t full_check_every) {
  // Execution depends only on the virtual ring size (labels decorate
  // reports, not semantics), so every trace — ring, tree or graph
  // provenance — replays on the plain ring of its node_count.
  RecordRequest request;
  request.algorithm = trace.algorithm;
  request.problem = trace.problem;
  request.node_count = trace.node_count;
  request.homes = trace.homes;
  request.fault_non_fifo = trace.fault_non_fifo;
  request.fault_min_phase = trace.fault_min_phase;
  request.faults = trace.fault_plan();
  // An explicit cap wins; otherwise the cap the trace was recorded under,
  // so cap-sensitive outcomes ("action limit reached") replay stand-alone.
  request.max_actions = max_actions != 0 ? max_actions : trace.max_actions;
  const sim::Instance instance = build_instance(request);
  sim::ExecutionState local;
  sim::ExecutionState& state = reuse != nullptr ? *reuse : local;
  state.reset(instance);
  ReplayScheduler replayer(trace.choices);
  const auto goal_oracle =
      core::make_goal_oracle(trace.algorithm, trace.problem);
  return drive_checked(state, replayer, *goal_oracle, oracle,
                       full_check_every);
}

FuzzIteration fuzz_iteration(const FuzzOptions& options,
                             std::uint64_t iteration,
                             sim::ExecutionState* reuse) {
  Rng rng = Rng(options.base_seed).substream(iteration);

  if (!options.fixed_homes.empty() &&
      options.fixed_nodes < options.fixed_homes.size()) {
    throw std::invalid_argument(
        "fuzz_iteration: fixed_homes requires fixed_nodes >= k");
  }
  if (!options.fixed_homes.empty() && options.topology != FuzzTopology::Ring) {
    // Fixed homes name ring nodes; silently fuzzing a plain ring while the
    // caller asked for tree/graph would be a lie.
    throw std::invalid_argument(
        "fuzz_iteration: fixed_homes only supports --topology=ring");
  }

  RecordRequest request;
  request.algorithm = options.algorithm;
  request.problem = options.problem;
  request.fault_non_fifo = options.fault_non_fifo;
  request.fault_min_phase = options.fault_min_phase;
  request.max_actions = options.max_actions;
  request.oracle = options.oracle;
  request.oracle_full_check_every = options.oracle_full_check_every;

  request.node_count = options.fixed_nodes;
  request.homes = options.fixed_homes;
  if (request.homes.empty()) {
    const std::size_t n = static_cast<std::size_t>(rng.between(
        options.min_nodes, std::max(options.min_nodes, options.max_nodes)));
    const std::size_t k_hi =
        std::min(std::max(options.min_agents, options.max_agents), n);
    const std::size_t k = static_cast<std::size_t>(
        rng.between(std::min(options.min_agents, k_hi), k_hi));
    if (options.topology == FuzzTopology::Ring &&
        options.family != exp::ConfigFamily::RandomAny) {
      // draw_instance draws RandomAny; other families are ring-only.
      request.node_count = n;
      request.homes = exp::draw_homes(options.family, n, k, 1, rng);
    } else {
      DrawnInstance drawn = draw_instance(options.topology, n, k, rng);
      request.node_count = drawn.node_count;
      request.homes = std::move(drawn.homes);
      request.topology = std::move(drawn.topology);
    }
  }

  const std::vector<ExploreSchedulerKind>& pool =
      options.schedulers.empty() ? all_explore_scheduler_kinds()
                                 : options.schedulers;
  request.kind = pool[rng.index(pool.size())];
  request.seed = rng();

  // Draw this iteration's fault plan last, gated on the budgets: zero
  // budgets consume nothing from the substream, so fault-free fuzz digests
  // are byte-identical to pre-fault builds. Fault times land in a window of
  // ~2 virtual laps so crashes/rewires hit mid-execution, not after
  // quiescence.
  request.faults = options.faults;
  if (options.fault_crash_budget > 0 || options.fault_rewire_budget > 0) {
    const std::size_t k = request.homes.size();
    const std::size_t horizon =
        std::max<std::size_t>(2 * request.node_count * std::max<std::size_t>(k, 1), 8);
    const std::size_t already = request.faults.crashes.size();
    const std::size_t crashes =
        std::min(options.fault_crash_budget, k > already ? k - already : 0);
    for (std::size_t c = 0; c < crashes; ++c) {
      sim::CrashFault crash;
      do {
        crash.agent = static_cast<sim::AgentId>(rng.index(k));
      } while (std::any_of(request.faults.crashes.begin(),
                           request.faults.crashes.end(),
                           [&](const sim::CrashFault& have) {
                             return have.agent == crash.agent;
                           }));
      crash.at_action = 1 + static_cast<std::size_t>(rng.index(horizon));
      request.faults.crashes.push_back(crash);
    }
    const std::size_t rewires =
        sim::rewire_candidate_count(request.node_count) > 0
            ? options.fault_rewire_budget
            : 0;
    for (std::size_t r = 0; r < rewires; ++r) {
      std::size_t at = 0;
      do {
        at = 1 + static_cast<std::size_t>(rng.index(horizon));
      } while (std::find(request.faults.rewire_at.begin(),
                         request.faults.rewire_at.end(),
                         at) != request.faults.rewire_at.end());
      request.faults.rewire_at.push_back(at);
    }
    request.faults.normalize();
  }

  ScheduleTrace trace = record_trace(request, reuse);
  FuzzIteration out;
  out.actions = trace.choices.size();  // one pick per atomic action
  out.digest = trace.expected_digest;
  if (trace.note == "ok") return out;
  FuzzFailure failure;
  failure.reason = trace.note;
  failure.at_action = trace.choices.size();
  failure.iteration = iteration;
  failure.trace = std::move(trace);
  out.failure = std::move(failure);
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.iterations = options.iterations;

  std::vector<FuzzIteration> slots(options.iterations);
  // One pooled ExecutionState per worker (the same shape as the campaign
  // engine's RunContext pool): arenas recycle across iterations, outputs
  // stay index-owned, so the digest stays worker-count-invariant.
  const std::size_t workers =
      resolve_workers(options.iterations, options.workers);
  std::vector<std::unique_ptr<sim::ExecutionState>> states;
  states.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    states.push_back(std::make_unique<sim::ExecutionState>());
  }
  parallel_for_workers(options.iterations, workers,
                       [&](std::size_t worker, std::size_t i) {
                         slots[i] =
                             fuzz_iteration(options, i, states[worker].get());
                       });

  std::uint64_t state = 0xf0220feed5eedULL;  // "fuzz-feed" domain
  fold64(state, options.iterations);
  for (const FuzzIteration& slot : slots) {
    fold64(state, slot.failure ? 1 : 0);
    fold64(state, slot.actions);
    fold64(state, slot.digest);
    if (slot.failure) {
      ++report.failures;
      fold64(state, slot.failure->at_action);
      if (report.failure_samples.size() < options.max_recorded_failures) {
        report.failure_samples.push_back(*slot.failure);
      }
    }
    report.total_actions += slot.actions;
  }
  report.digest = state;
  return report;
}

}  // namespace udring::explore
