#include "explore/fuzz.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "explore/replay.h"
#include "sim/checker.h"

namespace udring::explore {

namespace {

/// Steps `sim` to completion under `scheduler` with per-action invariant
/// checking. Shared by the fuzzing and replay paths so both stop at the
/// same action with the same verdict — that is what makes a failing trace's
/// digest reproducible.
ReplayOutcome drive_checked(sim::Simulator& sim, sim::Scheduler& scheduler,
                            core::Algorithm algorithm) {
  ReplayOutcome out;
  scheduler.attach(sim);
  scheduler.reset(sim.agent_count());
  std::size_t min_tokens = sim.ring().total_tokens();
  while (sim.step(scheduler)) {
    const sim::CheckResult invariants =
        sim::check_model_invariants(sim, min_tokens);
    min_tokens = sim.ring().total_tokens();
    if (!invariants) {
      out.failed = true;
      out.reason = "invariant: " + invariants.reason;
      break;
    }
    if (sim.actions_executed() >= sim.max_actions() && !sim.quiescent()) {
      out.failed = true;
      out.reason = "action limit reached (livelock or broken algorithm)";
      break;
    }
  }
  if (!out.failed && sim.quiescent()) {
    const sim::CheckResult goal = core::evaluate_goal(algorithm, sim);
    if (!goal) {
      out.failed = true;
      out.reason = "goal: " + goal.reason;
    }
  }
  out.actions = sim.actions_executed();
  out.digest = sim.log().digest();
  return out;
}

[[nodiscard]] std::unique_ptr<sim::Simulator> build_sim(
    core::Algorithm algorithm, std::size_t node_count,
    const std::vector<std::size_t>& homes, bool fault_non_fifo,
    std::size_t fault_min_phase, std::size_t max_actions) {
  core::RunSpec spec;
  spec.node_count = node_count;
  spec.homes = homes;
  spec.sim_options.record_events = true;
  spec.sim_options.max_actions = max_actions;
  spec.sim_options.fault_non_fifo_links = fault_non_fifo;
  spec.sim_options.fault_non_fifo_min_phase = fault_min_phase;
  return core::make_simulator(algorithm, spec);
}

}  // namespace

ScheduleTrace record_trace(core::Algorithm algorithm, std::size_t node_count,
                           std::vector<std::size_t> homes,
                           ExploreSchedulerKind kind, std::uint64_t seed,
                           bool fault_non_fifo, std::size_t fault_min_phase,
                           std::size_t max_actions) {
  ScheduleTrace trace;
  trace.algorithm = algorithm;
  trace.node_count = node_count;
  trace.homes = std::move(homes);
  trace.generator = std::string(to_string(kind));
  trace.seed = seed;
  trace.fault_non_fifo = fault_non_fifo;
  trace.fault_min_phase = fault_min_phase;

  auto sim = build_sim(algorithm, node_count, trace.homes, fault_non_fifo,
                       fault_min_phase, max_actions);
  RecordingScheduler recorder(
      make_explore_scheduler(kind, seed, trace.homes.size()));
  const ReplayOutcome outcome = drive_checked(*sim, recorder, algorithm);
  trace.choices = recorder.choices();
  trace.expected_digest = outcome.digest;
  trace.note = outcome.failed ? outcome.reason : "ok";
  return trace;
}

ReplayOutcome replay_trace(const ScheduleTrace& trace, std::size_t max_actions) {
  auto sim = build_sim(trace.algorithm, trace.node_count, trace.homes,
                       trace.fault_non_fifo, trace.fault_min_phase, max_actions);
  ReplayScheduler replayer(trace.choices);
  return drive_checked(*sim, replayer, trace.algorithm);
}

FuzzIteration fuzz_iteration(const FuzzOptions& options,
                             std::uint64_t iteration) {
  Rng rng = Rng(options.base_seed).substream(iteration);

  if (!options.fixed_homes.empty() &&
      options.fixed_nodes < options.fixed_homes.size()) {
    throw std::invalid_argument(
        "fuzz_iteration: fixed_homes requires fixed_nodes >= k");
  }
  std::size_t n = options.fixed_nodes;
  std::vector<std::size_t> homes = options.fixed_homes;
  if (homes.empty()) {
    n = static_cast<std::size_t>(rng.between(
        options.min_nodes, std::max(options.min_nodes, options.max_nodes)));
    const std::size_t k_hi =
        std::min(std::max(options.min_agents, options.max_agents), n);
    const std::size_t k = static_cast<std::size_t>(
        rng.between(std::min(options.min_agents, k_hi), k_hi));
    homes = exp::draw_homes(options.family, n, k, 1, rng);
  }

  const std::vector<ExploreSchedulerKind>& pool =
      options.schedulers.empty() ? all_explore_scheduler_kinds()
                                 : options.schedulers;
  const ExploreSchedulerKind kind = pool[rng.index(pool.size())];
  const std::uint64_t scheduler_seed = rng();

  ScheduleTrace trace = record_trace(
      options.algorithm, n, std::move(homes), kind, scheduler_seed,
      options.fault_non_fifo, options.fault_min_phase, options.max_actions);
  FuzzIteration out;
  out.actions = trace.choices.size();  // one pick per atomic action
  out.digest = trace.expected_digest;
  if (trace.note == "ok") return out;
  FuzzFailure failure;
  failure.reason = trace.note;
  failure.at_action = trace.choices.size();
  failure.iteration = iteration;
  failure.trace = std::move(trace);
  out.failure = std::move(failure);
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  report.iterations = options.iterations;

  std::vector<FuzzIteration> slots(options.iterations);
  exp::parallel_for_index(options.iterations, options.workers, [&](std::size_t i) {
    slots[i] = fuzz_iteration(options, i);
  });

  std::uint64_t state = 0xf0220feed5eedULL;  // "fuzz-feed" domain
  fold64(state, options.iterations);
  for (const FuzzIteration& slot : slots) {
    fold64(state, slot.failure ? 1 : 0);
    fold64(state, slot.actions);
    fold64(state, slot.digest);
    if (slot.failure) {
      ++report.failures;
      fold64(state, slot.failure->at_action);
      if (report.failure_samples.size() < options.max_recorded_failures) {
        report.failure_samples.push_back(*slot.failure);
      }
    }
    report.total_actions += slot.actions;
  }
  report.digest = state;
  return report;
}

}  // namespace udring::explore
