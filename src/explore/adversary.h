// udring/explore/adversary.h
//
// Adversarial schedulers. The five sim/ families sample the fair-schedule
// quantifier generically; these three *search* for trouble by reading the
// observable simulator state (via Scheduler::attach) and steering toward the
// executions where asynchrony bugs live:
//
//  - LinkDelayScheduler:      maximizes link delay. Agents already on a link
//                             stay there as long as anything else can act;
//                             when only in-transit agents remain, it drains
//                             the most crowded link first. Queues grow to
//                             their worst case, so every queue-order
//                             assumption is exercised.
//  - BurstPartitionScheduler: freezes half the agents while the other half
//                             runs a long exclusive burst, then swaps —
//                             a repeatedly partitioned ring, the pattern
//                             that exposes stale-observation bugs.
//  - FifoStressScheduler:     a greedy frontrunner: always advances the
//                             most-advanced agent (highest phase, then most
//                             moves), maximally starving laggards. In
//                             Algorithm 3 this rushes deployed followers
//                             around the ring while their leader crawls —
//                             exactly the delivery order whose safety rests
//                             on the FIFO non-overtaking property (see
//                             known_k_logmem.h). Under the non-FIFO fault
//                             injection it is the scheduler that breaks
//                             KnownKLogMemStrict fastest.
//  - RewiringAdversary:       adversarial *rewiring*, not scheduling: agent
//                             picks stay uniform, but dynamic-ring stride
//                             draws (sim/fault.h) maximize agent
//                             displacement on the rewired ring.
//
// All are deterministic given their seed and remain fair on
// terminating workloads (a starved agent acts once its competitors park or
// halt). ExploreSchedulerKind unifies them with the sim/ families so record/
// replay tests, fuzz pools and sweeps can treat all schedulers uniformly.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace udring::explore {

class LinkDelayScheduler final : public sim::Scheduler {
 public:
  void attach(const sim::ExecutionState& sim) override { sim_ = &sim; }
  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  [[nodiscard]] std::string_view name() const override { return "link-delay"; }

 private:
  const sim::ExecutionState* sim_ = nullptr;
};

class BurstPartitionScheduler final : public sim::Scheduler {
 public:
  /// Partition membership is drawn from `seed`; each side runs up to `burst`
  /// consecutive actions before the partition flips.
  explicit BurstPartitionScheduler(std::uint64_t seed, std::size_t burst = 24)
      : seed_(seed), burst_(burst) {}

  void reset(std::size_t agent_count) override;
  // Without this override a pooled object would redraw the FIRST run's
  // partition forever — the reseed-audit sweep in tests/test_pooling.cpp
  // caught exactly that.
  void reseed(std::uint64_t seed) override { seed_ = seed; }
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  [[nodiscard]] std::string_view name() const override { return "burst-partition"; }

 private:
  std::uint64_t seed_;
  std::size_t burst_;
  std::vector<bool> side_;       // agent id -> partition side
  bool active_side_ = false;
  std::size_t remaining_ = 0;    // actions left in the current burst
};

class FifoStressScheduler final : public sim::Scheduler {
 public:
  void attach(const sim::ExecutionState& sim) override { sim_ = &sim; }
  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  [[nodiscard]] std::string_view name() const override { return "fifo-stress"; }

 private:
  const sim::ExecutionState* sim_ = nullptr;
};

/// The dynamic-ring adversary (sim/fault.h). Agent picks delegate to the
/// seeded uniform scheduler — rewiring trouble should come from the *ring*,
/// not from a biased schedule — but every rewiring stride draw
/// (Scheduler::pick_index, consumed at FaultPlan rewire points) is answered
/// by scanning the candidate strides and choosing the one that maximizes
/// total agent displacement: the sum, over agents, of the live-ring distance
/// to the nearest other agent under the rewired successor map. Deployed
/// configurations score near-uniform spacing; the adversary's rewiring
/// stretches exactly those distances, forcing the longest recovery walks the
/// 1-interval-connectivity model permits.
class RewiringAdversary final : public sim::Scheduler {
 public:
  explicit RewiringAdversary(std::uint64_t seed) : inner_(seed) {}

  void attach(const sim::ExecutionState& sim) override { sim_ = &sim; }
  void reset(std::size_t agent_count) override { inner_.reset(agent_count); }
  void reseed(std::uint64_t seed) override { inner_.reseed(seed); }
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override {
    return inner_.pick(enabled);
  }
  [[nodiscard]] std::size_t pick_index(std::size_t bound) override;
  [[nodiscard]] std::string_view name() const override {
    return "rewire-adversary";
  }

 private:
  const sim::ExecutionState* sim_ = nullptr;
  sim::RandomScheduler inner_;
  std::vector<sim::NodeId> nodes_;  // scratch: agent positions per draw
};

/// The sim/ scheduler families plus the adversaries: one namespace of
/// scheduler kinds for the explorer (record/replay sweeps, fuzz pools).
enum class ExploreSchedulerKind {
  RoundRobin,
  Random,
  Synchronous,
  Priority,
  Burst,
  LinkDelay,
  BurstPartition,
  FifoStress,
  RewireAdversary,
};

[[nodiscard]] std::string_view to_string(ExploreSchedulerKind kind) noexcept;

/// Inverse of to_string. Throws std::invalid_argument on an unknown name.
[[nodiscard]] ExploreSchedulerKind explore_scheduler_from_name(
    std::string_view name);

/// All kinds, for INSTANTIATE_TEST_SUITE_P sweeps and fuzz pools.
[[nodiscard]] const std::vector<ExploreSchedulerKind>& all_explore_scheduler_kinds();

/// Only the adversaries.
[[nodiscard]] const std::vector<ExploreSchedulerKind>& adversary_scheduler_kinds();

/// Factory covering every ExploreSchedulerKind (delegates the sim/ kinds to
/// sim::make_scheduler). Adversaries self-attach when the run starts.
[[nodiscard]] std::unique_ptr<sim::Scheduler> make_explore_scheduler(
    ExploreSchedulerKind kind, std::uint64_t seed, std::size_t agent_count);

}  // namespace udring::explore
