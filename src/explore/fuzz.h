// udring/explore/fuzz.h
//
// The randomized schedule fuzzer: the test suite's search axis.
//
// One fuzz iteration draws an instance (n, k, homes) and a scheduler from
// the pool, runs the simulator one atomic action at a time under a
// RecordingScheduler, and evaluates check_model_invariants after *every*
// action plus the algorithm's goal oracle at quiescence. Any violation
// yields a replayable ScheduleTrace (hand it to shrink_trace for the
// minimal version). replay_trace is the inverse: deterministically re-runs
// a trace under the same per-action checking and reports the event-log
// digest, so recorded traces are self-verifying artifacts.
//
// run_fuzz shards iterations across the shared worker-pool primitive
// (util::parallel_for_workers) with one pooled sim::ExecutionState per
// worker, so a long fuzz campaign reuses its arenas exactly like a
// measurement campaign. Iteration i's randomness is
// Rng(base_seed).substream(i) — independent of worker count and execution
// order — and results fold in index order, so a fuzz campaign's digest is
// byte-identical at any parallelism.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/adversary.h"
#include "explore/trace.h"

namespace udring::explore {

/// How the per-action model-invariant oracle runs during checked execution.
/// Full re-walks every node and queue after every action — O(n + k) per
/// action, the exhaustive default. Incremental revalidates only the
/// action's {node, next(node)} footprint against shadow counts
/// (sim::IncrementalInvariantChecker) with a periodic full re-walk as the
/// safety net — O(dirty) per action, which is what makes per-action
/// checking viable at n ≫ 100 (≥2× checked-fuzz throughput at n = 4096;
/// see bench_streaming_campaign). Verdicts are equivalent on any violation
/// a single action can introduce (tests/test_checker_incremental.cpp), so
/// the mode changes cost, not coverage, and report digests match across
/// modes.
enum class OracleMode { Full, Incremental };

[[nodiscard]] std::string_view to_string(OracleMode mode) noexcept;

/// Inverse of to_string. Throws std::invalid_argument on an unknown name.
[[nodiscard]] OracleMode oracle_mode_from_name(std::string_view name);

/// Which family of topologies the fuzzer draws instances on. Ring is the
/// paper's model; Tree and Graph draw a random tree / connected graph per
/// iteration and fuzz the algorithm natively on its Euler-tour topology —
/// the §5 embedding path, end to end (the recorded traces stay replayable
/// stand-alone because execution depends only on the virtual ring size).
enum class FuzzTopology { Ring, Tree, Graph };

[[nodiscard]] std::string_view to_string(FuzzTopology topology) noexcept;

/// Inverse of to_string. Throws std::invalid_argument on an unknown name.
[[nodiscard]] FuzzTopology fuzz_topology_from_name(std::string_view name);

/// One drawn instance of a topology family: the virtual ring size, the home
/// configuration, and (for Tree/Graph) the native topology it embeds.
struct DrawnInstance {
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;
  sim::Topology topology;  ///< empty for Ring
};

/// Draws "a random instance of family `topology` with n (underlying) nodes
/// and k agents" — the ONE definition of that draw, shared by the fuzzer,
/// `udring_fuzz --record` and `udring_mc`, so the instance families the
/// three surfaces exercise cannot drift apart. k is clamped to the
/// underlying node count. Deterministic in `rng`.
[[nodiscard]] DrawnInstance draw_instance(FuzzTopology topology, std::size_t n,
                                          std::size_t k, Rng& rng);

struct FuzzOptions {
  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  /// Goal the runs are judged against (core::make_goal_oracle); Auto = the
  /// algorithm's natural problem. Carried into every recorded trace.
  core::ProblemSpec problem;
  exp::ConfigFamily family = exp::ConfigFamily::RandomAny;
  /// Topology family instances are drawn on (see FuzzTopology). For Tree
  /// and Graph the node range below sizes the *underlying* network; the
  /// virtual ring is 2(n−1) steps.
  FuzzTopology topology = FuzzTopology::Ring;
  /// Instance size ranges; each iteration draws n then k uniformly.
  std::size_t min_nodes = 8, max_nodes = 24;
  std::size_t min_agents = 2, max_agents = 6;
  /// Point the fuzzer at one fixed instance instead of drawing sizes and
  /// homes (the "search schedules for THIS configuration" mode, e.g.
  /// gen::logmem_stress_homes()). Non-empty = use it; sizes above ignored.
  std::size_t fixed_nodes = 0;
  std::vector<std::size_t> fixed_homes;
  /// Scheduler pool the iteration draws from; empty = all explore kinds.
  std::vector<ExploreSchedulerKind> schedulers;
  /// Enable the non-FIFO fault injection (SimOptions::fault_non_fifo_links).
  bool fault_non_fifo = false;
  /// Fault window (SimOptions::fault_non_fifo_min_phase).
  std::size_t fault_min_phase = 0;
  /// Fixed structured fault plan (sim/fault.h) applied verbatim to every
  /// iteration — the "replay THIS fault scenario under many schedules" mode.
  sim::FaultPlan faults;
  /// Per-iteration fault budgets: when nonzero, each iteration draws that
  /// many crash faults / rewiring points from its own substream (on top of
  /// `faults`), so a fuzz campaign explores schedules and fault timings
  /// jointly. Zero budgets draw nothing and leave the substream untouched —
  /// budget-free fuzz digests are byte-identical to pre-fault builds.
  std::size_t fault_crash_budget = 0;
  std::size_t fault_rewire_budget = 0;
  /// Per-action invariant oracle (see OracleMode). Full by default;
  /// Incremental for big instances.
  OracleMode oracle = OracleMode::Full;
  /// Incremental oracle's safety-net interval (full re-walk every N
  /// actions; 0 = never).
  std::size_t oracle_full_check_every = 1024;
  /// Per-run action cap; 0 = the simulator's auto limit.
  std::size_t max_actions = 0;
  std::size_t iterations = 100;
  std::uint64_t base_seed = 1;
  /// Worker threads (exp::CampaignOptions::workers semantics).
  std::size_t workers = 0;
  /// Failures kept verbatim in the report (all are counted).
  std::size_t max_recorded_failures = 8;
};

struct FuzzFailure {
  ScheduleTrace trace;     ///< replayable repro (digest + reason filled in)
  std::string reason;      ///< checker verdict / oracle failure / action limit
  std::size_t at_action = 0;  ///< actions executed when the failure surfaced
  std::uint64_t iteration = 0;
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::size_t total_actions = 0;  ///< fuzzer steps across all iterations
  std::size_t failures = 0;
  std::vector<FuzzFailure> failure_samples;  ///< first N, iteration order
  /// Order-sensitive digest over every iteration's outcome; equality at
  /// different worker counts is the determinism contract.
  std::uint64_t digest = 0;
};

/// Outcome of deterministically re-running a trace (see replay_trace).
struct ReplayOutcome {
  bool failed = false;
  std::string reason;
  std::uint64_t digest = 0;   ///< event-log digest at the stopping point
  std::size_t actions = 0;
};

/// One iteration's outcome: the failure (if any) plus the fuzzer step count
/// (every atomic action is one step).
struct FuzzIteration {
  std::optional<FuzzFailure> failure;
  std::size_t actions = 0;
  std::uint64_t digest = 0;  ///< event-log digest of the run (pass or fail)
};

/// Runs fuzz iteration `iteration` of `options`; a failure carries the
/// recorded trace. Deterministic in (options, iteration). `reuse` points at
/// a pooled ExecutionState to run in (run_fuzz passes its per-worker
/// arena); null = a local one-shot state.
[[nodiscard]] FuzzIteration fuzz_iteration(const FuzzOptions& options,
                                           std::uint64_t iteration,
                                           sim::ExecutionState* reuse = nullptr);

/// Runs options.iterations fuzz iterations across the worker pool, one
/// pooled ExecutionState per worker.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Replays `trace` with per-action invariant checking: steps until
/// quiescence, an invariant violation, or the action limit; at quiescence
/// evaluates the algorithm's goal oracle. Does NOT compare against
/// trace.expected_digest — callers assert that (tests) or refresh it
/// (recording, shrinking). `max_actions` overrides the cap when nonzero;
/// 0 uses trace.max_actions (the cap the trace was recorded under), which
/// is itself 0 (the simulator's auto limit) for most traces. `reuse` as in
/// fuzz_iteration. `oracle` picks the per-action invariant checker; the
/// replayed schedule and event-log digest are mode-independent
/// (tests/test_checker_incremental.cpp replays the whole corpus both ways).
[[nodiscard]] ReplayOutcome replay_trace(const ScheduleTrace& trace,
                                         std::size_t max_actions = 0,
                                         sim::ExecutionState* reuse = nullptr,
                                         OracleMode oracle = OracleMode::Full,
                                         std::size_t full_check_every = 1024);

/// One recording request: the instance, the generating scheduler, and the
/// fault knobs. `topology` empty = the plain ring of node_count (in which
/// case `homes` are ring nodes); non-empty = record natively on it (homes
/// are virtual positions, node_count must equal topology.size()).
struct RecordRequest {
  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  /// Goal oracle selection (Auto = the algorithm's natural problem);
  /// serialized into the trace so replays rebuild the same oracle.
  core::ProblemSpec problem;
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;
  sim::Topology topology;
  ExploreSchedulerKind kind = ExploreSchedulerKind::RoundRobin;
  std::uint64_t seed = 0;
  bool fault_non_fifo = false;
  std::size_t fault_min_phase = 0;
  /// Structured fault plan for the run (merged with the two legacy knobs
  /// above by the Instance constructor; recorded into the trace).
  sim::FaultPlan faults;
  std::size_t max_actions = 0;
  /// Per-action oracle for the recording run (see OracleMode).
  OracleMode oracle = OracleMode::Full;
  std::size_t oracle_full_check_every = 1024;
};

/// Records one complete run of the requested instance and returns the
/// resulting trace with choices, digest and note filled in (the recording
/// path of the record/replay pair; also the corpus generator).
[[nodiscard]] ScheduleTrace record_trace(const RecordRequest& request,
                                         sim::ExecutionState* reuse = nullptr);

/// Historical ring-instance form of record_trace.
[[nodiscard]] ScheduleTrace record_trace(core::Algorithm algorithm,
                                         std::size_t node_count,
                                         std::vector<std::size_t> homes,
                                         ExploreSchedulerKind kind,
                                         std::uint64_t seed,
                                         bool fault_non_fifo = false,
                                         std::size_t fault_min_phase = 0,
                                         std::size_t max_actions = 0);

}  // namespace udring::explore
