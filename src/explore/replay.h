// udring/explore/replay.h
//
// Record/replay schedulers.
//
// RecordingScheduler wraps any scheduler and writes down, for every pick,
// the chosen agent's index within the *sorted* enabled set. ReplayScheduler
// consumes such a sequence and reproduces the picks. Because the simulator
// is deterministic given the pick sequence, record → replay reproduces the
// execution byte-identically (pinned by the event-log digest in
// tests/test_replay.cpp, for every scheduler family).
//
// The sorted-index encoding is deliberate: it is independent of the
// simulator's internal enabled-set ordering, and it keeps a *mutated* trace
// meaningful — the shrinker deletes and zeroes entries, the replay reduces
// each entry modulo the current enabled count, and an exhausted trace pads
// with index 0 (a fixed fair fallback), so every candidate the shrinker
// tries is a complete, valid schedule.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.h"

namespace udring::explore {

class RecordingScheduler final : public sim::Scheduler {
 public:
  explicit RecordingScheduler(std::unique_ptr<sim::Scheduler> inner);

  void attach(const sim::ExecutionState& sim) override { inner_->attach(sim); }
  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint64_t rounds() const override { return inner_->rounds(); }

  /// The recorded choice sequence so far (one entry per pick since reset).
  [[nodiscard]] const std::vector<std::uint32_t>& choices() const noexcept {
    return choices_;
  }

 private:
  std::unique_ptr<sim::Scheduler> inner_;
  std::string name_;
  std::vector<std::uint32_t> choices_;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across picks
};

class ReplayScheduler final : public sim::Scheduler {
 public:
  explicit ReplayScheduler(std::vector<std::uint32_t> choices)
      : choices_(std::move(choices)) {}

  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  [[nodiscard]] std::string_view name() const override { return "replay"; }

  /// Picks served so far (> choices().size() means the fallback padded).
  [[nodiscard]] std::size_t consumed() const noexcept { return cursor_; }
  [[nodiscard]] const std::vector<std::uint32_t>& choices() const noexcept {
    return choices_;
  }

 private:
  std::vector<std::uint32_t> choices_;
  std::size_t cursor_ = 0;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across picks
};

}  // namespace udring::explore
