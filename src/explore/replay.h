// udring/explore/replay.h
//
// Record/replay schedulers.
//
// RecordingScheduler wraps any scheduler and writes down, for every pick,
// the chosen agent's index within the *sorted* enabled set. ReplayScheduler
// consumes such a sequence and reproduces the picks. Because the simulator
// is deterministic given the pick sequence, record → replay reproduces the
// execution byte-identically (pinned by the event-log digest in
// tests/test_replay.cpp, for every scheduler family).
//
// The sorted-index encoding is deliberate: it is independent of the
// simulator's internal enabled-set ordering, and it keeps a *mutated* trace
// meaningful — the shrinker deletes and zeroes entries, the replay reduces
// each entry modulo the current enabled count, and an exhausted trace pads
// with index 0 (a fixed fair fallback), so every candidate the shrinker
// tries is a complete, valid schedule.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.h"

namespace udring::explore {

class RecordingScheduler final : public sim::Scheduler {
 public:
  explicit RecordingScheduler(std::unique_ptr<sim::Scheduler> inner);

  void attach(const sim::ExecutionState& sim) override { inner_->attach(sim); }
  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  /// Auxiliary draws (dynamic-ring rewiring strides, sim/fault.h) interleave
  /// into the same choice stream as agent picks: the simulator consumes them
  /// at deterministic points, so position alone disambiguates the two kinds
  /// and one ddmin pass shrinks schedule and fault choices jointly.
  [[nodiscard]] std::size_t pick_index(std::size_t bound) override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint64_t rounds() const override { return inner_->rounds(); }

  /// The recorded choice sequence so far (one entry per pick since reset).
  [[nodiscard]] const std::vector<std::uint32_t>& choices() const noexcept {
    return choices_;
  }

 private:
  std::unique_ptr<sim::Scheduler> inner_;
  std::string name_;
  std::vector<std::uint32_t> choices_;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across picks
};

/// How ReplayScheduler treats picks its trace cannot answer exactly.
///
///  - Lenient (default, the historical behaviour): every entry is reduced
///    modulo the current enabled count and an exhausted trace pads with
///    index 0. Mutated traces stay meaningful — this is what makes the
///    shrinker's candidates complete schedules — but a replay that silently
///    wraps can mask real divergence from the recorded execution.
///  - Strict: an out-of-range entry or an exhausted trace is *reported* via
///    diverged()/divergence() (the run still proceeds on the lenient
///    fallback so callers can observe the aftermath). The mc:: model checker
///    replays every backtracked prefix in this mode: a prefix that recorded
///    branch index b must find at least b+1 enabled agents on re-execution,
///    or determinism itself is broken.
enum class ReplayMode { Lenient, Strict };

class ReplayScheduler final : public sim::Scheduler {
 public:
  explicit ReplayScheduler(std::vector<std::uint32_t> choices,
                           ReplayMode mode = ReplayMode::Lenient)
      : choices_(std::move(choices)), mode_(mode) {}

  void reset(std::size_t agent_count) override;
  sim::AgentId pick(const std::vector<sim::AgentId>& enabled) override;
  /// Consumes the next trace entry as an auxiliary index (rewiring stride
  /// draws), mirroring RecordingScheduler::pick_index: entries reduce modulo
  /// `bound`, an exhausted trace pads with 0, Strict reports both cases.
  [[nodiscard]] std::size_t pick_index(std::size_t bound) override;
  [[nodiscard]] std::string_view name() const override { return "replay"; }

  /// Picks served so far (> choices().size() means the fallback padded).
  [[nodiscard]] std::size_t consumed() const noexcept { return cursor_; }
  [[nodiscard]] const std::vector<std::uint32_t>& choices() const noexcept {
    return choices_;
  }

  /// Strict mode only: true once a pick was out of range or the trace was
  /// exhausted. Cleared by reset(). Always false in Lenient mode.
  [[nodiscard]] bool diverged() const noexcept { return !divergence_.empty(); }

  /// Human-readable description of the first divergence ("" when none).
  [[nodiscard]] const std::string& divergence() const noexcept {
    return divergence_;
  }

 private:
  std::vector<std::uint32_t> choices_;
  ReplayMode mode_ = ReplayMode::Lenient;
  std::size_t cursor_ = 0;
  std::string divergence_;
  std::vector<sim::AgentId> sorted_;  // scratch, reused across picks
};

}  // namespace udring::explore
