#include "explore/replay.h"

#include <algorithm>
#include <stdexcept>

namespace udring::explore {

RecordingScheduler::RecordingScheduler(std::unique_ptr<sim::Scheduler> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("RecordingScheduler: null inner scheduler");
  }
  name_ = "recording(" + std::string(inner_->name()) + ")";
}

void RecordingScheduler::reset(std::size_t agent_count) {
  choices_.clear();
  inner_->reset(agent_count);
}

sim::AgentId RecordingScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  const sim::AgentId chosen = inner_->pick(enabled);
  sorted_.assign(enabled.begin(), enabled.end());
  std::sort(sorted_.begin(), sorted_.end());
  const auto at = std::lower_bound(sorted_.begin(), sorted_.end(), chosen);
  if (at == sorted_.end() || *at != chosen) {
    throw std::logic_error("RecordingScheduler: inner pick not in enabled set");
  }
  choices_.push_back(static_cast<std::uint32_t>(at - sorted_.begin()));
  return chosen;
}

std::size_t RecordingScheduler::pick_index(std::size_t bound) {
  const std::size_t chosen = inner_->pick_index(bound);
  if (chosen >= bound) {
    throw std::logic_error("RecordingScheduler: inner pick_index out of range");
  }
  choices_.push_back(static_cast<std::uint32_t>(chosen));
  return chosen;
}

void ReplayScheduler::reset(std::size_t /*agent_count*/) {
  cursor_ = 0;
  divergence_.clear();
}

sim::AgentId ReplayScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  sorted_.assign(enabled.begin(), enabled.end());
  std::sort(sorted_.begin(), sorted_.end());
  const bool exhausted = cursor_ >= choices_.size();
  const std::uint32_t choice = exhausted ? 0 : choices_[cursor_];
  if (mode_ == ReplayMode::Strict && divergence_.empty()) {
    if (exhausted) {
      divergence_ = "trace exhausted at pick " + std::to_string(cursor_);
    } else if (choice >= sorted_.size()) {
      divergence_ = "choice " + std::to_string(choice) + " out of range at pick " +
                    std::to_string(cursor_) + " (enabled " +
                    std::to_string(sorted_.size()) + ")";
    }
  }
  ++cursor_;
  // Both modes proceed on the lenient fallback; Strict only *reports*, so a
  // diverged run is still a complete schedule the caller can inspect.
  return sorted_[choice % sorted_.size()];
}

std::size_t ReplayScheduler::pick_index(std::size_t bound) {
  const bool exhausted = cursor_ >= choices_.size();
  const std::uint32_t choice = exhausted ? 0 : choices_[cursor_];
  if (mode_ == ReplayMode::Strict && divergence_.empty()) {
    if (exhausted) {
      divergence_ = "trace exhausted at pick " + std::to_string(cursor_);
    } else if (choice >= bound) {
      divergence_ = "index " + std::to_string(choice) + " out of range at pick " +
                    std::to_string(cursor_) + " (bound " +
                    std::to_string(bound) + ")";
    }
  }
  ++cursor_;
  return choice % bound;
}

}  // namespace udring::explore
