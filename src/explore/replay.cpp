#include "explore/replay.h"

#include <algorithm>
#include <stdexcept>

namespace udring::explore {

RecordingScheduler::RecordingScheduler(std::unique_ptr<sim::Scheduler> inner)
    : inner_(std::move(inner)) {
  if (!inner_) {
    throw std::invalid_argument("RecordingScheduler: null inner scheduler");
  }
  name_ = "recording(" + std::string(inner_->name()) + ")";
}

void RecordingScheduler::reset(std::size_t agent_count) {
  choices_.clear();
  inner_->reset(agent_count);
}

sim::AgentId RecordingScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  const sim::AgentId chosen = inner_->pick(enabled);
  sorted_.assign(enabled.begin(), enabled.end());
  std::sort(sorted_.begin(), sorted_.end());
  const auto at = std::lower_bound(sorted_.begin(), sorted_.end(), chosen);
  if (at == sorted_.end() || *at != chosen) {
    throw std::logic_error("RecordingScheduler: inner pick not in enabled set");
  }
  choices_.push_back(static_cast<std::uint32_t>(at - sorted_.begin()));
  return chosen;
}

void ReplayScheduler::reset(std::size_t /*agent_count*/) { cursor_ = 0; }

sim::AgentId ReplayScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  sorted_.assign(enabled.begin(), enabled.end());
  std::sort(sorted_.begin(), sorted_.end());
  const std::uint32_t choice =
      cursor_ < choices_.size() ? choices_[cursor_] : 0;
  ++cursor_;
  return sorted_[choice % sorted_.size()];
}

}  // namespace udring::explore
