#include "explore/shrink.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace udring::explore {

namespace {

/// The failure class a shrink must preserve: the reason up to and including
/// the first ':' ("invariant:", "goal:"), or the whole text otherwise (the
/// action-limit message).
[[nodiscard]] std::string failure_class(std::string_view reason) {
  const std::size_t colon = reason.find(':');
  if (colon == std::string_view::npos) return std::string(reason);
  return std::string(reason.substr(0, colon + 1));
}

}  // namespace

ShrinkResult shrink_trace(const ScheduleTrace& failing,
                          const ShrinkOptions& options) {
  ShrinkResult result;
  result.original_size = failing.choices.size();

  std::size_t replays = 0;
  const auto replay = [&](const ScheduleTrace& candidate) {
    ++replays;
    return replay_trace(candidate, options.max_actions);
  };

  const ReplayOutcome original = replay(failing);
  if (!original.failed) {
    throw std::invalid_argument(
        "shrink_trace: trace does not fail under replay");
  }
  const std::string wanted = failure_class(original.reason);
  const auto still_fails = [&](const ScheduleTrace& candidate) {
    if (replays >= options.max_replays) return false;
    const ReplayOutcome outcome = replay(candidate);
    return outcome.failed && failure_class(outcome.reason) == wanted;
  };

  ScheduleTrace best = failing;

  // ---- ddmin: chunk deletion at doubling granularity ------------------------
  std::size_t chunk = std::max<std::size_t>(1, best.choices.size() / 2);
  while (chunk >= 1 && replays < options.max_replays) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < best.choices.size() && replays < options.max_replays;) {
      ScheduleTrace candidate = best;
      const std::size_t end = std::min(start + chunk, candidate.choices.size());
      candidate.choices.erase(
          candidate.choices.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.choices.begin() + static_cast<std::ptrdiff_t>(end));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        removed_any = true;
        // keep `start`: the next chunk slid into this position
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // ---- pointwise simplification: zero every surviving choice ----------------
  for (std::size_t i = 0;
       i < best.choices.size() && replays < options.max_replays; ++i) {
    if (best.choices[i] == 0) continue;
    ScheduleTrace candidate = best;
    candidate.choices[i] = 0;
    if (still_fails(candidate)) best = std::move(candidate);
  }

  // Trailing zeros are the replay fallback anyway; drop them.
  while (!best.choices.empty() && best.choices.back() == 0) {
    ScheduleTrace candidate = best;
    candidate.choices.pop_back();
    if (still_fails(candidate)) {
      best = std::move(candidate);
    } else {
      break;
    }
  }

  // Refresh the artifact so the shrunk trace is self-checking.
  const ReplayOutcome final_outcome = replay(best);
  best.expected_digest = final_outcome.digest;
  best.note = final_outcome.reason;
  result.reason = final_outcome.reason;
  result.trace = std::move(best);
  result.replays = replays;
  return result;
}

}  // namespace udring::explore
