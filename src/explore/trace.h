// udring/explore/trace.h
//
// ScheduleTrace: a serialized schedule. The simulator is deterministic given
// the initial configuration and the scheduler's pick sequence, so one small
// text artifact — the instance coordinates plus the list of choices —
// reproduces any execution byte-identically. Choices are recorded as the
// picked agent's index within the *sorted* enabled set; that encoding is
// what makes delta-debugging work: a trace with entries deleted is still a
// meaningful schedule (the replay scheduler reduces each entry modulo the
// current enabled count and pads an exhausted trace with index 0).
//
// The text format is line-oriented, versioned, and diff-friendly; failing
// fuzz schedules are shrunk to traces of this form and uploaded as CI
// artifacts, and tests/schedules/ keeps a regression corpus of them. The
// recorded event-log digest makes replay self-checking: a replay that does
// not reproduce the digest is flagged, not silently accepted.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.h"
#include "sim/fault.h"

namespace udring::explore {

struct ScheduleTrace {
  static constexpr std::string_view kMagic = "udring-trace";
  static constexpr std::size_t kVersion = 1;

  core::Algorithm algorithm = core::Algorithm::KnownKFull;
  std::size_t node_count = 0;         ///< virtual ring size for embedded runs
  std::vector<std::size_t> homes;     ///< initial configuration, verbatim
  /// Provenance of the instance's topology ("ring", "euler-tree",
  /// "euler-graph", …). Informational: execution depends only on the
  /// virtual ring size, so every trace replays stand-alone on the plain
  /// ring of node_count regardless of where its instance came from.
  std::string topology = "ring";
  /// Which goal the execution was judged against (and, for gather, the
  /// group size g). Unlike `topology` this is *not* merely provenance:
  /// replay rebuilds the goal oracle from it, so a recorded gather/disperse
  /// failure replays against the same oracle. Auto (the default) is the
  /// algorithm's natural problem and is omitted from the text form — the
  /// pre-problem corpus parses and re-serializes byte-identically.
  core::ProblemSpec problem;
  std::string generator;              ///< scheduler that produced it (informational)
  std::uint64_t seed = 0;             ///< generator seed (informational)
  bool fault_non_fifo = false;        ///< replay with the non-FIFO fault injected
  std::size_t fault_min_phase = 0;    ///< SimOptions::fault_non_fifo_min_phase
  /// Structured fault schedule (sim/fault.h) the execution ran under. The
  /// legacy two fields above stay authoritative for the plain non-FIFO
  /// relaxation so the pre-fault corpus re-serializes byte-identically;
  /// `faults` carries everything else (crashes, drops, dups, the non-FIFO
  /// window bound, rewiring points). Rewiring *stride* draws are not stored
  /// here — they interleave into `choices` via Scheduler::pick_index, which
  /// is what makes a faulty trace shrink and replay like any other.
  sim::FaultPlan faults;
  /// Per-run action cap the execution was recorded under; 0 = the
  /// simulator's auto limit. Serialized (when nonzero) so cap-sensitive
  /// outcomes — "action limit reached" above all — replay identically
  /// through `udring_fuzz --replay` without the caller re-supplying the cap.
  std::size_t max_actions = 0;
  std::vector<std::uint32_t> choices; ///< index into the sorted enabled set
  std::uint64_t expected_digest = 0;  ///< event-log digest the replay must match
  std::string note;                   ///< free text (e.g. the failure reason)

  /// Installs a fault plan, splitting it canonically: the plain non-FIFO
  /// relaxation goes to the legacy fault_non_fifo/fault_min_phase fields
  /// (pinning the pre-fault corpus bytes), everything else to `faults`.
  void set_fault_plan(const sim::FaultPlan& plan);

  /// Reassembles the full plan from both representations — the one to hand
  /// to SimOptions::faults when replaying.
  [[nodiscard]] sim::FaultPlan fault_plan() const;

  /// Serializes to the versioned text format (ends with "end\n").
  [[nodiscard]] std::string to_text() const;

  /// Parses a trace produced by to_text(). Unknown keys are rejected, as is
  /// a missing header or agent/node inconsistency (homes must be distinct
  /// and in range). Throws std::invalid_argument with a line diagnostic.
  [[nodiscard]] static ScheduleTrace parse(std::string_view text);
};

/// Inverse of core::to_string(Algorithm). Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] core::Algorithm algorithm_from_name(std::string_view name);

/// Every core::Algorithm value (for sweeps and name lookup).
[[nodiscard]] const std::vector<core::Algorithm>& all_algorithms();

}  // namespace udring::explore
