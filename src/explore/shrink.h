// udring/explore/shrink.h
//
// Trace minimization by delta debugging. Given a failing ScheduleTrace, the
// shrinker searches for a shorter, simpler trace that still fails:
//
//   1. ddmin chunk deletion: repeatedly try removing contiguous chunks of
//      the choice sequence at doubling granularity, keeping any candidate
//      whose replay still fails;
//   2. pointwise simplification: try replacing each surviving choice with 0
//      (the replay fallback value), so the minimized trace reads as "default
//      schedule except at these decisive points".
//
// Deleting entries keeps the candidate meaningful because the replay
// scheduler pads an exhausted trace with choice 0 and reduces every entry
// modulo the enabled count — any choice subsequence is a complete schedule.
// "Still fails" means replay_trace reports a failure whose reason starts
// with the same prefix class ("invariant:", "goal:", or the action-limit
// text), so shrinking cannot drift from, say, a uniformity violation to an
// unrelated livelock. Every accepted candidate is replay-verified, and the
// result's digest and note are refreshed from its own replay, so the shrunk
// trace is a self-checking artifact like any recorded one.

#pragma once

#include <cstddef>
#include <string>

#include "explore/fuzz.h"
#include "explore/trace.h"

namespace udring::explore {

struct ShrinkOptions {
  /// Hard cap on replays (each candidate costs one simulator run).
  std::size_t max_replays = 4000;
  /// Forwarded to replay_trace (0 = the cap the trace was recorded under,
  /// falling back to the simulator's auto limit for uncapped traces).
  std::size_t max_actions = 0;
};

struct ShrinkResult {
  ScheduleTrace trace;        ///< minimal failing trace (digest/note refreshed)
  std::string reason;         ///< the failure the minimal trace reproduces
  std::size_t replays = 0;    ///< simulator runs spent
  std::size_t original_size = 0;  ///< choices before shrinking
};

/// Minimizes `failing` (which must fail under replay_trace; throws
/// std::invalid_argument otherwise).
[[nodiscard]] ShrinkResult shrink_trace(const ScheduleTrace& failing,
                                        const ShrinkOptions& options = {});

}  // namespace udring::explore
