#include "explore/trace.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace udring::explore {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("ScheduleTrace::parse: " + what);
}

[[nodiscard]] std::uint64_t parse_u64(std::istringstream& line,
                                      const std::string& key) {
  std::uint64_t value = 0;
  if (!(line >> value)) malformed("bad value for '" + key + "'");
  std::string rest;
  if (line >> rest) malformed("trailing '" + rest + "' after '" + key + "'");
  return value;
}

/// The whole remainder of the line must be numeric: a corrupt token in the
/// middle of a homes/choices list is a parse error, never a silent
/// truncation (a truncated choice list would replay a different schedule).
void expect_list_consumed(std::istringstream& line, const std::string& key) {
  if (line.eof()) return;
  line.clear();
  std::string rest;
  line >> rest;
  malformed("bad token '" + rest + "' in '" + key + "' list");
}

/// Parses one "A@B" token (crash agent@action, drop/dup count@from-action).
/// Both halves must be fully numeric — a mangled token is a parse error.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> parse_at_pair(
    const std::string& token, const std::string& key) {
  const std::size_t at = token.find('@');
  if (at == std::string::npos) {
    malformed("bad token '" + token + "' in '" + key + "' (want A@B)");
  }
  std::pair<std::uint64_t, std::uint64_t> out;
  for (int half = 0; half < 2; ++half) {
    const std::string part =
        half == 0 ? token.substr(0, at) : token.substr(at + 1);
    std::istringstream number(part);
    std::uint64_t value = 0;
    if (!(number >> value) || !(number >> std::ws).eof()) {
      malformed("bad token '" + token + "' in '" + key + "' (want A@B)");
    }
    (half == 0 ? out.first : out.second) = value;
  }
  return out;
}

}  // namespace

const std::vector<core::Algorithm>& all_algorithms() {
  static const std::vector<core::Algorithm> algorithms = {
      core::Algorithm::KnownKFull,    core::Algorithm::KnownNFull,
      core::Algorithm::KnownKLogMem,  core::Algorithm::KnownKLogMemStrict,
      core::Algorithm::UnknownRelaxed, core::Algorithm::Rendezvous,
      core::Algorithm::GatherRing,    core::Algorithm::DisperseRing,
  };
  return algorithms;
}

core::Algorithm algorithm_from_name(std::string_view name) {
  for (const core::Algorithm algorithm : all_algorithms()) {
    if (core::to_string(algorithm) == name) return algorithm;
  }
  throw std::invalid_argument("algorithm_from_name: unknown algorithm '" +
                              std::string(name) + "'");
}

void ScheduleTrace::set_fault_plan(const sim::FaultPlan& plan) {
  fault_non_fifo = plan.non_fifo;
  fault_min_phase = plan.non_fifo_min_phase;
  faults = plan;
  faults.normalize();
  faults.non_fifo = false;
  faults.non_fifo_min_phase = 0;
}

sim::FaultPlan ScheduleTrace::fault_plan() const {
  sim::FaultPlan plan = faults;
  plan.non_fifo = fault_non_fifo;
  plan.non_fifo_min_phase = fault_min_phase;
  plan.normalize();
  return plan;
}

std::string ScheduleTrace::to_text() const {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << '\n';
  out << "algorithm " << core::to_string(algorithm) << '\n';
  out << "nodes " << node_count << '\n';
  out << "homes";
  for (const std::size_t home : homes) out << ' ' << home;
  out << '\n';
  if (!topology.empty() && topology != "ring") out << "topology " << topology << '\n';
  if (problem.kind != core::Problem::Auto) {
    out << "problem " << core::to_string(problem.kind) << '\n';
    if (problem.kind == core::Problem::Gather) {
      out << "gather-g " << problem.gather_g << '\n';
    }
  }
  if (!generator.empty()) out << "generator " << generator << '\n';
  out << "seed " << seed << '\n';
  if (fault_non_fifo) out << "fault-non-fifo 1\n";
  if (fault_min_phase != 0) out << "fault-min-phase " << fault_min_phase << '\n';
  // Structured fault keys, canonical order: alphabetical, lists normalized.
  // Emission depends only on the plan's *content*, never on the order the
  // producer filled it in, so re-recording a trace reproduces it byte-for-
  // byte. The legacy non-FIFO flags above stay authoritative for the plain
  // relaxation; `faults.non_fifo` mirrors them and is not re-emitted.
  {
    sim::FaultPlan canonical = faults;
    canonical.normalize();
    if (!canonical.crashes.empty()) {
      out << "fault-crashes";
      for (const sim::CrashFault& crash : canonical.crashes) {
        out << ' ' << crash.agent << '@' << crash.at_action;
      }
      out << '\n';
    }
    if (canonical.drop_count != 0) {
      out << "fault-drops " << canonical.drop_count << '@'
          << canonical.drop_from_action << '\n';
    }
    if (canonical.dup_count != 0) {
      out << "fault-dups " << canonical.dup_count << '@'
          << canonical.dup_from_action << '\n';
    }
    if (canonical.non_fifo_until_action != 0) {
      out << "fault-non-fifo-window " << canonical.non_fifo_until_action << '\n';
    }
    if (!canonical.rewire_at.empty()) {
      out << "fault-rewires";
      for (const std::size_t at : canonical.rewire_at) out << ' ' << at;
      out << '\n';
    }
  }
  if (max_actions != 0) out << "max-actions " << max_actions << '\n';
  if (!note.empty()) out << "note " << note << '\n';
  out << "choices";
  for (const std::uint32_t choice : choices) out << ' ' << choice;
  out << '\n';
  out << "digest " << expected_digest << '\n';
  out << "end\n";
  return out.str();
}

ScheduleTrace ScheduleTrace::parse(std::string_view text) {
  ScheduleTrace trace;
  std::istringstream in{std::string(text)};
  std::string line;

  if (!std::getline(in, line)) malformed("empty input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (magic != kMagic) malformed("missing '" + std::string(kMagic) + "' header");
    if (version != "v1") malformed("unsupported version '" + version + "'");
  }

  bool saw_algorithm = false, saw_choices = false, saw_digest = false,
       saw_end = false;
  std::unordered_set<std::string> seen_keys;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    // Every key appears at most once: a duplicate (a botched hand edit, a
    // merge conflict) would silently concatenate a list or overwrite a
    // scalar and replay a schedule matching neither original.
    if (key != "end" && !seen_keys.insert(key).second) {
      malformed("duplicate key '" + key + "'");
    }
    if (key == "algorithm") {
      std::string name;
      fields >> name;
      trace.algorithm = algorithm_from_name(name);
      saw_algorithm = true;
    } else if (key == "nodes") {
      trace.node_count = static_cast<std::size_t>(parse_u64(fields, key));
    } else if (key == "homes") {
      std::uint64_t home = 0;
      while (fields >> home) trace.homes.push_back(static_cast<std::size_t>(home));
      expect_list_consumed(fields, key);
    } else if (key == "topology") {
      fields >> trace.topology;
    } else if (key == "problem") {
      std::string name;
      fields >> name;
      trace.problem.kind = core::problem_from_name(name);
      // A bare non-gather "problem" line carries no parameter; normalize g
      // the way resolve_problem does so parse(to_text(x)) == x.
      if (trace.problem.kind != core::Problem::Gather) trace.problem.gather_g = 0;
    } else if (key == "gather-g") {
      trace.problem.gather_g = static_cast<std::size_t>(parse_u64(fields, key));
    } else if (key == "generator") {
      fields >> trace.generator;
    } else if (key == "seed") {
      trace.seed = parse_u64(fields, key);
    } else if (key == "fault-non-fifo") {
      trace.fault_non_fifo = parse_u64(fields, key) != 0;
    } else if (key == "fault-min-phase") {
      trace.fault_min_phase = static_cast<std::size_t>(parse_u64(fields, key));
    } else if (key == "fault-crashes") {
      std::string token;
      while (fields >> token) {
        const auto [agent, at_action] = parse_at_pair(token, key);
        trace.faults.crashes.push_back(
            sim::CrashFault{static_cast<sim::AgentId>(agent),
                            static_cast<std::size_t>(at_action)});
      }
      if (trace.faults.crashes.empty()) malformed("empty '" + key + "' list");
    } else if (key == "fault-drops") {
      std::string token;
      fields >> token;
      const auto [count, from] = parse_at_pair(token, key);
      trace.faults.drop_count = static_cast<std::size_t>(count);
      trace.faults.drop_from_action = static_cast<std::size_t>(from);
      if (count == 0) malformed("zero count in '" + key + "'");
    } else if (key == "fault-dups") {
      std::string token;
      fields >> token;
      const auto [count, from] = parse_at_pair(token, key);
      trace.faults.dup_count = static_cast<std::size_t>(count);
      trace.faults.dup_from_action = static_cast<std::size_t>(from);
      if (count == 0) malformed("zero count in '" + key + "'");
    } else if (key == "fault-non-fifo-window") {
      trace.faults.non_fifo_until_action =
          static_cast<std::size_t>(parse_u64(fields, key));
    } else if (key == "fault-rewires") {
      std::uint64_t at = 0;
      while (fields >> at) {
        trace.faults.rewire_at.push_back(static_cast<std::size_t>(at));
      }
      expect_list_consumed(fields, key);
      if (trace.faults.rewire_at.empty()) malformed("empty '" + key + "' list");
    } else if (key == "max-actions") {
      trace.max_actions = static_cast<std::size_t>(parse_u64(fields, key));
    } else if (key == "note") {
      std::getline(fields, trace.note);
      if (!trace.note.empty() && trace.note.front() == ' ') trace.note.erase(0, 1);
    } else if (key == "choices") {
      std::uint32_t choice = 0;
      while (fields >> choice) trace.choices.push_back(choice);
      expect_list_consumed(fields, key);
      saw_choices = true;
    } else if (key == "digest") {
      trace.expected_digest = parse_u64(fields, key);
      saw_digest = true;
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      malformed("unknown key '" + key + "'");
    }
  }
  if (!saw_end) malformed("missing 'end' terminator");
  if (!saw_algorithm) malformed("missing 'algorithm' line");
  if (!saw_choices) malformed("missing 'choices' line");
  if (!saw_digest) malformed("missing 'digest' line");
  if (trace.node_count == 0) malformed("missing or zero 'nodes'");
  if (trace.homes.empty()) malformed("missing 'homes'");
  if (trace.homes.size() > trace.node_count) malformed("more homes than nodes");
  std::unordered_set<std::size_t> distinct;
  for (const std::size_t home : trace.homes) {
    if (home >= trace.node_count) malformed("home node out of range");
    if (!distinct.insert(home).second) malformed("duplicate home node");
  }
  return trace;
}

}  // namespace udring::explore
