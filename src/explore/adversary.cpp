#include "explore/adversary.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/fault.h"
#include "sim/simulator.h"

namespace udring::explore {

// The first five ExploreSchedulerKind values mirror sim::SchedulerKind so the
// factory and to_string can delegate by cast; pin that correspondence.
static_assert(static_cast<int>(ExploreSchedulerKind::RoundRobin) ==
              static_cast<int>(sim::SchedulerKind::RoundRobin));
static_assert(static_cast<int>(ExploreSchedulerKind::Burst) ==
              static_cast<int>(sim::SchedulerKind::Burst));

// ---- LinkDelayScheduler -----------------------------------------------------

void LinkDelayScheduler::reset(std::size_t /*agent_count*/) {}

sim::AgentId LinkDelayScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  if (sim_ == nullptr) return *std::min_element(enabled.begin(), enabled.end());

  // Anything not on a link acts first (lowest id for determinism); agents in
  // transit languish in their queues until nothing else can move.
  sim::AgentId best_staying = static_cast<sim::AgentId>(-1);
  sim::AgentId best_transit = static_cast<sim::AgentId>(-1);
  std::size_t best_queue = 0;
  for (const sim::AgentId id : enabled) {
    if (sim_->status(id) != sim::AgentStatus::InTransit) {
      if (best_staying == static_cast<sim::AgentId>(-1) || id < best_staying) {
        best_staying = id;
      }
      continue;
    }
    // Forced to deliver: drain the most crowded link first, so the release
    // happens at maximum queue depth.
    const std::size_t depth = sim_->queue_length(sim_->agent_node(id));
    if (best_transit == static_cast<sim::AgentId>(-1) || depth > best_queue ||
        (depth == best_queue && id < best_transit)) {
      best_transit = id;
      best_queue = depth;
    }
  }
  return best_staying != static_cast<sim::AgentId>(-1) ? best_staying
                                                       : best_transit;
}

// ---- BurstPartitionScheduler ------------------------------------------------

void BurstPartitionScheduler::reset(std::size_t agent_count) {
  Rng rng(seed_);
  side_.assign(agent_count, false);
  for (std::size_t id = 0; id < agent_count; ++id) {
    side_[id] = rng.chance(0.5);
  }
  active_side_ = rng.chance(0.5);
  remaining_ = burst_;
}

sim::AgentId BurstPartitionScheduler::pick(
    const std::vector<sim::AgentId>& enabled) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (remaining_ == 0) {
      active_side_ = !active_side_;
      remaining_ = burst_;
    }
    sim::AgentId best = static_cast<sim::AgentId>(-1);
    for (const sim::AgentId id : enabled) {
      const bool member = id < side_.size() ? side_[id] : false;
      if (member != active_side_) continue;
      if (best == static_cast<sim::AgentId>(-1) || id < best) best = id;
    }
    if (best != static_cast<sim::AgentId>(-1)) {
      --remaining_;
      return best;
    }
    // The active side has nothing enabled: the "partition" heals early.
    remaining_ = 0;
  }
  // Neither side matched (all agents beyond side_, cannot happen after
  // reset) — fall back to the lowest id to stay total.
  return *std::min_element(enabled.begin(), enabled.end());
}

// ---- FifoStressScheduler ----------------------------------------------------

void FifoStressScheduler::reset(std::size_t /*agent_count*/) {}

sim::AgentId FifoStressScheduler::pick(const std::vector<sim::AgentId>& enabled) {
  if (sim_ == nullptr) return *std::min_element(enabled.begin(), enabled.end());
  sim::AgentId best = enabled.front();
  std::size_t best_phase = 0, best_moves = 0;
  bool first = true;
  for (const sim::AgentId id : enabled) {
    const auto& m = sim_->metrics().agent(id);
    if (first || m.phase > best_phase ||
        (m.phase == best_phase &&
         (m.moves > best_moves || (m.moves == best_moves && id < best)))) {
      best = id;
      best_phase = m.phase;
      best_moves = m.moves;
      first = false;
    }
  }
  return best;
}

// ---- RewiringAdversary ------------------------------------------------------

namespace {

/// d^{-1} mod n by extended Euclid; callers guarantee gcd(d, n) == 1 (rewire
/// candidate strides are coprime by construction).
[[nodiscard]] std::size_t mod_inverse(std::size_t d, std::size_t n) {
  long long t = 0, new_t = 1;
  long long r = static_cast<long long>(n), new_r = static_cast<long long>(d);
  while (new_r != 0) {
    const long long q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  if (t < 0) t += static_cast<long long>(n);
  return static_cast<std::size_t>(t);
}

}  // namespace

std::size_t RewiringAdversary::pick_index(std::size_t bound) {
  // Fallback (also the base-class default): the largest stride. Used when
  // unattached or when displacement cannot distinguish candidates.
  if (sim_ == nullptr || bound <= 1) return bound - 1;
  const std::size_t n = sim_->node_count();
  nodes_.clear();
  for (sim::AgentId id = 0; id < sim_->agent_count(); ++id) {
    nodes_.push_back(sim_->agent_node(id));
  }
  if (nodes_.size() < 2) return bound - 1;

  // Distance from v to u under stride d is ((u − v) mod n) · d^{-1} mod n —
  // the analytic form keeps the scan O(candidates · k²) instead of walking
  // the ring. Candidates are subsampled (ends always included) so a huge
  // φ(n) cannot make one rewire draw quadratic in n.
  const std::size_t samples = std::min<std::size_t>(bound, 33);
  std::size_t best_index = bound - 1;
  std::uint64_t best_score = 0;
  bool first = true;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t index =
        samples == bound ? s : s * (bound - 1) / (samples - 1);
    const std::size_t stride = sim::rewire_candidate_stride(n, index);
    const std::size_t inv = mod_inverse(stride, n);
    std::uint64_t score = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      std::size_t nearest = n;
      for (std::size_t j = 0; j < nodes_.size(); ++j) {
        if (j == i) continue;
        const std::size_t gap = (nodes_[j] + n - nodes_[i]) % n;
        nearest = std::min(nearest, gap * inv % n);
      }
      score += nearest;
    }
    if (first || score > best_score ||
        (score == best_score && index > best_index)) {
      best_index = index;
      best_score = score;
      first = false;
    }
  }
  return best_index;
}

// ---- kinds ------------------------------------------------------------------

std::string_view to_string(ExploreSchedulerKind kind) noexcept {
  switch (kind) {
    case ExploreSchedulerKind::RoundRobin:
    case ExploreSchedulerKind::Random:
    case ExploreSchedulerKind::Synchronous:
    case ExploreSchedulerKind::Priority:
    case ExploreSchedulerKind::Burst:
      return sim::to_string(static_cast<sim::SchedulerKind>(kind));
    case ExploreSchedulerKind::LinkDelay: return "link-delay";
    case ExploreSchedulerKind::BurstPartition: return "burst-partition";
    case ExploreSchedulerKind::FifoStress: return "fifo-stress";
    case ExploreSchedulerKind::RewireAdversary: return "rewire-adversary";
  }
  return "?";
}

ExploreSchedulerKind explore_scheduler_from_name(std::string_view name) {
  for (const ExploreSchedulerKind kind : all_explore_scheduler_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("explore_scheduler_from_name: unknown scheduler '" +
                              std::string(name) + "'");
}

const std::vector<ExploreSchedulerKind>& all_explore_scheduler_kinds() {
  static const std::vector<ExploreSchedulerKind> kinds = {
      ExploreSchedulerKind::RoundRobin,     ExploreSchedulerKind::Random,
      ExploreSchedulerKind::Synchronous,    ExploreSchedulerKind::Priority,
      ExploreSchedulerKind::Burst,          ExploreSchedulerKind::LinkDelay,
      ExploreSchedulerKind::BurstPartition, ExploreSchedulerKind::FifoStress,
      ExploreSchedulerKind::RewireAdversary,
  };
  return kinds;
}

const std::vector<ExploreSchedulerKind>& adversary_scheduler_kinds() {
  static const std::vector<ExploreSchedulerKind> kinds = {
      ExploreSchedulerKind::LinkDelay,
      ExploreSchedulerKind::BurstPartition,
      ExploreSchedulerKind::FifoStress,
      ExploreSchedulerKind::RewireAdversary,
  };
  return kinds;
}

std::unique_ptr<sim::Scheduler> make_explore_scheduler(ExploreSchedulerKind kind,
                                                       std::uint64_t seed,
                                                       std::size_t agent_count) {
  switch (kind) {
    case ExploreSchedulerKind::RoundRobin:
    case ExploreSchedulerKind::Random:
    case ExploreSchedulerKind::Synchronous:
    case ExploreSchedulerKind::Priority:
    case ExploreSchedulerKind::Burst:
      return sim::make_scheduler(static_cast<sim::SchedulerKind>(kind), seed,
                                 agent_count);
    case ExploreSchedulerKind::LinkDelay:
      return std::make_unique<LinkDelayScheduler>();
    case ExploreSchedulerKind::BurstPartition:
      return std::make_unique<BurstPartitionScheduler>(seed);
    case ExploreSchedulerKind::FifoStress:
      return std::make_unique<FifoStressScheduler>();
    case ExploreSchedulerKind::RewireAdversary:
      return std::make_unique<RewiringAdversary>(seed);
  }
  throw std::invalid_argument("make_explore_scheduler: unknown kind");
}

}  // namespace udring::explore
