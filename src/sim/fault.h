// udring/sim/fault.h
//
// FaultPlan — the structured, per-action fault schedule of a run.
//
// The paper's model is fault-free; this layer is the adversary the ROADMAP's
// robustness line asks for: how do the algorithms *fail and degrade* when the
// substrate misbehaves? A FaultPlan is part of SimOptions — immutable per
// Instance, like everything else in the spec half of a run — and describes
// three fault classes, all keyed to the global atomic-action counter so the
// exact same faults fire at the exact same points of any replayed schedule:
//
//  - Crash-stop faults: agent `a` dies when the action counter reaches
//    `at_action` (0 = dead on arrival, before its first action). Its state
//    freezes where it stands — a crashed in-transit agent stays in its link
//    queue (and, under FIFO, blocks everyone behind it forever), a crashed
//    staying agent remains a visible corpse in p_i. Crashed agents are never
//    enabled, never receive broadcasts, and never act again.
//
//  - Link faults, generalizing the historical test-only non-FIFO bool pair:
//    a non-FIFO overtaking window (phase-gated as before, plus an optional
//    action-count upper bound), bounded broadcast *drops* (the next
//    `drop_count` deliverable broadcasts at/after `drop_from_action` vanish)
//    and bounded broadcast *duplications* (delivered twice — the classic
//    at-least-once substrate).
//
//  - Dynamic-ring rewiring (1-interval connectivity): at each action index
//    in `rewire_at` the successor map is scheduled to change; the *choice*
//    of replacement cycle is drawn from the same choice stream as agent
//    scheduling (Scheduler::pick_index), so it is recorded into
//    ScheduleTrace::choices and replays byte-identically. Replacement
//    cycles are stride rings: successor(v) = (v + d) mod n with
//    gcd(d, n) = 1, which is a single Hamiltonian cycle *by construction* —
//    the revalidation Topology::closed_walk performs for explicit walks is
//    an arithmetic identity here, so rewiring never strands an agent. The
//    candidate set at any rewire point is the ascending list of coprime
//    strides; candidate index i ↦ rewire_candidate_stride(n, i).
//
// Soundness note for the model checker: every piece of live fault state
// (current stride, pending/consumed rewires, remaining drop/dup budgets) is
// folded into ExecutionState::config_digest() — and, in lockstep, into the
// symmetry canonicalizer's digest — whenever the plan carries fault events,
// so two configurations that agree on (S, T, M, P, Q) but differ in what the
// adversary may still do can never dedup together. Empty plans fold nothing,
// keeping every pre-fault digest byte-identical.
//
// This header is included by sim/instance.h; it must not include it back.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace udring::sim {

/// One crash-stop fault: `agent` dies when the global action counter reaches
/// `at_action` (before the (at_action+1)-th action; 0 = at reset).
struct CrashFault {
  AgentId agent = 0;
  std::size_t at_action = 0;

  // Ordering (and ==) so plans can sit inside ordered aggregation keys
  // (exp::CellKey's defaulted <=>); lexicographic member order.
  friend auto operator<=>(const CrashFault&, const CrashFault&) = default;
};

struct FaultPlan {
  /// Crash-stop faults; normalize() sorts them by (at_action, agent).
  /// At most one per agent (validate() rejects duplicates).
  std::vector<CrashFault> crashes;

  /// Non-FIFO overtaking fault (the generalized form of the historical
  /// SimOptions bool pair; Instance normalizes the legacy fields into
  /// these). See SimOptions::fault_non_fifo_links for the exact semantics.
  bool non_fifo = false;
  std::size_t non_fifo_min_phase = 0;
  /// Upper bound of the overtaking window: overtaking is permitted only
  /// while the action counter is < this value. 0 = unbounded (the legacy
  /// behaviour).
  std::size_t non_fifo_until_action = 0;

  /// Broadcast drops: the next `drop_count` broadcasts with at least one
  /// deliverable receiver, executed at action counter ≥ `drop_from_action`,
  /// are silently discarded (no receiver sees them).
  std::size_t drop_count = 0;
  std::size_t drop_from_action = 0;

  /// Broadcast duplications: the next `dup_count` deliverable broadcasts at
  /// action counter ≥ `dup_from_action` are delivered twice to every
  /// receiver (at-least-once delivery).
  std::size_t dup_count = 0;
  std::size_t dup_from_action = 0;

  /// Dynamic-ring rewiring points: when the action counter reaches each
  /// listed value a rewiring becomes *pending*, and the scheduler resolves
  /// it at the next choice point by picking a candidate stride
  /// (Scheduler::pick_index over rewire_candidate_count(n)). Strictly
  /// increasing after normalize(); a pending rewiring that the run never
  /// reaches a choice point for (quiescence first) simply does not fire.
  std::vector<std::size_t> rewire_at;

  /// True when the plan injects nothing at all (the default — the fault-free
  /// paper model).
  [[nodiscard]] bool empty() const noexcept {
    return !non_fifo && non_fifo_min_phase == 0 && non_fifo_until_action == 0 &&
           !has_events();
  }

  /// True when the plan carries *event* faults — anything the execution
  /// loop's fault cursor must watch (crashes, rewirings, drops, dups).
  /// The non-FIFO window is not an event: it is a standing relaxation of
  /// the enabling rule, handled by the historical Fault template path.
  [[nodiscard]] bool has_events() const noexcept {
    return !crashes.empty() || !rewire_at.empty() || drop_count > 0 ||
           dup_count > 0;
  }

  [[nodiscard]] bool has_crashes() const noexcept { return !crashes.empty(); }
  [[nodiscard]] bool has_rewires() const noexcept { return !rewire_at.empty(); }

  /// Sorts crashes by (at_action, agent) and rewire points ascending —
  /// the canonical form every consumer (trace emission, digests, the
  /// execution cursor) assumes. Idempotent.
  void normalize();

  /// Validates the normalized plan against an instance's dimensions; throws
  /// std::invalid_argument on out-of-range crash agents, duplicate crash
  /// agents, duplicate rewire points, or rewiring on a sub-2-node topology
  /// (no coprime stride exists to rewire to).
  void validate(std::size_t node_count, std::size_t agent_count) const;

  /// Canonical compact label for campaign axes and report tables:
  /// "" for an empty plan, else e.g. "crash:1@4+rewire:2+drop:1@0".
  [[nodiscard]] std::string label() const;

  /// Folds the plan itself (not live execution state) into a digest —
  /// campaign/report digests use this so distinct plans never collide.
  void fold_into(std::uint64_t& state) const;

  friend auto operator<=>(const FaultPlan&, const FaultPlan&) = default;
};

// ---- rewiring candidate geometry --------------------------------------------
//
// A rewiring replaces the live successor map with the stride ring
// successor(v) = (v + d) mod n for a stride d coprime to n: coprimality is
// exactly the single-Hamiltonian-cycle condition, so 1-interval connectivity
// holds by construction. The candidate list is the ascending sequence of
// coprime strides in [1, n); its index is what flows through the choice
// stream. (For the implicit ring, candidate 0 — stride 1 — is the original
// ring; for explicit closed walks every candidate is a genuine rewiring.)

/// Number of rewiring candidates on an n-node walk: φ(n) for n ≥ 2, 0 for
/// n ≤ 1 (a 0/1-node walk cannot be rewired).
[[nodiscard]] std::size_t rewire_candidate_count(std::size_t node_count) noexcept;

/// The `index`-th smallest stride coprime to node_count (index <
/// rewire_candidate_count(node_count); throws std::out_of_range otherwise).
[[nodiscard]] std::size_t rewire_candidate_stride(std::size_t node_count,
                                                  std::size_t index);

/// The single-cycle revalidation predicate: true iff successor
/// v ↦ (v + stride) mod n is one Hamiltonian cycle (gcd(stride, n) == 1,
/// 1 ≤ stride < n).
[[nodiscard]] bool is_single_cycle_stride(std::size_t node_count,
                                          std::size_t stride) noexcept;

}  // namespace udring::sim
