#include "sim/export.h"

#include <ostream>
#include <sstream>

namespace udring::sim {

namespace {

template <typename T>
void write_array(std::ostream& out, const std::vector<T>& values) {
  out << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  out << ']';
}

}  // namespace

void write_json(std::ostream& out, const Snapshot& snapshot) {
  out << "{\"node_count\":" << snapshot.node_count << ",\"tokens\":";
  write_array(out, snapshot.tokens);
  out << ",\"agents\":[";
  for (std::size_t i = 0; i < snapshot.agents.size(); ++i) {
    const AgentSnap& agent = snapshot.agents[i];
    if (i > 0) out << ',';
    out << "{\"id\":" << agent.id << ",\"status\":\"" << to_string(agent.status)
        << "\",\"node\":" << agent.node << ",\"moves\":" << agent.moves
        << ",\"phase\":" << agent.phase << ",\"mailbox\":" << agent.mailbox_size
        << ",\"state_hash\":\"" << std::hex << agent.state_hash << std::dec
        << "\"}";
  }
  out << "],\"queues\":[";
  for (std::size_t v = 0; v < snapshot.queues.size(); ++v) {
    if (v > 0) out << ',';
    write_array(out, snapshot.queues[v]);
  }
  out << "]}";
}

void write_json(std::ostream& out, const Metrics& metrics) {
  out << "{\"total_moves\":" << metrics.total_moves()
      << ",\"total_actions\":" << metrics.total_actions()
      << ",\"makespan\":" << metrics.makespan()
      << ",\"max_memory_bits\":" << metrics.max_memory_bits()
      << ",\"moves_by_phase\":";
  write_array(out, metrics.moves_by_phase());
  out << ",\"agents\":[";
  for (std::size_t id = 0; id < metrics.agent_count(); ++id) {
    const AgentMetrics& agent = metrics.agent(id);
    if (id > 0) out << ',';
    out << "{\"moves\":" << agent.moves << ",\"actions\":" << agent.actions
        << ",\"causal_time\":" << agent.causal_time
        << ",\"peak_memory_bits\":" << agent.peak_memory_bits << '}';
  }
  out << "]}";
}

void write_json(std::ostream& out, const Simulator& simulator) {
  out << "{\"quiescent\":" << (simulator.quiescent() ? "true" : "false")
      << ",\"all_halted\":" << (simulator.all_halted() ? "true" : "false")
      << ",\"all_suspended\":" << (simulator.all_suspended() ? "true" : "false")
      << ",\"snapshot\":";
  write_json(out, simulator.snapshot());
  out << ",\"metrics\":";
  write_json(out, simulator.metrics());
  out << '}';
}

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  write_json(out, snapshot);
  return out.str();
}

std::string to_json(const Metrics& metrics) {
  std::ostringstream out;
  write_json(out, metrics);
  return out.str();
}

std::string to_json(const Simulator& simulator) {
  std::ostringstream out;
  write_json(out, simulator);
  return out.str();
}

}  // namespace udring::sim
