// udring/sim/metrics.h
//
// Complexity instrumentation matching the paper's three measures:
//
//  - total moves:       one per link traversal (Theorems 1, 3, 4, 6);
//  - ideal time:        a causal clock where every move or wait costs at
//                       most one unit and local computation is free (§2.2's
//                       "ideal time complexity") — each action is stamped
//                       max(agent's previous stamp, enabling event) + 1 and
//                       the execution's time is the maximum stamp;
//  - memory bits:       the peak of AgentProgram::memory_bits() sampled
//                       after every action of that agent.
//
// Per-phase move counts support the phase-cost experiments (Fig 4–6).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace udring::sim {

struct AgentMetrics {
  std::size_t moves = 0;
  std::size_t actions = 0;
  std::uint64_t causal_time = 0;      ///< stamp of the agent's latest action
  std::size_t peak_memory_bits = 0;
  std::size_t phase = 0;              ///< current phase tag (set_phase)
  std::vector<std::size_t> moves_by_phase;

  void count_move() {
    ++moves;
    if (moves_by_phase.size() <= phase) moves_by_phase.resize(phase + 1, 0);
    ++moves_by_phase[phase];
  }

  /// Zeroes everything, keeping moves_by_phase's capacity (pooled reuse).
  void reset() noexcept {
    moves = actions = 0;
    causal_time = 0;
    peak_memory_bits = phase = 0;
    moves_by_phase.clear();
  }
};

class Metrics {
 public:
  Metrics() = default;
  explicit Metrics(std::size_t agent_count) : per_agent_(agent_count) {}

  /// Resizes to `agent_count` and zeroes every entry, reusing the per-agent
  /// vectors' capacity (ExecutionState::reset).
  void reset(std::size_t agent_count) {
    per_agent_.resize(agent_count);
    for (auto& agent : per_agent_) agent.reset();
  }

  // Unchecked: agent ids are simulator-internal and always in range, and
  // this accessor sits on the per-action hot path.
  [[nodiscard]] AgentMetrics& agent(std::size_t id) { return per_agent_[id]; }
  [[nodiscard]] const AgentMetrics& agent(std::size_t id) const {
    return per_agent_[id];
  }
  [[nodiscard]] std::size_t agent_count() const noexcept { return per_agent_.size(); }

  [[nodiscard]] std::size_t total_moves() const noexcept;
  [[nodiscard]] std::size_t total_actions() const noexcept;

  /// Ideal-time makespan: the maximum causal stamp over all actions.
  [[nodiscard]] std::uint64_t makespan() const noexcept;

  /// Peak memory bits over all agents (the paper's per-agent bound is the
  /// max, not the sum).
  [[nodiscard]] std::size_t max_memory_bits() const noexcept;

  /// Sum of per-phase moves across agents; index = phase.
  [[nodiscard]] std::vector<std::size_t> moves_by_phase() const;

 private:
  std::vector<AgentMetrics> per_agent_;
};

}  // namespace udring::sim
