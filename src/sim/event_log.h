// udring/sim/event_log.h
//
// Optional structured trace of every atomic action. Off by default (the
// property sweeps run millions of actions); tests turn it on to assert
// model invariants (FIFO link discipline, home-node-first rule, atomicity)
// and examples use it to narrate executions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace udring::sim {

enum class EventKind : std::uint8_t {
  Arrive,        ///< agent left a link queue and arrived at `node`
  Depart,        ///< agent left `node` over the forward link
  StayPut,       ///< agent acted and stayed schedulable at `node`
  EnterWait,     ///< agent parked waiting for a message at `node`
  EnterSuspend,  ///< agent entered the Definition-2 suspended state
  Halt,          ///< agent's program returned (Definition-1 halt state)
  TokenDrop,     ///< agent released a token at `node`
  Broadcast,     ///< agent broadcast a message; `detail` = receiver count
  Wake,          ///< parked agent became schedulable; `detail` = sender id
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

struct Event {
  std::size_t action_index = 0;  ///< global atomic-action counter
  EventKind kind = EventKind::Arrive;
  AgentId agent = 0;
  NodeId node = 0;
  std::uint64_t causal_ts = 0;  ///< ideal-time stamp of the enclosing action
  std::size_t detail = 0;       ///< kind-specific extra (see EventKind)
};

std::ostream& operator<<(std::ostream& out, const Event& event);

/// Append-only event container with convenience filters used by tests.
class EventLog {
 public:
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(Event event) {
    if (enabled_) events_.push_back(event);
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }

  /// Order-sensitive 64-bit digest of every recorded event. Two executions
  /// with equal digests performed the same actions in the same order with
  /// the same causal stamps — this is the record/replay equality check
  /// (src/explore). Platform-stable: integers folded through splitmix64.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// All events of one kind, in order.
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;

  /// All events for one agent, in order.
  [[nodiscard]] std::vector<Event> of_agent(AgentId agent) const;

  void clear() noexcept { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace udring::sim
