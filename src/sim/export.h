// udring/sim/export.h
//
// Machine-readable export of simulation results: snapshots, metrics and run
// reports as JSON. Lets external tooling (plotting scripts, notebooks)
// consume udring experiments without parsing console tables. Hand-rolled
// writer — the schema is flat and the library stays dependency-free.

#pragma once

#include <iosfwd>
#include <string>

#include "sim/metrics.h"
#include "sim/simulator.h"

namespace udring::sim {

/// Writes a snapshot as JSON:
/// {"node_count":N,"tokens":[...],"agents":[{"id":..,"status":"..",
///  "node":..,"moves":..,"phase":..,"mailbox":..,"state_hash":".."}],
///  "queues":[[...],...]}
void write_json(std::ostream& out, const Snapshot& snapshot);

/// Writes metrics as JSON:
/// {"total_moves":..,"total_actions":..,"makespan":..,"max_memory_bits":..,
///  "moves_by_phase":[...],"agents":[{"moves":..,"actions":..,
///  "causal_time":..,"peak_memory_bits":..}]}
void write_json(std::ostream& out, const Metrics& metrics);

/// One-call export of a finished simulator (snapshot + metrics + verdicts).
void write_json(std::ostream& out, const Simulator& simulator);

/// Convenience: JSON string forms.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);
[[nodiscard]] std::string to_json(const Metrics& metrics);
[[nodiscard]] std::string to_json(const Simulator& simulator);

}  // namespace udring::sim
