// udring/sim/agent.h
//
// The agent programming model.
//
// The paper's pseudocode is sequential ("move to the next token node", "wait
// until a message arrives", …) while the execution model is one *atomic
// action* at a time chosen by an adversarial fair scheduler. We bridge the
// two with a C++20 coroutine per agent: the algorithm is written as straight
// sequential code (`Behavior run(AgentContext&)`), and every `co_await` of a
// control operation ends the current atomic action. The simulator resumes
// the coroutine exactly once per scheduled action, so atomicity and FIFO
// discipline live entirely in the simulator, and the algorithm code reads
// like the paper.
//
// Within one atomic action (one resume) an agent may, per §2.1:
//   1. arrive at a node (or start at its staying node),
//   2. observe its delivered messages (ctx.inbox()),
//   3. compute locally,
//   4. broadcast a message to staying co-located agents (ctx.broadcast()),
//   5. release its token (ctx.release_token()),
//   6. and finally either move, stay, wait, suspend (co_await …) or halt
//      (co_return).
//
// Anonymity: AgentContext exposes only what the model allows — token count
// here, how many *other* agents are staying here, and the inbox. Node and
// agent identities are not observable from algorithm code.

#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/message.h"
#include "sim/types.h"

namespace udring::sim {

class ExecutionState;
class AgentContext;

/// What an agent requested when it ended its atomic action.
enum class Request : std::uint8_t {
  None,         ///< coroutine not yet started / just created
  Move,         ///< leave for the forward neighbour (enqueue on the link)
  Stay,         ///< stay at the node, remain unconditionally schedulable
  WaitMessage,  ///< stay parked until at least one message is delivered
  Suspend,      ///< as WaitMessage, but the Definition-2 suspended state
  Done,         ///< coroutine returned: the Definition-1 halt state
};

/// Coroutine handle type for an agent's lifetime behaviour. Move-only RAII
/// owner; the simulator resumes it one atomic action at a time.
class Behavior {
 public:
  struct promise_type {
    Request pending = Request::None;
    std::exception_ptr exception;

    Behavior get_return_object() {
      return Behavior(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept { pending = Request::Done; }
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Behavior() = default;
  explicit Behavior(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Behavior(Behavior&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Behavior& operator=(Behavior&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Behavior(const Behavior&) = delete;
  Behavior& operator=(const Behavior&) = delete;
  ~Behavior() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Runs one atomic action: resumes the coroutine until its next co_await /
  /// co_return. Returns what the agent requested. Rethrows any exception the
  /// agent program raised (a bug in algorithm code, surfaced to the caller).
  /// Inline: one call per atomic action, on the campaign hot path.
  Request resume() {
    if (!handle_ || handle_.done()) [[unlikely]] {
      throw_not_resumable();
    }
    handle_.promise().pending = Request::None;
    handle_.resume();
    if (handle_.promise().exception) [[unlikely]] {
      std::rethrow_exception(handle_.promise().exception);
    }
    if (handle_.done()) {
      return Request::Done;
    }
    const Request request = handle_.promise().pending;
    if (request == Request::None) [[unlikely]] {
      throw_no_request();
    }
    return request;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  // Cold throw sites out of line, keeping resume()'s inlined body small.
  [[noreturn]] static void throw_not_resumable();
  [[noreturn]] static void throw_no_request();

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable returned by the AgentContext control operations: records the
/// request in the promise and suspends, ending the atomic action.
struct ControlAwaiter {
  Request request;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Behavior::promise_type> handle) const noexcept {
    handle.promise().pending = request;
  }
  void await_resume() const noexcept {}
};

/// The window through which an agent program perceives and acts on the ring.
/// One AgentContext belongs to one agent for its whole life; its observation
/// methods are valid only while the agent's coroutine is running (i.e.
/// during an atomic action).
class AgentContext {
 public:
  AgentContext(ExecutionState& state, AgentId self) : sim_(&state), self_(self) {}

  AgentContext(const AgentContext&) = delete;
  AgentContext& operator=(const AgentContext&) = delete;

  // ---- observations -------------------------------------------------------

  /// Tokens at the current node.
  [[nodiscard]] std::size_t tokens_here() const;

  /// Number of *other* agents staying at the current node (waiting,
  /// suspended and halted agents all count — they are all "staying" in the
  /// model's p_i sense). In-transit agents are never visible.
  [[nodiscard]] std::size_t others_staying_here() const;

  /// Messages delivered at the start of this atomic action. The model
  /// delivers *all* pending messages at once; they are consumed by this
  /// action regardless of whether the program inspects them.
  [[nodiscard]] const std::vector<Message>& inbox() const noexcept { return inbox_; }

  // ---- actions (take effect within the current atomic action) ------------

  /// Releases this agent's token at the current node. The model gives each
  /// agent one token; algorithms call this once, at the home node. The
  /// substrate does not enforce the once-only rule (tests exercise multiple
  /// tokens), but TokenPolicy in the checker can.
  void release_token();

  /// Broadcasts `message` to every agent staying at the current node
  /// (waiting and suspended agents receive and are woken; halted agents
  /// ignore messages per Definition 1; in-transit agents are unreachable).
  void broadcast(Message message);

  // ---- control flow (each ends the atomic action) -------------------------

  /// Move over the forward link; the next action is the arrival.
  [[nodiscard]] ControlAwaiter move() const noexcept { return {Request::Move}; }

  /// Stay at this node and remain schedulable (used by tests/extensions).
  [[nodiscard]] ControlAwaiter stay() const noexcept { return {Request::Stay}; }

  /// Park until at least one message is delivered (non-terminal wait).
  [[nodiscard]] ControlAwaiter wait_message() const noexcept {
    return {Request::WaitMessage};
  }

  /// Enter the Definition-2 suspended state: park until a message arrives.
  [[nodiscard]] ControlAwaiter suspend() const noexcept { return {Request::Suspend}; }

  // ---- instrumentation (invisible to the model) ---------------------------

  /// Tags subsequent actions with an algorithm-defined phase index for the
  /// metrics' per-phase move breakdown (e.g. selection vs deployment).
  void set_phase(std::size_t phase);

 private:
  friend class ExecutionState;

  ExecutionState* sim_;
  AgentId self_;
  std::vector<Message> inbox_;  // filled by the simulator before each resume
};

/// Base class for an agent's algorithm. One instance per agent. Keep all
/// algorithm variables as *named members* (not coroutine-frame locals) so
/// that memory_bits() and state_hash() can report them: memory_bits() backs
/// the paper's space complexity measurements, and state_hash() backs the
/// Theorem-5 indistinguishability experiment.
class AgentProgram {
 public:
  virtual ~AgentProgram() = default;

  /// The agent's lifetime behaviour; started lazily at its first action
  /// (which is the arrival at its home node, per the initial-buffer rule).
  virtual Behavior run(AgentContext& ctx) = 0;

  /// Algorithm name for logs and reports.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Current size of the agent's algorithm state in bits, using the paper's
  /// accounting: a counter bounded by m costs bit_width(m) bits, an array
  /// costs length × element-width. The simulator samples this after every
  /// action and records the peak, so it sits on the campaign hot path:
  /// the value is cached and recomputed only after the program declared a
  /// state change through memory_changed(). Debug builds verify the cache
  /// against a fresh compute_memory_bits() at every sample, so a mutation
  /// site that forgot to call memory_changed() fails the test suite rather
  /// than silently under-reporting the peak.
  [[nodiscard]] std::size_t memory_bits() const {
    if (memory_dirty_) {
      memory_bits_cache_ = compute_memory_bits();
      memory_dirty_ = false;
    }
    assert(memory_bits_cache_ == compute_memory_bits());
    return memory_bits_cache_;
  }

  /// Order-insensitive hash of the algorithm state, for comparing the local
  /// configurations of corresponding agents in two executions (Lemma 1).
  [[nodiscard]] virtual std::uint64_t state_hash() const { return 0; }

  /// Names for the phase indices passed to AgentContext::set_phase, used in
  /// reports. Index i names phase i; out-of-range phases print numerically.
  [[nodiscard]] virtual std::vector<std::string_view> phase_names() const {
    return {};
  }

 protected:
  /// The actual bit accounting, overridden by algorithms (the former
  /// memory_bits() body). Called only when the cache is stale.
  [[nodiscard]] virtual std::size_t compute_memory_bits() const { return 0; }

  /// Algorithms call this after mutating any counted member. Cheap enough to
  /// sprinkle after every assignment; only the next sample pays a recompute.
  void memory_changed() const noexcept { memory_dirty_ = true; }

 private:
  mutable std::size_t memory_bits_cache_ = 0;
  mutable bool memory_dirty_ = true;
};

}  // namespace udring::sim
