// udring/sim/simulator.h
//
// Compatibility surface for the historical one-shot API.
//
// The execution engine now lives in sim/execution_state.h as the
// Instance × ExecutionState split (immutable spec × pooled mutable arena);
// `Simulator` is an alias for ExecutionState whose legacy constructor
// builds and owns a one-off ring Instance. Code that runs one instance and
// throws the simulator away keeps reading naturally; batch drivers
// (sim::run_batch, core::run_many, exp::run_campaign) construct
// ExecutionStates directly and reset() them across runs.

#pragma once

#include "sim/execution_state.h"  // IWYU pragma: export
#include "sim/instance.h"         // IWYU pragma: export
#include "sim/topology.h"         // IWYU pragma: export
