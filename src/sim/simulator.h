// udring/sim/simulator.h
//
// The asynchronous unidirectional-ring execution engine.
//
// A Simulator owns a global configuration C = (S, T, M, P, Q) exactly as
// Table 2 of the paper defines it:
//
//   S  agent program states            (AgentProgram objects + coroutines)
//   T  node states = token counts      (Ring)
//   M  undelivered message sequences   (per-agent mailboxes)
//   P  staying sets p_i                (staying_[i])
//   Q  FIFO link queues q_i            (queues_[i]: agents in transit to v_i)
//
// and advances it one *atomic action* at a time under a pluggable fair
// Scheduler. An atomic action (§2.1) is: arrive (if in transit) → receive
// all pending messages → run local computation → optionally broadcast and/or
// release a token → move, stay, wait, suspend, or halt.
//
// Model guarantees enforced structurally:
//  - FIFO links: only the head of each link queue may arrive; arrivals
//    preserve departure order.
//  - Initial buffers: every agent starts *in transit to its home node* and
//    is the sole initial occupant of that queue, so its first action happens
//    at its home before any visitor's action there (§2.1). This rule is
//    load-bearing: without it a fast agent could pass a slow agent's home
//    before its token is dropped and miscount the ring.
//  - No overtaking: an agent is observable only while staying at a node;
//    agents in transit are invisible and cannot be passed except by queueing
//    behind them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/agent.h"
#include "sim/event_log.h"
#include "sim/metrics.h"
#include "sim/ring.h"
#include "sim/scheduler.h"
#include "sim/types.h"

namespace udring::sim {

/// FIFO link queue q_i with index-based storage: pop advances a head index
/// instead of shifting or deallocating, the buffer rewinds to offset 0
/// whenever the queue drains, and a lagging head is compacted in place
/// (memmove, amortized O(1)) — so steady-state queue traffic performs no
/// heap allocation, unlike std::deque's block churn. Capacity only ever
/// grows to the historical maximum (≤ k).
class LinkQueue {
 public:
  void reserve(std::size_t capacity) { buffer_.reserve(capacity); }

  [[nodiscard]] bool empty() const noexcept { return head_ == buffer_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return buffer_.size() - head_;
  }
  [[nodiscard]] AgentId front() const { return buffer_[head_]; }

  void push_back(AgentId id) {
    if (head_ == buffer_.size()) {  // drained: rewind, reuse the whole buffer
      buffer_.clear();
      head_ = 0;
    }
    buffer_.push_back(id);
  }

  void pop_front() {
    ++head_;
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Removes `id` from anywhere in the queue. Only the non-FIFO fault
  /// injection (SimOptions::fault_non_fifo_links) takes this path; regular
  /// executions always pop the head.
  bool remove(AgentId id) {
    for (std::size_t i = head_; i < buffer_.size(); ++i) {
      if (buffer_[i] != id) continue;
      if (i == head_) {
        pop_front();
      } else {
        buffer_.erase(buffer_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      return true;
    }
    return false;
  }

  [[nodiscard]] auto begin() const noexcept { return buffer_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() const noexcept { return buffer_.end(); }

 private:
  std::vector<AgentId> buffer_;
  std::size_t head_ = 0;
};

struct SimOptions {
  /// Record an Event for every action (tests/examples; off for sweeps).
  bool record_events = false;
  /// Hard stop after this many atomic actions; 0 = auto (generous multiple
  /// of k·n). Hitting the limit marks the run ActionLimit — a livelock or a
  /// broken algorithm, never a legitimate outcome for this paper's
  /// algorithms.
  std::size_t max_actions = 0;
  /// TEST-ONLY fault injection: weakens the FIFO link guarantee. When set,
  /// an in-transit agent may arrive from *any* queue position — overtaking
  /// agents ahead of it — as long as it does not pass an agent still in its
  /// initial transit (that restriction preserves the §2.1 home-node-first
  /// rule, which every algorithm legitimately relies on; the FIFO
  /// non-overtaking property is the only guarantee removed). The scheduler
  /// decides who jumps: all such agents join the enabled set. This models a
  /// substrate without FIFO links and exists so the schedule explorer can
  /// demonstrate that KnownKLogMemStrict's correctness — unlike the hardened
  /// default — leans on FIFO order (see known_k_logmem.h). Never set it in
  /// experiments that reproduce the paper's model.
  bool fault_non_fifo_links = false;
  /// Narrows the fault window: overtaking is permitted only when the jumper
  /// and every agent it passes have reached this phase tag (metrics phase,
  /// see AgentContext::set_phase). Phases are how multi-phase algorithms
  /// announce their progress, so this seeds a non-FIFO bug into one phase
  /// without corrupting the phases before it — e.g. phase 1 targets
  /// Algorithm 3's deployment race while Algorithm 2's selection-phase
  /// geometry measurements (which also assume non-overtaking, for every
  /// variant) stay sound. 0 = the fault is live from the first action.
  std::size_t fault_non_fifo_min_phase = 0;
};

struct RunResult {
  enum class Outcome { Quiescent, ActionLimit };
  Outcome outcome = Outcome::Quiescent;
  std::size_t actions = 0;

  [[nodiscard]] bool quiescent() const noexcept {
    return outcome == Outcome::Quiescent;
  }
};

/// Observable state of one agent for snapshots (instrumentation only).
struct AgentSnap {
  AgentId id = 0;
  AgentStatus status = AgentStatus::InTransit;
  NodeId node = 0;  ///< staying node, or destination while in transit
  std::size_t moves = 0;
  std::size_t phase = 0;
  std::size_t mailbox_size = 0;
  std::uint64_t state_hash = 0;
};

/// Deep-copyable observable configuration; used by the checker, the ASCII
/// renderer, and the Theorem-5 local-configuration comparison.
struct Snapshot {
  std::size_t node_count = 0;
  std::vector<std::size_t> tokens;            // index = node
  std::vector<AgentSnap> agents;              // index = agent id
  std::vector<std::vector<AgentId>> queues;   // index = destination node
};

/// Creates the program (algorithm instance) for agent `id`. Algorithms are
/// anonymous and must ignore `id`; it exists so tests can plant heterogeneous
/// programs.
using ProgramFactory = std::function<std::unique_ptr<AgentProgram>(AgentId)>;

class Simulator {
 public:
  /// Builds the initial configuration C_0: `homes` must be distinct nodes of
  /// a `node_count`-ring; agent i starts in transit to homes[i] (the
  /// incoming-buffer rule). Programs are created immediately; their
  /// coroutines start at the first scheduled action.
  Simulator(std::size_t node_count, std::vector<NodeId> homes,
            const ProgramFactory& factory, SimOptions options = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- execution ----------------------------------------------------------

  /// Runs atomic actions under `scheduler` until quiescence (no enabled
  /// agents — Definitions 1/2's terminal shapes) or the action limit.
  RunResult run(Scheduler& scheduler);

  /// Executes one atomic action; returns false when quiescent.
  bool step(Scheduler& scheduler);

  /// Force-steps a specific agent (tests); returns false if not enabled.
  bool step_agent(AgentId id);

  // ---- inspection ---------------------------------------------------------

  [[nodiscard]] const Ring& ring() const noexcept { return ring_; }
  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }
  [[nodiscard]] const std::vector<NodeId>& homes() const noexcept { return homes_; }

  [[nodiscard]] AgentStatus status(AgentId id) const { return cell(id).status; }

  /// The node an agent is staying at, or its destination while in transit.
  [[nodiscard]] NodeId agent_node(AgentId id) const { return cell(id).node; }

  /// Agents currently allowed to act (queue heads; schedulable stayers;
  /// parked agents with pending mail).
  [[nodiscard]] const std::vector<AgentId>& enabled() const noexcept {
    return enabled_;
  }

  [[nodiscard]] bool quiescent() const noexcept { return enabled_.empty(); }
  [[nodiscard]] bool all_halted() const noexcept;
  [[nodiscard]] bool all_suspended() const noexcept;

  /// Nodes of all staying agents (one entry per staying agent, sorted).
  [[nodiscard]] std::vector<NodeId> staying_nodes() const;

  [[nodiscard]] std::size_t queue_length(NodeId node) const {
    return queues_.at(node).size();
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] EventLog& log() noexcept { return log_; }
  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  [[nodiscard]] const AgentProgram& program(AgentId id) const {
    return *cell(id).program;
  }

  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t actions_executed() const noexcept {
    return action_counter_;
  }
  [[nodiscard]] std::size_t max_actions() const noexcept {
    return options_.max_actions;
  }

 private:
  friend class AgentContext;

  struct AgentCell {
    std::unique_ptr<AgentProgram> program;
    std::unique_ptr<AgentContext> ctx;
    Behavior behavior;
    AgentStatus status = AgentStatus::InTransit;
    NodeId node = 0;  ///< staying node, or destination while in transit
    bool in_staying_set = false;
    std::vector<Message> mailbox;
    std::uint64_t wake_ts = 0;  ///< max sender stamp among undelivered mail
    std::uint64_t last_ts = 0;
  };

  [[nodiscard]] AgentCell& cell(AgentId id) { return agents_.at(id); }
  [[nodiscard]] const AgentCell& cell(AgentId id) const { return agents_.at(id); }

  void execute_action(AgentId id);
  void refresh_enabled(AgentId id);
  void add_to_staying(AgentId id);
  void remove_from_staying(AgentId id);
  [[nodiscard]] bool should_be_enabled(AgentId id) const;

  // AgentContext hooks (the acting agent's perceptions and actions).
  [[nodiscard]] std::size_t tokens_at_agent(AgentId id) const;
  [[nodiscard]] std::size_t others_staying_at_agent(AgentId id) const;
  void agent_release_token(AgentId id);
  void agent_broadcast(AgentId id, Message message);
  void agent_set_phase(AgentId id, std::size_t phase);

  Ring ring_;
  std::vector<NodeId> homes_;
  std::vector<AgentCell> agents_;
  std::vector<LinkQueue> queues_;                  // q_i: in transit to node i
  std::vector<std::vector<AgentId>> staying_;      // p_i: staying at node i
  std::vector<std::uint64_t> queue_arrival_ts_;    // FIFO causal stamps
  std::vector<AgentId> enabled_;
  std::vector<std::size_t> enabled_pos_;           // id -> index in enabled_
  Metrics metrics_;
  EventLog log_;
  SimOptions options_;
  std::size_t action_counter_ = 0;
  AgentId acting_agent_ = kNoAgentActing;

  static constexpr AgentId kNoAgentActing = static_cast<AgentId>(-1);
  static constexpr std::size_t kNotEnabled = static_cast<std::size_t>(-1);
};

}  // namespace udring::sim
