// udring/sim/topology.h
//
// The immutable structure an execution runs on.
//
// The paper's model is a unidirectional ring, and §5 extends it to trees
// (Euler-tour virtual ring) and general networks (spanning tree + tour).
// All of those are *closed walks*: every virtual node has exactly one
// successor, and following successors visits every virtual node once per
// lap. Topology captures exactly that — a successor function plus size —
// so the execution core never needs to know whether it is driving the
// plain ring, a tree's Euler tour, or an Eulerian circuit of a multigraph.
//
// Two optional views decorate the walk for embeddings (built by src/embed):
//  - labels:  labels()[v] = the underlying network node visited at virtual
//             position v (virtual → tree/graph node). A token released at v
//             marks the v-th walk step — a (node, out-port) mark — which is
//             all the paper's algorithms need (§5 modelling note).
//  - ports:   ports()[v] = the out-port (index into the underlying node's
//             adjacency) crossed by the move v → next(v). Lets reports and
//             patrol examples narrate virtual moves as physical edges.
//
// Representation: the common case (ring, Euler tour, Eulerian circuit in
// walk order) uses the *implicit* successor v+1 mod size — no table, no
// memory, branch-predictable in the hot loop. An explicit successor
// permutation is supported for exotic walks (rotated/permuted rings,
// future dynamic topologies); it must be a single cycle covering every
// node, which closed_walk() validates.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace udring::sim {

class Topology {
 public:
  /// Empty topology (size 0); a default-constructed RunSpec field. Not
  /// runnable — Instance rejects it.
  Topology() = default;

  /// The paper's unidirectional n-ring: successor v+1 mod n. n must be ≥ 1.
  [[nodiscard]] static Topology ring(std::size_t node_count);

  /// A virtual ring of `size` steps with implicit successor v+1 mod size,
  /// carrying the embedding views. `labels` (may be empty) maps each virtual
  /// position to its underlying network node; `ports` (may be empty) gives
  /// the out-port crossed by each step. Non-empty views must have exactly
  /// `size` entries.
  [[nodiscard]] static Topology virtual_ring(std::size_t size,
                                             std::vector<NodeId> labels,
                                             std::vector<std::size_t> ports = {},
                                             std::string name = "virtual-ring");

  /// An explicit closed walk: `successor[v]` is the node after v. The
  /// successor map must be a permutation forming a single cycle that covers
  /// every node (throws std::invalid_argument otherwise — a multi-cycle or
  /// non-surjective map would strand agents).
  [[nodiscard]] static Topology closed_walk(std::vector<NodeId> successor,
                                            std::vector<NodeId> labels = {},
                                            std::string name = "closed-walk");

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// The forward neighbour of `v` — the only direction agents can move.
  [[nodiscard]] NodeId next(NodeId v) const noexcept {
    return successor_.empty() ? (v + 1 == size_ ? 0 : v + 1) : successor_[v];
  }

  /// Forward walk distance from `from` to `to`: the number of next() steps.
  /// O(1) for the implicit ring, O(size) for an explicit walk.
  [[nodiscard]] std::size_t distance(NodeId from, NodeId to) const noexcept;

  /// True when the successor is the implicit v+1 mod size ring order (all
  /// current embeddings; lets consumers use modular arithmetic directly).
  [[nodiscard]] bool is_ring_order() const noexcept { return successor_.empty(); }

  // ---- embedding views ------------------------------------------------------

  [[nodiscard]] bool has_labels() const noexcept { return !labels_.empty(); }

  /// Underlying network node at virtual position v; identity when the
  /// topology carries no embedding (a plain ring *is* its own network).
  [[nodiscard]] NodeId label(NodeId v) const noexcept {
    return labels_.empty() ? v : labels_[v];
  }
  [[nodiscard]] const std::vector<NodeId>& labels() const noexcept {
    return labels_;
  }

  [[nodiscard]] bool has_ports() const noexcept { return !ports_.empty(); }

  /// Out-port (adjacency index at label(v)) crossed by the step v → next(v);
  /// 0 when the topology carries no port view.
  [[nodiscard]] std::size_t port(NodeId v) const noexcept {
    return ports_.empty() ? 0 : ports_[v];
  }
  [[nodiscard]] const std::vector<std::size_t>& ports() const noexcept {
    return ports_;
  }

  /// Number of distinct underlying nodes (max label + 1); size() when there
  /// is no embedding.
  [[nodiscard]] std::size_t underlying_node_count() const noexcept;

  /// Family tag for reports and trace provenance ("ring", "euler-tree", …).
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::size_t size_ = 0;
  std::vector<NodeId> successor_;      // empty = implicit v+1 mod size
  std::vector<NodeId> labels_;         // empty = identity
  std::vector<std::size_t> ports_;     // empty = no port view
  std::string name_ = "ring";
};

}  // namespace udring::sim
