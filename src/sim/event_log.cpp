#include "sim/event_log.h"

#include <ostream>

namespace udring::sim {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::Arrive: return "arrive";
    case EventKind::Depart: return "depart";
    case EventKind::StayPut: return "stay";
    case EventKind::EnterWait: return "wait";
    case EventKind::EnterSuspend: return "suspend";
    case EventKind::Halt: return "halt";
    case EventKind::TokenDrop: return "token";
    case EventKind::Broadcast: return "broadcast";
    case EventKind::Wake: return "wake";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& out, const Event& event) {
  out << '#' << event.action_index << " t=" << event.causal_ts << " agent "
      << event.agent << ' ' << to_string(event.kind) << " @node " << event.node;
  if (event.kind == EventKind::Broadcast || event.kind == EventKind::Wake) {
    out << " (" << event.detail << ')';
  }
  return out;
}

std::vector<Event> EventLog::of_kind(EventKind kind) const {
  std::vector<Event> result;
  for (const Event& event : events_) {
    if (event.kind == kind) result.push_back(event);
  }
  return result;
}

std::vector<Event> EventLog::of_agent(AgentId agent) const {
  std::vector<Event> result;
  for (const Event& event : events_) {
    if (event.agent == agent) result.push_back(event);
  }
  return result;
}

}  // namespace udring::sim
