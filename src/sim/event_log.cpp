#include "sim/event_log.h"

#include <ostream>

#include "util/rng.h"

namespace udring::sim {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::Arrive: return "arrive";
    case EventKind::Depart: return "depart";
    case EventKind::StayPut: return "stay";
    case EventKind::EnterWait: return "wait";
    case EventKind::EnterSuspend: return "suspend";
    case EventKind::Halt: return "halt";
    case EventKind::TokenDrop: return "token";
    case EventKind::Broadcast: return "broadcast";
    case EventKind::Wake: return "wake";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& out, const Event& event) {
  out << '#' << event.action_index << " t=" << event.causal_ts << " agent "
      << event.agent << ' ' << to_string(event.kind) << " @node " << event.node;
  if (event.kind == EventKind::Broadcast || event.kind == EventKind::Wake) {
    out << " (" << event.detail << ')';
  }
  return out;
}

std::uint64_t EventLog::digest() const noexcept {
  // Domain salt ("event feed" in hex-ish) keeps this digest space separate
  // from the campaign-result and substream domains.
  std::uint64_t state = 0xe7e27feed1d16e57ULL;
  fold64(state, events_.size());
  for (const Event& event : events_) {
    fold64(state, event.action_index);
    fold64(state, static_cast<std::uint64_t>(event.kind));
    fold64(state, event.agent);
    fold64(state, event.node);
    fold64(state, event.causal_ts);
    fold64(state, event.detail);
  }
  return state;
}

std::vector<Event> EventLog::of_kind(EventKind kind) const {
  std::vector<Event> result;
  for (const Event& event : events_) {
    if (event.kind == kind) result.push_back(event);
  }
  return result;
}

std::vector<Event> EventLog::of_agent(AgentId agent) const {
  std::vector<Event> result;
  for (const Event& event : events_) {
    if (event.agent == agent) result.push_back(event);
  }
  return result;
}

}  // namespace udring::sim
