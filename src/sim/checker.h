// udring/sim/checker.h
//
// Machine-checked oracles for the uniform deployment problem
// (Definitions 1 and 2 of the paper).
//
// The checker is deliberately *independent* of the core algorithm library:
// it recomputes gaps and target arithmetic from first principles so that a
// bug shared between an algorithm and its checker cannot hide. It consumes
// only observable simulator state (positions, statuses, queues, mailboxes).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace udring::sim {

/// Result of a predicate evaluation: `ok` plus a human-readable reason when
/// the predicate fails (used directly in gtest messages).
struct CheckResult {
  bool ok = true;
  std::string reason;

  explicit operator bool() const noexcept { return ok; }

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// The distance between consecutive positions around an n-ring; positions
/// need not be sorted; the result is sorted by position. Requires at least
/// one position.
[[nodiscard]] std::vector<std::size_t> ring_gaps(std::vector<std::size_t> positions,
                                                 std::size_t node_count);

/// Are `positions` (distinct nodes) a uniform deployment of k agents on an
/// n-ring? True iff every gap between adjacent agents is ⌊n/k⌋ or ⌈n/k⌉ —
/// equivalently, exactly (n mod k) gaps equal ⌈n/k⌉ and the rest ⌊n/k⌋.
/// k = 1 is trivially uniform.
[[nodiscard]] CheckResult check_positions_uniform(std::vector<std::size_t> positions,
                                                  std::size_t node_count);

/// Definition 1: every agent is in the halt state, all link queues are
/// empty, and the staying positions form a uniform deployment.
[[nodiscard]] CheckResult check_uniform_deployment_with_termination(
    const Simulator& sim);

/// Definition 2: every agent is in the suspended state, all mailboxes and
/// link queues are empty, and the staying positions form a uniform
/// deployment.
[[nodiscard]] CheckResult check_uniform_deployment_without_termination(
    const Simulator& sim);

/// Model invariants that must hold in *any* reachable configuration:
/// agent/staying-set consistency, token conservation (tokens never exceed
/// the number of agents and never decrease — callers track the prior count),
/// and queue sanity. Used by randomized tests after every step. Reads queues
/// and agents directly (no Snapshot materialization): O(n + k) time, O(k)
/// scratch.
[[nodiscard]] CheckResult check_model_invariants(const Simulator& sim,
                                                 std::size_t min_expected_tokens);

/// Incremental form of check_model_invariants for per-action checking at
/// fuzz scale (n ≫ 100): instead of re-walking every node and queue after
/// every atomic action, it revalidates only the action's conservative node
/// footprint (ExecutionState::last_action_nodes() — {node, next(node)},
/// the same bound the mc:: sleep sets use) against shadow queue-membership
/// counts it maintains, in O(dirty) per action. Token monotonicity stays a
/// full check — total_tokens() is O(1).
///
/// Soundness: a *legal* atomic action can only change state at its
/// footprint, so any invariant violation a single action introduces is
/// visible there and the incremental verdict equals the full one
/// (tests/test_checker_incremental.cpp fuzzes this equivalence). A sim bug
/// that corrupts state *outside* the last action's footprint is the one
/// class the per-action scan could miss; `full_check_every` schedules a
/// periodic full re-walk as the safety net for exactly that.
///
/// Contract: reset() on the state you will step, then call
/// check_after_action() after *every* atomic action (the shadow counts
/// track one action at a time; skipped actions surface at the next periodic
/// full check). Failure reasons use the same wording/prefixes as the full
/// checker. The object is pooled like ExecutionState: reset() reuses all
/// arena capacity.
class IncrementalInvariantChecker {
 public:
  struct Options {
    /// Run the full O(n + k) checker every this many actions (safety net);
    /// 0 = never (pure incremental).
    std::size_t full_check_every = 1024;
  };

  IncrementalInvariantChecker() noexcept = default;
  explicit IncrementalInvariantChecker(Options options) noexcept
      : options_(options) {}

  /// Reconfigures a pooled checker before (re)binding it to a run; takes
  /// effect at the next reset().
  void set_options(Options options) noexcept { options_ = options; }

  /// Binds the checker to `sim`'s *current* configuration: full-validates
  /// it and snapshots the shadow queue-membership counts. Returns the full
  /// check's verdict (a failing starting configuration is reported, not
  /// silently adopted).
  [[nodiscard]] CheckResult reset(const ExecutionState& sim,
                                  std::size_t min_expected_tokens = 0);

  /// Validates the configuration after the one atomic action executed since
  /// the previous call (or reset()).
  [[nodiscard]] CheckResult check_after_action(const ExecutionState& sim,
                                               std::size_t min_expected_tokens);

  /// Full checks executed so far via the safety net (reset() excluded).
  [[nodiscard]] std::size_t full_checks() const noexcept {
    return full_checks_;
  }

 private:
  void rebuild_shadow(const ExecutionState& sim);
  void touch(AgentId id);

  Options options_{};
  std::vector<std::uint32_t> in_queue_count_;      // per agent: #queues holding it
  std::vector<std::vector<AgentId>> queue_shadow_; // per node: last-seen contents
  std::vector<AgentId> touched_;                   // scratch: agents to revalidate
  std::vector<std::uint8_t> touched_mark_;         // scratch: dedup for touched_
  std::size_t actions_since_full_ = 0;
  std::size_t full_checks_ = 0;
};

/// Rendezvous oracle for the baseline contrast: all staying agents at one
/// node.
[[nodiscard]] CheckResult check_gathered(const Simulator& sim);

}  // namespace udring::sim
