// udring/sim/checker.h
//
// Machine-checked oracles for the uniform deployment problem
// (Definitions 1 and 2 of the paper).
//
// The checker is deliberately *independent* of the core algorithm library:
// it recomputes gaps and target arithmetic from first principles so that a
// bug shared between an algorithm and its checker cannot hide. It consumes
// only observable simulator state (positions, statuses, queues, mailboxes).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace udring::sim {

/// Result of a predicate evaluation: `ok` plus a human-readable reason when
/// the predicate fails (used directly in gtest messages).
struct CheckResult {
  bool ok = true;
  std::string reason;

  explicit operator bool() const noexcept { return ok; }

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// The distance between consecutive positions around an n-ring; positions
/// need not be sorted; the result is sorted by position. Requires at least
/// one position.
[[nodiscard]] std::vector<std::size_t> ring_gaps(std::vector<std::size_t> positions,
                                                 std::size_t node_count);

/// Are `positions` (distinct nodes) a uniform deployment of k agents on an
/// n-ring? True iff every gap between adjacent agents is ⌊n/k⌋ or ⌈n/k⌉ —
/// equivalently, exactly (n mod k) gaps equal ⌈n/k⌉ and the rest ⌊n/k⌋.
/// k = 1 is trivially uniform.
[[nodiscard]] CheckResult check_positions_uniform(std::vector<std::size_t> positions,
                                                  std::size_t node_count);

/// Definition 1: every agent is in the halt state, all link queues are
/// empty, and the staying positions form a uniform deployment.
[[nodiscard]] CheckResult check_uniform_deployment_with_termination(
    const Simulator& sim);

/// Definition 2: every agent is in the suspended state, all mailboxes and
/// link queues are empty, and the staying positions form a uniform
/// deployment.
[[nodiscard]] CheckResult check_uniform_deployment_without_termination(
    const Simulator& sim);

/// Model invariants that must hold in *any* reachable configuration:
/// agent/staying-set consistency, token conservation (tokens never exceed
/// the number of agents and never decrease — callers track the prior count),
/// and queue sanity. Used by randomized tests after every step.
[[nodiscard]] CheckResult check_model_invariants(const Simulator& sim,
                                                 std::size_t min_expected_tokens);

/// Rendezvous oracle for the baseline contrast: all staying agents at one
/// node.
[[nodiscard]] CheckResult check_gathered(const Simulator& sim);

}  // namespace udring::sim
