// udring/sim/checker.h
//
// Machine-checked oracles for agent-coordination goals on the simulator:
// uniform deployment (Definitions 1 and 2 of the paper), g-partial
// gathering, dispersion, and total gathering (rendezvous), plus the
// reachable-configuration model invariants.
//
// The checkers are deliberately *independent* of the core algorithm
// library: they recompute gaps and target arithmetic from first principles
// so that a bug shared between an algorithm and its checker cannot hide.
// They consume only observable simulator state (positions, statuses,
// queues, mailboxes).
//
// Drivers (runner, fuzzer, model checker, campaigns) do not call the goal
// predicates directly; they go through the GoalOracle interface below so
// one verification stack serves every problem.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.h"

namespace udring::sim {

/// Result of a predicate evaluation: `ok` plus a human-readable reason when
/// the predicate fails (used directly in gtest messages).
struct CheckResult {
  bool ok = true;
  std::string reason;

  explicit operator bool() const noexcept { return ok; }

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
};

/// The distance between consecutive positions around an n-ring; positions
/// need not be sorted; the result is sorted by position. Requires at least
/// one position.
[[nodiscard]] std::vector<std::size_t> ring_gaps(std::vector<std::size_t> positions,
                                                 std::size_t node_count);

/// Are `positions` (distinct nodes) a uniform deployment of k agents on an
/// n-ring? True iff every gap between adjacent agents is ⌊n/k⌋ or ⌈n/k⌉ —
/// equivalently, exactly (n mod k) gaps equal ⌈n/k⌉ and the rest ⌊n/k⌋.
/// k = 1 is trivially uniform.
[[nodiscard]] CheckResult check_positions_uniform(std::vector<std::size_t> positions,
                                                  std::size_t node_count);

/// Definition 1: every agent is in the halt state, all link queues are
/// empty, and the staying positions form a uniform deployment.
///
/// DEPRECATED: thin wrapper over UniformDeploymentOracle(true), kept only so
/// the wrapper ≡ oracle equivalence test still compiles. New code should
/// obtain an oracle via core::make_goal_oracle (or construct
/// UniformDeploymentOracle directly) and call check_goal(); with -Werror in
/// CI, any new in-tree use of the wrapper fails the build.
[[nodiscard]] [[deprecated(
    "use UniformDeploymentOracle(true).check_goal() / core::make_goal_oracle")]]
CheckResult check_uniform_deployment_with_termination(const Simulator& sim);

/// Definition 2: every agent is in the suspended state, all mailboxes and
/// link queues are empty, and the staying positions form a uniform
/// deployment.
///
/// DEPRECATED: thin wrapper over UniformDeploymentOracle(false); see
/// check_uniform_deployment_with_termination.
[[nodiscard]] [[deprecated(
    "use UniformDeploymentOracle(false).check_goal() / core::make_goal_oracle")]]
CheckResult check_uniform_deployment_without_termination(const Simulator& sim);

/// Model invariants that must hold in *any* reachable configuration:
/// agent/staying-set consistency, token conservation (tokens never exceed
/// the number of agents and never decrease — callers track the prior count),
/// and queue sanity. Used by randomized tests after every step. Reads queues
/// and agents directly (no Snapshot materialization): O(n + k) time, O(k)
/// scratch.
[[nodiscard]] CheckResult check_model_invariants(const Simulator& sim,
                                                 std::size_t min_expected_tokens);

/// Incremental form of check_model_invariants for per-action checking at
/// fuzz scale (n ≫ 100): instead of re-walking every node and queue after
/// every atomic action, it revalidates only the action's conservative node
/// footprint (ExecutionState::last_action_nodes() — {node, next(node)},
/// the same bound the mc:: sleep sets use) against shadow queue-membership
/// counts it maintains, in O(dirty) per action. Token monotonicity stays a
/// full check — total_tokens() is O(1).
///
/// Soundness: a *legal* atomic action can only change state at its
/// footprint, so any invariant violation a single action introduces is
/// visible there and the incremental verdict equals the full one
/// (tests/test_checker_incremental.cpp fuzzes this equivalence). A sim bug
/// that corrupts state *outside* the last action's footprint is the one
/// class the per-action scan could miss; `full_check_every` schedules a
/// periodic full re-walk as the safety net for exactly that.
///
/// Contract: reset() on the state you will step, then call
/// check_after_action() after *every* atomic action (the shadow counts
/// track one action at a time; skipped actions surface at the next periodic
/// full check). Failure reasons use the same wording/prefixes as the full
/// checker. The object is pooled like ExecutionState: reset() reuses all
/// arena capacity.
class IncrementalInvariantChecker {
 public:
  struct Options {
    /// Run the full O(n + k) checker every this many actions (safety net);
    /// 0 = never (pure incremental).
    std::size_t full_check_every = 1024;
  };

  IncrementalInvariantChecker() noexcept = default;
  explicit IncrementalInvariantChecker(Options options) noexcept
      : options_(options) {}

  /// Reconfigures a pooled checker before (re)binding it to a run; takes
  /// effect at the next reset().
  void set_options(Options options) noexcept { options_ = options; }

  /// Binds the checker to `sim`'s *current* configuration: full-validates
  /// it and snapshots the shadow queue-membership counts. Returns the full
  /// check's verdict (a failing starting configuration is reported, not
  /// silently adopted).
  [[nodiscard]] CheckResult reset(const ExecutionState& sim,
                                  std::size_t min_expected_tokens = 0);

  /// Validates the configuration after the one atomic action executed since
  /// the previous call (or reset()).
  [[nodiscard]] CheckResult check_after_action(const ExecutionState& sim,
                                               std::size_t min_expected_tokens);

  /// Full checks executed so far via the safety net (reset() excluded).
  [[nodiscard]] std::size_t full_checks() const noexcept {
    return full_checks_;
  }

 private:
  void rebuild_shadow(const ExecutionState& sim);
  void touch(AgentId id);

  Options options_{};
  std::vector<std::uint32_t> in_queue_count_;      // per agent: #queues holding it
  std::vector<std::vector<AgentId>> queue_shadow_; // per node: last-seen contents
  std::vector<AgentId> touched_;                   // scratch: agents to revalidate
  std::vector<std::uint8_t> touched_mark_;         // scratch: dedup for touched_
  std::size_t actions_since_full_ = 0;
  std::size_t full_checks_ = 0;
};

/// Rendezvous oracle for the baseline contrast: all staying agents at one
/// node.
[[nodiscard]] CheckResult check_gathered(const Simulator& sim);

/// g-partial gathering: every agent halted, every link queue empty, and
/// every occupied node hosts at least g co-located agents. g <= 1 reduces
/// to plain termination. This is the pure configuration predicate; it knows
/// nothing about algorithm-detected unsolvability (core::make_goal_oracle
/// layers that on top for unsolvability-aware algorithms).
[[nodiscard]] CheckResult check_partial_gathering(const Simulator& sim,
                                                  std::size_t g);

/// Dispersion: every agent halted, every link queue empty, and every
/// occupied node hosts exactly one settled agent (all final positions
/// distinct).
[[nodiscard]] CheckResult check_dispersed(const Simulator& sim);

/// The problem-agnostic verification interface every driver (core runner,
/// fuzzer, model checker, campaign engine) routes through.
///
/// An oracle bundles the two judgements a schedule-space search needs:
///
///   * check_goal   — is this quiescent configuration a correct outcome?
///   * check_action — did the last atomic action preserve the reachable-
///                    configuration model invariants? The default forwards
///                    to check_model_invariants (or, when the caller passes
///                    its pooled IncrementalInvariantChecker, to its
///                    O(dirty) per-action form); problem-specific oracles
///                    may override it to add per-action safety conditions.
///
/// Oracles are immutable after construction and safe to share across the
/// model checker's worker shards. Concrete oracles for the three problem
/// kinds live below (deployment, partial gathering, dispersion);
/// unsolvability-aware wrappers that must inspect agent programs live in
/// core::make_goal_oracle, which is how drivers obtain the right oracle for
/// an (algorithm, ProblemSpec) pair.
class GoalOracle {
 public:
  virtual ~GoalOracle() = default;

  /// Stable identifier for reports and failure messages.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Judges a quiescent configuration against the problem's goal.
  [[nodiscard]] virtual CheckResult check_goal(const Simulator& sim) const = 0;

  /// Per-action invariant hook; called by drivers after every atomic
  /// action. `incremental` is the caller's pooled checker (nullptr = run
  /// the full O(n + k) sweep).
  [[nodiscard]] virtual CheckResult check_action(
      const Simulator& sim, std::size_t min_expected_tokens,
      IncrementalInvariantChecker* incremental = nullptr) const;
};

/// Uniform deployment (the paper's problem). `require_termination` selects
/// Definition 1 (halted) over Definition 2 (suspended, empty mailboxes).
class UniformDeploymentOracle final : public GoalOracle {
 public:
  explicit UniformDeploymentOracle(bool require_termination = true) noexcept
      : require_termination_(require_termination) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return require_termination_ ? "uniform-deployment"
                                : "uniform-deployment-relaxed";
  }
  [[nodiscard]] CheckResult check_goal(const Simulator& sim) const override;

 private:
  bool require_termination_;
};

/// g-partial gathering as a pure configuration predicate (no
/// unsolvability escape hatch — see check_partial_gathering).
class PartialGatheringOracle final : public GoalOracle {
 public:
  explicit PartialGatheringOracle(std::size_t g) noexcept : g_(g) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "g-partial-gathering";
  }
  [[nodiscard]] CheckResult check_goal(const Simulator& sim) const override {
    return check_partial_gathering(sim, g_);
  }
  [[nodiscard]] std::size_t g() const noexcept { return g_; }

 private:
  std::size_t g_;
};

/// Dispersion: exactly one settled agent per occupied node.
class DispersionOracle final : public GoalOracle {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dispersion";
  }
  [[nodiscard]] CheckResult check_goal(const Simulator& sim) const override {
    return check_dispersed(sim);
  }
};

}  // namespace udring::sim
