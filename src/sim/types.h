// udring/sim/types.h
//
// Shared identifier and status types for the asynchronous-ring simulator.
//
// NodeId / AgentId exist for *instrumentation only* (metrics, logs, the
// checker). Agent programs are anonymous in the paper's model and the
// AgentContext API never exposes these ids to algorithm code.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace udring::sim {

using NodeId = std::size_t;
using AgentId = std::size_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Lifecycle status of an agent inside the simulator, mirroring the paper's
/// model (§2.1) and Definitions 1/2:
///
///  - InTransit:  in the FIFO queue of some link (element of some q_i).
///  - Staying:    in p_i and unconditionally schedulable (used by test
///                programs that yield with stay()).
///  - Waiting:    in p_i, parked until a message arrives (non-terminal wait,
///                e.g. Algorithm 3 followers waiting for tBase).
///  - Suspended:  in p_i, parked until a message arrives, *terminal unless
///                woken* — the suspended state of Definition 2.
///  - Halted:     in p_i, forever inert — the halt state of Definition 1.
///  - Crashed:    dead by a crash-stop fault (sim/fault.h), frozen wherever
///                it stood: still a member of its link queue if it was in
///                transit (and, under FIFO, blocking everyone behind it), or
///                a visible corpse in p_i if it was staying/parked. Never
///                enabled, never receives broadcasts, never acts again.
enum class AgentStatus : std::uint8_t {
  InTransit,
  Staying,
  Waiting,
  Suspended,
  Halted,
  Crashed,
};

[[nodiscard]] constexpr std::string_view to_string(AgentStatus status) noexcept {
  switch (status) {
    case AgentStatus::InTransit: return "in-transit";
    case AgentStatus::Staying: return "staying";
    case AgentStatus::Waiting: return "waiting";
    case AgentStatus::Suspended: return "suspended";
    case AgentStatus::Halted: return "halted";
    case AgentStatus::Crashed: return "crashed";
  }
  return "?";
}

}  // namespace udring::sim
