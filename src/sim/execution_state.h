// udring/sim/execution_state.h
//
// ExecutionState — the *mutable* half of a run (and, via the legacy
// constructor, the class the rest of the repo has always called Simulator).
//
// An ExecutionState owns a global configuration C = (S, T, M, P, Q) exactly
// as Table 2 of the paper defines it:
//
//   S  agent program states            (AgentProgram objects + coroutines)
//   T  node states = token counts      (tokens_)
//   M  undelivered message sequences   (per-agent mailboxes)
//   P  staying sets p_i                (staying_[i])
//   Q  FIFO link queues q_i            (queues_[i]: agents in transit to v_i)
//
// and advances it one *atomic action* at a time under a pluggable fair
// Scheduler. An atomic action (§2.1) is: arrive (if in transit) → receive
// all pending messages → run local computation → optionally broadcast and/or
// release a token → move, stay, wait, suspend, or halt.
//
// Model guarantees enforced structurally:
//  - FIFO links: only the head of each link queue may arrive; arrivals
//    preserve departure order.
//  - Initial buffers: every agent starts *in transit to its home node* and
//    is the sole initial occupant of that queue, so its first action happens
//    at its home before any visitor's action there (§2.1). This rule is
//    load-bearing: without it a fast agent could pass a slow agent's home
//    before its token is dropped and miscount the ring.
//  - No overtaking: an agent is observable only while staying at a node;
//    agents in transit are invisible and cannot be passed except by queueing
//    behind them.
//
// Pooling: reset(const Instance&) rebinds the state to a (possibly
// different) instance while *reusing every arena allocation* — link-queue
// buffers, staying sets, mailboxes, metrics arrays, the enabled set, the
// event log. A campaign that runs thousands of instances through one
// per-worker ExecutionState performs O(k) allocations per run (the agent
// programs and their coroutine frames, which are inherently per-run) instead
// of O(n): the steady-state action loop allocates nothing.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sim/agent.h"
#include "sim/event_log.h"
#include "sim/instance.h"
#include "sim/link_queue.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/topology.h"
#include "sim/types.h"

namespace udring::sim {

struct RunResult {
  enum class Outcome { Quiescent, ActionLimit };
  Outcome outcome = Outcome::Quiescent;
  std::size_t actions = 0;

  [[nodiscard]] bool quiescent() const noexcept {
    return outcome == Outcome::Quiescent;
  }
};

/// Observable state of one agent for snapshots (instrumentation only).
struct AgentSnap {
  AgentId id = 0;
  AgentStatus status = AgentStatus::InTransit;
  NodeId node = 0;  ///< staying node, or destination while in transit
  std::size_t moves = 0;
  std::size_t phase = 0;
  std::size_t mailbox_size = 0;
  std::uint64_t state_hash = 0;
};

/// Deep-copyable observable configuration; used by the checker, the ASCII
/// renderer, and the Theorem-5 local-configuration comparison.
struct Snapshot {
  std::size_t node_count = 0;
  std::vector<std::size_t> tokens;            // index = node
  std::vector<AgentSnap> agents;              // index = agent id
  std::vector<std::vector<AgentId>> queues;   // index = destination node
};

class ExecutionState {
 public:
  /// Sentinel for "no agent" (see last_acting_agent()).
  static constexpr AgentId kNoAgentActing = static_cast<AgentId>(-1);

  /// An empty state: reset() it onto an Instance before use. This is the
  /// pooled form — construct once per worker, reset per run.
  ExecutionState() = default;

  /// Legacy one-shot form (the historical Simulator constructor): builds and
  /// *owns* a ring Instance, then resets onto it. Programs are created
  /// immediately; their coroutines start at the first scheduled action.
  ExecutionState(std::size_t node_count, std::vector<NodeId> homes,
                 const ProgramFactory& factory, SimOptions options = {});

  /// Owns `instance` (shared) and resets onto it — for callers that need a
  /// self-contained simulator with a non-ring topology (core::make_simulator).
  explicit ExecutionState(std::shared_ptr<const Instance> instance);

  ExecutionState(const ExecutionState&) = delete;
  ExecutionState& operator=(const ExecutionState&) = delete;

  /// Rebinds this state to `instance` as configuration C_0, reusing all
  /// existing arena capacity. `instance` must outlive this state's use of it
  /// (until the next reset or destruction); it is NOT owned. Any number of
  /// states may share one Instance concurrently.
  void reset(const Instance& instance);

  /// True once reset onto an instance (default-constructed states are not
  /// runnable until then).
  [[nodiscard]] bool bound() const noexcept { return instance_ != nullptr; }
  [[nodiscard]] const Instance& instance() const { return *instance_; }

  // ---- execution ----------------------------------------------------------

  /// Runs atomic actions under `scheduler` until quiescence (no enabled
  /// agents — Definitions 1/2's terminal shapes) or the action limit.
  RunResult run(Scheduler& scheduler);

  /// Executes one atomic action; returns false when quiescent.
  bool step(Scheduler& scheduler);

  /// Force-steps a specific agent (tests); returns false if not enabled.
  bool step_agent(AgentId id);

  // ---- dynamic-ring rewiring (sim/fault.h) --------------------------------

  /// True while a scheduled rewiring (FaultPlan::rewire_at) awaits its
  /// replacement-cycle choice. run()/step()/run_chunk() resolve it at the
  /// next choice point via Scheduler::pick_index; drivers that step agents
  /// directly (the model checker) must resolve it themselves with
  /// apply_rewire() before the next action.
  [[nodiscard]] bool pending_rewire() const noexcept { return pending_rewire_; }

  /// Number of replacement cycles a pending rewiring can choose among
  /// (φ(node_count); see sim/fault.h).
  [[nodiscard]] std::size_t rewire_candidate_count() const noexcept {
    return rewire_candidates_;
  }

  /// Resolves the pending rewiring by installing candidate
  /// `candidate_index` (index into the ascending coprime-stride list).
  /// Throws std::logic_error when no rewiring is pending and
  /// std::out_of_range on a bad index. Changes no agent's enabledness —
  /// only where future moves lead.
  void apply_rewire(std::size_t candidate_index);

  /// The stride of the live successor map; 0 = the instance topology's own
  /// successor (no rewiring applied yet).
  [[nodiscard]] std::size_t live_stride() const noexcept { return live_stride_; }

  /// Rewirings applied so far.
  [[nodiscard]] std::size_t rewires_applied() const noexcept {
    return rewires_applied_;
  }

  /// The *live* forward neighbour of `v`: the instance topology's successor
  /// until a rewiring fires, then the stride ring (v + d) mod n. Every move
  /// the execution makes goes through this — consumers of the
  /// {node, next(node)} footprint bound (sim/footprint.h) must use it, not
  /// Topology::next, or a rewired run would unsound their node sets.
  [[nodiscard]] NodeId live_next(NodeId v) const noexcept {
    if (live_stride_ == 0) return topo_->next(v);
    const NodeId moved = v + live_stride_;
    return moved >= tokens_.size() ? moved - tokens_.size() : moved;
  }

  /// Lane-stepping entry (sim::BatchArena's per-action call): executes one
  /// atomic action for `id`, which MUST currently be enabled — typically
  /// Scheduler::draw_batch's choice, so the membership re-check step_agent
  /// performs is skipped. Behaviour is byte-identical to the action run()
  /// would execute for the same choice.
  void step_chosen(AgentId id) { execute_action(id); }

  /// Lane-sweep entry (sim::BatchArena): runs up to `budget` atomic actions,
  /// drawing each choice through Scheduler::draw_batch(scheduler, kind, …) —
  /// the devirtualized equivalent of scheduler.pick(). Returns the finished
  /// RunResult when the run completed within the budget (quiescent, or the
  /// instance's action limit — checked in exactly run()'s order), or nullopt
  /// when the budget ran out first and the lane should be swept again.
  /// A sequence of run_chunk calls with any budgets executes the byte-exact
  /// action sequence run(scheduler) would, because the chunk boundary carries
  /// no state: each draw depends only on the scheduler and the enabled set.
  std::optional<RunResult> run_chunk(Scheduler& scheduler, SchedulerKind kind,
                                     std::size_t budget);

  // ---- inspection ---------------------------------------------------------

  [[nodiscard]] const Topology& topology() const noexcept {
    return instance_->topology();
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return tokens_.size(); }
  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }
  [[nodiscard]] const std::vector<NodeId>& homes() const noexcept {
    return instance_->homes();
  }

  /// Number of tokens at `node` (T in the configuration). In this paper's
  /// algorithms it is 0 or 1, but the substrate supports arbitrary counts.
  [[nodiscard]] std::size_t tokens(NodeId node) const { return tokens_.at(node); }
  /// Maintained incrementally (tokens are indelible, so a counter suffices):
  /// O(1), which is what lets per-action oracles check token monotonicity at
  /// n = 10^6 without re-summing the ring.
  [[nodiscard]] std::size_t total_tokens() const noexcept {
    return total_tokens_;
  }
  [[nodiscard]] const std::vector<std::size_t>& token_counts() const noexcept {
    return tokens_;
  }

  [[nodiscard]] AgentStatus status(AgentId id) const { return cell(id).status; }

  /// The node an agent is staying at, or its destination while in transit.
  [[nodiscard]] NodeId agent_node(AgentId id) const { return cell(id).node; }

  /// Agents currently allowed to act (queue heads; schedulable stayers;
  /// parked agents with pending mail).
  [[nodiscard]] const std::vector<AgentId>& enabled() const noexcept {
    return enabled_;
  }

  [[nodiscard]] bool quiescent() const noexcept { return enabled_.empty(); }
  [[nodiscard]] bool all_halted() const noexcept;
  [[nodiscard]] bool all_suspended() const noexcept;

  /// Nodes of all staying agents (one entry per staying agent, sorted).
  [[nodiscard]] std::vector<NodeId> staying_nodes() const;

  [[nodiscard]] std::size_t queue_length(NodeId node) const {
    return queues_.at(node).size();
  }

  /// Direct read access to q_node (FIFO order). Checkers iterate this
  /// instead of materializing a Snapshot — per-action oracles must not pay
  /// an O(n + k) allocation to look at two queues.
  [[nodiscard]] const LinkQueue& link_queue(NodeId node) const {
    return queues_.at(node);
  }

  /// The conservative node footprint of the most recently executed atomic
  /// action: the node the agent acted at, plus — when it moved — the
  /// successor it departed to. Every component of the configuration an
  /// action can change (queue membership, staying sets, tokens, the acting
  /// agent's status, co-located mailboxes) lives at one of these nodes; this
  /// is the same {node, next(node)} bound the mc:: sleep sets rely on, and
  /// it is what makes O(dirty) incremental invariant checking sound.
  /// Empty until the first action after a reset.
  [[nodiscard]] std::span<const NodeId> last_action_nodes() const noexcept {
    return {last_action_nodes_.data(), last_action_node_count_};
  }

  /// The agent that executed the most recent action (the only agent whose
  /// status/queue membership that action can have changed).
  /// kNoAgentActing until the first action after a reset.
  [[nodiscard]] AgentId last_acting_agent() const noexcept {
    return last_acting_agent_;
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] EventLog& log() noexcept { return log_; }
  [[nodiscard]] const EventLog& log() const noexcept { return log_; }

  [[nodiscard]] const AgentProgram& program(AgentId id) const {
    return *cell(id).program;
  }

  [[nodiscard]] Snapshot snapshot() const;

  /// Canonical 64-bit digest of the configuration C = (S, T, M, P, Q): agent
  /// program states (status, node, phase, action count, AgentProgram::
  /// state_hash), token counts, undelivered message sequences, staying
  /// membership (derived from status + node), and link-queue contents in
  /// FIFO order. Deliberately EXCLUDES causal timestamps and the event log —
  /// they record *history*, not state — so two schedules that reach the same
  /// configuration by commuting independent actions digest equally. This is
  /// the visited-state key of the mc:: stateless model checker; its fidelity
  /// caveat is the AgentProgram contract that all algorithm state lives in
  /// named members reported by state_hash() (coroutine-frame locals are
  /// invisible), which src/mc's pruned-vs-unpruned equality tests exercise.
  [[nodiscard]] std::uint64_t config_digest() const;

  /// Identity-free digest of one agent's contribution to the configuration:
  /// exactly the per-agent fields config_digest() folds (status, node,
  /// phase, action count, state_hash, undelivered mailbox contents), under
  /// a distinct domain salt and without the agent's id. Agents are anonymous
  /// in this model — AgentContext exposes neither node nor agent identity to
  /// algorithm code — so two agents with equal agent_digest() are
  /// behaviourally interchangeable up to link-queue membership. This is the
  /// sort key of mc::SymmetryCanonicalizer's agent-permutation quotient.
  [[nodiscard]] std::uint64_t agent_digest(AgentId id) const;

  /// Folds the *live* fault state (current stride, pending/consumed
  /// rewires, crash cursor, remaining drop/dup budgets) into `state` — but
  /// only when the instance's FaultPlan carries fault events, so fault-free
  /// digests are byte-identical to the pre-fault-layer ones. Shared by
  /// config_digest() and mc::SymmetryCanonicalizer (which must fold exactly
  /// the same fields, or the symmetry quotient would merge states whose
  /// adversaries can still act differently).
  void fold_fault_state(std::uint64_t& state) const noexcept;

  [[nodiscard]] std::size_t actions_executed() const noexcept {
    return action_counter_;
  }
  [[nodiscard]] std::size_t max_actions() const noexcept {
    return options_.max_actions;
  }

 private:
  friend class AgentContext;

  struct AgentCell {
    std::unique_ptr<AgentProgram> program;
    std::unique_ptr<AgentContext> ctx;  ///< stable address; reused across resets
    Behavior behavior;
    AgentStatus status = AgentStatus::InTransit;
    NodeId node = 0;  ///< staying node, or destination while in transit
    bool in_staying_set = false;
    std::vector<Message> mailbox;
    std::uint64_t wake_ts = 0;  ///< max sender stamp among undelivered mail
    std::uint64_t last_ts = 0;
  };

  // Unchecked: agent ids come from the enabled set / queues and are always
  // in range; this sits on the per-action hot path.
  [[nodiscard]] AgentCell& cell(AgentId id) { return agents_[id]; }
  [[nodiscard]] const AgentCell& cell(AgentId id) const { return agents_[id]; }

  // The action engine is one templated body specialized on the two run-mode
  // flags (event logging on? non-FIFO fault injection on?): the campaign hot
  // path runs the <false, false> instantiation with both mode branches
  // compiled out, while the dispatchers below keep the single-definition
  // semantics — all four modes execute the same code, selected per action
  // by two perfectly-predicted branches.
  void execute_action(AgentId id);
  template <bool Logging, bool Fault>
  void execute_action_impl(AgentId id);
  template <bool Logging, bool Fault>
  RunResult run_impl(Scheduler& scheduler);
  template <bool Logging, bool Fault>
  std::optional<RunResult> run_chunk_impl(Scheduler& scheduler,
                                          SchedulerKind kind,
                                          std::size_t budget);
  void refresh_enabled(AgentId id);
  template <bool Fault>
  void refresh_enabled_impl(AgentId id);
  void add_to_staying(AgentId id);
  void remove_from_staying(AgentId id);
  /// Fires every fault event due at the current action counter (crash-stop
  /// faults take effect; rewire points become pending). Called at reset and
  /// after every action — guarded by has_fault_events_, so the fault-free
  /// hot path pays one predicted branch.
  void apply_due_faults();
  void apply_crash(AgentId id);
  [[nodiscard]] bool should_be_enabled(AgentId id) const;
  template <bool Fault>
  [[nodiscard]] bool should_be_enabled_impl(AgentId id) const;

  // AgentContext hooks (the acting agent's perceptions and actions).
  [[nodiscard]] std::size_t tokens_at_agent(AgentId id) const;
  [[nodiscard]] std::size_t others_staying_at_agent(AgentId id) const;
  void agent_release_token(AgentId id);
  void agent_broadcast(AgentId id, Message message);
  void agent_set_phase(AgentId id, std::size_t phase);

  std::shared_ptr<const Instance> owned_instance_;  // legacy ctors only
  const Instance* instance_ = nullptr;
  const Topology* topo_ = nullptr;                 // == &instance_->topology()
  SimOptions options_;                             // copy for hot-path access
  std::vector<std::size_t> tokens_;                // T: token count per node
  std::vector<AgentCell> agents_;
  std::vector<LinkQueue> queues_;                  // q_i: in transit to node i
  std::vector<std::vector<AgentId>> staying_;      // p_i: staying at node i
  std::vector<std::uint64_t> queue_arrival_ts_;    // FIFO causal stamps
  std::vector<AgentId> enabled_;
  std::vector<std::size_t> enabled_pos_;           // id -> index in enabled_
  Metrics metrics_;
  EventLog log_;
  std::size_t action_counter_ = 0;
  std::size_t total_tokens_ = 0;                   // invariant: sum of tokens_
  AgentId acting_agent_ = kNoAgentActing;
  std::array<NodeId, 2> last_action_nodes_{};      // footprint of last action
  std::size_t last_action_node_count_ = 0;
  AgentId last_acting_agent_ = kNoAgentActing;

  // Live fault state (reset() derives it all from options_.faults).
  bool has_fault_events_ = false;   // plan has crashes/rewires/drops/dups
  std::size_t crash_cursor_ = 0;    // next unfired entry of faults.crashes
  std::size_t rewire_cursor_ = 0;   // next unreached entry of faults.rewire_at
  bool pending_rewire_ = false;
  std::size_t live_stride_ = 0;     // 0 = topology successor
  std::size_t rewires_applied_ = 0;
  std::size_t rewire_candidates_ = 0;  // φ(n), cached at reset
  std::size_t drops_remaining_ = 0;
  std::size_t dups_remaining_ = 0;

  static constexpr std::size_t kNotEnabled = static_cast<std::size_t>(-1);
};

/// Historical name, kept so the execution engine reads as "the simulator"
/// everywhere a run is one-shot. The pooled APIs say ExecutionState.
using Simulator = ExecutionState;

/// Runs `instances` back to back on one pooled `state` (the serial pooling
/// primitive; core::run_many adds the worker sharding on top). For each
/// index i: state.reset(*instances[i]), then run under scheduler_for(i),
/// then consume(i, state, result) while the state still holds the finished
/// configuration. Returns the number of runs executed.
std::size_t run_batch(
    ExecutionState& state, const std::vector<const Instance*>& instances,
    const std::function<Scheduler&(std::size_t)>& scheduler_for,
    const std::function<void(std::size_t, const ExecutionState&,
                             const RunResult&)>& consume);

}  // namespace udring::sim
