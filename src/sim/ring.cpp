#include "sim/ring.h"

#include <numeric>
#include <stdexcept>

namespace udring::sim {

Ring::Ring(std::size_t node_count) : tokens_(node_count, 0) {
  if (node_count == 0) {
    throw std::invalid_argument("Ring: node_count must be positive");
  }
}

std::size_t Ring::total_tokens() const noexcept {
  return std::accumulate(tokens_.begin(), tokens_.end(), std::size_t{0});
}

}  // namespace udring::sim
