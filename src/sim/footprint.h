// udring/sim/footprint.h
//
// The conservative action footprint: THE {node, next(node)} bound.
//
// One atomic action by an agent can only modify configuration components
// that live at the node it executes at (queue membership, staying set,
// tokens, co-located mailboxes, the agent's own status) and — when the
// action is a move — the successor's link queue. Taken *before* the action
// runs, {agent_node, next(agent_node)} is therefore a sound overestimate of
// every node the action may touch, whatever the agent's program does.
//
// Three subsystems lean on exactly this bound and historically each carried
// its own copy of the two-line computation: the mc:: sleep sets (commuting
// independent actions), DPOR re-arming (the race scan over stack edges),
// and — in its tighter post-hoc form — ExecutionState::last_action_nodes(),
// which the O(dirty) incremental invariant checker consumes. This header is
// the single definition; a drifted copy would silently unsound one of the
// pruners, so new consumers (the lane-batched stepper included) must use it
// instead of re-deriving the pair.

#pragma once

#include "sim/execution_state.h"
#include "sim/types.h"

namespace udring::sim {

/// Pre-action footprint of one enabled agent: the node it will act at and
/// that node's successor. On a 1-node walk the two coincide; overlaps()
/// handles the duplicate without callers deduplicating.
struct ActionFootprint {
  NodeId node = 0;  ///< the node the action executes at
  NodeId next = 0;  ///< its successor — the move destination, if any

  /// True when the two footprints share any node — i.e. the two actions may
  /// be dependent. The negation is the independence predicate of the mc::
  /// sleep sets and of Flanagan–Godefroid re-arming.
  [[nodiscard]] constexpr bool overlaps(
      const ActionFootprint& other) const noexcept {
    return node == other.node || node == other.next || next == other.node ||
           next == other.next;
  }
};

/// Footprint of `agent`'s next action from the current configuration of
/// `state`. `agent`'s node is its staying node, or its destination while in
/// transit — in both cases the node the next action executes at. Uses the
/// *live* successor (ExecutionState::live_next), so after a dynamic-ring
/// rewiring (sim/fault.h) the bound covers the rewired edge the move would
/// actually take, not the stale topology edge.
[[nodiscard]] inline ActionFootprint action_footprint(
    const ExecutionState& state, AgentId agent) {
  const NodeId node = state.agent_node(agent);
  return ActionFootprint{node, state.live_next(node)};
}

/// True when the next actions of `a` and `b` have disjoint conservative
/// footprints (and therefore commute: executing them in either order reaches
/// the same configuration).
[[nodiscard]] inline bool independent_actions(const ExecutionState& state,
                                              AgentId a, AgentId b) {
  return !action_footprint(state, a).overlaps(action_footprint(state, b));
}

}  // namespace udring::sim
