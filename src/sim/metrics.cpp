#include "sim/metrics.h"

#include <algorithm>

namespace udring::sim {

std::size_t Metrics::total_moves() const noexcept {
  std::size_t total = 0;
  for (const auto& agent : per_agent_) total += agent.moves;
  return total;
}

std::size_t Metrics::total_actions() const noexcept {
  std::size_t total = 0;
  for (const auto& agent : per_agent_) total += agent.actions;
  return total;
}

std::uint64_t Metrics::makespan() const noexcept {
  std::uint64_t makespan = 0;
  for (const auto& agent : per_agent_) {
    makespan = std::max(makespan, agent.causal_time);
  }
  return makespan;
}

std::size_t Metrics::max_memory_bits() const noexcept {
  std::size_t peak = 0;
  for (const auto& agent : per_agent_) {
    peak = std::max(peak, agent.peak_memory_bits);
  }
  return peak;
}

std::vector<std::size_t> Metrics::moves_by_phase() const {
  std::vector<std::size_t> totals;
  for (const auto& agent : per_agent_) {
    if (totals.size() < agent.moves_by_phase.size()) {
      totals.resize(agent.moves_by_phase.size(), 0);
    }
    for (std::size_t phase = 0; phase < agent.moves_by_phase.size(); ++phase) {
      totals[phase] += agent.moves_by_phase[phase];
    }
  }
  return totals;
}

}  // namespace udring::sim
