#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace udring::sim {

Simulator::Simulator(std::size_t node_count, std::vector<NodeId> homes,
                     const ProgramFactory& factory, SimOptions options)
    : ring_(node_count),
      homes_(std::move(homes)),
      queues_(node_count),
      staying_(node_count),
      queue_arrival_ts_(node_count, 0),
      metrics_(homes_.size()),
      options_(options) {
  if (homes_.empty()) {
    throw std::invalid_argument("Simulator: need at least one agent");
  }
  if (homes_.size() > node_count) {
    throw std::invalid_argument("Simulator: more agents than nodes");
  }
  std::unordered_set<NodeId> seen;
  for (const NodeId home : homes_) {
    if (home >= node_count) {
      throw std::invalid_argument("Simulator: home node out of range");
    }
    if (!seen.insert(home).second) {
      throw std::invalid_argument("Simulator: home nodes must be distinct");
    }
  }
  if (options_.max_actions == 0) {
    // Generous default: the paper's algorithms need ≤ ~14n moves per agent;
    // actions ≈ moves + a few parks each. 64·n·k + 4096 has wide margin.
    options_.max_actions = 64 * node_count * homes_.size() + 4096;
  }
  options_.max_actions = std::max<std::size_t>(options_.max_actions, 1);

  log_.set_enabled(options_.record_events);

  agents_.reserve(homes_.size());
  enabled_.reserve(homes_.size());
  enabled_pos_.assign(homes_.size(), kNotEnabled);
  // Hot-path allocation hygiene: queues and staying sets can never exceed k
  // entries; a small up-front reservation makes steady-state actions
  // allocation-free on typical (k ≪ n) instances.
  const std::size_t reserve_per_node = std::min<std::size_t>(homes_.size(), 8);
  for (auto& queue : queues_) queue.reserve(reserve_per_node);
  for (auto& set : staying_) set.reserve(reserve_per_node);
  for (AgentId id = 0; id < homes_.size(); ++id) {
    AgentCell c;
    c.program = factory(id);
    if (!c.program) {
      throw std::invalid_argument("Simulator: factory returned null program");
    }
    c.ctx = std::make_unique<AgentContext>(*this, id);
    c.behavior = c.program->run(*c.ctx);
    c.status = AgentStatus::InTransit;
    c.node = homes_[id];  // destination: the home node's incoming buffer
    agents_.push_back(std::move(c));
    queues_[homes_[id]].push_back(id);
  }
  for (AgentId id = 0; id < agents_.size(); ++id) {
    refresh_enabled(id);
  }
}

RunResult Simulator::run(Scheduler& scheduler) {
  scheduler.attach(*this);
  scheduler.reset(agents_.size());
  RunResult result;
  while (!enabled_.empty()) {
    if (action_counter_ >= options_.max_actions) {
      result.outcome = RunResult::Outcome::ActionLimit;
      result.actions = action_counter_;
      return result;
    }
    execute_action(scheduler.pick(enabled_));
  }
  result.outcome = RunResult::Outcome::Quiescent;
  result.actions = action_counter_;
  return result;
}

bool Simulator::step(Scheduler& scheduler) {
  if (enabled_.empty()) return false;
  execute_action(scheduler.pick(enabled_));
  return true;
}

bool Simulator::step_agent(AgentId id) {
  if (id >= agents_.size() || enabled_pos_.at(id) == kNotEnabled) return false;
  execute_action(id);
  return true;
}

bool Simulator::all_halted() const noexcept {
  return std::all_of(agents_.begin(), agents_.end(), [](const AgentCell& c) {
    return c.status == AgentStatus::Halted;
  });
}

bool Simulator::all_suspended() const noexcept {
  return std::all_of(agents_.begin(), agents_.end(), [](const AgentCell& c) {
    return c.status == AgentStatus::Suspended;
  });
}

std::vector<NodeId> Simulator::staying_nodes() const {
  std::vector<NodeId> nodes;
  for (const AgentCell& c : agents_) {
    if (c.in_staying_set) nodes.push_back(c.node);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

Snapshot Simulator::snapshot() const {
  Snapshot snap;
  snap.node_count = ring_.size();
  snap.tokens = ring_.token_counts();
  snap.agents.reserve(agents_.size());
  for (AgentId id = 0; id < agents_.size(); ++id) {
    const AgentCell& c = agents_[id];
    AgentSnap a;
    a.id = id;
    a.status = c.status;
    a.node = c.node;
    a.moves = metrics_.agent(id).moves;
    a.phase = metrics_.agent(id).phase;
    a.mailbox_size = c.mailbox.size();
    a.state_hash = c.program->state_hash();
    snap.agents.push_back(a);
  }
  snap.queues.reserve(queues_.size());
  for (const auto& queue : queues_) {
    snap.queues.emplace_back(queue.begin(), queue.end());
  }
  return snap;
}

// ---- action engine ----------------------------------------------------------

void Simulator::execute_action(AgentId id) {
  AgentCell& c = cell(id);
  ++action_counter_;

  const bool arrival = (c.status == AgentStatus::InTransit);
  std::uint64_t ts = c.last_ts;
  if (arrival) {
    auto& queue = queues_[c.node];
    if (!queue.empty() && queue.front() == id) {
      queue.pop_front();
    } else if (options_.fault_non_fifo_links && queue.remove(id)) {
      // Fault injection: the agent jumped the queue (see SimOptions).
    } else {
      throw std::logic_error("Simulator: scheduled a non-head in-transit agent");
    }
    ts = std::max(ts, queue_arrival_ts_[c.node]);
    if (!queue.empty()) refresh_enabled(queue.front());
  } else if (!c.mailbox.empty()) {
    ts = std::max(ts, c.wake_ts);
  }
  ts += 1;
  c.last_ts = ts;
  if (arrival) {
    queue_arrival_ts_[c.node] = ts;
    log_.record({action_counter_, EventKind::Arrive, id, c.node, ts, 0});
  }

  // Receive all pending messages (step 2 of the atomic action). Swapping
  // (not move-assigning) ping-pongs the two buffers, so their capacities are
  // recycled and steady-state delivery never heap-allocates.
  std::swap(c.ctx->inbox_, c.mailbox);
  c.mailbox.clear();
  c.wake_ts = 0;

  // Local computation + broadcasts + token drops (steps 3–5).
  acting_agent_ = id;
  const Request request = c.behavior.resume();
  acting_agent_ = kNoAgentActing;
  c.ctx->inbox_.clear();

  AgentMetrics& m = metrics_.agent(id);
  ++m.actions;
  m.causal_time = ts;
  m.peak_memory_bits = std::max(m.peak_memory_bits, c.program->memory_bits());

  switch (request) {
    case Request::Move: {
      if (c.in_staying_set) remove_from_staying(id);
      log_.record({action_counter_, EventKind::Depart, id, c.node, ts, 0});
      const NodeId dest = ring_.next(c.node);
      c.status = AgentStatus::InTransit;
      c.node = dest;
      queues_[dest].push_back(id);
      m.count_move();
      break;
    }
    case Request::Stay:
      c.status = AgentStatus::Staying;
      if (!c.in_staying_set) add_to_staying(id);
      log_.record({action_counter_, EventKind::StayPut, id, c.node, ts, 0});
      break;
    case Request::WaitMessage:
      c.status = AgentStatus::Waiting;
      if (!c.in_staying_set) add_to_staying(id);
      log_.record({action_counter_, EventKind::EnterWait, id, c.node, ts, 0});
      break;
    case Request::Suspend:
      c.status = AgentStatus::Suspended;
      if (!c.in_staying_set) add_to_staying(id);
      log_.record({action_counter_, EventKind::EnterSuspend, id, c.node, ts, 0});
      break;
    case Request::Done:
      c.status = AgentStatus::Halted;
      if (!c.in_staying_set) add_to_staying(id);
      log_.record({action_counter_, EventKind::Halt, id, c.node, ts, 0});
      break;
    case Request::None:
      throw std::logic_error("Simulator: agent yielded no request");
  }

  refresh_enabled(id);
  if (options_.fault_non_fifo_links) {
    // Overtaking eligibility depends on whether queue *predecessors* have
    // acted, which any action can change; the cheap full sweep is fine on
    // this test-only path.
    for (AgentId other = 0; other < agents_.size(); ++other) {
      refresh_enabled(other);
    }
  }
}

bool Simulator::should_be_enabled(AgentId id) const {
  const AgentCell& c = cell(id);
  switch (c.status) {
    case AgentStatus::InTransit: {
      const auto& queue = queues_[c.node];
      if (queue.empty()) return false;
      if (queue.front() == id) return true;
      if (!options_.fault_non_fifo_links) return false;
      // Fault injection: enabled from any position, but never overtaking an
      // agent that has not yet had its first action (the initial occupant of
      // its home buffer) — that would break the home-node-first rule, which
      // is not the guarantee under test — and only within the configured
      // phase window.
      if (metrics_.agent(id).phase < options_.fault_non_fifo_min_phase) {
        return false;
      }
      for (const AgentId member : queue) {
        if (member == id) return true;
        if (metrics_.agent(member).actions == 0 ||
            metrics_.agent(member).phase < options_.fault_non_fifo_min_phase) {
          return false;
        }
      }
      return false;
    }
    case AgentStatus::Staying:
      return true;
    case AgentStatus::Waiting:
    case AgentStatus::Suspended:
      return !c.mailbox.empty();
    case AgentStatus::Halted:
      return false;
  }
  return false;
}

void Simulator::refresh_enabled(AgentId id) {
  const bool want = should_be_enabled(id);
  const std::size_t pos = enabled_pos_[id];
  if (want && pos == kNotEnabled) {
    enabled_pos_[id] = enabled_.size();
    enabled_.push_back(id);
  } else if (!want && pos != kNotEnabled) {
    const AgentId moved = enabled_.back();
    enabled_[pos] = moved;
    enabled_pos_[moved] = pos;
    enabled_.pop_back();
    enabled_pos_[id] = kNotEnabled;
  }
}

void Simulator::add_to_staying(AgentId id) {
  AgentCell& c = cell(id);
  staying_[c.node].push_back(id);
  c.in_staying_set = true;
}

void Simulator::remove_from_staying(AgentId id) {
  AgentCell& c = cell(id);
  auto& set = staying_[c.node];
  set.erase(std::remove(set.begin(), set.end(), id), set.end());
  c.in_staying_set = false;
}

// ---- AgentContext hooks ------------------------------------------------------

std::size_t Simulator::tokens_at_agent(AgentId id) const {
  return ring_.tokens(cell(id).node);
}

std::size_t Simulator::others_staying_at_agent(AgentId id) const {
  const AgentCell& c = cell(id);
  const std::size_t here = staying_[c.node].size();
  return c.in_staying_set ? here - 1 : here;
}

void Simulator::agent_release_token(AgentId id) {
  const AgentCell& c = cell(id);
  ring_.add_token(c.node);
  log_.record({action_counter_, EventKind::TokenDrop, id, c.node, c.last_ts, 0});
}

void Simulator::agent_broadcast(AgentId id, Message message) {
  const AgentCell& sender = cell(id);
  std::size_t receivers = 0;
  for (const AgentId other : staying_[sender.node]) {
    if (other == id) continue;
    AgentCell& rc = cell(other);
    if (rc.status == AgentStatus::Halted) continue;  // Definition 1
    rc.mailbox.push_back(message);
    rc.wake_ts = std::max(rc.wake_ts, sender.last_ts);
    const bool was_enabled = enabled_pos_[other] != kNotEnabled;
    refresh_enabled(other);
    if (!was_enabled && enabled_pos_[other] != kNotEnabled) {
      log_.record({action_counter_, EventKind::Wake, other, rc.node, sender.last_ts, id});
    }
    ++receivers;
  }
  log_.record(
      {action_counter_, EventKind::Broadcast, id, sender.node, sender.last_ts, receivers});
}

void Simulator::agent_set_phase(AgentId id, std::size_t phase) {
  metrics_.agent(id).phase = phase;
}

}  // namespace udring::sim
