// udring/sim/link_queue.h
//
// FIFO link queue q_i with index-based storage: pop advances a head index
// instead of shifting or deallocating, the buffer rewinds to offset 0
// whenever the queue drains, and a lagging head is compacted in place
// (memmove, amortized O(1)) — so steady-state queue traffic performs no
// heap allocation, unlike std::deque's block churn. Capacity only ever
// grows to the historical maximum (≤ k), and clear() keeps it, which is
// what lets a pooled ExecutionState reuse every queue across runs.

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace udring::sim {

class LinkQueue {
 public:
  void reserve(std::size_t capacity) { buffer_.reserve(capacity); }

  /// Empties the queue, retaining the buffer capacity (pooled reuse).
  void clear() noexcept {
    buffer_.clear();
    head_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == buffer_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return buffer_.size() - head_;
  }
  [[nodiscard]] AgentId front() const { return buffer_[head_]; }

  void push_back(AgentId id) {
    if (head_ == buffer_.size()) {  // drained: rewind, reuse the whole buffer
      buffer_.clear();
      head_ = 0;
    }
    buffer_.push_back(id);
  }

  void pop_front() {
    ++head_;
    if (head_ == buffer_.size()) {
      buffer_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Removes `id` from anywhere in the queue. Only the non-FIFO fault
  /// injection (SimOptions::fault_non_fifo_links) takes this path; regular
  /// executions always pop the head.
  bool remove(AgentId id) {
    for (std::size_t i = head_; i < buffer_.size(); ++i) {
      if (buffer_[i] != id) continue;
      if (i == head_) {
        pop_front();
      } else {
        buffer_.erase(buffer_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      return true;
    }
    return false;
  }

  [[nodiscard]] auto begin() const noexcept { return buffer_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() const noexcept { return buffer_.end(); }

 private:
  std::vector<AgentId> buffer_;
  std::size_t head_ = 0;
};

}  // namespace udring::sim
