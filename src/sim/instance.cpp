#include "sim/instance.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace udring::sim {

Instance::Instance(Topology topology, std::vector<NodeId> homes,
                   ProgramFactory factory, SimOptions options)
    : topology_(std::move(topology)),
      homes_(std::move(homes)),
      factory_(std::move(factory)),
      options_(options) {
  if (topology_.empty()) {
    throw std::invalid_argument("Instance: topology must have at least one node");
  }
  if (homes_.empty()) {
    throw std::invalid_argument("Instance: need at least one agent");
  }
  if (homes_.size() > topology_.size()) {
    throw std::invalid_argument("Instance: more agents than nodes");
  }
  if (!factory_) {
    throw std::invalid_argument("Instance: null program factory");
  }
  for (const NodeId home : homes_) {
    if (home >= topology_.size()) {
      throw std::invalid_argument("Instance: home node out of range");
    }
  }
  // Distinctness: small agent counts (the overwhelmingly common case, and
  // Instance construction is on the pooled per-run path) use the
  // allocation-free quadratic scan; large ones pay one hash set.
  if (homes_.size() <= 64) {
    for (std::size_t i = 0; i < homes_.size(); ++i) {
      for (std::size_t j = i + 1; j < homes_.size(); ++j) {
        if (homes_[i] == homes_[j]) {
          throw std::invalid_argument("Instance: home nodes must be distinct");
        }
      }
    }
  } else {
    std::unordered_set<NodeId> seen;
    for (const NodeId home : homes_) {
      if (!seen.insert(home).second) {
        throw std::invalid_argument("Instance: home nodes must be distinct");
      }
    }
  }
  // Fault-plan normalization: the legacy non-FIFO bool pair and the
  // structured plan are one fault model. Merge the deprecated fields into
  // the plan, mirror the resolved values back (hot-path enabling logic and
  // historical callers read the legacy fields), then validate the whole
  // plan against this instance's dimensions. After construction the two
  // views agree by construction.
  if (options_.fault_non_fifo_links) options_.faults.non_fifo = true;
  options_.faults.non_fifo_min_phase = std::max(
      options_.faults.non_fifo_min_phase, options_.fault_non_fifo_min_phase);
  options_.fault_non_fifo_links = options_.faults.non_fifo;
  options_.fault_non_fifo_min_phase = options_.faults.non_fifo_min_phase;
  options_.faults.normalize();
  options_.faults.validate(topology_.size(), homes_.size());
  if (options_.max_actions == 0) {
    // Generous default: the paper's algorithms need ≤ ~14n moves per agent;
    // actions ≈ moves + a few parks each. 64·n·k + 4096 has wide margin.
    options_.max_actions = 64 * topology_.size() * homes_.size() + 4096;
  }
  options_.max_actions = std::max<std::size_t>(options_.max_actions, 1);
}

Instance::Instance(std::size_t node_count, std::vector<NodeId> homes,
                   ProgramFactory factory, SimOptions options)
    : Instance(Topology::ring(node_count), std::move(homes), std::move(factory),
               options) {}

}  // namespace udring::sim
