// udring/sim/scheduler.h
//
// Fair schedulers. The paper quantifies over *all* fair schedules (§2.1); an
// execution is produced by repeatedly letting a scheduler choose among the
// currently enabled agents (queue heads, schedulable stayers, and parked
// agents with pending messages). The families here sample that quantifier
// from several directions:
//
//  - RoundRobinScheduler:  the canonical fair schedule.
//  - RandomScheduler:      seeded uniform choice (fair with probability 1).
//  - SynchronousScheduler: lockstep rounds — every enabled agent acts once
//                          per round. Realizes the ideal-time measure and
//                          the synchronous executions used in Theorem 5.
//  - PriorityScheduler:    always runs the highest-priority enabled agent;
//                          maximally starves the lowest. This is the
//                          adversary that exposes asynchrony bugs (it found
//                          the Algorithm-3 base-node race; see DESIGN.md).
//  - BurstScheduler:       runs one agent as long as it stays enabled before
//                          switching — extreme asynchrony bursts.
//
// All schedulers are fair on terminating workloads: an enabled agent is
// never ignored forever because the others eventually park or halt.
//
// Pooled reuse contract: a scheduler object may drive many runs back to
// back. reset(agent_count) must restore *every* piece of mutable state —
// including RNGs, which re-seed from the stored seed — so a reused
// scheduler is byte-identical to a freshly constructed one (pinned by
// tests/test_pooling.cpp). reseed() swaps the stored seed between runs,
// which is how core::RunContext caches one scheduler per kind across a
// whole campaign.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"
#include "util/rng.h"

namespace udring::sim {

class ExecutionState;
enum class SchedulerKind;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Lets a scheduler observe the execution it is about to drive. Called by
  /// ExecutionState::run (and the explore harnesses) before reset(). The
  /// default schedulers ignore it; the adversarial schedulers in src/explore
  /// use the observable state (statuses, queue lengths, metrics) to steer
  /// their choices. The reference is valid for the duration of the run.
  virtual void attach(const ExecutionState& sim) { (void)sim; }

  /// Called by ExecutionState::run before the first action. Restores the
  /// scheduler to its just-constructed behaviour (see the pooled reuse
  /// contract above).
  virtual void reset(std::size_t agent_count) { (void)agent_count; }

  /// Replaces the stored seed ahead of the next reset(); no-op for
  /// deterministic kinds. Lets pooled drivers reuse one scheduler object
  /// across runs with per-run seeds.
  virtual void reseed(std::uint64_t seed) { (void)seed; }

  /// Chooses the next agent to act from `enabled` (never empty, unordered).
  [[nodiscard]] virtual AgentId pick(const std::vector<AgentId>& enabled) = 0;

  /// Chooses an index in [0, bound) at a *non-agent* choice point — today,
  /// which replacement cycle a pending dynamic-ring rewiring installs
  /// (sim/fault.h). Part of the same choice stream as pick(): the recording
  /// and replaying schedulers in src/explore intercept it, so rewiring
  /// choices land in ScheduleTrace::choices and replay byte-identically.
  /// `bound` is ≥ 1. A deliberately separate virtual (NOT routed through
  /// pick()): pick()'s implementations index agent-count-sized tables by
  /// the returned id, which candidate indices would overflow.
  ///
  /// Default: the last candidate — for rewiring, the largest coprime
  /// stride, the most disruptive deterministic choice. Randomized kinds
  /// draw from their stream instead.
  [[nodiscard]] virtual std::size_t pick_index(std::size_t bound) {
    return bound - 1;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Completed lockstep rounds; 0 for schedulers without round structure.
  [[nodiscard]] virtual std::uint64_t rounds() const { return 0; }

  /// The batched draw API — the per-action entry of the lane-stepping
  /// engine (sim::BatchArena). Semantically identical to scheduler.pick():
  /// `kind` devirtualizes the five built-in kinds (they are final, so the
  /// cast + call inlines into the lane sweep), and MUST name `scheduler`'s
  /// dynamic type when it is one of them. Defined after the derived classes.
  [[nodiscard]] static AgentId draw_batch(Scheduler& scheduler,
                                          SchedulerKind kind,
                                          const std::vector<AgentId>& enabled);

  /// Kind-less overload for schedulers outside SchedulerKind (the explore
  /// adversaries): the plain virtual draw, so lane-pooled drivers have one
  /// spelling for both worlds.
  [[nodiscard]] static AgentId draw_batch(Scheduler& scheduler,
                                          const std::vector<AgentId>& enabled) {
    return scheduler.pick(enabled);
  }
};

// The pick() bodies of the five built-in kinds live here, in-class, so both
// virtual dispatch (ExecutionState::run) and the devirtualized batched draw
// (Scheduler::draw_batch below) inline them — a per-action call, worth
// ~20% of the campaign hot loop. Cold members (reset, constructors) stay in
// scheduler.cpp.

/// Cycles through agent ids, running the first enabled agent at or after the
/// cursor.
class RoundRobinScheduler final : public Scheduler {
 public:
  void reset(std::size_t agent_count) override;
  AgentId pick(const std::vector<AgentId>& enabled) override {
    // Choose the enabled agent with the smallest cyclic distance from cursor_.
    AgentId best = enabled.front();
    std::size_t best_key = agent_count_;
    for (const AgentId id : enabled) {
      const std::size_t key =
          id >= cursor_ ? id - cursor_ : agent_count_ - cursor_ + id;
      if (key < best_key) {
        best_key = key;
        best = id;
      }
    }
    // best < agent_count_ always (it is an enabled agent id), so the cyclic
    // increment needs a compare, not a per-action modulo.
    cursor_ = best + 1;
    if (cursor_ >= agent_count_) cursor_ = 0;
    return best;
  }
  [[nodiscard]] std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t agent_count_ = 0;
  std::size_t cursor_ = 0;
};

/// Uniformly random choice among enabled agents (seeded, reproducible).
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  void reset(std::size_t agent_count) override;
  void reseed(std::uint64_t seed) override { seed_ = seed; }
  AgentId pick(const std::vector<AgentId>& enabled) override {
    // Depends on enabled's (insertion-with-swap-remove) order: part of the
    // frozen schedule derivation, like the Rng stream itself.
    return enabled[rng_.index(enabled.size())];
  }
  std::size_t pick_index(std::size_t bound) override {
    return rng_.index(bound);
  }
  [[nodiscard]] std::string_view name() const override { return "random"; }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Lockstep rounds: within a round every enabled agent acts exactly once
/// (agents enabled mid-round join the next round). rounds() then equals the
/// execution's synchronous length, which matches the ideal-time makespan.
///
/// Membership is tracked with per-agent round stamps (acted in round r ⇔
/// stamp == r), so advancing a round is O(1) instead of clearing a flag
/// array — this scheduler sits in every campaign's hot path.
class SynchronousScheduler final : public Scheduler {
 public:
  void reset(std::size_t agent_count) override;
  AgentId pick(const std::vector<AgentId>& enabled) override {
    const std::uint64_t current = rounds_ + 1;
    for (const AgentId id : enabled) {
      if (acted_round_[id] < current) {
        acted_round_[id] = current;
        return id;
      }
    }
    // Every enabled agent has acted: the round is complete. Bumping rounds_
    // implicitly un-stamps every agent — no array clear.
    ++rounds_;
    const AgentId id = enabled.front();
    acted_round_[id] = rounds_ + 1;
    return id;
  }
  [[nodiscard]] std::string_view name() const override { return "synchronous"; }
  [[nodiscard]] std::uint64_t rounds() const override { return rounds_; }

 private:
  std::vector<std::uint64_t> acted_round_;  // 1-based stamp; 0 = never acted
  std::uint64_t rounds_ = 0;
};

/// Always runs the enabled agent that appears earliest in `order`; agents
/// absent from `order` come last in id order. Deterministic adversary.
///
/// The default-constructed form derives the canonical adversarial order —
/// descending ids, so agent 0 is starved hardest — from reset()'s
/// agent_count, which makes one object reusable across runs of different
/// sizes (the pooled factory form). The explicit-order form pins a fixed
/// permutation for tests.
class PriorityScheduler final : public Scheduler {
 public:
  PriorityScheduler() = default;  ///< descending ids, sized at reset()
  explicit PriorityScheduler(std::vector<AgentId> order);
  void reset(std::size_t agent_count) override;
  AgentId pick(const std::vector<AgentId>& enabled) override {
    AgentId best = enabled.front();
    for (const AgentId id : enabled) {
      if (rank_[id] < rank_[best]) best = id;
    }
    return best;
  }
  [[nodiscard]] std::string_view name() const override { return "priority"; }

 private:
  bool descending_default_ = true;  ///< false once an explicit order is given
  std::vector<AgentId> order_;
  std::vector<std::size_t> rank_;  // agent id -> priority rank
};

/// Keeps scheduling the same agent while it remains enabled; switches (in
/// seeded random order) only when it parks, halts, or enters a link queue
/// behind another agent.
class BurstScheduler final : public Scheduler {
 public:
  explicit BurstScheduler(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  void reset(std::size_t agent_count) override;
  void reseed(std::uint64_t seed) override { seed_ = seed; }
  AgentId pick(const std::vector<AgentId>& enabled) override {
    if (current_ != kNoAgent &&
        std::find(enabled.begin(), enabled.end(), current_) != enabled.end()) {
      return current_;
    }
    current_ = enabled[rng_.index(enabled.size())];
    return current_;
  }
  std::size_t pick_index(std::size_t bound) override {
    return rng_.index(bound);
  }
  [[nodiscard]] std::string_view name() const override { return "burst"; }

 private:
  std::uint64_t seed_;
  Rng rng_;
  AgentId current_ = kNoAgent;

  static constexpr AgentId kNoAgent = static_cast<AgentId>(-1);
};

/// Scheduler families used by parameterized sweeps.
enum class SchedulerKind {
  RoundRobin,
  Random,
  Synchronous,
  Priority,  ///< victim = last agent (lowest priority = highest id)
  Burst,
};

/// Number of SchedulerKind values (sizes pooled per-kind caches).
inline constexpr std::size_t kSchedulerKindCount =
    static_cast<std::size_t>(SchedulerKind::Burst) + 1;

inline AgentId Scheduler::draw_batch(Scheduler& scheduler, SchedulerKind kind,
                                     const std::vector<AgentId>& enabled) {
  // One predictable switch on a lane-resident tag replaces the indirect
  // virtual call; each case is a direct (inlineable) call on a final class.
  switch (kind) {
    case SchedulerKind::RoundRobin:
      return static_cast<RoundRobinScheduler&>(scheduler).pick(enabled);
    case SchedulerKind::Random:
      return static_cast<RandomScheduler&>(scheduler).pick(enabled);
    case SchedulerKind::Synchronous:
      return static_cast<SynchronousScheduler&>(scheduler).pick(enabled);
    case SchedulerKind::Priority:
      return static_cast<PriorityScheduler&>(scheduler).pick(enabled);
    case SchedulerKind::Burst:
      return static_cast<BurstScheduler&>(scheduler).pick(enabled);
  }
  return scheduler.pick(enabled);  // future kinds: fair virtual fallback
}

[[nodiscard]] std::string_view to_string(SchedulerKind kind) noexcept;

/// All kinds, for INSTANTIATE_TEST_SUITE_P sweeps.
[[nodiscard]] const std::vector<SchedulerKind>& all_scheduler_kinds();

/// Factory. `seed` feeds the randomized kinds; every kind sizes itself from
/// reset(agent_count), so the returned object is reusable across runs
/// (reseed() + reset()). `agent_count` is retained for source compatibility.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                                        std::uint64_t seed,
                                                        std::size_t agent_count);

}  // namespace udring::sim
