#include "sim/checker.h"

#include <algorithm>
#include <sstream>

namespace udring::sim {

std::vector<std::size_t> ring_gaps(std::vector<std::size_t> positions,
                                   std::size_t node_count) {
  std::sort(positions.begin(), positions.end());
  std::vector<std::size_t> gaps;
  gaps.reserve(positions.size());
  for (std::size_t i = 0; i + 1 < positions.size(); ++i) {
    gaps.push_back(positions[i + 1] - positions[i]);
  }
  if (!positions.empty()) {
    gaps.push_back(node_count - positions.back() + positions.front());
  }
  return gaps;
}

CheckResult check_positions_uniform(std::vector<std::size_t> positions,
                                    std::size_t node_count) {
  const std::size_t k = positions.size();
  if (k == 0) return CheckResult::fail("no agent positions");
  if (k == 1) return CheckResult::pass();

  std::sort(positions.begin(), positions.end());
  if (std::adjacent_find(positions.begin(), positions.end()) != positions.end()) {
    std::ostringstream why;
    why << "two agents share node "
        << *std::adjacent_find(positions.begin(), positions.end());
    return CheckResult::fail(why.str());
  }

  const std::size_t floor_gap = node_count / k;
  const std::size_t ceil_gap = floor_gap + (node_count % k == 0 ? 0 : 1);
  const std::size_t expected_ceil = node_count % k;

  std::size_t ceil_count = 0;
  for (const std::size_t gap : ring_gaps(positions, node_count)) {
    if (gap == ceil_gap && ceil_gap != floor_gap) {
      ++ceil_count;
    } else if (gap != floor_gap) {
      std::ostringstream why;
      why << "gap " << gap << " is neither ⌊n/k⌋=" << floor_gap
          << " nor ⌈n/k⌉=" << ceil_gap;
      return CheckResult::fail(why.str());
    }
  }
  if (ceil_gap != floor_gap && ceil_count != expected_ceil) {
    std::ostringstream why;
    why << "found " << ceil_count << " gaps of ⌈n/k⌉, expected " << expected_ceil;
    return CheckResult::fail(why.str());
  }
  return CheckResult::pass();
}

namespace {

CheckResult check_queues_empty(const Simulator& sim) {
  for (NodeId node = 0; node < sim.node_count(); ++node) {
    if (sim.queue_length(node) != 0) {
      std::ostringstream why;
      why << "link queue into node " << node << " still holds "
          << sim.queue_length(node) << " agent(s)";
      return CheckResult::fail(why.str());
    }
  }
  return CheckResult::pass();
}

CheckResult check_all_status(const Simulator& sim, AgentStatus wanted) {
  for (AgentId id = 0; id < sim.agent_count(); ++id) {
    // Crash-stop corpses (sim/fault.h) are exempt: a goal is judged over
    // the agents that can still act — a dead agent can neither halt nor
    // suspend, and blaming it would make every crashed run "fail" for the
    // wrong reason. What a corpse *blocks* (occupied queues, broken
    // geometry) is still reported by the other checks.
    if (sim.status(id) == AgentStatus::Crashed) continue;
    if (sim.status(id) != wanted) {
      std::ostringstream why;
      why << "agent " << id << " is " << to_string(sim.status(id)) << ", expected "
          << to_string(wanted);
      return CheckResult::fail(why.str());
    }
  }
  return CheckResult::pass();
}

/// Number of agents not dead by a crash-stop fault.
std::size_t live_agent_count(const Simulator& sim) {
  std::size_t live = 0;
  for (AgentId id = 0; id < sim.agent_count(); ++id) {
    if (sim.status(id) != AgentStatus::Crashed) ++live;
  }
  return live;
}

/// Nodes of all *live* staying agents, sorted — the position multiset every
/// geometric goal (uniformity, gathering groups, dispersion) is judged
/// over. Unlike ExecutionState::staying_nodes() this excludes crashed
/// corpses: a corpse occupies its node physically but is not a deployed
/// agent. On fault-free runs the two are identical.
std::vector<NodeId> live_staying_nodes(const Simulator& sim) {
  std::vector<NodeId> nodes;
  nodes.reserve(sim.agent_count());
  for (AgentId id = 0; id < sim.agent_count(); ++id) {
    switch (sim.status(id)) {
      case AgentStatus::Staying:
      case AgentStatus::Waiting:
      case AgentStatus::Suspended:
      case AgentStatus::Halted:
        nodes.push_back(sim.agent_node(id));
        break;
      case AgentStatus::InTransit:
      case AgentStatus::Crashed:
        break;
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace

CheckResult UniformDeploymentOracle::check_goal(const Simulator& sim) const {
  if (require_termination_) {
    // Definition 1: halted agents, drained links, uniform positions.
    if (auto r = check_all_status(sim, AgentStatus::Halted); !r) return r;
    if (auto r = check_queues_empty(sim); !r) return r;
    return check_positions_uniform(live_staying_nodes(sim), sim.node_count());
  }
  // Definition 2: suspended agents, drained links and mailboxes, uniform
  // positions.
  if (auto r = check_all_status(sim, AgentStatus::Suspended); !r) return r;
  if (auto r = check_queues_empty(sim); !r) return r;
  const Snapshot snap = sim.snapshot();
  for (const AgentSnap& agent : snap.agents) {
    if (agent.status == AgentStatus::Crashed) continue;  // frozen mail
    if (agent.mailbox_size != 0) {
      std::ostringstream why;
      why << "agent " << agent.id << " has " << agent.mailbox_size
          << " undelivered message(s); Definition 2 requires m_i = ∅";
      return CheckResult::fail(why.str());
    }
  }
  return check_positions_uniform(live_staying_nodes(sim), sim.node_count());
}

CheckResult check_uniform_deployment_with_termination(const Simulator& sim) {
  return UniformDeploymentOracle(true).check_goal(sim);
}

CheckResult check_uniform_deployment_without_termination(const Simulator& sim) {
  return UniformDeploymentOracle(false).check_goal(sim);
}

namespace {

/// One queue member's local validity: InTransit status and a destination
/// matching the queue it sits in. Shared verbatim by the full and
/// incremental checkers so the two modes cannot drift apart in wording.
CheckResult check_queue_member(const Simulator& sim, AgentId id, NodeId node) {
  if (sim.status(id) != AgentStatus::InTransit &&
      sim.status(id) != AgentStatus::Crashed) {
    // A crash-stop corpse legitimately freezes inside the queue it was
    // transiting (destination still must match below); every live member
    // must be InTransit exactly as before.
    std::ostringstream why;
    why << "agent " << id << " is in queue to node " << node << " but has status "
        << to_string(sim.status(id));
    return CheckResult::fail(why.str());
  }
  if (sim.agent_node(id) != node) {
    std::ostringstream why;
    why << "agent " << id << " queue/destination mismatch";
    return CheckResult::fail(why.str());
  }
  return CheckResult::pass();
}

/// One agent's status/queue-occurrence consistency given how many queues
/// hold it. Shared by both checker modes.
CheckResult check_occurrences(const Simulator& sim, AgentId id,
                              std::size_t occurrences) {
  if (sim.status(id) == AgentStatus::Crashed) {
    // A corpse froze either in its link queue (1 occurrence) or in a
    // staying set (0); more than one queue is corruption as always.
    if (occurrences > 1) {
      std::ostringstream why;
      why << "crashed agent " << id << " appears in " << occurrences
          << " queues";
      return CheckResult::fail(why.str());
    }
    return CheckResult::pass();
  }
  const bool in_transit = sim.status(id) == AgentStatus::InTransit;
  if (in_transit && occurrences != 1) {
    std::ostringstream why;
    why << "in-transit agent " << id << " appears in " << occurrences
        << " queues";
    return CheckResult::fail(why.str());
  }
  if (!in_transit && occurrences != 0) {
    std::ostringstream why;
    why << "staying agent " << id << " also appears in a link queue";
    return CheckResult::fail(why.str());
  }
  return CheckResult::pass();
}

CheckResult check_token_monotonicity(const Simulator& sim,
                                     std::size_t min_expected_tokens) {
  // Token monotonicity: tokens are indelible, so the total may only grow,
  // and in this paper's algorithms it is bounded by the number of agents.
  const std::size_t total_tokens = sim.total_tokens();
  if (total_tokens < min_expected_tokens) {
    std::ostringstream why;
    why << "token count decreased: " << total_tokens << " < "
        << min_expected_tokens;
    return CheckResult::fail(why.str());
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_model_invariants(const Simulator& sim,
                                   std::size_t min_expected_tokens) {
  if (auto r = check_token_monotonicity(sim, min_expected_tokens); !r) return r;

  // Every agent is either in exactly one link queue (in transit) or staying;
  // queue members must have InTransit status and match their queue's node.
  std::vector<std::size_t> seen_in_queue(sim.agent_count(), 0);
  for (NodeId node = 0; node < sim.node_count(); ++node) {
    for (const AgentId id : sim.link_queue(node)) {
      ++seen_in_queue.at(id);
      if (auto r = check_queue_member(sim, id, node); !r) return r;
    }
  }
  for (AgentId id = 0; id < sim.agent_count(); ++id) {
    if (auto r = check_occurrences(sim, id, seen_in_queue[id]); !r) return r;
  }
  return CheckResult::pass();
}

CheckResult IncrementalInvariantChecker::reset(const ExecutionState& sim,
                                               std::size_t min_expected_tokens) {
  rebuild_shadow(sim);
  actions_since_full_ = 0;
  full_checks_ = 0;
  return check_model_invariants(sim, min_expected_tokens);
}

void IncrementalInvariantChecker::rebuild_shadow(const ExecutionState& sim) {
  in_queue_count_.assign(sim.agent_count(), 0);
  touched_mark_.assign(sim.agent_count(), 0);
  touched_.clear();
  // Shrinking keeps the surviving nodes' buffers; growing default-constructs
  // the tail — same pooled-arena shape as the ExecutionState itself.
  queue_shadow_.resize(sim.node_count());
  for (NodeId node = 0; node < sim.node_count(); ++node) {
    auto& shadow = queue_shadow_[node];
    shadow.clear();
    for (const AgentId id : sim.link_queue(node)) {
      shadow.push_back(id);
      ++in_queue_count_[id];
    }
  }
}

void IncrementalInvariantChecker::touch(AgentId id) {
  if (touched_mark_[id] != 0) return;
  touched_mark_[id] = 1;
  touched_.push_back(id);
}

CheckResult IncrementalInvariantChecker::check_after_action(
    const ExecutionState& sim, std::size_t min_expected_tokens) {
  if (in_queue_count_.size() != sim.agent_count() ||
      queue_shadow_.size() != sim.node_count()) {
    // Misuse guard: this state was never reset() onto — adopt it with a
    // full validation instead of diffing against a foreign shadow.
    rebuild_shadow(sim);
    actions_since_full_ = 0;
    return check_model_invariants(sim, min_expected_tokens);
  }

  // total_tokens() is a maintained counter, so the global token check stays
  // exact and O(1) even in incremental mode.
  if (auto r = check_token_monotonicity(sim, min_expected_tokens); !r) return r;

  // Diff the dirty queues against the shadow: membership counts update for
  // departed and (re)present members, and each current member is validated
  // exactly as the full checker would.
  for (const AgentId id : touched_) touched_mark_[id] = 0;
  touched_.clear();
  const AgentId actor = sim.last_acting_agent();
  if (actor != ExecutionState::kNoAgentActing) touch(actor);
  CheckResult member_verdict = CheckResult::pass();
  for (const NodeId node : sim.last_action_nodes()) {
    auto& shadow = queue_shadow_[node];
    for (const AgentId id : shadow) {
      --in_queue_count_[id];
      touch(id);
    }
    shadow.clear();
    for (const AgentId id : sim.link_queue(node)) {
      shadow.push_back(id);
      ++in_queue_count_[id];
      touch(id);
      if (member_verdict.ok) {
        member_verdict = check_queue_member(sim, id, node);
      }
    }
  }
  // Counts must be consistent before returning a member failure, or a later
  // check_after_action would diff against stale state; hence the deferred
  // return.
  if (!member_verdict.ok) return member_verdict;

  // Ascending agent order mirrors the full checker's occurrence sweep.
  std::sort(touched_.begin(), touched_.end());
  for (const AgentId id : touched_) {
    if (auto r = check_occurrences(sim, id, in_queue_count_[id]); !r) return r;
  }

  // Periodic safety net: a full re-walk catches any corruption outside the
  // footprint (which no *legal* action can produce).
  if (options_.full_check_every != 0 &&
      ++actions_since_full_ >= options_.full_check_every) {
    actions_since_full_ = 0;
    ++full_checks_;
    return check_model_invariants(sim, min_expected_tokens);
  }
  return CheckResult::pass();
}

CheckResult check_gathered(const Simulator& sim) {
  const std::vector<NodeId> nodes = live_staying_nodes(sim);
  if (nodes.size() != live_agent_count(sim)) {
    return CheckResult::fail("not all agents are staying");
  }
  std::vector<NodeId> distinct = nodes;
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  if (distinct.size() > 1) {
    std::ostringstream why;
    why << "agents are spread over " << distinct.size()
        << " distinct nodes; expected one";
    return CheckResult::fail(why.str());
  }
  return CheckResult::pass();
}

CheckResult check_partial_gathering(const Simulator& sim, std::size_t g) {
  if (auto r = check_all_status(sim, AgentStatus::Halted); !r) return r;
  if (auto r = check_queues_empty(sim); !r) return r;
  if (g <= 1) return CheckResult::pass();
  std::vector<NodeId> nodes = live_staying_nodes(sim);
  for (std::size_t i = 0; i < nodes.size();) {
    std::size_t j = i;
    while (j < nodes.size() && nodes[j] == nodes[i]) ++j;
    if (j - i < g) {
      std::ostringstream why;
      why << "node " << nodes[i] << " hosts " << (j - i)
          << " agent(s); g-partial gathering requires at least " << g;
      return CheckResult::fail(why.str());
    }
    i = j;
  }
  return CheckResult::pass();
}

CheckResult check_dispersed(const Simulator& sim) {
  if (auto r = check_all_status(sim, AgentStatus::Halted); !r) return r;
  if (auto r = check_queues_empty(sim); !r) return r;
  std::vector<NodeId> nodes = live_staying_nodes(sim);
  for (std::size_t i = 0; i < nodes.size();) {
    std::size_t j = i;
    while (j < nodes.size() && nodes[j] == nodes[i]) ++j;
    if (j - i > 1) {
      std::ostringstream why;
      why << "node " << nodes[i] << " hosts " << (j - i)
          << " settled agents; dispersion requires exactly one";
      return CheckResult::fail(why.str());
    }
    i = j;
  }
  return CheckResult::pass();
}

CheckResult GoalOracle::check_action(
    const Simulator& sim, std::size_t min_expected_tokens,
    IncrementalInvariantChecker* incremental) const {
  return incremental != nullptr
             ? incremental->check_after_action(sim, min_expected_tokens)
             : check_model_invariants(sim, min_expected_tokens);
}

}  // namespace udring::sim
