#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace udring::sim {

// ---- RoundRobinScheduler ----------------------------------------------------

// pick() bodies live inline in scheduler.h (the batched draw must inline
// them); only the cold per-run machinery stays here.

void RoundRobinScheduler::reset(std::size_t agent_count) {
  agent_count_ = agent_count;
  cursor_ = 0;
}

// ---- RandomScheduler --------------------------------------------------------

void RandomScheduler::reset(std::size_t /*agent_count*/) { rng_ = Rng(seed_); }

// ---- SynchronousScheduler ---------------------------------------------------

void SynchronousScheduler::reset(std::size_t agent_count) {
  acted_round_.assign(agent_count, 0);
  rounds_ = 0;
}

// ---- PriorityScheduler ------------------------------------------------------

PriorityScheduler::PriorityScheduler(std::vector<AgentId> order)
    : descending_default_(false), order_(std::move(order)) {}

void PriorityScheduler::reset(std::size_t agent_count) {
  if (descending_default_) {
    // Canonical adversary: the highest id runs first, agent 0 is starved.
    // Derived from agent_count here so one object is reusable across runs
    // of different sizes; matches the explicit order {k-1, …, 0}.
    rank_.assign(agent_count, 0);
    for (AgentId id = 0; id < agent_count; ++id) {
      rank_[id] = agent_count - 1 - id;
    }
    return;
  }
  rank_.assign(agent_count, agent_count + order_.size());
  std::size_t next_rank = 0;
  for (const AgentId id : order_) {
    if (id < agent_count) rank_[id] = next_rank++;
  }
  // Agents not listed keep a stable id-ordered tail.
  for (AgentId id = 0; id < agent_count; ++id) {
    if (rank_[id] == agent_count + order_.size()) rank_[id] = order_.size() + id;
  }
}

// ---- BurstScheduler ---------------------------------------------------------

void BurstScheduler::reset(std::size_t /*agent_count*/) {
  // Re-seed the RNG too: a reused scheduler whose RNG carried state across
  // runs would make pooled reruns diverge from fresh-object runs (the
  // correlated-rerun bug test_pooling.cpp pins).
  rng_ = Rng(seed_);
  current_ = kNoAgent;
}

// ---- factory ----------------------------------------------------------------

std::string_view to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::RoundRobin: return "round-robin";
    case SchedulerKind::Random: return "random";
    case SchedulerKind::Synchronous: return "synchronous";
    case SchedulerKind::Priority: return "priority";
    case SchedulerKind::Burst: return "burst";
  }
  return "?";
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::RoundRobin, SchedulerKind::Random,
      SchedulerKind::Synchronous, SchedulerKind::Priority,
      SchedulerKind::Burst,
  };
  return kinds;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed,
                                          std::size_t agent_count) {
  // Every kind now sizes itself from reset(agent_count); the parameter is
  // kept so existing call sites (and future kinds that need it at
  // construction) stay source-compatible.
  (void)agent_count;
  switch (kind) {
    case SchedulerKind::RoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::Random:
      return std::make_unique<RandomScheduler>(seed);
    case SchedulerKind::Synchronous:
      return std::make_unique<SynchronousScheduler>();
    case SchedulerKind::Priority:
      // Default mode: descending ids, derived from reset()'s agent count —
      // the pooled form works for any run size.
      return std::make_unique<PriorityScheduler>();
    case SchedulerKind::Burst:
      return std::make_unique<BurstScheduler>(seed);
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

}  // namespace udring::sim
