#include "sim/execution_state.h"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/rng.h"

namespace udring::sim {

ExecutionState::ExecutionState(std::size_t node_count, std::vector<NodeId> homes,
                               const ProgramFactory& factory, SimOptions options)
    : ExecutionState(std::make_shared<const Instance>(
          Topology::ring(node_count), std::move(homes), factory, options)) {}

ExecutionState::ExecutionState(std::shared_ptr<const Instance> instance)
    : owned_instance_(std::move(instance)) {
  if (!owned_instance_) {
    throw std::invalid_argument("ExecutionState: null instance");
  }
  reset(*owned_instance_);
}

void ExecutionState::reset(const Instance& instance) {
  // Release the previously-owned instance only if it is not the one being
  // reset onto (re-running a legacy-constructed simulator stays valid).
  if (owned_instance_.get() != &instance) owned_instance_.reset();
  instance_ = &instance;
  topo_ = &instance.topology();
  options_ = instance.options();

  const std::size_t n = instance.node_count();
  const std::size_t k = instance.agent_count();

  log_.set_enabled(options_.record_events);
  log_.clear();
  metrics_.reset(k);
  action_counter_ = 0;
  total_tokens_ = 0;
  acting_agent_ = kNoAgentActing;
  last_action_node_count_ = 0;
  last_acting_agent_ = kNoAgentActing;

  // Live fault state, derived once from the (already normalized and
  // validated) plan. The hot path then only ever tests has_fault_events_.
  const FaultPlan& plan = options_.faults;
  has_fault_events_ = plan.has_events();
  crash_cursor_ = 0;
  rewire_cursor_ = 0;
  pending_rewire_ = false;
  live_stride_ = 0;
  rewires_applied_ = 0;
  rewire_candidates_ =
      plan.has_rewires() ? sim::rewire_candidate_count(n) : 0;
  drops_remaining_ = plan.drop_count;
  dups_remaining_ = plan.dup_count;

  tokens_.assign(n, 0);
  queue_arrival_ts_.assign(n, 0);
  // Shrinking keeps the front queues' buffers; growing default-constructs
  // the new tail. Either way existing capacity survives.
  queues_.resize(n);
  staying_.resize(n);
  for (auto& queue : queues_) queue.clear();
  for (auto& set : staying_) set.clear();
  // Hot-path allocation hygiene: queues and staying sets can never exceed k
  // entries; a small up-front reservation makes steady-state actions
  // allocation-free on typical (k ≪ n) instances. Reserving is a no-op once
  // the pooled buffers have grown to it.
  const std::size_t reserve_per_node = std::min<std::size_t>(k, 8);
  for (auto& queue : queues_) queue.reserve(reserve_per_node);
  for (auto& set : staying_) set.reserve(reserve_per_node);

  enabled_.clear();
  enabled_.reserve(k);
  enabled_pos_.assign(k, kNotEnabled);

  agents_.resize(k);
  for (AgentId id = 0; id < k; ++id) {
    AgentCell& c = agents_[id];
    // Destroy the previous run's coroutine before its program (the frame
    // references the program object), then build this run's pair.
    c.behavior = Behavior();
    c.program = instance.factory()(id);
    if (!c.program) {
      throw std::invalid_argument("ExecutionState: factory returned null program");
    }
    if (c.ctx) {
      c.ctx->sim_ = this;
      c.ctx->self_ = id;
      c.ctx->inbox_.clear();
    } else {
      c.ctx = std::make_unique<AgentContext>(*this, id);
    }
    c.behavior = c.program->run(*c.ctx);
    c.status = AgentStatus::InTransit;
    c.node = instance.homes()[id];  // destination: the home node's buffer
    c.in_staying_set = false;
    c.mailbox.clear();
    c.wake_ts = 0;
    c.last_ts = 0;
    queues_[c.node].push_back(id);
  }
  for (AgentId id = 0; id < k; ++id) {
    refresh_enabled(id);
  }
  // Faults due at action counter 0: dead-on-arrival crashes, a rewiring
  // scheduled before the first action.
  if (has_fault_events_) apply_due_faults();
}

template <bool Logging, bool Fault>
RunResult ExecutionState::run_impl(Scheduler& scheduler) {
  RunResult result;
  while (!enabled_.empty()) {
    if (action_counter_ >= options_.max_actions) {
      result.outcome = RunResult::Outcome::ActionLimit;
      result.actions = action_counter_;
      return result;
    }
    if (has_fault_events_ && pending_rewire_) {
      // A scheduled rewiring resolves at the choice point, through the same
      // choice stream agent picks use — the recording/replaying schedulers
      // intercept pick_index, so the rewiring choice is part of the trace.
      apply_rewire(scheduler.pick_index(rewire_candidates_));
      continue;
    }
    execute_action_impl<Logging, Fault>(scheduler.pick(enabled_));
  }
  result.outcome = RunResult::Outcome::Quiescent;
  result.actions = action_counter_;
  return result;
}

RunResult ExecutionState::run(Scheduler& scheduler) {
  scheduler.attach(*this);
  scheduler.reset(agents_.size());
  // Mode dispatch once per run; the loop then executes with both mode
  // branches resolved at compile time.
  if (log_.enabled()) {
    return options_.fault_non_fifo_links ? run_impl<true, true>(scheduler)
                                         : run_impl<true, false>(scheduler);
  }
  return options_.fault_non_fifo_links ? run_impl<false, true>(scheduler)
                                       : run_impl<false, false>(scheduler);
}

template <bool Logging, bool Fault>
std::optional<RunResult> ExecutionState::run_chunk_impl(Scheduler& scheduler,
                                                        SchedulerKind kind,
                                                        std::size_t budget) {
  // Same termination checks in the same order as run_impl — quiescence
  // before the action limit — so a budget-sliced run retires with the exact
  // RunResult a monolithic run would.
  while (budget-- > 0) {
    if (enabled_.empty()) {
      return RunResult{RunResult::Outcome::Quiescent, action_counter_};
    }
    if (action_counter_ >= options_.max_actions) {
      return RunResult{RunResult::Outcome::ActionLimit, action_counter_};
    }
    if (has_fault_events_ && pending_rewire_) {
      // Resolving a rewiring charges one budget unit like an action would;
      // the action *sequence* is budget-independent either way (the chunk
      // boundary still carries no state), which is all the byte-equality
      // contract needs.
      apply_rewire(scheduler.pick_index(rewire_candidates_));
      continue;
    }
    execute_action_impl<Logging, Fault>(
        Scheduler::draw_batch(scheduler, kind, enabled_));
  }
  return std::nullopt;
}

std::optional<RunResult> ExecutionState::run_chunk(Scheduler& scheduler,
                                                   SchedulerKind kind,
                                                   std::size_t budget) {
  // Mode dispatch once per chunk (cf. run()'s once per run).
  if (log_.enabled()) {
    return options_.fault_non_fifo_links
               ? run_chunk_impl<true, true>(scheduler, kind, budget)
               : run_chunk_impl<true, false>(scheduler, kind, budget);
  }
  return options_.fault_non_fifo_links
             ? run_chunk_impl<false, true>(scheduler, kind, budget)
             : run_chunk_impl<false, false>(scheduler, kind, budget);
}

bool ExecutionState::step(Scheduler& scheduler) {
  if (enabled_.empty()) return false;
  if (has_fault_events_ && pending_rewire_) {
    apply_rewire(scheduler.pick_index(rewire_candidates_));
  }
  execute_action(scheduler.pick(enabled_));
  return true;
}

bool ExecutionState::step_agent(AgentId id) {
  if (id >= agents_.size() || enabled_pos_.at(id) == kNotEnabled) return false;
  execute_action(id);
  return true;
}

bool ExecutionState::all_halted() const noexcept {
  return std::all_of(agents_.begin(), agents_.end(), [](const AgentCell& c) {
    return c.status == AgentStatus::Halted;
  });
}

bool ExecutionState::all_suspended() const noexcept {
  return std::all_of(agents_.begin(), agents_.end(), [](const AgentCell& c) {
    return c.status == AgentStatus::Suspended;
  });
}

std::vector<NodeId> ExecutionState::staying_nodes() const {
  std::vector<NodeId> nodes;
  for (const AgentCell& c : agents_) {
    if (c.in_staying_set) nodes.push_back(c.node);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

Snapshot ExecutionState::snapshot() const {
  Snapshot snap;
  snap.node_count = tokens_.size();
  snap.tokens = tokens_;
  snap.agents.reserve(agents_.size());
  for (AgentId id = 0; id < agents_.size(); ++id) {
    const AgentCell& c = agents_[id];
    AgentSnap a;
    a.id = id;
    a.status = c.status;
    a.node = c.node;
    a.moves = metrics_.agent(id).moves;
    a.phase = metrics_.agent(id).phase;
    a.mailbox_size = c.mailbox.size();
    a.state_hash = c.program->state_hash();
    snap.agents.push_back(a);
  }
  snap.queues.reserve(queues_.size());
  for (const auto& queue : queues_) {
    snap.queues.emplace_back(queue.begin(), queue.end());
  }
  return snap;
}

namespace {

template <class>
inline constexpr bool kUnhandledMessageAlternative = false;

/// Folds one undelivered message into a configuration digest. Every payload
/// field participates: M is part of the configuration, and two states that
/// differ only in a pending message must never dedup together. The visitor
/// is deliberately exhaustive — adding a Message alternative without
/// folding its payload would silently punch a soundness hole in the model
/// checker's visited-state key, so it is a compile error instead.
void fold_message(std::uint64_t& state, const Message& message) {
  fold64(state, message.index());
  std::visit(
      [&state](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, BaseInfoMessage>) {
          fold64(state, payload.t_base);
          fold64(state, payload.seg_agents);
          fold64(state, payload.ceil_gaps);
          fold64(state, payload.floor_gap);
        } else if constexpr (std::is_same_v<T, EstimateMessage>) {
          fold64(state, payload.n_est);
          fold64(state, payload.k_est);
          fold64(state, payload.nodes_visited);
          fold64(state, payload.distance_seq.size());
          for (const std::size_t d : payload.distance_seq) fold64(state, d);
        } else if constexpr (std::is_same_v<T, TextMessage>) {
          fold64(state, payload.text.size());
          for (const char c : payload.text) {
            fold64(state,
                   static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
          }
        } else {
          static_assert(kUnhandledMessageAlternative<T>,
                        "config_digest: fold every Message payload");
        }
      },
      message);
}

}  // namespace

std::uint64_t ExecutionState::config_digest() const {
  std::uint64_t state = 0xc0f1Dd16e5700000ULL;  // "config-digest" domain
  fold64(state, tokens_.size());
  fold64(state, agents_.size());
  for (const std::size_t count : tokens_) fold64(state, count);  // T
  for (AgentId id = 0; id < agents_.size(); ++id) {              // S, M
    const AgentCell& c = agents_[id];
    fold64(state, static_cast<std::uint64_t>(c.status));
    fold64(state, c.node);
    // Phase and action count are behavioural under the non-FIFO fault
    // (should_be_enabled reads both); including them unconditionally keeps
    // one digest definition for every mode, and commuting schedules agree
    // on per-agent counts, so dedup effectiveness is unaffected.
    fold64(state, metrics_.agent(id).phase);
    fold64(state, metrics_.agent(id).actions);
    fold64(state, c.program->state_hash());
    fold64(state, c.mailbox.size());
    for (const Message& message : c.mailbox) fold_message(state, message);
  }
  for (const auto& queue : queues_) {  // Q (FIFO order is state)
    fold64(state, queue.size());
    for (const AgentId member : queue) fold64(state, member);
  }
  // P (staying membership) is fully determined by status + node above.
  // Live fault state (no-op for event-free plans, keeping legacy digests
  // byte-identical): what the adversary may still do is part of the
  // configuration, or mc dedup would merge states with different futures.
  fold_fault_state(state);
  return state;
}

void ExecutionState::fold_fault_state(std::uint64_t& state) const noexcept {
  if (!has_fault_events_) return;
  state ^= 0xfa17d16e57a7e000ULL;  // "fault-state" domain
  fold64(state, crash_cursor_);
  fold64(state, rewire_cursor_);
  fold64(state, pending_rewire_ ? 1 : 0);
  fold64(state, live_stride_);
  fold64(state, rewires_applied_);
  fold64(state, drops_remaining_);
  fold64(state, dups_remaining_);
}

std::uint64_t ExecutionState::agent_digest(AgentId id) const {
  // Same per-agent folds as config_digest() above (kept in lockstep: a field
  // added there without a fold here would let the symmetry quotient merge
  // states whose agents are NOT interchangeable), under a separate domain.
  std::uint64_t state = 0xa6e27d16e5700000ULL;  // "agent-digest" domain
  const AgentCell& c = agents_[id];
  fold64(state, static_cast<std::uint64_t>(c.status));
  fold64(state, c.node);
  fold64(state, metrics_.agent(id).phase);
  fold64(state, metrics_.agent(id).actions);
  fold64(state, c.program->state_hash());
  fold64(state, c.mailbox.size());
  for (const Message& message : c.mailbox) fold_message(state, message);
  return state;
}

// ---- fault events (sim/fault.h) ---------------------------------------------

void ExecutionState::apply_due_faults() {
  const FaultPlan& plan = options_.faults;
  // Crashes before rewire scheduling at the same action index (a rewiring
  // pending at index t resolves at the next choice point, so an agent
  // crashing at t is dead before the new cycle installs).
  while (crash_cursor_ < plan.crashes.size() &&
         plan.crashes[crash_cursor_].at_action <= action_counter_) {
    apply_crash(plan.crashes[crash_cursor_].agent);
    ++crash_cursor_;
  }
  while (rewire_cursor_ < plan.rewire_at.size() &&
         plan.rewire_at[rewire_cursor_] <= action_counter_) {
    pending_rewire_ = true;
    ++rewire_cursor_;
  }
}

void ExecutionState::apply_crash(AgentId id) {
  AgentCell& c = agents_[id];
  if (c.status == AgentStatus::Crashed) return;
  // Crash-stop: freeze in place. An in-transit corpse stays in its link
  // queue (under FIFO it blocks every follower forever — a legitimate
  // degradation the oracles report); a staying/parked corpse remains in
  // p_i. No other agent's enabledness changes: crashing only *removes*
  // this agent from the enabled set.
  c.status = AgentStatus::Crashed;
  refresh_enabled(id);
  if (log_.enabled()) {
    log_.record({action_counter_, EventKind::Halt, id, c.node, c.last_ts, 0});
  }
}

void ExecutionState::apply_rewire(std::size_t candidate_index) {
  if (!pending_rewire_) {
    throw std::logic_error("ExecutionState: no rewiring is pending");
  }
  const std::size_t stride =
      rewire_candidate_stride(tokens_.size(), candidate_index);
  // is_single_cycle_stride holds by construction (coprime stride); the
  // 1-interval-connectivity revalidation is the candidate enumeration
  // itself. Installing the new cycle changes where future moves lead and
  // nothing else — no queue, staying set, mailbox or status is touched, so
  // no agent's enabledness changes.
  live_stride_ = stride;
  pending_rewire_ = false;
  ++rewires_applied_;
}

// ---- action engine ----------------------------------------------------------

void ExecutionState::execute_action(AgentId id) {
  // Per-action mode dispatch for callers outside a mode-specialized loop
  // (step/step_agent/step_chosen): two predictable branches, then the same
  // single action body run_impl executes.
  if (log_.enabled()) {
    options_.fault_non_fifo_links ? execute_action_impl<true, true>(id)
                                  : execute_action_impl<true, false>(id);
  } else {
    options_.fault_non_fifo_links ? execute_action_impl<false, true>(id)
                                  : execute_action_impl<false, false>(id);
  }
}

template <bool Logging, bool Fault>
void ExecutionState::execute_action_impl(AgentId id) {
  AgentCell& c = agents_[id];
  ++action_counter_;
  // Footprint bookkeeping for incremental oracles: this action can only
  // touch the node it executes at (c.node — the arrival node when in
  // transit, the staying node otherwise) and, if it moves, the successor —
  // the conservative bound sim/footprint.h defines, narrowed post hoc to
  // the nodes actually touched.
  last_acting_agent_ = id;
  last_action_nodes_[0] = c.node;
  last_action_node_count_ = 1;
  // Compile-time: the (default-off) logging mode is a template parameter,
  // so the hot instantiation carries no record sites at all.
  constexpr bool logging = Logging;

  const bool arrival = (c.status == AgentStatus::InTransit);
  std::uint64_t ts = c.last_ts;
  if (arrival) {
    auto& queue = queues_[c.node];
    if (!queue.empty() && queue.front() == id) {
      queue.pop_front();
    } else if (Fault && queue.remove(id)) {
      // Fault injection: the agent jumped the queue (see SimOptions).
    } else {
      throw std::logic_error(
          "ExecutionState: scheduled a non-head in-transit agent");
    }
    ts = std::max(ts, queue_arrival_ts_[c.node]);
    if (!queue.empty()) refresh_enabled_impl<Fault>(queue.front());
  } else if (!c.mailbox.empty()) {
    ts = std::max(ts, c.wake_ts);
  }
  ts += 1;
  c.last_ts = ts;
  if (arrival) {
    queue_arrival_ts_[c.node] = ts;
    if constexpr (logging) {
      log_.record({action_counter_, EventKind::Arrive, id, c.node, ts, 0});
    }
  }

  // Receive all pending messages (step 2 of the atomic action). Swapping
  // (not move-assigning) ping-pongs the two buffers, so their capacities are
  // recycled and steady-state delivery never heap-allocates.
  std::swap(c.ctx->inbox_, c.mailbox);
  c.mailbox.clear();
  c.wake_ts = 0;

  // Local computation + broadcasts + token drops (steps 3–5).
  acting_agent_ = id;
  const Request request = c.behavior.resume();
  acting_agent_ = kNoAgentActing;
  c.ctx->inbox_.clear();

  AgentMetrics& m = metrics_.agent(id);
  ++m.actions;
  m.causal_time = ts;
  m.peak_memory_bits = std::max(m.peak_memory_bits, c.program->memory_bits());

  switch (request) {
    case Request::Move: {
      if (c.in_staying_set) remove_from_staying(id);
      if constexpr (logging) {
        log_.record({action_counter_, EventKind::Depart, id, c.node, ts, 0});
      }
      const NodeId dest = live_next(c.node);
      c.status = AgentStatus::InTransit;
      c.node = dest;
      queues_[dest].push_back(id);
      if (dest != last_action_nodes_[0]) {
        last_action_nodes_[1] = dest;
        last_action_node_count_ = 2;
      }
      m.count_move();
      break;
    }
    case Request::Stay:
      c.status = AgentStatus::Staying;
      if (!c.in_staying_set) add_to_staying(id);
      if constexpr (logging) {
        log_.record({action_counter_, EventKind::StayPut, id, c.node, ts, 0});
      }
      break;
    case Request::WaitMessage:
      c.status = AgentStatus::Waiting;
      if (!c.in_staying_set) add_to_staying(id);
      if constexpr (logging) {
        log_.record({action_counter_, EventKind::EnterWait, id, c.node, ts, 0});
      }
      break;
    case Request::Suspend:
      c.status = AgentStatus::Suspended;
      if (!c.in_staying_set) add_to_staying(id);
      if constexpr (logging) {
        log_.record(
            {action_counter_, EventKind::EnterSuspend, id, c.node, ts, 0});
      }
      break;
    case Request::Done:
      c.status = AgentStatus::Halted;
      if (!c.in_staying_set) add_to_staying(id);
      if constexpr (logging) {
        log_.record({action_counter_, EventKind::Halt, id, c.node, ts, 0});
      }
      break;
    case Request::None:
      throw std::logic_error("ExecutionState: agent yielded no request");
  }

  refresh_enabled_impl<Fault>(id);
  if constexpr (Fault) {
    // Overtaking eligibility depends on whether queue *predecessors* have
    // acted, which any action can change; the cheap full sweep is fine on
    // this test-only path.
    for (AgentId other = 0; other < agents_.size(); ++other) {
      refresh_enabled_impl<Fault>(other);
    }
  }
  // Event faults keyed to the new action count fire now — after the
  // action's own bookkeeping, before the next choice point.
  if (has_fault_events_) apply_due_faults();
}

bool ExecutionState::should_be_enabled(AgentId id) const {
  return options_.fault_non_fifo_links ? should_be_enabled_impl<true>(id)
                                       : should_be_enabled_impl<false>(id);
}

template <bool Fault>
bool ExecutionState::should_be_enabled_impl(AgentId id) const {
  const AgentCell& c = cell(id);
  switch (c.status) {
    case AgentStatus::InTransit: {
      const auto& queue = queues_[c.node];
      if (queue.empty()) return false;
      if (queue.front() == id) return true;
      if constexpr (!Fault) return false;
      if (!options_.fault_non_fifo_links) return false;  // unreachable guard
      // Fault injection: enabled from any position, but never overtaking an
      // agent that has not yet had its first action (the initial occupant of
      // its home buffer) — that would break the home-node-first rule, which
      // is not the guarantee under test — and only within the configured
      // phase window.
      if (metrics_.agent(id).phase < options_.fault_non_fifo_min_phase) {
        return false;
      }
      // Generalized window (FaultPlan): overtaking closes again once the
      // action counter leaves [0, until). 0 = open-ended (legacy).
      if (options_.faults.non_fifo_until_action != 0 &&
          action_counter_ >= options_.faults.non_fifo_until_action) {
        return false;
      }
      for (const AgentId member : queue) {
        if (member == id) return true;
        if (metrics_.agent(member).actions == 0 ||
            metrics_.agent(member).phase < options_.fault_non_fifo_min_phase) {
          return false;
        }
      }
      return false;
    }
    case AgentStatus::Staying:
      return true;
    case AgentStatus::Waiting:
    case AgentStatus::Suspended:
      return !c.mailbox.empty();
    case AgentStatus::Halted:
    case AgentStatus::Crashed:
      return false;
  }
  return false;
}

void ExecutionState::refresh_enabled(AgentId id) {
  options_.fault_non_fifo_links ? refresh_enabled_impl<true>(id)
                                : refresh_enabled_impl<false>(id);
}

template <bool Fault>
void ExecutionState::refresh_enabled_impl(AgentId id) {
  const bool want = should_be_enabled_impl<Fault>(id);
  const std::size_t pos = enabled_pos_[id];
  if (want && pos == kNotEnabled) {
    enabled_pos_[id] = enabled_.size();
    enabled_.push_back(id);
  } else if (!want && pos != kNotEnabled) {
    const AgentId moved = enabled_.back();
    enabled_[pos] = moved;
    enabled_pos_[moved] = pos;
    enabled_.pop_back();
    enabled_pos_[id] = kNotEnabled;
  }
}

void ExecutionState::add_to_staying(AgentId id) {
  AgentCell& c = cell(id);
  staying_[c.node].push_back(id);
  c.in_staying_set = true;
}

void ExecutionState::remove_from_staying(AgentId id) {
  AgentCell& c = cell(id);
  auto& set = staying_[c.node];
  set.erase(std::remove(set.begin(), set.end(), id), set.end());
  c.in_staying_set = false;
}

// ---- AgentContext hooks ------------------------------------------------------

std::size_t ExecutionState::tokens_at_agent(AgentId id) const {
  return tokens_[cell(id).node];
}

std::size_t ExecutionState::others_staying_at_agent(AgentId id) const {
  const AgentCell& c = cell(id);
  const std::size_t here = staying_[c.node].size();
  return c.in_staying_set ? here - 1 : here;
}

void ExecutionState::agent_release_token(AgentId id) {
  const AgentCell& c = cell(id);
  ++tokens_[c.node];
  ++total_tokens_;
  if (log_.enabled()) {
    log_.record({action_counter_, EventKind::TokenDrop, id, c.node, c.last_ts, 0});
  }
}

void ExecutionState::agent_broadcast(AgentId id, Message message) {
  const AgentCell& sender = cell(id);
  const bool logging = log_.enabled();
  // Link faults (sim/fault.h): bounded broadcast drops and duplications.
  // Both budgets tick only on broadcasts with at least one deliverable
  // receiver — an unobservable drop must not burn the budget, or commuting
  // schedules would disagree on the remaining count for no semantic reason.
  std::size_t copies = 1;
  if (has_fault_events_ && (drops_remaining_ > 0 || dups_remaining_ > 0)) {
    bool deliverable = false;
    for (const AgentId other : staying_[sender.node]) {
      if (other == id) continue;
      const AgentStatus s = cell(other).status;
      if (s != AgentStatus::Halted && s != AgentStatus::Crashed) {
        deliverable = true;
        break;
      }
    }
    if (deliverable) {
      if (drops_remaining_ > 0 &&
          action_counter_ >= options_.faults.drop_from_action) {
        --drops_remaining_;
        if (logging) {
          log_.record({action_counter_, EventKind::Broadcast, id, sender.node,
                       sender.last_ts, 0});
        }
        return;  // the whole broadcast vanishes
      }
      if (dups_remaining_ > 0 &&
          action_counter_ >= options_.faults.dup_from_action) {
        --dups_remaining_;
        copies = 2;  // at-least-once delivery: every receiver sees it twice
      }
    }
  }
  std::size_t receivers = 0;
  for (const AgentId other : staying_[sender.node]) {
    if (other == id) continue;
    AgentCell& rc = cell(other);
    if (rc.status == AgentStatus::Halted ||
        rc.status == AgentStatus::Crashed) {
      continue;  // Definition 1 halts; crash-stop corpses receive nothing
    }
    for (std::size_t copy = 0; copy < copies; ++copy) {
      rc.mailbox.push_back(message);
    }
    rc.wake_ts = std::max(rc.wake_ts, sender.last_ts);
    const bool was_enabled = enabled_pos_[other] != kNotEnabled;
    refresh_enabled(other);
    if (logging && !was_enabled && enabled_pos_[other] != kNotEnabled) {
      log_.record({action_counter_, EventKind::Wake, other, rc.node, sender.last_ts, id});
    }
    ++receivers;
  }
  if (logging) {
    log_.record({action_counter_, EventKind::Broadcast, id, sender.node,
                 sender.last_ts, receivers});
  }
}

void ExecutionState::agent_set_phase(AgentId id, std::size_t phase) {
  metrics_.agent(id).phase = phase;
}

// ---- batching ---------------------------------------------------------------

std::size_t run_batch(
    ExecutionState& state, const std::vector<const Instance*>& instances,
    const std::function<Scheduler&(std::size_t)>& scheduler_for,
    const std::function<void(std::size_t, const ExecutionState&,
                             const RunResult&)>& consume) {
  std::size_t executed = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (instances[i] == nullptr) {
      throw std::invalid_argument("run_batch: null instance");
    }
    state.reset(*instances[i]);
    const RunResult result = state.run(scheduler_for(i));
    if (consume) consume(i, state, result);
    ++executed;
  }
  return executed;
}

}  // namespace udring::sim
