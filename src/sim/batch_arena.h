// udring/sim/batch_arena.h
//
// BatchArena — the lane-batched execution engine for small-instance
// campaigns.
//
// One arena owns B *lanes*. Each lane is a pooled ExecutionState (the same
// allocation-reusing arena a campaign worker has always owned — now B of
// them) plus a row of hot per-lane control words kept in structure-of-arrays
// columns: liveness, the attached scheduler, its kind (for the devirtualized
// Scheduler::draw_batch), and the caller's ticket. The sweep loop walks the
// live lanes round-robin, advancing each by a bounded chunk of atomic
// actions per visit (ExecutionState::run_chunk — one scheduler draw per
// action, drawn from that lane's own scheduler), so B independent runs make
// progress in lockstep without any cross-lane synchronization.
//
// Retirement is per-lane: the moment a lane's run completes (quiescent or
// action limit), the retire callback consumes it and the feed callback
// refills just that lane from the scenario stream — no barrier waits for the
// other lanes. A campaign's tail therefore drains at lane granularity, not
// batch granularity.
//
// Determinism: lanes do not interact. A lane's action sequence depends only
// on its instance, its scheduler (reseeded per scenario by the caller) and
// the enabled-set evolution of its own state — exactly the inputs of the
// scalar ExecutionState::run path — so per-scenario results are
// byte-identical to the scalar engine at ANY lane count and chunk size, and
// the campaign layer's commutative folds make the aggregate digest identical
// too (tests/test_batch.cpp pins this).

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/execution_state.h"
#include "sim/scheduler.h"

namespace udring::sim {

class BatchArena {
 public:
  /// Refills `lane` with the next unit of work, calling load(lane, …), and
  /// returns true — or returns false when the stream is exhausted (the lane
  /// goes idle). A feed that throws is treated as a failed load: the
  /// exception propagates out of run() (the caller's feed should catch
  /// per-scenario build errors itself and account them before returning).
  using Feed = std::function<bool(std::size_t lane)>;

  /// Consumes a finished lane: `ticket` is the value passed to load(), and
  /// state(lane) still holds the final configuration.
  using Retire =
      std::function<void(std::size_t lane, std::uint64_t ticket,
                         const RunResult& result)>;

  /// Consumes a lane whose run threw (an algorithm bug surfacing through
  /// Behavior::resume, exactly what the scalar path catches around
  /// ExecutionState::run). The lane is refilled afterwards like a retired
  /// one.
  using OnError = std::function<void(std::size_t lane, std::uint64_t ticket,
                                     std::exception_ptr error)>;

  /// Actions one lane advances per sweep visit. Large enough to amortize the
  /// lane-switch (chunk dispatch, control-word reads) to noise, small enough
  /// that a finished lane is retired and refilled promptly.
  static constexpr std::size_t kChunkActions = 4096;

  explicit BatchArena(std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const noexcept { return states_.size(); }

  /// The lane's pooled simulation state (callers prepare/inspect through it;
  /// after retire it holds the finished configuration until the next load).
  [[nodiscard]] ExecutionState& state(std::size_t lane) {
    return *states_[lane];
  }

  /// Binds `lane` to a run: resets the lane state onto `instance` and
  /// attaches + resets `scheduler` (which the caller has already reseeded
  /// for this scenario — the same attach/reset/reseed sequence the scalar
  /// pooled path performs). `kind` selects the devirtualized draw;
  /// `scheduler` must be of that kind or a kind outside the enum (explore
  /// adversaries), for which draw_batch falls back to the virtual pick.
  void load(std::size_t lane, const Instance& instance, Scheduler& scheduler,
            SchedulerKind kind, std::uint64_t ticket);

  /// Fills every lane from `feed`, then sweeps until the stream and all
  /// lanes are drained. Every completed run is handed to `retire`; a run
  /// that throws is handed to `on_error` (pass nullptr to rethrow instead).
  void run(const Feed& feed, const Retire& retire, const OnError& on_error);

 private:
  std::vector<std::unique_ptr<ExecutionState>> states_;
  // Hot per-lane control words, one SoA column each (indexed by lane).
  std::vector<std::uint8_t> live_;
  std::vector<Scheduler*> scheduler_;
  std::vector<SchedulerKind> kind_;
  std::vector<std::uint64_t> ticket_;
};

}  // namespace udring::sim
