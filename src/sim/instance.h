// udring/sim/instance.h
//
// Instance — the *immutable* half of a run.
//
// A run is Instance × ExecutionState: the Instance holds everything that
// never changes while the execution advances (the topology, the initial
// home configuration, the program factory, and the resolved options), and
// an ExecutionState is the mutable arena that executes it. One Instance can
// be executed any number of times, concurrently, by different
// ExecutionStates — it is never written after construction — which is what
// makes pooled batch drivers (sim::run_batch, core::run_many,
// exp::run_campaign) safe and allocation-free in steady state.
//
// Lifetime contract: an ExecutionState holds a plain pointer to the
// Instance it was last reset() onto. The Instance must stay alive until the
// state is reset onto another one (or destroyed). The convenience Simulator
// constructor sidesteps the question by owning its Instance.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/agent.h"
#include "sim/fault.h"
#include "sim/topology.h"
#include "sim/types.h"

namespace udring::sim {

struct SimOptions {
  /// Record an Event for every action (tests/examples; off for sweeps).
  bool record_events = false;
  /// Hard stop after this many atomic actions; 0 = auto (generous multiple
  /// of k·n). Hitting the limit marks the run ActionLimit — a livelock or a
  /// broken algorithm, never a legitimate outcome for this paper's
  /// algorithms.
  std::size_t max_actions = 0;
  /// Structured fault schedule (crash-stop faults, link faults, dynamic-ring
  /// rewiring — see sim/fault.h). Empty (default) = the fault-free paper
  /// model. The Instance constructor normalizes the plan (sorting its event
  /// lists), folds the two DEPRECATED legacy fields below into it, and
  /// validates it against the instance's dimensions.
  FaultPlan faults;
  /// DEPRECATED — legacy alias for faults.non_fifo, kept so historical
  /// callers and recorded traces keep working unchanged; the Instance
  /// constructor merges it into `faults` and mirrors the resolved value
  /// back, so reading either field after construction sees the same truth.
  ///
  /// TEST-ONLY fault injection: weakens the FIFO link guarantee. When set,
  /// an in-transit agent may arrive from *any* queue position — overtaking
  /// agents ahead of it — as long as it does not pass an agent still in its
  /// initial transit (that restriction preserves the §2.1 home-node-first
  /// rule, which every algorithm legitimately relies on; the FIFO
  /// non-overtaking property is the only guarantee removed). The scheduler
  /// decides who jumps: all such agents join the enabled set. This models a
  /// substrate without FIFO links and exists so the schedule explorer can
  /// demonstrate that KnownKLogMemStrict's correctness — unlike the hardened
  /// default — leans on FIFO order (see known_k_logmem.h). Never set it in
  /// experiments that reproduce the paper's model.
  bool fault_non_fifo_links = false;
  /// DEPRECATED — legacy alias for faults.non_fifo_min_phase (see above).
  ///
  /// Narrows the fault window: overtaking is permitted only when the jumper
  /// and every agent it passes have reached this phase tag (metrics phase,
  /// see AgentContext::set_phase). Phases are how multi-phase algorithms
  /// announce their progress, so this seeds a non-FIFO bug into one phase
  /// without corrupting the phases before it — e.g. phase 1 targets
  /// Algorithm 3's deployment race while Algorithm 2's selection-phase
  /// geometry measurements (which also assume non-overtaking, for every
  /// variant) stay sound. 0 = the fault is live from the first action.
  std::size_t fault_non_fifo_min_phase = 0;
};

/// Creates the program (algorithm instance) for agent `id`. Algorithms are
/// anonymous and must ignore `id`; it exists so tests can plant heterogeneous
/// programs.
using ProgramFactory = std::function<std::unique_ptr<AgentProgram>(AgentId)>;

class Instance {
 public:
  /// Validates and freezes one runnable configuration: `homes` must be
  /// distinct nodes of the topology; agent i starts in transit to homes[i]
  /// (the §2.1 incoming-buffer rule). `options.max_actions == 0` is
  /// resolved here to the generous 64·n·k + 4096 default, so every
  /// execution of this Instance sees the same limit.
  Instance(Topology topology, std::vector<NodeId> homes,
           ProgramFactory factory, SimOptions options = {});

  /// Ring convenience: Instance(Topology::ring(node_count), …).
  Instance(std::size_t node_count, std::vector<NodeId> homes,
           ProgramFactory factory, SimOptions options = {});

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return topology_.size(); }
  [[nodiscard]] const std::vector<NodeId>& homes() const noexcept { return homes_; }
  [[nodiscard]] std::size_t agent_count() const noexcept { return homes_.size(); }
  [[nodiscard]] const ProgramFactory& factory() const noexcept { return factory_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

 private:
  Topology topology_;
  std::vector<NodeId> homes_;
  ProgramFactory factory_;
  SimOptions options_;
};

}  // namespace udring::sim
