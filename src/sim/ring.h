// udring/sim/ring.h
//
// The anonymous unidirectional ring R = (V, E) of §2.1: n nodes
// v_0 … v_{n-1}, link e_i = (v_i, v_{i+1 mod n}). Nodes are anonymous in the
// model; the only per-node state visible to agents is the token count
// (tokens are indelible one-bit marks — once released they stay forever).

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace udring::sim {

class Ring {
 public:
  /// A ring must have at least one node.
  explicit Ring(std::size_t node_count);

  [[nodiscard]] std::size_t size() const noexcept { return tokens_.size(); }

  /// The forward neighbour of `node` (the only direction agents can move).
  [[nodiscard]] NodeId next(NodeId node) const noexcept {
    return node + 1 == tokens_.size() ? 0 : node + 1;
  }

  /// Forward distance from `from` to `to`: (to - from) mod n (§2.1).
  [[nodiscard]] std::size_t distance(NodeId from, NodeId to) const noexcept {
    return to >= from ? to - from : tokens_.size() - from + to;
  }

  /// Number of tokens at `node`. In this paper's algorithms it is 0 or 1
  /// (each agent drops its single token at its distinct home node), but the
  /// substrate supports arbitrary counts.
  [[nodiscard]] std::size_t tokens(NodeId node) const { return tokens_.at(node); }

  /// Releases one indelible token at `node`.
  void add_token(NodeId node) { ++tokens_.at(node); }

  /// Total tokens in the ring.
  [[nodiscard]] std::size_t total_tokens() const noexcept;

  /// Snapshot of all token counts (index = node).
  [[nodiscard]] const std::vector<std::size_t>& token_counts() const noexcept {
    return tokens_;
  }

 private:
  std::vector<std::size_t> tokens_;
};

}  // namespace udring::sim
