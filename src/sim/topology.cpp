#include "sim/topology.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace udring::sim {

Topology Topology::ring(std::size_t node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("Topology: a ring needs at least one node");
  }
  Topology t;
  t.size_ = node_count;
  t.name_ = "ring";
  return t;
}

Topology Topology::virtual_ring(std::size_t size, std::vector<NodeId> labels,
                                std::vector<std::size_t> ports,
                                std::string name) {
  if (size == 0) {
    throw std::invalid_argument("Topology: a virtual ring needs at least one step");
  }
  if (!labels.empty() && labels.size() != size) {
    throw std::invalid_argument("Topology: labels must cover every virtual node");
  }
  if (!ports.empty() && ports.size() != size) {
    throw std::invalid_argument("Topology: ports must cover every virtual node");
  }
  Topology t;
  t.size_ = size;
  t.labels_ = std::move(labels);
  t.ports_ = std::move(ports);
  t.name_ = std::move(name);
  return t;
}

Topology Topology::closed_walk(std::vector<NodeId> successor,
                               std::vector<NodeId> labels, std::string name) {
  const std::size_t size = successor.size();
  if (size == 0) {
    throw std::invalid_argument("Topology: a closed walk needs at least one node");
  }
  if (!labels.empty() && labels.size() != size) {
    throw std::invalid_argument("Topology: labels must cover every virtual node");
  }
  // The successor map must be one cycle through all nodes: follow it from 0
  // and require that it returns to 0 after exactly `size` distinct steps.
  std::vector<bool> seen(size, false);
  NodeId current = 0;
  for (std::size_t step = 0; step < size; ++step) {
    if (current >= size) {
      throw std::invalid_argument("Topology: successor out of range");
    }
    if (seen[current]) {
      throw std::invalid_argument(
          "Topology: successor map is not a single covering cycle");
    }
    seen[current] = true;
    current = successor[current];
  }
  if (current != 0) {
    throw std::invalid_argument(
        "Topology: successor map is not a single covering cycle");
  }
  Topology t;
  t.size_ = size;
  t.successor_ = std::move(successor);
  t.labels_ = std::move(labels);
  t.name_ = std::move(name);
  return t;
}

std::size_t Topology::distance(NodeId from, NodeId to) const noexcept {
  if (successor_.empty()) {
    return to >= from ? to - from : size_ - from + to;
  }
  std::size_t steps = 0;
  NodeId current = from;
  while (current != to && steps < size_) {
    current = successor_[current];
    ++steps;
  }
  return steps;
}

std::size_t Topology::underlying_node_count() const noexcept {
  if (labels_.empty()) return size_;
  return *std::max_element(labels_.begin(), labels_.end()) + 1;
}

}  // namespace udring::sim
