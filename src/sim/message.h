// udring/sim/message.h
//
// Message payloads agents may broadcast to co-located staying agents.
//
// The paper allows messages "of any size". We model the two concrete
// payloads its algorithms send, plus a free-form text payload for tests and
// examples:
//
//  - BaseInfoMessage:  Algorithm 3 (deployment phase), leader → follower.
//  - EstimateMessage:  Algorithms 5/6, patrolling agent → suspended agent.
//  - TextMessage:      tests / examples / extensions.

#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

namespace udring::sim {

/// Leader → follower notification that the selection phase finished
/// (Algorithm 3 line 7). `t_base` is the number of token nodes the follower
/// must observe to reach the nearest base node. The three geometry fields
/// extend the paper's message so a follower can (a) handle n ≠ ck per
/// §3.1.1 and (b) skip base-node stops, which are reserved for leaders (see
/// DESIGN.md §6 and the known_k_logmem strict-mode discussion).
struct BaseInfoMessage {
  std::size_t t_base = 0;      ///< tokens to observe before the base node
  std::size_t seg_agents = 0;  ///< k / b: targets per base segment (incl. base)
  std::size_t ceil_gaps = 0;   ///< r / b: leading ⌈n/k⌉ gaps per segment
  std::size_t floor_gap = 0;   ///< ⌊n/k⌋

  friend bool operator==(const BaseInfoMessage&, const BaseInfoMessage&) = default;
};

/// Patrolling agent → suspended agent (Algorithm 5 line 5): the sender's
/// estimates and its observed distance sequence D (length 4·k_est).
struct EstimateMessage {
  std::size_t n_est = 0;          ///< n': estimated ring size
  std::size_t k_est = 0;          ///< k': estimated number of agents
  std::size_t nodes_visited = 0;  ///< sender's total moves so far ("nodes")
  std::vector<std::size_t> distance_seq;  ///< D = S^4, |D| = 4·k_est

  friend bool operator==(const EstimateMessage&, const EstimateMessage&) = default;
};

/// Free-form payload for tests, examples, and extensions.
struct TextMessage {
  std::string text;

  friend bool operator==(const TextMessage&, const TextMessage&) = default;
};

using Message = std::variant<BaseInfoMessage, EstimateMessage, TextMessage>;

}  // namespace udring::sim
