#include "sim/agent.h"

#include <stdexcept>

#include "sim/simulator.h"

namespace udring::sim {

Request Behavior::resume() {
  if (!handle_ || handle_.done()) {
    throw std::logic_error("Behavior::resume: coroutine is not resumable");
  }
  handle_.promise().pending = Request::None;
  handle_.resume();
  if (handle_.promise().exception) {
    std::rethrow_exception(handle_.promise().exception);
  }
  if (handle_.done()) {
    return Request::Done;
  }
  const Request request = handle_.promise().pending;
  if (request == Request::None) {
    throw std::logic_error(
        "Behavior::resume: agent program suspended without a control request");
  }
  return request;
}

std::size_t AgentContext::tokens_here() const { return sim_->tokens_at_agent(self_); }

std::size_t AgentContext::others_staying_here() const {
  return sim_->others_staying_at_agent(self_);
}

void AgentContext::release_token() { sim_->agent_release_token(self_); }

void AgentContext::broadcast(Message message) {
  sim_->agent_broadcast(self_, std::move(message));
}

void AgentContext::set_phase(std::size_t phase) { sim_->agent_set_phase(self_, phase); }

}  // namespace udring::sim
