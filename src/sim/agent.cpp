#include "sim/agent.h"

#include <stdexcept>

#include "sim/simulator.h"

namespace udring::sim {

void Behavior::throw_not_resumable() {
  throw std::logic_error("Behavior::resume: coroutine is not resumable");
}

void Behavior::throw_no_request() {
  throw std::logic_error(
      "Behavior::resume: agent program suspended without a control request");
}

std::size_t AgentContext::tokens_here() const { return sim_->tokens_at_agent(self_); }

std::size_t AgentContext::others_staying_here() const {
  return sim_->others_staying_at_agent(self_);
}

void AgentContext::release_token() { sim_->agent_release_token(self_); }

void AgentContext::broadcast(Message message) {
  sim_->agent_broadcast(self_, std::move(message));
}

void AgentContext::set_phase(std::size_t phase) { sim_->agent_set_phase(self_, phase); }

}  // namespace udring::sim
