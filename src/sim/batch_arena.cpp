#include "sim/batch_arena.h"

#include <stdexcept>

namespace udring::sim {

BatchArena::BatchArena(std::size_t lanes) {
  if (lanes == 0) {
    throw std::invalid_argument("BatchArena: lane count must be positive");
  }
  states_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    states_.push_back(std::make_unique<ExecutionState>());
  }
  live_.assign(lanes, 0);
  scheduler_.assign(lanes, nullptr);
  kind_.assign(lanes, SchedulerKind::RoundRobin);
  ticket_.assign(lanes, 0);
}

void BatchArena::load(std::size_t lane, const Instance& instance,
                      Scheduler& scheduler, SchedulerKind kind,
                      std::uint64_t ticket) {
  ExecutionState& state = *states_[lane];
  state.reset(instance);
  scheduler.attach(state);
  scheduler.reset(state.agent_count());
  scheduler_[lane] = &scheduler;
  kind_[lane] = kind;
  ticket_[lane] = ticket;
  live_[lane] = 1;
}

void BatchArena::run(const Feed& feed, const Retire& retire,
                     const OnError& on_error) {
  const std::size_t lane_count = states_.size();
  std::size_t live = 0;
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    live_[lane] = 0;
    if (feed(lane)) {
      ++live;
    }
  }

  while (live > 0) {
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      if (live_[lane] == 0) continue;
      std::optional<RunResult> finished;
      try {
        finished = states_[lane]->run_chunk(*scheduler_[lane], kind_[lane],
                                            kChunkActions);
      } catch (...) {
        if (!on_error) throw;
        on_error(lane, ticket_[lane], std::current_exception());
        live_[lane] = 0;
        if (!feed(lane)) --live;
        continue;
      }
      if (!finished.has_value()) continue;  // budget exhausted, sweep again
      retire(lane, ticket_[lane], *finished);
      live_[lane] = 0;
      if (!feed(lane)) --live;
    }
  }
}

}  // namespace udring::sim
