#include "sim/fault.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace udring::sim {

void FaultPlan::normalize() {
  std::sort(crashes.begin(), crashes.end(),
            [](const CrashFault& a, const CrashFault& b) {
              return a.at_action != b.at_action ? a.at_action < b.at_action
                                                : a.agent < b.agent;
            });
  std::sort(rewire_at.begin(), rewire_at.end());
}

void FaultPlan::validate(std::size_t node_count,
                         std::size_t agent_count) const {
  for (const CrashFault& crash : crashes) {
    if (crash.agent >= agent_count) {
      throw std::invalid_argument(
          "FaultPlan: crash fault names an agent outside the instance");
    }
  }
  for (std::size_t i = 0; i + 1 < crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      if (crashes[i].agent == crashes[j].agent) {
        throw std::invalid_argument(
            "FaultPlan: an agent can crash at most once");
      }
    }
  }
  if (!rewire_at.empty()) {
    if (rewire_candidate_count(node_count) == 0) {
      throw std::invalid_argument(
          "FaultPlan: rewiring needs a topology with at least 2 nodes");
    }
    for (std::size_t i = 0; i + 1 < rewire_at.size(); ++i) {
      if (rewire_at[i] == rewire_at[i + 1]) {
        throw std::invalid_argument(
            "FaultPlan: rewire points must be distinct action indices");
      }
    }
  }
}

std::string FaultPlan::label() const {
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += '+';
    out += part;
  };
  for (const CrashFault& crash : crashes) {
    append("crash:" + std::to_string(crash.agent) + "@" +
           std::to_string(crash.at_action));
  }
  if (non_fifo) {
    std::string part = "nonfifo";
    if (non_fifo_min_phase > 0) {
      part += ":p" + std::to_string(non_fifo_min_phase);
    }
    if (non_fifo_until_action > 0) {
      part += "<" + std::to_string(non_fifo_until_action);
    }
    append(part);
  }
  if (drop_count > 0) {
    append("drop:" + std::to_string(drop_count) + "@" +
           std::to_string(drop_from_action));
  }
  if (dup_count > 0) {
    append("dup:" + std::to_string(dup_count) + "@" +
           std::to_string(dup_from_action));
  }
  if (!rewire_at.empty()) {
    std::string part = "rewire:";
    for (std::size_t i = 0; i < rewire_at.size(); ++i) {
      if (i > 0) part += ',';
      part += std::to_string(rewire_at[i]);
    }
    append(part);
  }
  return out;
}

void FaultPlan::fold_into(std::uint64_t& state) const {
  state ^= 0xfa17ab1ed5eed000ULL;  // "fault-plan" domain
  fold64(state, crashes.size());
  for (const CrashFault& crash : crashes) {
    fold64(state, crash.agent);
    fold64(state, crash.at_action);
  }
  fold64(state, non_fifo ? 1 : 0);
  fold64(state, non_fifo_min_phase);
  fold64(state, non_fifo_until_action);
  fold64(state, drop_count);
  fold64(state, drop_from_action);
  fold64(state, dup_count);
  fold64(state, dup_from_action);
  fold64(state, rewire_at.size());
  for (const std::size_t at : rewire_at) fold64(state, at);
}

std::size_t rewire_candidate_count(std::size_t node_count) noexcept {
  if (node_count < 2) return 0;
  std::size_t count = 0;
  for (std::size_t d = 1; d < node_count; ++d) {
    if (std::gcd(d, node_count) == 1) ++count;
  }
  return count;
}

std::size_t rewire_candidate_stride(std::size_t node_count, std::size_t index) {
  std::size_t seen = 0;
  for (std::size_t d = 1; d < node_count; ++d) {
    if (std::gcd(d, node_count) == 1) {
      if (seen == index) return d;
      ++seen;
    }
  }
  throw std::out_of_range("rewire_candidate_stride: index out of range");
}

bool is_single_cycle_stride(std::size_t node_count,
                            std::size_t stride) noexcept {
  return node_count >= 2 && stride >= 1 && stride < node_count &&
         std::gcd(stride, node_count) == 1;
}

}  // namespace udring::sim
