#include "config/generators.h"

#include <algorithm>
#include <stdexcept>

#include "util/bits.h"

namespace udring::gen {

using udring::core::DistanceSeq;

std::vector<std::size_t> random_homes(std::size_t n, std::size_t k, udring::Rng& rng) {
  if (k > n) throw std::invalid_argument("random_homes: k > n");
  // Floyd's algorithm would avoid the O(n) vector, but n is small here and a
  // partial Fisher–Yates keeps the distribution exactly uniform.
  std::vector<std::size_t> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
    std::swap(nodes[i], nodes[j]);
  }
  nodes.resize(k);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<std::size_t> packed_quarter_homes(std::size_t n, std::size_t k) {
  const std::size_t quarter = udring::ceil_div(n, 4);
  if (k > quarter) {
    throw std::invalid_argument("packed_quarter_homes: k exceeds the quarter arc");
  }
  std::vector<std::size_t> homes(k);
  for (std::size_t i = 0; i < k; ++i) homes[i] = i;  // consecutive: densest pack
  return homes;
}

std::vector<std::size_t> homes_from_distances(const DistanceSeq& distances,
                                              std::size_t n, std::size_t start) {
  if (udring::core::sum(distances) != n) {
    throw std::invalid_argument("homes_from_distances: distances must sum to n");
  }
  std::vector<std::size_t> homes;
  homes.reserve(distances.size());
  std::size_t position = start % n;
  for (const std::size_t d : distances) {
    homes.push_back(position);
    position = (position + d) % n;
  }
  std::sort(homes.begin(), homes.end());
  return homes;
}

std::vector<std::size_t> uniform_homes(std::size_t n, std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("uniform_homes: bad k");
  DistanceSeq d(k, n / k);
  for (std::size_t i = 0; i < n % k; ++i) ++d[i];
  return homes_from_distances(d, n);
}

std::vector<std::size_t> periodic_homes(std::size_t n, std::size_t k, std::size_t l,
                                        udring::Rng& rng) {
  if (l == 0 || n % l != 0 || k % l != 0) {
    throw std::invalid_argument("periodic_homes: l must divide n and k");
  }
  const std::size_t seg_nodes = n / l;
  const std::size_t seg_agents = k / l;
  if (seg_agents > seg_nodes) {
    throw std::invalid_argument("periodic_homes: k/l > n/l");
  }
  if (seg_agents == 1 && l != k) {
    // One agent per segment forces equal spacing, i.e. full symmetry l = k.
    throw std::invalid_argument("periodic_homes: k/l = 1 only admits l = k");
  }

  // Draw an aperiodic factor: distances of seg_agents agents on a
  // seg_nodes-segment. Rejection-sample until the factor is aperiodic (for
  // seg_agents ≥ 2 almost every draw is; for seg_agents = 1 the factor (n/l)
  // is trivially aperiodic as a length-1 sequence).
  for (int attempt = 0; attempt < 1024; ++attempt) {
    std::vector<std::size_t> cuts = random_homes(seg_nodes, seg_agents, rng);
    DistanceSeq factor;
    factor.reserve(seg_agents);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      factor.push_back(cuts[i + 1] - cuts[i]);
    }
    factor.push_back(seg_nodes - cuts.back() + cuts.front());
    if (seg_agents > 1 && udring::core::is_periodic(factor)) continue;

    DistanceSeq full;
    full.reserve(k);
    for (std::size_t rep = 0; rep < l; ++rep) {
      full.insert(full.end(), factor.begin(), factor.end());
    }
    auto homes = homes_from_distances(full, n);
    // Sanity: the construction must realize exactly symmetry degree l.
    if (udring::core::config_symmetry_degree(homes, n) != l) continue;
    return homes;
  }
  throw std::runtime_error("periodic_homes: could not draw an aperiodic factor");
}

// ---- worked figure examples -------------------------------------------------

std::vector<std::size_t> fig1a_homes() {
  return homes_from_distances({1, 4, 2, 1, 2, 2}, kFig1aNodes);
}

std::vector<std::size_t> fig1b_homes() {
  return homes_from_distances({1, 2, 3, 1, 2, 3}, kFig1bNodes);
}

std::vector<std::size_t> fig5_homes() {
  // Fig 5's shape: three base nodes 6 apart with two home nodes between each
  // adjacent pair. Segment factor (1,2,3): sub-phase 1 keeps the gap-1
  // agents, sub-phase 2 sees three identical IDs (6,2) → three leaders.
  return homes_from_distances({1, 2, 3, 1, 2, 3, 1, 2, 3}, kFig5Nodes);
}

std::vector<std::size_t> fig9_homes() {
  return homes_from_distances({11, 1, 3, 1, 3, 1, 3, 1, 3}, kFig9Nodes);
}

std::vector<std::size_t> fig11_homes() {
  return homes_from_distances({1, 2, 3, 1, 2, 3}, kFig11Nodes);
}

std::vector<std::size_t> logmem_stress_homes() { return {0, 1, 3, 6, 7, 10}; }

ImpossibilityInstance impossibility_ring(const std::vector<std::size_t>& base_homes,
                                         std::size_t base_nodes, std::size_t q) {
  ImpossibilityInstance instance;
  instance.node_count = 2 * q * base_nodes + 2 * base_nodes;
  instance.homes.reserve((q + 1) * base_homes.size());
  for (std::size_t rep = 0; rep <= q; ++rep) {
    for (const std::size_t home : base_homes) {
      instance.homes.push_back(rep * base_nodes + home);
    }
  }
  return instance;
}

}  // namespace udring::gen
