// udring/config/generators.h
//
// Initial-configuration generators: every experiment instance the paper
// draws (randomly placed agents, the Theorem-1 packed lower-bound witness,
// periodic (N, l)-rings, the estimator trap of Fig 9) plus each worked
// figure example as a named constructor, so tests can assert against the
// paper's own numbers.
//
// All generators return distinct home nodes on an n-ring and are seeded /
// deterministic.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/distance_sequence.h"
#include "util/rng.h"

namespace udring::gen {

/// k distinct homes drawn uniformly from an n-ring.
[[nodiscard]] std::vector<std::size_t> random_homes(std::size_t n, std::size_t k,
                                                    udring::Rng& rng);

/// The Theorem-1 / Fig-3 lower-bound witness: all k agents packed into the
/// first quarter arc (requires k ≤ ⌈n/4⌉). Forces Ω(kn) total moves.
[[nodiscard]] std::vector<std::size_t> packed_quarter_homes(std::size_t n,
                                                            std::size_t k);

/// A configuration with symmetry degree exactly l: an aperiodic factor of
/// k/l agents on an n/l-segment, repeated l times (an (n/l, l)-ring in the
/// paper's §4.2.2 notation). Requires l | n, l | k, k/l ≤ n/l. Throws if an
/// aperiodic factor cannot be constructed (k/l = 1 forces equal spacing, so
/// it requires l = k... see implementation notes).
[[nodiscard]] std::vector<std::size_t> periodic_homes(std::size_t n, std::size_t k,
                                                      std::size_t l,
                                                      udring::Rng& rng);

/// Homes from a distance sequence: agent i+1 sits distance d[i] after agent
/// i, with agent 0 at node `start`. sum(d) must equal n.
[[nodiscard]] std::vector<std::size_t> homes_from_distances(
    const udring::core::DistanceSeq& distances, std::size_t n, std::size_t start = 0);

/// Already uniformly deployed homes (l = k): gaps ⌊n/k⌋ / ⌈n/k⌉. When
/// k ∤ n the config's symmetry degree is gcd-driven; with k | n it is k.
[[nodiscard]] std::vector<std::size_t> uniform_homes(std::size_t n, std::size_t k);

// ---- the paper's worked examples, by figure --------------------------------

/// Fig 1(a): n = 12, k = 6, distance sequence (1,4,2,1,2,2) — l = 1.
[[nodiscard]] std::vector<std::size_t> fig1a_homes();
inline constexpr std::size_t kFig1aNodes = 12;

/// Fig 1(b): n = 12, k = 6, distance sequence (1,2,3,1,2,3) — l = 2.
[[nodiscard]] std::vector<std::size_t> fig1b_homes();
inline constexpr std::size_t kFig1bNodes = 12;

/// Fig 5: n = 18, k = 9, three base segments of three agents (d = 2 after
/// deployment): homes at distances (2,2,2) per 6-node segment.
[[nodiscard]] std::vector<std::size_t> fig5_homes();
inline constexpr std::size_t kFig5Nodes = 18;

/// Fig 8/9: n = 27, k = 9, distance sequence (11,1,3,1,3,1,3,1,3): an
/// aperiodic ring with a periodic proper subsequence (1,3)⁴ that traps the
/// estimator of agents starting inside it (they first estimate n' = 4).
[[nodiscard]] std::vector<std::size_t> fig9_homes();
inline constexpr std::size_t kFig9Nodes = 27;

/// Fig 11: the (6,2)-ring — n = 12, k = 6, D = (1,2,3)²: every agent's
/// estimate converges to N = 6 = n/l.
[[nodiscard]] std::vector<std::size_t> fig11_homes();
inline constexpr std::size_t kFig11Nodes = 12;

/// The Algorithm-3 deployment stress instance: n = 12, k = 6, homes
/// {0,1,3,6,7,10} — two base nodes {0,6} with *asymmetric* segment
/// interiors and a follower home (10) sitting exactly on a target. Starving
/// the home-6 leader drives the literal pseudocode to the brink of
/// double-booking node 0; FIFO pushing is the only thing that saves it (the
/// prober queues behind the lagging leader and shoves it into its base node
/// first). Used by the adversarial-search tests in test_algo_logmem.cpp.
[[nodiscard]] std::vector<std::size_t> logmem_stress_homes();
inline constexpr std::size_t kLogmemStressNodes = 12;

/// Theorem 5 / Fig 7 construction: given a base ring of n nodes with homes
/// `base_homes` (k agents) and a repetition count q, builds the larger ring
/// R' with 2qn + 2n nodes and (q+1)·k agents: the base placement repeated
/// q+1 times followed by an empty half. Corresponding agents of R and R'
/// behave identically for at least qn synchronous rounds (Lemma 1).
struct ImpossibilityInstance {
  std::size_t node_count = 0;
  std::vector<std::size_t> homes;
};
[[nodiscard]] ImpossibilityInstance impossibility_ring(
    const std::vector<std::size_t>& base_homes, std::size_t base_nodes,
    std::size_t q);

}  // namespace udring::gen
