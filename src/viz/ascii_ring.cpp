#include "viz/ascii_ring.h"

#include <algorithm>
#include <sstream>

#include "sim/checker.h"

namespace udring::viz {

namespace {

using sim::AgentStatus;

[[nodiscard]] char status_glyph(AgentStatus status) {
  switch (status) {
    case AgentStatus::InTransit: return '>';
    case AgentStatus::Staying: return 's';
    case AgentStatus::Waiting: return 'w';
    case AgentStatus::Suspended: return 'z';
    case AgentStatus::Halted: return 'h';
    case AgentStatus::Crashed: return 'x';
  }
  return '?';
}

}  // namespace

std::string render(const sim::Snapshot& snapshot, std::size_t columns) {
  columns = std::max<std::size_t>(columns, 1);
  std::ostringstream out;

  // Gather per-node agent labels.
  std::vector<std::string> labels(snapshot.node_count);
  for (const sim::AgentSnap& agent : snapshot.agents) {
    std::string& cell = labels[agent.node];
    if (!cell.empty()) cell += ',';
    cell += 'A' + std::to_string(agent.id);
    cell += status_glyph(agent.status);
  }

  for (std::size_t row_start = 0; row_start < snapshot.node_count;
       row_start += columns) {
    const std::size_t row_end =
        std::min(snapshot.node_count, row_start + columns);

    std::vector<std::size_t> width(row_end - row_start);
    for (std::size_t v = row_start; v < row_end; ++v) {
      width[v - row_start] =
          std::max<std::size_t>({std::to_string(v).size(),
                                 labels[v].empty() ? 1 : labels[v].size(), 1});
    }

    const auto pad = [](const std::string& s, std::size_t w) {
      return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
    };

    out << "node  ";
    for (std::size_t v = row_start; v < row_end; ++v) {
      out << pad(std::to_string(v), width[v - row_start]) << ' ';
    }
    out << "\ntoken ";
    for (std::size_t v = row_start; v < row_end; ++v) {
      out << pad(snapshot.tokens[v] > 0 ? "*" : ".", width[v - row_start]) << ' ';
    }
    out << "\nagent ";
    for (std::size_t v = row_start; v < row_end; ++v) {
      out << pad(labels[v].empty() ? "." : labels[v], width[v - row_start]) << ' ';
    }
    out << "\n";
    if (row_end < snapshot.node_count) out << "\n";
  }
  return out.str();
}

std::string render(const sim::Simulator& simulator, std::size_t columns) {
  return render(simulator.snapshot(), columns);
}

std::string gap_summary(const sim::Simulator& simulator) {
  const std::vector<std::size_t> positions = simulator.staying_nodes();
  std::ostringstream out;
  if (positions.empty()) return "gaps: (no staying agents)";
  const auto gaps = sim::ring_gaps(positions, simulator.node_count());
  out << "gaps:";
  for (const std::size_t gap : gaps) out << ' ' << gap;
  const std::size_t n = simulator.node_count();
  const std::size_t k = positions.size();
  out << "  (floor=" << n / k << ", ceil=" << (n + k - 1) / k << ")";
  return out.str();
}

}  // namespace udring::viz
