// udring/viz/ascii_ring.h
//
// ASCII rendering of ring configurations for the example binaries and for
// human-readable failure dumps in tests. Renders a snapshot as a linearized
// ring:
//
//   node   0    1    2    3   ...
//   token  ●    ●    ·    ●
//   agents A0>  ·    A2s  A1h
//
// with per-agent glyphs: '>' in transit toward the node, 's' staying,
// 'w' waiting, 'z' suspended, 'h' halted.

#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.h"

namespace udring::viz {

/// Multi-line rendering of the snapshot. `columns` caps nodes per row.
[[nodiscard]] std::string render(const sim::Snapshot& snapshot,
                                 std::size_t columns = 24);

/// Convenience: snapshot + render.
[[nodiscard]] std::string render(const sim::Simulator& simulator,
                                 std::size_t columns = 24);

/// One-line gap summary, e.g. "gaps: 3 3 3 4 (⌊n/k⌋=3, ⌈n/k⌉=4)".
[[nodiscard]] std::string gap_summary(const sim::Simulator& simulator);

}  // namespace udring::viz
