// tools/campaign_shard.cpp
//
// Multi-process campaign driver: run one shard of a campaign grid as its own
// process, then merge the shard files into the exact result a single process
// would have produced (byte-identical digest — the engine's determinism
// contract, extended across process boundaries by exp/shard.h).
//
//   udring_campaign --grid=engine --shard=0/3 --out=shard_0.bin
//   udring_campaign --grid=engine --shard=1/3 --out=shard_1.bin
//   udring_campaign --grid=engine --shard=2/3 --out=shard_2.bin
//   udring_campaign --merge shard_0.bin shard_1.bin shard_2.bin
//
// A shard file doubles as its own checkpoint: re-running a --shard command
// whose --out already exists resumes from the recorded watermark (pass
// --checkpoint-every to bound how much work a kill -9 can lose). A whole
// single-process run (the reference for digest comparisons) is the default
// mode, and honors --checkpoint/--checkpoint-every the same way.
//
// Exit codes: 0 = success, 1 = campaign/merge failure (fingerprint mismatch,
// overlapping shards, corrupt file, IO), 2 = usage error.

#include <exception>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "exp/shard.h"
#include "util/cli.h"

namespace {

using namespace udring;

/// The bench_campaign_engine grids, reproduced so CI can cross-check the
/// tool against the in-process engine on the exact same sweep.
exp::CampaignGrid preset_grid(const std::string& name) {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.schedulers = {sim::SchedulerKind::RoundRobin,
                     sim::SchedulerKind::Random};
  if (name == "engine") {
    grid.node_counts = {16, 24, 32, 40, 48, 56, 64};
    grid.agent_counts = {2, 3, 4, 5, 6, 7, 8};
    grid.seeds = 16;  // 7 × 7 × 2 × 16 = 1568 scenarios
  } else if (name == "smoke") {
    grid.node_counts = {16, 24};
    grid.agent_counts = {2, 4};
    grid.seeds = 2;  // 16 scenarios
  } else {
    throw std::invalid_argument("unknown --grid preset '" + name +
                                "' (expected: engine, smoke)");
  }
  return grid;
}

/// Parses "--shard=i/N".
std::pair<std::size_t, std::size_t> parse_shard_spec(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("--shard expects i/N, got '" + spec + "'");
  }
  std::size_t index = 0, count = 0;
  try {
    index = std::stoull(spec.substr(0, slash));
    count = std::stoull(spec.substr(slash + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("--shard expects i/N, got '" + spec + "'");
  }
  if (count == 0 || index >= count) {
    throw std::invalid_argument("--shard index out of range: '" + spec + "'");
  }
  return {index, count};
}

void print_result(const exp::CampaignResult& result, bool summary) {
  if (summary) std::cout << result.summary();
  std::cout << "scenarios: " << result.scenario_count
            << "  failures: " << result.failures << "  digest: " << std::hex
            << std::setfill('0') << std::setw(16) << result.digest()
            << std::dec << '\n';
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string grid_name =
      *cli.get("grid", "grid preset: engine (1568 scenarios) or smoke",
               "engine");
  const std::string shard_spec =
      *cli.get("shard", "run only slice i of N equal slices (i/N)", "");
  const std::string out_path =
      *cli.get("out", "shard-file path for --shard (doubles as checkpoint)",
               "");
  const std::string checkpoint_path =
      *cli.get("checkpoint", "checkpoint file for a whole-grid run", "");
  const std::size_t checkpoint_every = cli.get_size(
      "checkpoint-every", 0,
      "scenarios per checkpoint write (0 = only the final file)");
  const std::size_t seeds =
      cli.get_size("seeds", 0, "override the preset's seeds per cell");
  const std::uint64_t base_seed =
      cli.get_u64("base-seed", 0, "override the preset's base seed");
  const std::size_t workers =
      cli.get_size("workers", 0, "worker threads (0 = hardware)");
  const std::size_t lanes =
      cli.get_size("lanes", 0, "batch lanes per worker (0 = auto)");
  const bool merge =
      cli.get_flag("merge", "merge the positional shard files instead");
  const bool allow_partial = cli.get_flag(
      "allow-partial", "merge even when the shards do not tile the sweep");
  const bool summary =
      cli.get_flag("summary", "print the per-cell table, not just the digest");
  if (cli.wants_help()) {
    cli.print_help("Sharded campaign driver: run grid slices as separate "
                   "processes and merge their shard files byte-identically.");
    return 0;
  }

  if (merge) {
    if (cli.positional().empty()) {
      std::cerr << "udring_campaign: --merge needs shard file paths\n";
      return 2;
    }
    std::vector<exp::ShardFile> shards;
    shards.reserve(cli.positional().size());
    for (const std::string& path : cli.positional()) {
      shards.push_back(exp::load_shard_file(path));
    }
    const exp::CampaignResult result =
        exp::merge_shards(std::move(shards), allow_partial);
    print_result(result, summary);
    return 0;
  }

  exp::CampaignGrid grid = preset_grid(grid_name);
  if (seeds != 0) grid.seeds = seeds;
  if (base_seed != 0) grid.base_seed = base_seed;
  exp::CampaignOptions options;
  options.workers = workers;
  options.batch_lanes = lanes;
  options.checkpoint_every_scenarios = checkpoint_every;

  if (!shard_spec.empty()) {
    if (out_path.empty()) {
      std::cerr << "udring_campaign: --shard needs --out=<shard file>\n";
      return 2;
    }
    const auto [index, count] = parse_shard_spec(shard_spec);
    options.checkpoint_path = out_path;
    const exp::ShardFile shard =
        exp::run_campaign_shard(grid, options, index, count);
    std::cout << "shard " << index << "/" << count << ": scenarios ["
              << shard.range_begin << ", " << shard.range_end << ") of "
              << shard.scenario_total << " -> " << out_path << '\n';
    return 0;
  }

  options.checkpoint_path = checkpoint_path;
  const exp::CampaignResult result = exp::run_campaign_streaming(grid, options);
  print_result(result, summary);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& error) {
    std::cerr << "udring_campaign: " << error.what() << '\n';
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "udring_campaign: " << error.what() << '\n';
    return 1;
  }
}
