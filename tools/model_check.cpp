// tools/model_check.cpp
//
// The exhaustive model checker's command-line face.
//
//   udring_mc --algo=known-k-full --n=6 --k=2                 # one instance
//   udring_mc --algo=known-k-logmem --topology=tree --n=4 --k=2
//   udring_mc --algo=known-k-logmem-strict --n=12 --homes=0,1,3,6,7,10
//             --inject-non-fifo --fault-min-phase=1 --budget=2000000
//             --out=mc-artifacts                  # rediscover the race
//   udring_mc --algo=known-k-full --n=8 --k=2 --grid --seeds=3  # grid cells
//
// Exit codes: 0 = verified over all schedules (every cell), 1 = violation
// found (the counterexample trace is printed and, with --out, written where
// CI uploads it; replay it with `udring_fuzz --replay=<file>`), 3 = budget
// exhausted before the tree was closed (no verdict), 2 = usage error.

#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "explore/fuzz.h"
#include "mc/model_check.h"
#include "util/cli.h"
#include "util/io.h"

namespace {

using namespace udring;

void print_report(const mc::ModelCheckReport& report) {
  const mc::McStats& s = report.stats;
  std::cout << "verdict: " << report.verdict
            << (report.complete ? " (complete)" : " (incomplete)") << '\n'
            << "schedules explored: " << s.schedules
            << "   states expanded: " << s.states_expanded
            << "   deduped: " << s.states_deduped
            << "   sleep-pruned: " << s.sleep_pruned
            << "   dpor-pruned: " << s.dpor_pruned << '\n'
            << "actions: " << s.total_actions << "   replays: " << s.replays
            << "   max depth: " << s.max_depth << "   shards: " << s.shards
            << '\n';
}

int emit_counterexample(const mc::ModelCheckReport& report,
                        const std::string& out_dir, const std::string& tag) {
  std::cout << "VIOLATION: " << report.failure_reason << '\n';
  if (!report.counterexample) return 1;
  std::cout << "counterexample: " << report.counterexample->choices.size()
            << " choices, digest " << report.counterexample->expected_digest
            << '\n';
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/mc-counterexample-" + tag + ".trace";
    if (write_text_file(path, report.counterexample->to_text())) {
      std::cout << "wrote " << path
                << "  (replay with: udring_fuzz --replay=" << path << ")\n";
    } else {
      std::cerr << "udring_mc: cannot write " << path << '\n';
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string algo_name =
        cli.get("algo", "algorithm under verification", "known-k-full")
            .value_or("known-k-full");
    const std::string problem_name =
        cli.get("problem",
                "goal oracle the instance is verified against: "
                "auto|deploy|gather|disperse (auto = the algorithm's natural "
                "problem)",
                "auto")
            .value_or("auto");
    const std::size_t gather_g =
        cli.get_size("gather-g", 2,
                     "group size g for --problem=gather (0 = total gathering)");
    const std::string topology_name =
        cli.get("topology",
                "instance topology: ring|tree|graph (tree/graph check the "
                "Euler-tour virtual ring of a random --seed network)",
                "ring")
            .value_or("ring");
    const std::size_t n = cli.get_size(
        "n", 6, "ring size (or underlying network size for tree/graph)");
    const std::size_t k = cli.get_size("k", 2, "agent count");
    const std::string homes_csv =
        cli.get("homes", "comma-separated home nodes (overrides the --seed draw)",
                "")
            .value_or("");
    const std::uint64_t seed =
        cli.get_u64("seed", 1, "seed for the instance draw (homes / network)");
    const std::size_t budget = cli.get_size(
        "budget", 0,
        "action budget, replays included (0 = walk the tree to exhaustion)");
    const std::size_t frontier = cli.get_size(
        "frontier", 1, "frontier shards for the parallel walk (1 = serial)");
    const std::size_t workers =
        cli.get_size("workers", 0, "worker threads for shards (0 = all cores)");
    const bool no_dedup =
        cli.get_flag("no-dedup", "disable visited-state deduplication");
    const bool no_sleep =
        cli.get_flag("no-sleep", "disable sleep-set independence pruning");
    const bool no_dpor = cli.get_flag(
        "no-dpor", "disable dynamic partial-order reduction (backtrack sets)");
    const bool no_symmetry = cli.get_flag(
        "no-symmetry",
        "disable the anonymous-agent symmetry quotient on dedup keys");
    const bool shared_visited = cli.get_flag(
        "shared-visited",
        "share one lock-free visited set across all shards (closure walk; "
        "disables sleep sets + DPOR, counts stay worker-independent)");
    const std::size_t shared_capacity = cli.get_size(
        "shared-visited-capacity", 0,
        "slot count for --shared-visited (0 = auto, 2^22)");
    const bool fault = cli.get_flag(
        "inject-non-fifo", "TEST-ONLY: weaken the FIFO link guarantee");
    const std::size_t fault_min_phase = cli.get_size(
        "fault-min-phase", 0,
        "restrict the non-FIFO fault to actions at/after this phase tag");
    const std::string fault_budget_spec =
        cli.get("fault-budget",
                "enumerate bounded fault plans on top of every schedule: "
                "comma list of crash=N and rewire=N "
                "(e.g. --fault-budget=crash=1,rewire=2)",
                "")
            .value_or("");
    const std::size_t fault_max_action = cli.get_size(
        "fault-max-action", 8,
        "latest action index enumerated fault events may fire at");
    const std::size_t max_actions = cli.get_size(
        "max-actions", 0, "per-schedule action cap (0 = simulator auto limit)");
    const bool grid_mode = cli.get_flag(
        "grid", "check a campaign grid cell-by-cell (--seeds instances of "
                "(n, k)) instead of one instance");
    const std::size_t seeds =
        cli.get_size("seeds", 1, "instances per cell in --grid mode");
    const std::string out_dir =
        cli.get("out", "directory for counterexample traces", "").value_or("");
    if (cli.wants_help()) {
      cli.print_help(
          "udring exhaustive model checker: walks every schedule of a small "
          "instance (DFS + sleep sets + DPOR backtrack sets + symmetry-"
          "quotiented state dedup over the replay choice tree, optionally a "
          "lock-free shared visited set across shards) and proves the goal, "
          "or emits a replayable counterexample");
      return 0;
    }

    mc::FaultBudget fault_budget;
    fault_budget.max_fault_action = fault_max_action;
    if (!fault_budget_spec.empty()) {
      std::istringstream list(fault_budget_spec);
      for (std::string item; std::getline(list, item, ',');) {
        const std::size_t eq = item.find('=');
        const std::string key = item.substr(0, eq);
        if (eq == std::string::npos || (key != "crash" && key != "rewire")) {
          throw std::invalid_argument("--fault-budget: bad token '" + item +
                                      "' (want crash=N or rewire=N)");
        }
        const std::size_t value =
            static_cast<std::size_t>(std::stoull(item.substr(eq + 1)));
        (key == "crash" ? fault_budget.crashes : fault_budget.rewires) = value;
      }
    }

    mc::McOptions options;
    options.dedup_states = !no_dedup;
    options.sleep_sets = !no_sleep;
    options.dpor = !no_dpor;
    options.symmetry = !no_symmetry;
    options.shared_visited = shared_visited;
    options.shared_visited_capacity = shared_capacity;
    options.budget_actions = budget;
    options.frontier_target = frontier;
    options.workers = workers;

    const core::Algorithm algorithm = explore::algorithm_from_name(algo_name);
    core::ProblemSpec problem;
    problem.kind = core::problem_from_name(problem_name);
    if (problem.kind == core::Problem::Gather) {
      problem.gather_g = gather_g;
    } else if (problem.kind != core::Problem::Auto) {
      problem.gather_g = 0;  // the parameter belongs to gather only
    }
    const explore::FuzzTopology topology =
        explore::fuzz_topology_from_name(topology_name);

    if (grid_mode) {
      if (topology != explore::FuzzTopology::Ring) {
        std::cerr << "udring_mc: --grid supports --topology=ring only\n";
        return 2;
      }
      if (!fault_budget.empty()) {
        // Budget enumeration multiplies the walk per instance; on a grid that
        // silently explodes — require the single-instance mode.
        std::cerr << "udring_mc: --fault-budget cannot be combined with "
                     "--grid (check one instance at a time)\n";
        return 2;
      }
      if (!homes_csv.empty()) {
        // Grid cells draw their homes from the campaign substream; silently
        // dropping an explicit --homes would report "verified" for
        // instances the caller never named.
        std::cerr << "udring_mc: --homes cannot be combined with --grid\n";
        return 2;
      }
      exp::CampaignGrid grid;
      grid.algorithms = {algorithm};
      grid.problems = {problem};
      grid.node_counts = {n};
      grid.agent_counts = {k};
      grid.seeds = seeds;
      grid.base_seed = seed;
      grid.sim_options.fault_non_fifo_links = fault;
      grid.sim_options.fault_non_fifo_min_phase = fault_min_phase;
      grid.sim_options.max_actions = max_actions;
      const mc::GridReport report = mc::check_grid(grid, options);
      std::cout << report.summary();
      if (report.violations != 0) {
        int status = 0;
        for (const mc::GridCell& cell : report.cells) {
          if (cell.report.ok) continue;
          status = emit_counterexample(
              cell.report, out_dir,
              std::string(core::to_string(cell.algorithm)) + "-rep" +
                  std::to_string(cell.repetition));
        }
        return status;
      }
      return report.all_verified() ? 0 : 3;
    }

    Rng rng(seed);
    mc::CheckRequest request;
    request.algorithm = algorithm;
    request.problem = problem;
    request.fault_non_fifo = fault;
    request.fault_min_phase = fault_min_phase;
    request.max_actions = max_actions;
    if (!homes_csv.empty()) {
      if (topology != explore::FuzzTopology::Ring) {
        // Fixed homes name ring nodes; silently checking a plain ring while
        // the caller asked for tree/graph would verify the wrong instance.
        std::cerr << "udring_mc: --homes only supports --topology=ring\n";
        return 2;
      }
      request.node_count = n;
      std::istringstream list(homes_csv);
      for (std::string item; std::getline(list, item, ',');) {
        request.homes.push_back(static_cast<std::size_t>(std::stoull(item)));
      }
    } else {
      explore::DrawnInstance drawn = explore::draw_instance(topology, n, k, rng);
      request.node_count = drawn.node_count;
      request.homes = std::move(drawn.homes);
      request.topology = std::move(drawn.topology);
    }

    std::cout << "model-check " << core::to_string(algorithm) << " n="
              << request.node_count << " k=" << request.homes.size()
              << " topology="
              << (request.topology.empty() ? "ring" : request.topology.name());
    if (problem.kind != core::Problem::Auto) {
      std::cout << " problem=" << core::to_string(problem);
    }
    std::cout << (fault ? " +non-fifo-fault" : "");
    if (!fault_budget.empty()) {
      std::cout << " fault-budget=crash:" << fault_budget.crashes
                << "+rewire:" << fault_budget.rewires << "@<="
                << fault_budget.max_fault_action;
    }
    std::cout << '\n';
    const mc::ModelCheckReport report =
        fault_budget.empty() ? mc::check(request, options)
                             : mc::check_with_faults(request, fault_budget,
                                                     options);
    print_report(report);
    if (!report.ok) {
      return emit_counterexample(report, out_dir,
                                 std::string(core::to_string(algorithm)));
    }
    return report.complete ? 0 : 3;
  } catch (const std::exception& error) {
    std::cerr << "udring_mc: " << error.what() << '\n';
    return 2;
  }
}
