// tools/fuzz_explorer.cpp
//
// The schedule explorer's command-line face: fuzz, record, replay.
//
//   udring_fuzz                              # fuzz (budget from UDRING_FUZZ_BUDGET)
//   udring_fuzz --algorithm=known-k-logmem-strict --inject-non-fifo
//               --iterations=500 --out=fuzz-artifacts
//   udring_fuzz --topology=tree --iterations=300     # fuzz on Euler-tour rings
//   udring_fuzz --record=trace.txt --algorithm=known-k-full --nodes=16
//               --agents=4 --sched=fifo-stress --seed=7
//   udring_fuzz --record=trace.txt --topology=graph --nodes=12 --agents=3
//   udring_fuzz --replay=trace.txt
//
// Fuzz mode exits 1 when a failure is found; each failure is shrunk to a
// minimal trace and written under --out so CI can upload it as an artifact
// and anyone can `udring_fuzz --replay=<file>` it locally. Replay mode exits
// 1 when the replay diverges from the recording — a digest mismatch, or an
// outcome that contradicts the trace's note (a recorded failure that fails
// identically exits 0) — so corpus files double as self-verifying
// regression inputs.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "explore/fuzz.h"
#include "explore/shrink.h"
#include "util/cli.h"
#include "util/io.h"

namespace {

using namespace udring;

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int replay_mode(const std::string& path) {
  const explore::ScheduleTrace trace =
      explore::ScheduleTrace::parse(read_file(path));
  const explore::ReplayOutcome outcome = explore::replay_trace(trace);
  std::cout << "replayed " << path << ": " << outcome.actions << " actions, digest "
            << outcome.digest << (outcome.failed ? " FAILED: " + outcome.reason
                                                 : " ok")
            << '\n';
  if (outcome.digest != trace.expected_digest) {
    std::cout << "DIGEST MISMATCH: recorded " << trace.expected_digest << '\n';
    return 1;
  }
  const bool expected_failure = trace.note != "ok" && !trace.note.empty();
  if (outcome.failed != expected_failure) {
    std::cout << "OUTCOME MISMATCH: trace note says '" << trace.note << "'\n";
    return 1;
  }
  return 0;
}

int record_mode(const std::string& path, core::Algorithm algorithm,
                core::ProblemSpec problem, explore::FuzzTopology topology,
                std::size_t n, std::size_t k,
                explore::ExploreSchedulerKind kind, std::uint64_t seed,
                bool fault, std::size_t fault_min_phase) {
  Rng rng(seed);
  explore::RecordRequest request;
  request.algorithm = algorithm;
  request.problem = problem;
  request.kind = kind;
  request.seed = seed;
  request.fault_non_fifo = fault;
  request.fault_min_phase = fault_min_phase;
  // --nodes sizes the underlying network for tree/graph; the recorded
  // instance is its Euler-tour virtual ring, so the trace replays
  // stand-alone.
  explore::DrawnInstance drawn = explore::draw_instance(topology, n, k, rng);
  request.node_count = drawn.node_count;
  request.homes = std::move(drawn.homes);
  request.topology = std::move(drawn.topology);
  const explore::ScheduleTrace trace = explore::record_trace(request);
  if (!write_text_file(path, trace.to_text())) {
    std::cerr << "udring_fuzz: cannot write " << path << '\n';
    return 2;
  }
  std::cout << "recorded " << path << ": " << trace.choices.size()
            << " choices, digest " << trace.expected_digest << ", outcome "
            << trace.note << '\n';
  return trace.note == "ok" ? 0 : 1;
}

int fuzz_mode(const explore::FuzzOptions& options, const std::string& out_dir) {
  const explore::FuzzReport report = explore::run_fuzz(options);
  std::cout << "fuzz: algorithm=" << core::to_string(options.algorithm)
            << " oracle=" << explore::to_string(options.oracle);
  // Budgets in the header line only when set, so fault-free CI logs diff
  // clean against historical runs.
  if (options.fault_crash_budget != 0) {
    std::cout << " crash-budget=" << options.fault_crash_budget;
  }
  if (options.fault_rewire_budget != 0) {
    std::cout << " rewire-budget=" << options.fault_rewire_budget;
  }
  std::cout << " iterations=" << report.iterations
            << " actions=" << report.total_actions
            << " failures=" << report.failures << " digest=" << report.digest
            << '\n';
  if (report.failures == 0) return 0;

  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
  std::size_t written = 0;
  for (const explore::FuzzFailure& failure : report.failure_samples) {
    std::cout << "  FAIL iteration " << failure.iteration << " @action "
              << failure.at_action << ": " << failure.reason << '\n';
    const explore::ShrinkResult shrunk = explore::shrink_trace(failure.trace);
    std::cout << "    shrunk " << shrunk.original_size << " -> "
              << shrunk.trace.choices.size() << " choices ("
              << shrunk.replays << " replays): " << shrunk.reason << '\n';
    if (!out_dir.empty()) {
      std::ostringstream name;
      name << out_dir << "/shrunk-" << core::to_string(options.algorithm)
           << "-iter" << failure.iteration << ".trace";
      if (write_text_file(name.str(), shrunk.trace.to_text())) {
        std::cout << "    wrote " << name.str() << '\n';
        ++written;
      } else {
        std::cerr << "udring_fuzz: cannot write " << name.str() << '\n';
      }
    }
  }
  if (written != 0) {
    std::cout << "replay any artifact with: udring_fuzz --replay=<file>\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string replay_path =
        cli.get("replay", "replay a trace file and verify its digest").value_or("");
    const std::string record_path =
        cli.get("record", "record one run to this trace file").value_or("");
    const std::string algorithm_name =
        cli.get("algorithm", "algorithm under test", "known-k-full")
            .value_or("known-k-full");
    const std::string problem_name =
        cli.get("problem",
                "goal oracle the runs are judged against: "
                "auto|deploy|gather|disperse (auto = the algorithm's natural "
                "problem)",
                "auto")
            .value_or("auto");
    const std::size_t gather_g =
        cli.get_size("gather-g", 2,
                     "group size g for --problem=gather (0 = total gathering)");
    const std::string sched_name =
        cli.get("sched",
                "scheduler for --record; fuzz pool restriction otherwise "
                "(empty = all kinds)",
                "")
            .value_or("");
    const std::string topology_name =
        cli.get("topology",
                "instance topology: ring|tree|graph (tree/graph fuzz and "
                "record on the Euler-tour virtual ring of a random network)",
                "ring")
            .value_or("ring");
    const std::size_t n = cli.get_size(
        "nodes", 16, "ring size (or underlying network size) for --record");
    const std::size_t k = cli.get_size("agents", 4, "agent count for --record");
    // A malformed or zero budget must not silently turn the CI fuzz gate
    // into a no-op pass; fall back to the default and say so.
    std::size_t default_budget = 200;
    if (const char* budget_env = std::getenv("UDRING_FUZZ_BUDGET")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(budget_env, &end, 10);
      if (end != budget_env && *end == '\0' && parsed > 0) {
        default_budget = static_cast<std::size_t>(parsed);
      } else {
        std::cerr << "udring_fuzz: ignoring invalid UDRING_FUZZ_BUDGET='"
                  << budget_env << "', using " << default_budget << '\n';
      }
    }
    explore::FuzzOptions options;
    options.iterations =
        cli.get_size("iterations", default_budget,
                     "fuzz budget (default: $UDRING_FUZZ_BUDGET or 200)");
    options.base_seed = cli.get_u64("seed", 1, "base seed");
    options.min_nodes = cli.get_size("min-nodes", 8, "minimum ring size");
    options.max_nodes = cli.get_size("max-nodes", 24, "maximum ring size");
    options.min_agents = cli.get_size("min-agents", 2, "minimum agent count");
    options.max_agents = cli.get_size("max-agents", 6, "maximum agent count");
    options.workers = cli.get_size("workers", 0, "worker threads (0 = all cores)");
    const std::string oracle_name =
        cli.get("oracle",
                "per-action invariant oracle: full (re-walk every node each "
                "action) | incremental (O(dirty) footprint revalidation + "
                "periodic full re-walk; use for --min-nodes >> 100)",
                "full")
            .value_or("full");
    options.oracle_full_check_every = cli.get_size(
        "oracle-full-every", 1024,
        "incremental oracle: full re-walk every N actions (0 = never)");
    options.max_recorded_failures =
        cli.get_size("max-failures", 8, "failing traces to keep and shrink");
    options.fault_non_fifo = cli.get_flag(
        "inject-non-fifo", "TEST-ONLY: weaken the FIFO link guarantee");
    options.fault_min_phase = cli.get_size(
        "fault-min-phase", 0,
        "restrict the non-FIFO fault to actions at/after this phase tag");
    const std::string faults_spec =
        cli.get("faults",
                "per-iteration fault budgets, comma list of crash=N and "
                "rewire=N (e.g. --faults=crash=1,rewire=2); drawn faults land "
                "in each trace and replay byte-identically",
                "")
            .value_or("");
    if (!faults_spec.empty()) {
      std::istringstream list(faults_spec);
      for (std::string item; std::getline(list, item, ',');) {
        const std::size_t eq = item.find('=');
        const std::string key = item.substr(0, eq);
        if (eq == std::string::npos || (key != "crash" && key != "rewire")) {
          throw std::invalid_argument("--faults: bad token '" + item +
                                      "' (want crash=N or rewire=N)");
        }
        const std::size_t value =
            static_cast<std::size_t>(std::stoull(item.substr(eq + 1)));
        (key == "crash" ? options.fault_crash_budget
                        : options.fault_rewire_budget) = value;
      }
    }
    const std::string homes_csv =
        cli.get("homes",
                "comma-separated home nodes: fuzz this fixed instance "
                "(with --nodes) instead of drawing sizes",
                "")
            .value_or("");
    if (!homes_csv.empty()) {
      options.fixed_nodes = n;
      std::istringstream list(homes_csv);
      for (std::string item; std::getline(list, item, ',');) {
        options.fixed_homes.push_back(
            static_cast<std::size_t>(std::stoull(item)));
      }
    }
    const std::string out_dir =
        cli.get("out", "directory for shrunk failing traces", "").value_or("");

    if (cli.wants_help()) {
      cli.print_help(
          "udring schedule explorer: fuzz adversarial schedules, record and "
          "replay executions");
      return 0;
    }
    if (!replay_path.empty()) return replay_mode(replay_path);

    options.algorithm = explore::algorithm_from_name(algorithm_name);
    options.problem.kind = core::problem_from_name(problem_name);
    if (options.problem.kind == core::Problem::Gather) {
      options.problem.gather_g = gather_g;
    } else if (options.problem.kind != core::Problem::Auto) {
      options.problem.gather_g = 0;  // the parameter belongs to gather only
    }
    options.topology = explore::fuzz_topology_from_name(topology_name);
    options.oracle = explore::oracle_mode_from_name(oracle_name);
    if (!record_path.empty()) {
      return record_mode(record_path, options.algorithm, options.problem,
                         options.topology, n, k,
                         explore::explore_scheduler_from_name(
                             sched_name.empty() ? "round-robin" : sched_name),
                         options.base_seed, options.fault_non_fifo,
                         options.fault_min_phase);
    }
    if (!sched_name.empty()) {
      options.schedulers = {explore::explore_scheduler_from_name(sched_name)};
    }
    return fuzz_mode(options, out_dir);
  } catch (const std::exception& error) {
    std::cerr << "udring_fuzz: " << error.what() << '\n';
    return 2;
  }
}
