// impossibility_demo — Theorem 5, live (§4.1, Fig 7).
//
// Shows why *termination detection* is impossible without knowledge of k or
// n. We run a strawman algorithm (estimate the ring from the first 4-fold
// repetition of the token distances, deploy, halt) on:
//
//   R : a small ring where every agent estimates exactly and the strawman
//       "solves" uniform deployment with termination, and
//   R': the paper's blow-up — 2qn + 2n nodes whose first (q+1)n nodes repeat
//       R's configuration. The repeated agents cannot distinguish R' from R
//       (Lemma 1), halt exactly as in R, and the deployment is wrong.
//
//   ./impossibility_demo --n=12

#include <cstdlib>
#include <iostream>
#include <memory>

#include "config/generators.h"
#include "core/premature_halt.h"
#include "sim/checker.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "util/cli.h"
#include "viz/ascii_ring.h"

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  if (cli.wants_help()) {
    cli.print_help("Theorem 5 demonstration: no termination detection without k or n");
    return EXIT_SUCCESS;
  }

  const std::size_t n = 12;
  const std::vector<std::size_t> homes = {0, 1, 5};
  const auto factory = [](sim::AgentId) {
    return std::make_unique<core::PrematureHaltAgent>();
  };

  std::cout << "== Act 1: the strawman looks correct on R (n=" << n << ", k="
            << homes.size() << ") ==\n\n";
  sim::Simulator small(n, homes, factory);
  sim::SynchronousScheduler small_scheduler;
  (void)small.run(small_scheduler);
  std::cout << viz::render(small) << "\n" << viz::gap_summary(small) << "\n";
  const auto small_check = sim::UniformDeploymentOracle(true).check_goal(small);
  std::cout << "uniform with termination: " << (small_check.ok ? "YES" : "NO")
            << "\n\n";

  const std::size_t rounds = static_cast<std::size_t>(small_scheduler.rounds());
  const std::size_t q = (rounds + n) / n;
  const auto instance = gen::impossibility_ring(homes, n, q);

  std::cout << "== Act 2: the adversary builds R' with 2qn+2n = "
            << instance.node_count << " nodes (q=" << q << "), repeating R's\n"
            << "configuration " << q + 1 << " times and leaving half the ring "
            << "empty ==\n\n";

  sim::Simulator large(instance.node_count, instance.homes, factory);
  sim::SynchronousScheduler large_scheduler;
  (void)large.run(large_scheduler);

  std::cout << "All " << instance.homes.size() << " agents halted: "
            << (large.all_halted() ? "YES" : "NO")
            << " — each believes it detected termination.\n";
  const auto large_check = sim::UniformDeploymentOracle(true).check_goal(large);
  std::cout << "uniform with termination: " << (large_check.ok ? "YES" : "NO")
            << "\n  reason: " << large_check.reason << "\n\n";

  std::cout << "Agents of the repeated region copied R exactly (Lemma 1):\n";
  for (sim::AgentId id = 0; id < homes.size(); ++id) {
    std::cout << "  agent " << id << ": " << small.metrics().agent(id).moves
              << " moves in R vs " << large.metrics().agent(id).moves
              << " moves in R'\n";
  }
  std::cout << "\nThey halted at spacing n/k = " << n / homes.size()
            << " where R' needs " << instance.node_count / instance.homes.size()
            << " — premature termination, exactly as Theorem 5 predicts.\n"
            << "(Algorithm 6 handles R' by *suspending* instead of halting —\n"
            << "run ./symmetry_adaptive to see it.)\n";
  return large_check.ok ? EXIT_FAILURE : EXIT_SUCCESS;  // failure IS the demo
}
