// network_patrol — the paper's first motivating scenario (§1.1).
//
// Agents carry maintenance services (software updates, health checks) and
// patrol a ring network. If agents are bunched up, some nodes wait a long
// time between visits; deployed uniformly, every node is serviced every
// ~n/k steps. This example:
//
//   1. places k service agents on random nodes of an n-ring,
//   2. runs Algorithms 2+3 (O(log n) memory — realistic for tiny agents)
//      to spread them uniformly,
//   3. then simulates a patrol epoch and compares worst-case/average service
//      staleness before vs after deployment.
//
//   ./network_patrol --n=48 --k=6 --seed=3

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/cli.h"
#include "util/table.h"
#include "viz/ascii_ring.h"

namespace {

// In a unidirectional patrol, node v is next serviced by the nearest agent
// *behind* it; the worst node's wait is the largest inter-agent gap. Compute
// staleness stats from agent positions.
struct Staleness {
  std::size_t worst = 0;
  double average = 0;
};

Staleness staleness(const std::vector<std::size_t>& agents, std::size_t n) {
  const auto gaps = udring::sim::ring_gaps(agents, n);
  Staleness s;
  double weighted = 0;
  for (const std::size_t gap : gaps) {
    s.worst = std::max(s.worst, gap);
    // Nodes inside a gap of length g wait 1..g steps: average (g+1)/2 over g nodes.
    weighted += static_cast<double>(gap) * (static_cast<double>(gap) + 1) / 2.0;
  }
  s.average = weighted / static_cast<double>(n);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  const std::size_t n = cli.get_size("n", 48, "ring size (network nodes)");
  const std::size_t k = cli.get_size("k", 6, "number of patrol agents");
  const std::uint64_t seed = cli.get_u64("seed", 3, "rng seed");
  if (cli.wants_help()) {
    cli.print_help("patrol-service staleness before/after uniform deployment");
    return EXIT_SUCCESS;
  }

  Rng rng(seed);
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = sim::SchedulerKind::Random;
  spec.seed = seed;

  const Staleness before = staleness(spec.homes, n);

  std::cout << "network_patrol: " << k << " maintenance agents on a " << n
            << "-node ring\n\nBefore deployment (random drop points):\n";
  const auto report = core::run_algorithm(core::Algorithm::KnownKLogMem, spec);
  if (!report.success) {
    std::cerr << "deployment failed: " << report.failure << "\n";
    return EXIT_FAILURE;
  }
  const Staleness after = staleness(report.final_positions, n);

  Table table({"placement", "worst wait", "avg wait", "ideal n/k"});
  table.add_row({"initial (random)", Table::num(before.worst),
                 Table::num(before.average, 1), Table::num(n / k)});
  table.add_row({"after uniform deployment", Table::num(after.worst),
                 Table::num(after.average, 1), Table::num(n / k)});
  std::cout << table << "\n";

  std::cout << "Deployment cost: " << report.total_moves << " total moves ("
            << Table::num(static_cast<double>(report.total_moves) /
                              static_cast<double>(k * n),
                          2)
            << "·kn), " << report.makespan << " ideal time units, "
            << report.max_memory_bits << " bits/agent peak memory.\n\n";

  std::cout << "Every node is now serviced every ⌈n/k⌉ = " << (n + k - 1) / k
            << " steps — worst-case staleness dropped from " << before.worst
            << " to " << after.worst << ".\n";
  return EXIT_SUCCESS;
}
