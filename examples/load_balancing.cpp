// load_balancing — the paper's second motivating scenario (§1.1).
//
// Agents carry large database replicas. Not every node can store the
// database, but every node wants a nearby replica. Uniform deployment
// minimizes the worst forward distance from any node to its next replica —
// and, unlike a centrally computed placement, it needs no coordinator, no
// node identifiers, and no knowledge of the ring size (we use the relaxed
// algorithm: agents know neither k nor n).
//
//   ./load_balancing --n=60 --k=5 --seed=11

#include <cstdlib>
#include <iostream>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

// Forward distance from each node to the nearest replica (queries travel the
// ring's direction). Returns (max, mean).
std::pair<std::size_t, double> access_cost(const std::vector<std::size_t>& replicas,
                                           std::size_t n) {
  std::size_t worst = 0;
  double total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t best = n;
    for (const std::size_t r : replicas) {
      best = std::min(best, (r + n - v) % n);
    }
    worst = std::max(worst, best);
    total += static_cast<double>(best);
  }
  return {worst, total / static_cast<double>(n)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  const std::size_t n = cli.get_size("n", 60, "ring size");
  const std::size_t k = cli.get_size("k", 5, "number of replica agents");
  const std::uint64_t seed = cli.get_u64("seed", 11, "rng seed");
  if (cli.wants_help()) {
    cli.print_help(
        "replica placement via uniform deployment (agents know neither k nor n)");
    return EXIT_SUCCESS;
  }

  Rng rng(seed);
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = sim::SchedulerKind::Random;
  spec.seed = seed;

  const auto [worst_before, mean_before] = access_cost(spec.homes, n);

  std::cout << "load_balancing: " << k << " database replicas on a " << n
            << "-node ring (agents know neither k nor n)\n\n";

  const auto report = core::run_algorithm(core::Algorithm::UnknownRelaxed, spec);
  if (!report.success) {
    std::cerr << "deployment failed: " << report.failure << "\n";
    return EXIT_FAILURE;
  }
  const auto [worst_after, mean_after] = access_cost(report.final_positions, n);

  Table table({"placement", "worst access", "mean access"});
  table.add_row({"initial (random)", Table::num(worst_before),
                 Table::num(mean_before, 2)});
  table.add_row({"after relaxed deployment", Table::num(worst_after),
                 Table::num(mean_after, 2)});
  std::cout << table << "\n";

  std::cout << "The agents suspended (Definition 2 — no termination detection is\n"
            << "possible without knowing k or n; Theorem 5) after "
            << report.total_moves << " total moves.\n"
            << "Worst-case access distance fell from " << worst_before << " to "
            << worst_after << " (optimal ⌈n/k⌉−1 = " << ((n + k - 1) / k) - 1
            << ").\n";
  return EXIT_SUCCESS;
}
