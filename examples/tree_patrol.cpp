// tree_patrol — the paper's §5 future work, running: uniform deployment on
// a *tree* network via the Euler-tour ring embedding.
//
// Maintenance agents live on a random tree (a typical LAN/overlay shape).
// Walking depth-first, the tree looks like a virtual unidirectional ring of
// 2(n−1) nodes; the unmodified ring algorithms then spread the agents
// uniformly along the tour, which bounds the patrol staleness of every tree
// node by ⌈2(n−1)/k⌉ tour steps.
//
//   ./tree_patrol --n=24 --k=5 --seed=9 --shape=random

#include <cstdlib>
#include <iostream>
#include <set>

#include "embed/tree_deploy.h"
#include "sim/checker.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

udring::embed::TreeNetwork make_tree(const std::string& shape, std::size_t n,
                                     udring::Rng& rng) {
  using namespace udring::embed;
  if (shape == "path") return path_tree(n);
  if (shape == "star") return star_tree(n);
  if (shape == "binary") return binary_tree(n);
  if (shape == "caterpillar") return caterpillar_tree(n / 3, 2);
  return random_tree(n, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  const std::size_t n = cli.get_size("n", 24, "tree size (nodes)");
  const std::size_t k = cli.get_size("k", 5, "number of agents");
  const std::uint64_t seed = cli.get_u64("seed", 9, "rng seed");
  const std::string shape =
      cli.get("shape", "tree shape: random|path|star|binary|caterpillar", "random")
          .value();
  if (cli.wants_help()) {
    cli.print_help("uniform deployment on trees via the Euler-tour embedding (§5)");
    return EXIT_SUCCESS;
  }

  Rng rng(seed);
  const embed::TreeNetwork tree = make_tree(shape, n, rng);
  const embed::EulerRing ring(tree);

  // Distinct random tree homes.
  std::vector<embed::TreeNodeId> homes;
  std::set<embed::TreeNodeId> used;
  while (homes.size() < k && used.size() < tree.size()) {
    const auto node = static_cast<embed::TreeNodeId>(rng.below(tree.size()));
    if (used.insert(node).second) homes.push_back(node);
  }

  std::cout << "tree_patrol: " << k << " agents on a " << tree.size()
            << "-node " << shape << " tree → virtual ring of " << ring.size()
            << " nodes (Euler tour)\n\nTour (first 2(n-1) steps): ";
  for (std::size_t v = 0; v < std::min<std::size_t>(ring.size(), 24); ++v) {
    std::cout << ring.tree_node(v) << ' ';
  }
  if (ring.size() > 24) std::cout << "…";
  std::cout << "\n\n";

  const auto [worst_before, mean_before] = embed::tree_coverage(tree, homes);
  const embed::TreeDeployReport report =
      embed::deploy_on_tree(tree, homes, core::Algorithm::KnownKFull);
  if (!report.success) {
    std::cerr << "deployment failed: " << report.failure << "\n";
    return EXIT_FAILURE;
  }

  std::vector<std::size_t> initial_tour_positions;
  for (const auto home : homes) {
    initial_tour_positions.push_back(ring.first_position(home));
  }
  const auto gaps_before = sim::ring_gaps(initial_tour_positions, ring.size());
  const auto gaps_after =
      sim::ring_gaps(report.virtual_positions, report.virtual_ring_size);

  Table table({"metric", "before", "after", "bound"});
  table.add_row({"worst hop distance to an agent", Table::num(worst_before),
                 Table::num(report.worst_tree_distance), "-"});
  table.add_row({"mean hop distance to an agent", Table::num(mean_before, 2),
                 Table::num(report.mean_tree_distance, 2), "-"});
  table.add_row(
      {"max tour gap (patrol staleness)",
       Table::num(*std::max_element(gaps_before.begin(), gaps_before.end())),
       Table::num(*std::max_element(gaps_after.begin(), gaps_after.end())),
       "⌈2(n-1)/k⌉ = " + Table::num((ring.size() + k - 1) / k)});
  std::cout << table << "\n";

  std::cout << "Agents end on tree nodes:";
  for (const auto node : report.tree_positions) std::cout << ' ' << node;
  std::cout << "\n(tour positions:";
  for (const auto v : report.virtual_positions) std::cout << ' ' << v;
  std::cout << ")\n\nCost: " << report.total_moves
            << " tree-edge traversals — identical accounting to the ring, as\n"
               "§5 promises (the embedding preserves total moves).\n";
  return EXIT_SUCCESS;
}
