// explorer — the everything-knob example: run any algorithm on any
// configuration family under any scheduler, with optional step trace and
// before/after rendering. Handy for poking at the library and for
// reproducing any single experiment cell by hand.
//
//   ./explorer --algo=unknown-relaxed --config=fig9 --trace
//   ./explorer --algo=known-k-logmem --n=30 --k=6 --scheduler=priority
//   ./explorer --algo=known-k-full --config=periodic --n=24 --k=8 --l=4
//   ./explorer --topology=tree --n=20 --k=5      # native Euler-tour ring
//   ./explorer --topology=graph --n=16 --k=4     # spanning-tree embedding

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "config/generators.h"
#include "core/runner.h"
#include "embed/topology.h"
#include "sim/checker.h"
#include "sim/export.h"
#include "util/cli.h"
#include "util/table.h"
#include "viz/ascii_ring.h"

namespace {

using namespace udring;

core::Algorithm parse_algorithm(const std::string& name) {
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownNFull,
        core::Algorithm::KnownKLogMem, core::Algorithm::KnownKLogMemStrict,
        core::Algorithm::UnknownRelaxed, core::Algorithm::Rendezvous}) {
    if (name == core::to_string(algorithm)) return algorithm;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

sim::SchedulerKind parse_scheduler(const std::string& name) {
  for (const auto kind : sim::all_scheduler_kinds()) {
    if (name == sim::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

struct Config {
  std::size_t n;
  std::vector<std::size_t> homes;
};

Config make_config(const std::string& family, std::size_t n, std::size_t k,
                   std::size_t l, Rng& rng) {
  if (family == "random") return {n, gen::random_homes(n, k, rng)};
  if (family == "packed") return {n, gen::packed_quarter_homes(n, k)};
  if (family == "periodic") return {n, gen::periodic_homes(n, k, l, rng)};
  if (family == "uniform") return {n, gen::uniform_homes(n, k)};
  if (family == "fig1a") return {gen::kFig1aNodes, gen::fig1a_homes()};
  if (family == "fig1b") return {gen::kFig1bNodes, gen::fig1b_homes()};
  if (family == "fig5") return {gen::kFig5Nodes, gen::fig5_homes()};
  if (family == "fig9") return {gen::kFig9Nodes, gen::fig9_homes()};
  if (family == "fig11") return {gen::kFig11Nodes, gen::fig11_homes()};
  if (family == "stress") return {gen::kLogmemStressNodes, gen::logmem_stress_homes()};
  throw std::invalid_argument("unknown config family: " + family);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string algo_name =
      cli.get("algo",
              "algorithm: known-k-full|known-n-full|known-k-logmem|"
              "known-k-logmem-strict|unknown-relaxed|rendezvous",
              "known-k-full")
          .value();
  const std::string config_name =
      cli.get("config",
              "configuration: random|packed|periodic|uniform|fig1a|fig1b|fig5|"
              "fig9|fig11|stress",
              "random")
          .value();
  const std::string scheduler_name =
      cli.get("scheduler", "round-robin|random|synchronous|priority|burst",
              "round-robin")
          .value();
  const std::string topology_name =
      cli.get("topology",
              "ring|tree|graph — tree/graph run natively on the Euler-tour "
              "virtual ring of a random network of n nodes (random config "
              "family only)",
              "ring")
          .value_or("ring");
  const std::size_t n = cli.get_size("n", 24, "ring size (generator families)");
  const std::size_t k = cli.get_size("k", 6, "agents (generator families)");
  const std::size_t l = cli.get_size("l", 2, "symmetry degree (periodic family)");
  const std::uint64_t seed = cli.get_u64("seed", 1, "rng seed");
  const bool trace = cli.get_flag("trace", "print every atomic action");
  const bool json = cli.get_flag("json", "emit the final state as JSON and exit");
  if (cli.wants_help()) {
    cli.print_help("udring explorer: any algorithm × configuration × scheduler");
    return EXIT_SUCCESS;
  }

  Rng rng(seed);
  const core::Algorithm algorithm = parse_algorithm(algo_name);

  core::RunSpec spec;
  if (topology_name == "ring") {
    const Config config = make_config(config_name, n, k, l, rng);
    spec.node_count = config.n;
    spec.homes = config.homes;
  } else {
    // Native topology path: draw a network, embed it, and place k agents at
    // the first tour positions of k distinct underlying nodes.
    if (topology_name == "tree") {
      spec.topology = embed::random_network_topology(
          embed::RandomNetworkKind::Tree, n, rng);
    } else if (topology_name == "graph") {
      spec.topology = embed::random_network_topology(
          embed::RandomNetworkKind::Graph, n, rng);
    } else {
      throw std::invalid_argument("unknown topology: " + topology_name);
    }
    spec.node_count = spec.topology.size();
    spec.homes =
        embed::draw_virtual_homes(spec.topology, std::min(k, n), rng);
  }
  spec.scheduler = parse_scheduler(scheduler_name);
  spec.seed = seed;
  spec.sim_options.record_events = trace;

  if (json) {
    auto simulator = core::make_simulator(algorithm, spec);
    auto scheduler =
        sim::make_scheduler(spec.scheduler, seed, spec.homes.size());
    (void)simulator->run(*scheduler);
    sim::write_json(std::cout, *simulator);
    std::cout << "\n";
    return core::evaluate_goal(algorithm, *simulator).ok ? EXIT_SUCCESS
                                                         : EXIT_FAILURE;
  }

  std::cout << "explorer: " << core::to_string(algorithm) << " on "
            << (topology_name == "ring" ? config_name
                                        : topology_name + " (Euler tour)")
            << " (n=" << spec.node_count << ", k=" << spec.homes.size()
            << ", l=" << core::config_symmetry_degree(spec.homes, spec.node_count)
            << ") under " << scheduler_name << ", seed " << seed << "\n\n";

  auto simulator = core::make_simulator(algorithm, spec);
  std::cout << "Initial configuration:\n" << viz::render(*simulator) << "\n";

  auto scheduler =
      sim::make_scheduler(spec.scheduler, seed, spec.homes.size());
  const auto result = simulator->run(*scheduler);

  if (trace) {
    std::cout << "Trace (" << simulator->log().events().size() << " events):\n";
    for (const auto& event : simulator->log().events()) {
      std::cout << "  " << event << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "Final configuration:\n"
            << viz::render(*simulator) << "\n"
            << viz::gap_summary(*simulator) << "\n\n";

  const auto goal = core::evaluate_goal(algorithm, *simulator);
  Table table({"metric", "value"});
  table.add_row({"outcome", result.quiescent() ? "quiescent" : "ACTION LIMIT"});
  table.add_row({"goal", goal.ok ? "achieved" : "FAILED: " + goal.reason});
  table.add_row({"atomic actions", Table::num(result.actions)});
  table.add_row({"total moves", Table::num(simulator->metrics().total_moves())});
  table.add_row({"ideal time", Table::num(static_cast<std::size_t>(
                                    simulator->metrics().makespan()))});
  table.add_row(
      {"peak memory bits", Table::num(simulator->metrics().max_memory_bits())});
  std::cout << table;
  return goal.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
