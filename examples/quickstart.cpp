// quickstart — the five-minute tour of udring.
//
// Builds an asynchronous unidirectional ring, drops k agents on random
// distinct home nodes, runs the paper's Algorithm 1 (agents know k) under a
// random fair scheduler, and checks the result against the Definition-1
// oracle: all agents halted, spaced ⌊n/k⌋ or ⌈n/k⌉ apart.
//
//   ./quickstart --n=16 --k=4 --seed=7 --scheduler=random

#include <cstdlib>
#include <iostream>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/cli.h"
#include "viz/ascii_ring.h"

namespace {

udring::sim::SchedulerKind parse_scheduler(const std::string& name) {
  for (const auto kind : udring::sim::all_scheduler_kinds()) {
    if (name == udring::sim::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  const std::size_t n = cli.get_size("n", 16, "ring size");
  const std::size_t k = cli.get_size("k", 4, "number of agents");
  const std::uint64_t seed = cli.get_u64("seed", 7, "rng seed (homes + schedule)");
  const std::string scheduler_name =
      cli.get("scheduler", "fair scheduler: round-robin|random|synchronous|priority|burst",
              "random")
          .value();
  if (cli.wants_help()) {
    cli.print_help("uniform deployment quickstart (Algorithm 1, known k)");
    return EXIT_SUCCESS;
  }

  Rng rng(seed);
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = parse_scheduler(scheduler_name);
  spec.seed = seed;

  std::cout << "udring quickstart: n=" << n << ", k=" << k << ", scheduler="
            << scheduler_name << ", seed=" << seed << "\n\nInitial homes:";
  for (const auto home : spec.homes) std::cout << ' ' << home;
  std::cout << "\n(symmetry degree l = "
            << core::config_symmetry_degree(spec.homes, n) << ")\n\n";

  // Run Algorithm 1 and keep the simulator around for rendering.
  auto simulator = core::make_simulator(core::Algorithm::KnownKFull, spec);
  auto scheduler = sim::make_scheduler(spec.scheduler, seed, k);
  const auto result = simulator->run(*scheduler);

  std::cout << "Final configuration ('h' = halted):\n"
            << viz::render(*simulator) << "\n"
            << viz::gap_summary(*simulator) << "\n\n";

  const auto check = sim::UniformDeploymentOracle(true).check_goal(*simulator);
  std::cout << "atomic actions: " << result.actions
            << "\ntotal moves:    " << simulator->metrics().total_moves()
            << "\nideal time:     " << simulator->metrics().makespan()
            << "\npeak memory:    " << simulator->metrics().max_memory_bits()
            << " bits/agent\nuniform:        " << (check.ok ? "YES" : "NO");
  if (!check.ok) std::cout << "  (" << check.reason << ")";
  std::cout << "\n";
  return check.ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
