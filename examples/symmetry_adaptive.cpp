// symmetry_adaptive — Theorem 6's 1/l speedup, live (§4.2, Figs 1 and 11).
//
// The relaxed algorithm (no knowledge of k or n) adapts to the symmetry
// degree l of the initial configuration: agents on an (N, l)-ring settle for
// the fundamental ring estimate N = n/l and finish in O(kn/l) moves and
// O(n/l) time. This example runs the same n and k across every feasible l
// and prints the measured costs.
//
//   ./symmetry_adaptive --n=48 --k=8 --seed=5

#include <cstdlib>
#include <iostream>

#include "config/generators.h"
#include "core/runner.h"
#include "core/unknown_relaxed.h"
#include "util/bits.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace udring;
  Cli cli(argc, argv);
  const std::size_t n = cli.get_size("n", 48, "ring size");
  const std::size_t k = cli.get_size("k", 8, "number of agents");
  const std::uint64_t seed = cli.get_u64("seed", 5, "rng seed");
  if (cli.wants_help()) {
    cli.print_help("relaxed uniform deployment cost as a function of symmetry degree");
    return EXIT_SUCCESS;
  }

  std::cout << "symmetry_adaptive: relaxed algorithm on n=" << n << ", k=" << k
            << " for every symmetry degree l | gcd(n, k)\n\n";

  Rng rng(seed);
  Table table({"l", "est. ring N", "total moves", "moves/(kn)", "ideal time",
               "peak memory (bits)"});

  const std::size_t g = gcd(n, k);
  for (std::size_t l = 1; l <= g; ++l) {
    if (g % l != 0) continue;
    if (k / l == 1 && l != k) continue;  // single agent per segment needs l = k
    core::RunSpec spec;
    spec.node_count = n;
    spec.homes = l == 1 ? gen::random_homes(n, k, rng)
                        : gen::periodic_homes(n, k, l, rng);
    while (l == 1 && core::config_symmetry_degree(spec.homes, n) != 1) {
      spec.homes = gen::random_homes(n, k, rng);
    }
    spec.scheduler = sim::SchedulerKind::Synchronous;
    spec.seed = seed;

    auto simulator = core::make_simulator(core::Algorithm::UnknownRelaxed, spec);
    auto scheduler = sim::make_scheduler(spec.scheduler, seed, k);
    (void)simulator->run(*scheduler);
    const auto check = sim::UniformDeploymentOracle(false).check_goal(*simulator);
    if (!check.ok) {
      std::cerr << "l=" << l << " failed: " << check.reason << "\n";
      return EXIT_FAILURE;
    }
    const auto& agent0 =
        dynamic_cast<const core::UnknownRelaxedAgent&>(simulator->program(0));
    const std::size_t moves = simulator->metrics().total_moves();
    table.add_row({Table::num(l), Table::num(agent0.estimated_n()),
                   Table::num(moves),
                   Table::num(static_cast<double>(moves) /
                                  static_cast<double>(k * n),
                              2),
                   Table::num(static_cast<std::size_t>(
                       simulator->metrics().makespan())),
                   Table::num(simulator->metrics().max_memory_bits())});
  }
  std::cout << table << "\n";
  std::cout << "Reading the table: every cost column shrinks like 1/l — more\n"
            << "symmetric starts are cheaper (Theorem 6), even though the agents\n"
            << "never learn n, k, or l. On fully symmetric starts (l = k) the\n"
            << "total work is O(n), beating even the known-k algorithms.\n";
  return EXIT_SUCCESS;
}
