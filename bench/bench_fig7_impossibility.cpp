// bench_fig7_impossibility — reproduces Figure 7 / Theorem 5 as a scaling
// experiment: for growing base rings R, build the adversarial ring R'
// (2qn + 2n nodes, configuration repeated q+1 times) and measure
//
//   - the indistinguishability horizon: the number of synchronous rounds for
//     which the repeated region's local configurations match R exactly
//     (Lemma 1 predicts ≥ the strawman's full run, since T(E_R) ≤ qn);
//   - the strawman's verdict on R (succeeds) vs R' (halts prematurely);
//   - the relaxed algorithm's verdict on the same R' (succeeds, suspended).

#include <memory>

#include "core/premature_halt.h"
#include "core/unknown_relaxed.h"
#include "sim/checker.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

// One exact lockstep round via the public API (agents enabled at the round
// boundary act once, in id order).
bool lockstep_round(sim::Simulator& simulator) {
  std::vector<sim::AgentId> enabled = simulator.enabled();
  if (enabled.empty()) return false;
  std::sort(enabled.begin(), enabled.end());
  for (const sim::AgentId id : enabled) (void)simulator.step_agent(id);
  return true;
}

struct Local {
  std::size_t tokens;
  std::vector<std::tuple<sim::AgentStatus, std::uint64_t, std::size_t>> agents;
  bool operator==(const Local&) const = default;
};

std::vector<Local> locals_of(const sim::Snapshot& snapshot) {
  std::vector<Local> locals(snapshot.node_count);
  for (std::size_t v = 0; v < snapshot.node_count; ++v) {
    locals[v].tokens = snapshot.tokens[v];
  }
  for (const auto& agent : snapshot.agents) {
    locals[agent.node].agents.emplace_back(agent.status, agent.state_hash,
                                           agent.moves);
  }
  for (auto& local : locals) std::sort(local.agents.begin(), local.agents.end());
  return locals;
}

void print_report() {
  std::cout << "Reproduction of Fig 7 / Theorem 5: the indistinguishability\n"
               "construction at increasing scale. Strawman = estimate-then-halt.\n";

  print_section(std::cout, "Lemma 1 horizon and premature termination");
  Table table({"base n", "k", "T(E_R) rounds", "q", "R' nodes", "R' agents",
               "match horizon", ">= qn?", "R uniform+halt", "R' uniform+halt",
               "R' relaxed ok"});

  struct Base {
    std::size_t n;
    std::vector<std::size_t> homes;
  };
  for (const Base& base :
       {Base{12, {0, 1, 5}}, Base{20, {0, 2, 3, 9}}, Base{30, {0, 1, 4, 9, 11}},
        Base{40, {0, 3, 4, 10, 17, 19}}}) {
    const auto factory = [](sim::AgentId) {
      return std::make_unique<core::PrematureHaltAgent>();
    };

    // Run R to quiescence, counting rounds.
    sim::Simulator reference(base.n, base.homes, factory);
    std::size_t rounds = 0;
    while (lockstep_round(reference)) ++rounds;
    const bool r_ok =
        sim::UniformDeploymentOracle(true).check_goal(reference).ok;

    const std::size_t q = (rounds + base.n) / base.n;
    const auto instance = gen::impossibility_ring(base.homes, base.n, q);

    // Lockstep R vs R', measuring the horizon where the repeated region's
    // local configurations match.
    sim::Simulator small(base.n, base.homes, factory);
    sim::Simulator large(instance.node_count, instance.homes, factory);
    const std::size_t qn = q * base.n;
    std::size_t horizon = 0;
    for (std::size_t t = 1; t <= qn; ++t) {
      const bool small_live = lockstep_round(small);
      (void)lockstep_round(large);
      if (!small_live) {
        horizon = qn;  // R finished while still matching: full horizon
        break;
      }
      const auto small_locals = locals_of(small.snapshot());
      const auto large_locals = locals_of(large.snapshot());
      bool match = true;
      for (std::size_t j = t; j < qn + base.n && match; ++j) {
        match = (large_locals[j] == small_locals[j % base.n]);
      }
      if (!match) break;
      horizon = t;
    }

    // Finish R' and evaluate both verdicts.
    sim::Simulator verdict(instance.node_count, instance.homes, factory);
    sim::RoundRobinScheduler scheduler;
    (void)verdict.run(scheduler);
    const bool rp_ok = sim::UniformDeploymentOracle(true).check_goal(verdict).ok;

    sim::SimOptions options;
    options.max_actions = 128 * instance.node_count * instance.homes.size();
    sim::Simulator relaxed(instance.node_count, instance.homes,
                           [](sim::AgentId) {
                             return std::make_unique<core::UnknownRelaxedAgent>();
                           },
                           options);
    sim::RoundRobinScheduler relaxed_scheduler;
    (void)relaxed.run(relaxed_scheduler);
    const bool relaxed_ok =
        sim::UniformDeploymentOracle(false).check_goal(relaxed).ok;

    table.add_row({Table::num(base.n), Table::num(base.homes.size()),
                   Table::num(rounds), Table::num(q),
                   Table::num(instance.node_count),
                   Table::num(instance.homes.size()), Table::num(horizon),
                   horizon >= qn ? "yes" : "NO", r_ok ? "yes" : "NO",
                   rp_ok ? "YES (bad!)" : "no (as predicted)",
                   relaxed_ok ? "yes" : "NO"});
  }
  std::cout << table;
  std::cout
      << "\nReading the table: the repeated region stays indistinguishable for\n"
         "the full qn-round horizon (Lemma 1), so the strawman replays R and\n"
         "halts at the wrong spacing on every R' — while the relaxed Algorithm 6\n"
         "(which suspends instead of halting) deploys the same R' correctly.\n"
         "Termination detection is exactly what is impossible (Theorem 5).\n";
}

void register_timings() {
  benchmark::RegisterBenchmark("fig7/construction/n=30", [](benchmark::State& state) {
    for (auto _ : state) {
      const auto instance = gen::impossibility_ring({0, 1, 4, 9, 11}, 30, 14);
      sim::Simulator large(instance.node_count, instance.homes,
                           [](sim::AgentId) {
                             return std::make_unique<core::PrematureHaltAgent>();
                           });
      sim::RoundRobinScheduler scheduler;
      const auto result = large.run(scheduler);
      benchmark::DoNotOptimize(result.actions);
    }
  })->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
