// bench_ablation_scheduler — schedule-sensitivity ablation (the Table 2
// execution model exercised from every direction): each algorithm under
// each fair scheduler family on the same instances.
//
// The paper's claims are quantified over all fair schedules; this bench
// verifies the *outcome* is schedule-invariant (uniform everywhere) and
// measures how much the *cost* moves: total moves are schedule-independent
// for the geometry-determined algorithms, while causal ideal time stretches
// under adversarial (priority/burst) schedules — asynchrony costs latency,
// never correctness.

#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Scheduler ablation: every algorithm × every fair scheduler family\n"
               "(n = 192, k = 16; 5 seeds; same configurations per row).\n";

  // The full ablation is one campaign: algorithms × scheduler kinds on one
  // instance — the scheduler axis is a first-class grid dimension.
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
                     core::Algorithm::UnknownRelaxed};
  grid.schedulers = sim::all_scheduler_kinds();
  grid.instances = {{192, 16}};
  grid.seeds = 5;
  const exp::CampaignResult result = exp::run_campaign(grid);

  for (const auto& [algorithm, label] :
       {std::make_pair(core::Algorithm::KnownKFull, "Algorithm 1"),
        std::make_pair(core::Algorithm::KnownKLogMem, "Algorithms 2+3"),
        std::make_pair(core::Algorithm::UnknownRelaxed, "Algorithms 4-6")}) {
    print_section(std::cout, label);
    Table table({"scheduler", "moves", "causal time", "success"});
    for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
      const Averages avg = result.averages(
          {algorithm, ConfigFamily::RandomAny, kind, 192, 16, 1});
      table.add_row({std::string(sim::to_string(kind)), Table::num(avg.moves, 0),
                     Table::num(avg.makespan, 0),
                     avg.success_rate == 1.0 ? "yes" : "NO"});
    }
    std::cout << table;
  }
  std::cout
      << "\nSuccess is 'yes' in every cell — the correctness claims really are\n"
         "schedule-invariant. Moves barely move (for Algorithm 1 they are\n"
         "identical across schedulers: targets are geometry-determined). The\n"
         "causal-time column is the interesting one: burst/priority adversaries\n"
         "serialize agents, so the critical path grows from ~3n toward the\n"
         "total-work bound — asynchrony is paid in latency, not in moves.\n";
}

void register_timings() {
  for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
    const std::string name =
        std::string("sched/") + std::string(sim::to_string(kind)) + "/algo1/n=192";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [kind](benchmark::State& state) {
          std::uint64_t seed = 1;
          for (auto _ : state) {
            Rng rng(seed++);
            core::RunSpec spec;
            spec.node_count = 192;
            spec.homes = gen::random_homes(192, 16, rng);
            spec.scheduler = kind;
            spec.seed = seed;
            const auto report =
                core::run_algorithm(core::Algorithm::KnownKFull, spec);
            benchmark::DoNotOptimize(report.total_moves);
          }
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
