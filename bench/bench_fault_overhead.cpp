// bench/bench_fault_overhead.cpp
//
// Cost of the structured fault-injection layer (sim/fault.h) on the action
// loop, and the A/B guarantee the layer ships with: an EMPTY FaultPlan is
// free. The execution loop consults its fault cursor only when the plan
// carries events, so a default-constructed SimOptions (fault plan "off")
// and an explicitly installed empty plan must time within noise of each
// other AND produce byte-identical runs — the report section below checks
// the equality and exits nonzero on any divergence, the timing rows are
// guarded by scripts/bench_compare.py against the committed baseline.
//
//   bench_fault_overhead                       # report + timings
//   bench_fault_overhead --benchmark_filter=none   # digest A/B only
//
// Rows:
//   BM_ActionLoop/off     — default SimOptions, no plan ever mentioned
//   BM_ActionLoop/empty   — an explicitly installed (still empty) plan
//   BM_ActionLoop/crash   — one crash-stop fault live in the loop
//   BM_ActionLoop/rewire  — two dynamic-ring rewiring points live

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "support/bench_common.h"

namespace {

using namespace udring;

constexpr std::size_t kNodes = 64;
constexpr std::size_t kAgents = 8;

[[nodiscard]] core::RunSpec base_spec() {
  core::RunSpec spec;
  spec.node_count = kNodes;
  Rng rng(42);
  spec.homes =
      bench::draw_homes(bench::ConfigFamily::RandomAny, kNodes, kAgents, 1, rng);
  spec.scheduler = sim::SchedulerKind::RoundRobin;
  return spec;
}

[[nodiscard]] sim::FaultPlan plan_for(const std::string& variant) {
  sim::FaultPlan plan;
  if (variant == "crash") {
    plan.crashes = {{1, 24}};
  } else if (variant == "rewire") {
    plan.rewire_at = {16, 48};
  }
  // "off" and "empty" both return the empty plan; "off" never installs it.
  plan.normalize();
  return plan;
}

void BM_ActionLoop(benchmark::State& state, const std::string& variant) {
  core::RunSpec spec = base_spec();
  if (variant != "off") spec.sim_options.faults = plan_for(variant);
  core::RunContext ctx;
  std::size_t actions = 0;
  for (auto _ : state) {
    const core::RunReport report =
        ctx.run(core::Algorithm::KnownKFull, spec);
    benchmark::DoNotOptimize(report.total_moves);
    actions += report.result.actions;
    // Fault variants are EXPECTED to degrade the goal; only the fault-free
    // rows assert success, so a planted failure cannot masquerade as a
    // timing artifact.
    if ((variant == "off" || variant == "empty") && !report.success) {
      state.SkipWithError("fault-free run failed its goal oracle");
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  state.counters["actions/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}

/// The zero-cost claim, checked exactly: a run with no plan installed and a
/// run with an explicitly installed empty plan must be THE SAME run.
void print_report() {
  const core::RunSpec off = base_spec();
  core::RunSpec empty = base_spec();
  empty.sim_options.faults = plan_for("empty");
  const core::RunReport a = core::run_algorithm(core::Algorithm::KnownKFull, off);
  const core::RunReport b =
      core::run_algorithm(core::Algorithm::KnownKFull, empty);
  const bool identical = a.success && b.success &&
                         a.result.actions == b.result.actions &&
                         a.total_moves == b.total_moves &&
                         a.makespan == b.makespan &&
                         a.final_positions == b.final_positions;
  std::cout << "Fault-layer A/B (n=" << kNodes << ", k=" << kAgents
            << "): plan-off vs empty-plan-installed: "
            << (identical ? "identical" : "DIVERGED") << " ("
            << a.result.actions << " actions, " << a.total_moves
            << " moves)\n";
  if (!identical) {
    std::cerr << "bench_fault_overhead: an empty FaultPlan changed the "
                 "execution — the zero-cost contract is broken\n";
    std::exit(1);
  }
}

void register_timings() {
  for (const char* variant : {"off", "empty", "crash", "rewire"}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_ActionLoop/") + variant).c_str(),
        [variant](benchmark::State& state) { BM_ActionLoop(state, variant); })
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_bench_main(argc, argv, print_report, register_timings);
}
