// bench_streaming_campaign — the huge-n / streaming-aggregation artifact.
//
// Four sections, each one claim of the streaming story:
//  1. Equivalence: streaming and materialized aggregation produce the SAME
//     digest on a shared grid at worker counts {1, 4, hw} — streaming is a
//     memory mode, not a different computation.
//  2. Huge-n cells: grids at n ∈ {10^5, 10^6} swept through the streaming
//     path (the per-worker ExecutionState arena is the only n-sized state).
//  3. Scenario scale: a 10^6-scenario grid streamed under a fixed memory
//     budget — accumulator bytes stay O(cells) while the materialized path
//     would hold ~10^8 result bytes.
//  4. Checked-fuzz oracle: fuzzer steps/s at n = 4096 under the full
//     per-action invariant checker vs the incremental one; the ≥2× speedup
//     is this PR's oracle acceptance number.
//
// Set UDRING_STREAM_SMOKE=1 for the CI-sized version. The google-benchmark
// timings land in BENCH_streaming.json via the bench-smoke CI job and are
// diffed against the committed baseline by scripts/bench_compare.py.

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>

#include "explore/fuzz.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

[[nodiscard]] bool smoke() {
  const char* env = std::getenv("UDRING_STREAM_SMOKE");
  return env != nullptr && env[0] == '1';
}

[[nodiscard]] double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

// ---- 1. streaming vs materialized equivalence -------------------------------

void report_equivalence() {
  print_section(std::cout, "Streaming vs materialized equivalence");
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull,
                     core::Algorithm::UnknownRelaxed};
  grid.schedulers = {sim::SchedulerKind::RoundRobin, sim::SchedulerKind::Random};
  grid.node_counts = smoke() ? std::vector<std::size_t>{16, 24}
                             : std::vector<std::size_t>{16, 32, 64};
  grid.agent_counts = {2, 4};
  grid.seeds = smoke() ? 2 : 8;

  const exp::CampaignResult reference = exp::run_campaign(grid, {.workers = 1});
  Table table({"path", "workers", "scenarios", "digest match"});
  bool all_match = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4},
                                    std::size_t{0}}) {  // 0 = hardware
    const exp::CampaignResult materialized =
        exp::run_campaign(grid, {.workers = workers});
    const exp::CampaignResult streamed =
        exp::run_campaign_streaming(grid, {.workers = workers});
    const bool ok = materialized.digest() == reference.digest() &&
                    streamed.digest() == reference.digest();
    all_match = all_match && ok;
    table.add_row({"materialized", Table::num(materialized.workers_used),
                   Table::num(materialized.scenario_count),
                   materialized.digest() == reference.digest() ? "yes" : "NO"});
    table.add_row({"streaming", Table::num(streamed.workers_used),
                   Table::num(streamed.scenario_count), ok ? "yes" : "NO"});
  }
  std::cout << table;
  std::cout << (all_match
                    ? "every path/worker combination reproduces the serial "
                      "materialized digest byte-identically.\n\n"
                    : "DIGEST MISMATCH — the streaming fold diverged from the "
                      "materialized aggregation.\n\n");
  if (!all_match) std::exit(2);
}

// ---- 2. huge-n grids --------------------------------------------------------

void report_huge_n() {
  print_section(std::cout, "Huge-n streaming sweeps");
  const std::vector<std::size_t> sizes =
      smoke() ? std::vector<std::size_t>{10'000}
              : std::vector<std::size_t>{100'000, 1'000'000};
  Table table({"n", "k", "scenarios", "wall ms", "moves/agent", "ok",
               "peak RSS MiB"});
  for (const std::size_t n : sizes) {
    exp::CampaignGrid grid;
    grid.algorithms = {core::Algorithm::KnownKFull};
    grid.schedulers = {sim::SchedulerKind::RoundRobin};
    grid.node_counts = {n};
    grid.agent_counts = {8};
    grid.seeds = smoke() ? 1 : 2;
    const auto start = std::chrono::steady_clock::now();
    const exp::CampaignResult result =
        exp::run_campaign_streaming(grid, {.workers = 1});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const exp::Averages avg = result.averages(
        exp::CellKey{core::Algorithm::KnownKFull, exp::ConfigFamily::RandomAny,
                     sim::SchedulerKind::RoundRobin, n, 8, 1});
    table.add_row({Table::num(n), "8", Table::num(result.scenario_count),
                   Table::num(ms, 0), Table::num(avg.moves / 8.0, 0),
                   result.all_ok() ? "yes" : "NO",
                   Table::num(peak_rss_mib(), 0)});
  }
  std::cout << table;
  std::cout << "per-agent moves stay O(n log k)-shaped as n climbs; the only\n"
               "n-sized memory is the single pooled ExecutionState arena.\n\n";
}

// ---- 3. scenario scale under a budget ---------------------------------------

void report_scenario_scale() {
  print_section(std::cout, "10^6-scenario stream under a memory budget");
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.schedulers = {sim::SchedulerKind::RoundRobin};
  grid.node_counts = {16};
  grid.agent_counts = {2};
  grid.seeds = smoke() ? 10'000 : 1'000'000;

  exp::CampaignOptions options;
  options.memory_budget_bytes = 1 << 20;  // 1 MiB of accumulator — plenty
  const auto start = std::chrono::steady_clock::now();
  const exp::CampaignResult result = exp::run_campaign_streaming(grid, options);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  const std::size_t accumulator_bytes =
      result.cells.size() *
      exp::streaming_cell_footprint_bytes(options) *
      (result.workers_used + 1);
  const std::size_t materialized_bytes =
      result.scenario_count *
      (sizeof(exp::ScenarioResult) + sizeof(exp::Scenario));
  Table table({"scenarios", "wall ms", "scenarios/s", "cells",
               "accumulator bytes", "materialized would hold", "ok"});
  table.add_row({Table::num(result.scenario_count), Table::num(ms, 0),
                 Table::num(1000.0 * static_cast<double>(result.scenario_count) / ms, 0),
                 Table::num(result.cells.size()),
                 Table::num(accumulator_bytes),
                 Table::num(materialized_bytes),
                 result.all_ok() && result.cells_skipped == 0 ? "yes" : "NO"});
  std::cout << table;
  std::cout << "the stream held O(cells + workers) aggregation state — "
            << accumulator_bytes << " bytes vs the "
            << materialized_bytes
            << " a materialized result vector would pin.\n\n";
}

// ---- 4. checked-fuzz oracle at n = 4096 -------------------------------------

[[nodiscard]] explore::FuzzOptions oracle_options(explore::OracleMode oracle,
                                                 std::size_t n) {
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.min_nodes = options.max_nodes = n;
  options.min_agents = options.max_agents = 8;
  options.iterations = smoke() ? 1 : 3;
  options.workers = 1;
  options.oracle = oracle;
  return options;
}

void report_oracle() {
  print_section(std::cout, "Checked-fuzz oracle: full vs incremental");
  const std::size_t n = smoke() ? 512 : 4096;
  Table table({"oracle", "n", "actions", "wall ms", "steps/s"});
  double full_ms = 0, incremental_ms = 0;
  std::uint64_t full_digest = 0, incremental_digest = 0;
  for (const explore::OracleMode oracle :
       {explore::OracleMode::Full, explore::OracleMode::Incremental}) {
    const auto start = std::chrono::steady_clock::now();
    const explore::FuzzReport report =
        explore::run_fuzz(oracle_options(oracle, n));
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    (oracle == explore::OracleMode::Full ? full_ms : incremental_ms) = ms;
    (oracle == explore::OracleMode::Full ? full_digest : incremental_digest) =
        report.digest;
    table.add_row({std::string(explore::to_string(oracle)), Table::num(n),
                   Table::num(report.total_actions), Table::num(ms, 1),
                   Table::num(1000.0 * static_cast<double>(report.total_actions) / ms, 0)});
  }
  std::cout << table;
  const double speedup = full_ms / incremental_ms;
  std::cout << "incremental oracle speedup at n=" << n << ": "
            << Table::num(speedup, 1) << "x (target >= 2x), report digests "
            << (full_digest == incremental_digest ? "match" : "DIFFER") << ".\n";
  if (full_digest != incremental_digest) std::exit(2);
}

void print_report() {
  std::cout << "Streaming campaign engine: bounded-memory aggregation + "
               "O(dirty) incremental oracle.\n\n";
  report_equivalence();
  report_huge_n();
  report_scenario_scale();
  report_oracle();
}

// ---- google-benchmark timings (the BENCH_streaming.json trajectory) ---------

void register_timings() {
  benchmark::RegisterBenchmark(
      "streaming_campaign/n=32..64/seeds=8",
      [](benchmark::State& state) {
        exp::CampaignGrid grid;
        grid.algorithms = {core::Algorithm::KnownKFull};
        grid.schedulers = {sim::SchedulerKind::RoundRobin};
        grid.node_counts = {32, 64};
        grid.agent_counts = {4, 8};
        grid.seeds = 8;
        for (auto _ : state) {
          const exp::CampaignResult result =
              exp::run_campaign_streaming(grid, {.workers = 1});
          benchmark::DoNotOptimize(result.scenario_hash);
          if (!result.all_ok()) state.SkipWithError("campaign failed");
        }
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "materialized_campaign/n=32..64/seeds=8",
      [](benchmark::State& state) {
        exp::CampaignGrid grid;
        grid.algorithms = {core::Algorithm::KnownKFull};
        grid.schedulers = {sim::SchedulerKind::RoundRobin};
        grid.node_counts = {32, 64};
        grid.agent_counts = {4, 8};
        grid.seeds = 8;
        for (auto _ : state) {
          const exp::CampaignResult result =
              exp::run_campaign(grid, {.workers = 1});
          benchmark::DoNotOptimize(result.scenario_hash);
          if (!result.all_ok()) state.SkipWithError("campaign failed");
        }
      })
      ->Unit(benchmark::kMillisecond);
  for (const explore::OracleMode oracle :
       {explore::OracleMode::Full, explore::OracleMode::Incremental}) {
    const std::string name = std::string("checked_fuzz_oracle/") +
                             std::string(explore::to_string(oracle)) +
                             "/n=512";
    benchmark::RegisterBenchmark(
        name.c_str(),
        [oracle](benchmark::State& state) {
          explore::FuzzOptions options = oracle_options(oracle, 512);
          options.iterations = 1;
          std::uint64_t iteration = 0;
          std::size_t actions = 0;
          for (auto _ : state) {
            const explore::FuzzIteration outcome =
                explore::fuzz_iteration(options, iteration++);
            if (outcome.failure) state.SkipWithError("unexpected fuzz failure");
            actions += outcome.actions;
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(actions));
          state.counters["steps/s"] = benchmark::Counter(
              static_cast<double>(actions), benchmark::Counter::kIsRate);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
