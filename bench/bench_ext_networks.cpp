// bench_ext_networks — the §5 future-work extension, measured: uniform
// deployment on trees and general networks via the Euler-tour / spanning-
// tree ring embedding.
//
// The paper's claim: "Since an embedded ring consists of 2(n−1) nodes for an
// original network with n nodes, we can show that the total moves between
// the embedded ring and the original network is asymptotically equivalent."
// We verify the cost shape (moves/k·m flat, m = 2(n−1)) across topology
// families and report the tree-level coverage improvement.

#include "embed/graph.h"
#include "embed/tree_deploy.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;
using namespace udring::embed;

std::vector<TreeNodeId> draw_tree_homes(std::size_t node_count, std::size_t k,
                                        Rng& rng) {
  std::vector<TreeNodeId> homes;
  std::set<TreeNodeId> used;
  while (homes.size() < k) {
    const auto node = static_cast<TreeNodeId>(rng.below(node_count));
    if (used.insert(node).second) homes.push_back(node);
  }
  return homes;
}

void print_report() {
  std::cout << "Extension (§5): uniform deployment on trees and general networks\n"
               "through the Euler-tour / spanning-tree embedding. Algorithm 1,\n"
               "5 seeds per row.\n";

  print_section(std::cout, "Topology sweep (k = 8)");
  Table table({"topology", "n", "m=2(n-1)", "moves", "moves/(k·m)",
               "worst hop before", "worst hop after", "uniform on tour"});

  struct Topology {
    std::string name;
    TreeNetwork tree;
  };
  Rng shape_rng(2718);
  std::vector<Topology> topologies;
  topologies.push_back({"path-64", path_tree(64)});
  topologies.push_back({"star-64", star_tree(64)});
  topologies.push_back({"binary-63", binary_tree(63)});
  topologies.push_back({"caterpillar-60", caterpillar_tree(20, 2)});
  topologies.push_back({"random-tree-64", random_tree(64, shape_rng)});
  topologies.push_back(
      {"random-graph-64", random_connected_graph(64, 48, shape_rng).spanning_tree()});
  topologies.push_back({"grid-8x8", grid_graph(8, 8).spanning_tree()});
  topologies.push_back({"complete-32", complete_graph(32).spanning_tree()});

  for (const Topology& topology : topologies) {
    const std::size_t k = 8;
    const std::size_t m = 2 * (topology.tree.size() - 1);
    double moves = 0, worst_before = 0, worst_after = 0;
    bool uniform = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed * 97 + topology.tree.size());
      const auto homes = draw_tree_homes(topology.tree.size(), k, rng);
      const auto [before, mean_before] = tree_coverage(topology.tree, homes);
      const TreeDeployReport report =
          deploy_on_tree(topology.tree, homes, core::Algorithm::KnownKFull);
      uniform = uniform && report.success;
      moves += static_cast<double>(report.total_moves) / 5.0;
      worst_before += static_cast<double>(before) / 5.0;
      worst_after += static_cast<double>(report.worst_tree_distance) / 5.0;
    }
    table.add_row({topology.name, Table::num(topology.tree.size()),
                   Table::num(m), Table::num(moves, 0),
                   Table::num(moves / static_cast<double>(8 * m), 2),
                   Table::num(worst_before, 1), Table::num(worst_after, 1),
                   uniform ? "yes" : "NO"});
  }
  std::cout << table;
  std::cout
      << "\nmoves/(k·m) sits at the same ~2.0 constant as on native rings\n"
         "(Table 1): the embedding preserves the move accounting exactly, as\n"
         "§5 claims. Coverage note: tour-uniformity guarantees patrol\n"
         "staleness ≤ ⌈m/k⌉ tour steps; hop-distance coverage improves too,\n"
         "but is topology-dependent (the star's hub dominates either way).\n";

  print_section(std::cout, "Scaling on random trees (k = n/8)");
  Table scaling({"n", "k", "m", "moves", "moves/(k·m)", "time", "time/m"});
  for (const std::size_t n : {32u, 64u, 128u, 256u}) {
    const std::size_t k = n / 8;
    Rng rng(n);
    const TreeNetwork tree = random_tree(n, rng);
    const auto homes = draw_tree_homes(n, k, rng);
    core::RunSpec base;
    base.scheduler = sim::SchedulerKind::Synchronous;
    const TreeDeployReport report =
        deploy_on_tree(tree, homes, core::Algorithm::KnownKFull, base);
    const std::size_t m = report.virtual_ring_size;
    scaling.add_row(
        {Table::num(n), Table::num(k), Table::num(m),
         Table::num(report.total_moves),
         Table::num(static_cast<double>(report.total_moves) /
                        static_cast<double>(k * m),
                    2),
         Table::num(static_cast<std::size_t>(report.makespan)),
         Table::num(static_cast<double>(report.makespan) / static_cast<double>(m),
                    2)});
  }
  std::cout << scaling
            << "O(k·m) moves and O(m) time on the embedded ring = O(kn) and\n"
               "O(n) on the tree — the ring results carry over with m = 2(n-1).\n";
}

void register_timings() {
  benchmark::RegisterBenchmark("ext/tree-deploy/n=128/k=16",
                               [](benchmark::State& state) {
                                 std::uint64_t seed = 1;
                                 for (auto _ : state) {
                                   Rng rng(seed++);
                                   const TreeNetwork tree = random_tree(128, rng);
                                   const auto homes =
                                       draw_tree_homes(128, 16, rng);
                                   const auto report = deploy_on_tree(
                                       tree, homes, core::Algorithm::KnownKFull);
                                   benchmark::DoNotOptimize(report.total_moves);
                                 }
                               })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
