// bench_fig8_estimation — reproduces Figures 8, 9 and 10: the behaviour of
// the estimating phase (Algorithm 4) and the message-driven correction
// machinery (Algorithms 5+6).
//
//   Fig 8: an agent stops estimating at the first 4-fold repetition — on
//          structured rings it underestimates (the (1,3)⁴ window → n' = 4).
//   Fig 9: scaled trap family (big gap + (1,3)^m tail): trapped agents are
//          corrected by patrollers; we count misestimates and corrections.
//   Fig 10 / Lemma 4: on aperiodic rings at least one agent estimates n
//          exactly; Lemma 3: every wrong estimate is ≤ n/2.

#include "core/unknown_relaxed.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

// The Fig 9 family, scaled: distance sequence (big, (1,3)^m) on
// n = big + 4m nodes, k = 2m + 1 agents. Agents whose window starts inside
// the (1,3) run first estimate 4.
std::vector<std::size_t> trap_homes(std::size_t m, std::size_t big) {
  core::DistanceSeq d;
  d.push_back(big);
  for (std::size_t i = 0; i < m; ++i) {
    d.push_back(1);
    d.push_back(3);
  }
  return gen::homes_from_distances(d, big + 4 * m);
}

void print_report() {
  std::cout << "Reproduction of Figs 8-10: estimator behaviour of Algorithm 4 and\n"
               "the correction machinery of Algorithms 5+6.\n";

  print_section(std::cout, "Fig 8/9 — the scaled (big,(1,3)^m) trap family");
  {
    Table table({"m", "n", "k", "#first-est=4", "#first-est=n", "corrections",
                 "all converge to n", "uniform"});
    for (const std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
      const std::size_t big = 11;
      const std::size_t n = big + 4 * m;
      core::RunSpec spec;
      spec.node_count = n;
      spec.homes = trap_homes(m, big);
      auto simulator = core::make_simulator(core::Algorithm::UnknownRelaxed, spec);
      sim::RoundRobinScheduler scheduler;
      (void)simulator->run(scheduler);

      std::size_t trapped = 0, exact = 0, corrections = 0;
      bool converged = true;
      for (sim::AgentId id = 0; id < simulator->agent_count(); ++id) {
        const auto& agent = dynamic_cast<const core::UnknownRelaxedAgent&>(
            simulator->program(id));
        if (agent.first_estimate_n() == 4) ++trapped;
        if (agent.first_estimate_n() == n) ++exact;
        corrections += agent.corrections();
        converged = converged && agent.estimated_n() == n;
      }
      const bool uniform =
          sim::UniformDeploymentOracle(false).check_goal(*simulator).ok;
      table.add_row({Table::num(m), Table::num(n), Table::num(2 * m + 1),
                     Table::num(trapped), Table::num(exact),
                     Table::num(corrections), converged ? "yes" : "NO",
                     uniform ? "yes" : "NO"});
    }
    std::cout << table
              << "the deeper the periodic tail, the more agents start trapped at\n"
                 "n' = 4 — and every one of them is corrected by a patroller\n"
                 "(Lemma 5) before the system settles uniformly.\n";
  }

  print_section(std::cout, "Fig 10 / Lemmas 3-4 — random aperiodic rings");
  {
    Table table({"n", "k", "rings", "Lemma 3 holds", "Lemma 4 holds",
                 "avg exact estimators", "avg est. cost (moves)", "4n"});
    const std::vector<std::pair<std::size_t, std::size_t>> cases = {
        {48, 6}, {96, 12}, {192, 16}, {384, 24}};
    for (const auto& [n, k] : cases) {
      bool lemma3 = true, lemma4 = true;
      double exact_avg = 0, est_cost = 0;
      const int rings = 10;
      int used = 0;
      for (std::uint64_t seed = 1; used < rings && seed < 200; ++seed) {
        Rng rng(seed * 13 + n);
        auto homes = gen::random_homes(n, k, rng);
        if (core::config_symmetry_degree(homes, n) != 1) continue;
        ++used;
        core::RunSpec spec;
        spec.node_count = n;
        spec.homes = homes;
        auto simulator =
            core::make_simulator(core::Algorithm::UnknownRelaxed, spec);
        sim::RoundRobinScheduler scheduler;
        (void)simulator->run(scheduler);
        std::size_t exact = 0;
        for (sim::AgentId id = 0; id < k; ++id) {
          const auto& agent = dynamic_cast<const core::UnknownRelaxedAgent&>(
              simulator->program(id));
          const std::size_t first = agent.first_estimate_n();
          lemma3 = lemma3 && (first == n || 2 * first <= n);
          if (first == n) ++exact;
          est_cost += 4.0 * static_cast<double>(first) /
                      static_cast<double>(rings * k);
        }
        lemma4 = lemma4 && exact >= 1;
        exact_avg += static_cast<double>(exact) / rings;
      }
      table.add_row({Table::num(n), Table::num(k), Table::num(std::size_t{10}),
                     lemma3 ? "yes" : "NO", lemma4 ? "yes" : "NO",
                     Table::num(exact_avg, 1), Table::num(est_cost, 0),
                     Table::num(4 * n)});
    }
    std::cout << table
              << "on typical aperiodic rings almost every agent estimates n\n"
                 "exactly (paying the full 4n estimation walk); wrong estimates\n"
                 "are all ≤ n/2, exactly as Lemma 3 bounds.\n";
  }
}

void register_timings() {
  benchmark::RegisterBenchmark("fig8/trap/m=32", [](benchmark::State& state) {
    for (auto _ : state) {
      core::RunSpec spec;
      spec.node_count = 11 + 4 * 32;
      spec.homes = trap_homes(32, 11);
      const auto report =
          core::run_algorithm(core::Algorithm::UnknownRelaxed, spec);
      benchmark::DoNotOptimize(report.total_moves);
    }
  })->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
