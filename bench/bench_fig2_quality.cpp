// bench_fig2_quality — reproduces Figure 2's definition of uniform
// deployment as a measurable quantity: after each algorithm runs, the gaps
// between adjacent agents must be exactly ⌊n/k⌋ or ⌈n/k⌉, with exactly
// n mod k large gaps — including when k ∤ n (§3.1.1).
//
// We report, per (n, k) including awkward non-divisible pairs, the final gap
// histogram and the worst-case deviation from n/k before vs after
// deployment. The paper's figure shows the ideal picture; the bench shows
// the algorithms actually reach it from random starts.

#include <map>

#include "sim/checker.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Reproduction of Fig 2 (exactness of uniform deployment), including\n"
               "n % k != 0 instances. 5 random seeds per row.\n";

  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {16, 4}, {14, 4}, {23, 7}, {60, 12}, {100, 13}, {128, 16}, {257, 32}};

  for (const auto& [algorithm, label] :
       {std::make_pair(core::Algorithm::KnownKFull, "Algorithm 1"),
        std::make_pair(core::Algorithm::KnownKLogMem, "Algorithms 2+3"),
        std::make_pair(core::Algorithm::UnknownRelaxed, "Algorithms 4-6")}) {
    print_section(std::cout, label);
    Table table({"n", "k", "floor gap", "ceil gap", "#floor", "#ceil",
                 "expected #ceil", "max dev before", "max dev after", "exact"});
    for (const auto& [n, k] : cases) {
      std::map<std::size_t, std::size_t> histogram;
      double worst_before = 0;
      bool all_exact = true;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 101 + n);
        core::RunSpec spec;
        spec.node_count = n;
        spec.homes = gen::random_homes(n, k, rng);
        spec.seed = seed;
        for (const std::size_t gap : sim::ring_gaps(spec.homes, n)) {
          worst_before = std::max(
              worst_before, std::abs(static_cast<double>(gap) -
                                     static_cast<double>(n) / static_cast<double>(k)));
        }
        const auto report = core::run_algorithm(algorithm, spec);
        all_exact = all_exact && report.success;
        for (const std::size_t gap : sim::ring_gaps(report.final_positions, n)) {
          ++histogram[gap];
        }
      }
      const std::size_t floor_gap = n / k;
      const std::size_t ceil_gap = floor_gap + (n % k == 0 ? 0 : 1);
      const double worst_after =
          std::max(std::abs(static_cast<double>(floor_gap) -
                            static_cast<double>(n) / static_cast<double>(k)),
                   std::abs(static_cast<double>(ceil_gap) -
                            static_cast<double>(n) / static_cast<double>(k)));
      table.add_row({Table::num(n), Table::num(k), Table::num(floor_gap),
                     Table::num(ceil_gap), Table::num(histogram[floor_gap]),
                     Table::num(ceil_gap == floor_gap
                                    ? std::size_t{0}
                                    : histogram[ceil_gap]),
                     Table::num(5 * (n % k)), Table::num(worst_before, 2),
                     Table::num(worst_after, 2), all_exact ? "yes" : "NO"});
    }
    std::cout << table;
  }
  std::cout << "\nEvery gap lands on ⌊n/k⌋ or ⌈n/k⌉ and the ⌈⌉-count equals\n"
               "seeds · (n mod k): the §3.1.1 remainder rule is exact, not\n"
               "approximate (contrast with the ε-approximate deployments of the\n"
               "Look-Compute-Move literature discussed in §1.2).\n";
}

void register_timings() {
  register_timing("fig2/algo1/n=100/k=13", core::Algorithm::KnownKFull,
                  ConfigFamily::RandomAny, 100, 13);
  register_timing("fig2/algo2/n=100/k=13", core::Algorithm::KnownKLogMem,
                  ConfigFamily::RandomAny, 100, 13);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
