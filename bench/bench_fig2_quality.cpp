// bench_fig2_quality — reproduces Figure 2's definition of uniform
// deployment as a measurable quantity: after each algorithm runs, the gaps
// between adjacent agents must be exactly ⌊n/k⌋ or ⌈n/k⌉, with exactly
// n mod k large gaps — including when k ∤ n (§3.1.1).
//
// We report, per (n, k) including awkward non-divisible pairs, the final gap
// histogram and the worst-case deviation from n/k before vs after
// deployment. The paper's figure shows the ideal picture; the bench shows
// the algorithms actually reach it from random starts.

#include <map>
#include <span>

#include "sim/checker.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Reproduction of Fig 2 (exactness of uniform deployment), including\n"
               "n % k != 0 instances. 5 random seeds per row.\n";

  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {16, 4}, {14, 4}, {23, 7}, {60, 12}, {100, 13}, {128, 16}, {257, 32}};

  // One campaign over every algorithm × instance, recording each scenario's
  // final staying positions. The initial configurations are re-derived from
  // the engine's substream contract (scenario_homes), so the before/after
  // gap comparison needs no side channel.
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
                     core::Algorithm::UnknownRelaxed};
  grid.instances = cases;
  grid.seeds = 5;
  exp::CampaignOptions options;
  options.record_final_positions = true;
  const exp::CampaignResult result = exp::run_campaign(grid, options);

  for (const auto& [algorithm, label] :
       {std::make_pair(core::Algorithm::KnownKFull, "Algorithm 1"),
        std::make_pair(core::Algorithm::KnownKLogMem, "Algorithms 2+3"),
        std::make_pair(core::Algorithm::UnknownRelaxed, "Algorithms 4-6")}) {
    print_section(std::cout, label);
    Table table({"n", "k", "floor gap", "ceil gap", "#floor", "#ceil",
                 "expected #ceil", "max dev before", "max dev after", "exact"});
    for (const auto& [n, k] : cases) {
      std::map<std::size_t, std::size_t> histogram;
      double worst_before = 0;
      bool all_exact = true;
      for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
        const exp::Scenario& scenario = result.scenarios[i];
        if (scenario.algorithm != algorithm || scenario.node_count != n ||
            scenario.agent_count != k) {
          continue;
        }
        for (const std::size_t gap :
             sim::ring_gaps(exp::scenario_homes(grid, scenario), n)) {
          worst_before = std::max(
              worst_before, std::abs(static_cast<double>(gap) -
                                     static_cast<double>(n) / static_cast<double>(k)));
        }
        all_exact = all_exact && result.results[i].success;
        const std::span<const std::size_t> positions =
            result.results[i].final_positions();
        for (const std::size_t gap : sim::ring_gaps(
                 std::vector<std::size_t>(positions.begin(), positions.end()),
                 n)) {
          ++histogram[gap];
        }
      }
      const std::size_t floor_gap = n / k;
      const std::size_t ceil_gap = floor_gap + (n % k == 0 ? 0 : 1);
      const double worst_after =
          std::max(std::abs(static_cast<double>(floor_gap) -
                            static_cast<double>(n) / static_cast<double>(k)),
                   std::abs(static_cast<double>(ceil_gap) -
                            static_cast<double>(n) / static_cast<double>(k)));
      table.add_row({Table::num(n), Table::num(k), Table::num(floor_gap),
                     Table::num(ceil_gap), Table::num(histogram[floor_gap]),
                     Table::num(ceil_gap == floor_gap
                                    ? std::size_t{0}
                                    : histogram[ceil_gap]),
                     Table::num(5 * (n % k)), Table::num(worst_before, 2),
                     Table::num(worst_after, 2), all_exact ? "yes" : "NO"});
    }
    std::cout << table;
  }
  std::cout << "\nEvery gap lands on ⌊n/k⌋ or ⌈n/k⌉ and the ⌈⌉-count equals\n"
               "seeds · (n mod k): the §3.1.1 remainder rule is exact, not\n"
               "approximate (contrast with the ε-approximate deployments of the\n"
               "Look-Compute-Move literature discussed in §1.2).\n";
}

void register_timings() {
  register_timing("fig2/algo1/n=100/k=13", core::Algorithm::KnownKFull,
                  ConfigFamily::RandomAny, 100, 13);
  register_timing("fig2/algo2/n=100/k=13", core::Algorithm::KnownKLogMem,
                  ConfigFamily::RandomAny, 100, 13);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
