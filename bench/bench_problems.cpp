// bench_problems — the cross-problem reproduction artifact.
//
// Three sections, one claim each of the ProblemSpec/GoalOracle redesign:
//  1. Table-1-style cross-problem campaign: one grid sweeps uniform
//     deployment, g-partial gathering, and dispersion over PAIRED instances
//     (the scenario substream excludes the algorithm and problem, so every
//     problem row of an (n, k) point runs on identical home draws) and
//     reports the paper's three measures — moves, time, memory — per
//     problem side by side.
//  2. Determinism: the cross-problem campaign digest is byte-identical at
//     worker counts {1, 4, hw} — the problem axis inherits the engine's
//     worker-invariance contract.
//  3. Exhaustive verification: mc::check walks every schedule of small
//     gathering and dispersion instances (solvable, unsolvable-periodic,
//     and a deployer judged under the dispersion oracle) and the verdict +
//     report digest match between the serial walk and a frontier-sharded
//     parallel walk.
//
// Set UDRING_PROBLEMS_SMOKE=1 for the CI-sized version. The
// google-benchmark timings land in BENCH_problems.json via the bench-smoke
// CI job and are diffed against the committed baseline by
// scripts/bench_compare.py.

#include <cstdlib>
#include <string>
#include <vector>

#include "mc/model_check.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

[[nodiscard]] bool smoke() {
  const char* env = std::getenv("UDRING_PROBLEMS_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// The one grid every section reuses: the three problem families on shared
/// instance coordinates. Auto on the problem axis resolves per algorithm —
/// deploy for KnownKFull, gather(g=2) for GatherRing, disperse for
/// DisperseRing — which keeps the campaign digest on the historical
/// (pre-problem-axis) byte layout.
[[nodiscard]] exp::CampaignGrid cross_problem_grid() {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::GatherRing,
                     core::Algorithm::DisperseRing};
  grid.schedulers = {sim::SchedulerKind::RoundRobin};
  grid.node_counts = smoke() ? std::vector<std::size_t>{12, 16}
                             : std::vector<std::size_t>{16, 32, 64};
  grid.agent_counts = smoke() ? std::vector<std::size_t>{2, 4}
                              : std::vector<std::size_t>{4, 8};
  grid.seeds = smoke() ? 3 : 8;
  return grid;
}

// ---- 1. Table-1-style cross-problem report ----------------------------------

void report_cross_problem_table() {
  print_section(std::cout, "Cross-problem campaign (paired instances)");
  const exp::CampaignGrid grid = cross_problem_grid();
  const exp::CampaignResult result = exp::run_campaign(grid, {.workers = 0});

  // Tail columns ride along with the means: the per-cell quantile sketches
  // make p50/p90/p99 mergeable (and therefore digest-stable) statistics, so
  // the cross-problem comparison shows distribution shape, not just averages.
  Table table({"problem", "algorithm", "n", "k", "runs", "ok", "moves",
               "moves p50/90/99", "time", "time p50/90/99", "mem bits"});
  const auto triple = [](double p50, double p90, double p99) {
    return Table::num(p50, 0) + "/" + Table::num(p90, 0) + "/" +
           Table::num(p99, 0);
  };
  for (const core::Algorithm algorithm : grid.algorithms) {
    const core::ProblemSpec resolved = core::resolve_problem(algorithm, {});
    for (const std::size_t n : grid.node_counts) {
      for (const std::size_t k : grid.agent_counts) {
        const exp::Averages avg = result.averages(
            exp::CellKey{algorithm, exp::ConfigFamily::RandomAny,
                         sim::SchedulerKind::RoundRobin, n, k, 1});
        if (avg.runs == 0) continue;
        table.add_row({core::to_string(resolved),
                       std::string(core::to_string(algorithm)), Table::num(n),
                       Table::num(k), Table::num(avg.runs),
                       Table::num(avg.success_rate * 100.0, 1) + "%",
                       Table::num(avg.moves, 1),
                       triple(avg.moves_p50, avg.moves_p90, avg.moves_p99),
                       Table::num(avg.makespan, 1),
                       triple(avg.makespan_p50, avg.makespan_p90,
                              avg.makespan_p99),
                       Table::num(avg.memory_bits, 1)});
      }
    }
  }
  std::cout << table;
  std::cout << "every problem row of an (n, k) point ran on the same home "
               "draws\n(the scenario substream excludes algorithm and "
               "problem), so the\ncolumns compare move/time/memory across "
               "problems, paired.\n\n";
  if (!result.all_ok()) {
    std::cout << "CAMPAIGN FAILURES:\n" << result.summary();
    std::exit(2);
  }
}

// ---- 2. worker-count determinism over the problem axis ----------------------

void report_determinism() {
  print_section(std::cout, "Cross-problem digest vs worker count");
  const exp::CampaignGrid grid = cross_problem_grid();
  const exp::CampaignResult reference = exp::run_campaign(grid, {.workers = 1});
  Table table({"workers", "scenarios", "digest match"});
  bool all_match = true;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {  // 0 = hardware
    const exp::CampaignResult run = exp::run_campaign(grid, {.workers = workers});
    const bool ok = run.digest() == reference.digest();
    all_match = all_match && ok;
    table.add_row({Table::num(run.workers_used), Table::num(run.scenario_count),
                   ok ? "yes" : "NO"});
  }
  std::cout << table;
  std::cout << (all_match ? "the problem axis preserves the engine's "
                            "worker-invariant digest contract.\n\n"
                          : "DIGEST MISMATCH across worker counts.\n\n");
  if (!all_match) std::exit(2);
}

// ---- 3. exhaustive verification of small instances --------------------------

struct McCase {
  const char* label;
  core::Algorithm algorithm;
  core::ProblemSpec problem;
  std::vector<std::size_t> homes;
};

void report_exhaustive() {
  print_section(std::cout, "Exhaustive verification (every schedule, n=6)");
  const std::vector<McCase> cases = {
      {"gather g=2 solvable", core::Algorithm::GatherRing, {}, {0, 2}},
      {"gather g=2 unsolvable-periodic", core::Algorithm::GatherRing, {}, {0, 3}},
      {"disperse", core::Algorithm::DisperseRing, {}, {0, 2}},
      {"deployer under dispersion oracle",
       core::Algorithm::KnownKFull,
       {core::Problem::Disperse, 0},
       {0, 2}},
  };
  Table table({"case", "schedules", "states", "verdict", "serial==sharded"});
  bool all_ok = true;
  for (const McCase& c : cases) {
    mc::CheckRequest request;
    request.algorithm = c.algorithm;
    request.problem = c.problem;
    request.node_count = 6;
    request.homes = c.homes;
    // Identical shard decomposition, different worker counts: the report
    // digest (verdict + every stat) must match byte-for-byte.
    mc::McOptions serial;
    serial.frontier_target = 8;
    serial.workers = 1;
    mc::McOptions sharded;
    sharded.frontier_target = 8;
    sharded.workers = 4;
    const mc::ModelCheckReport a = mc::check(request, serial);
    const mc::ModelCheckReport b = mc::check(request, sharded);
    const bool verified = a.ok && a.complete;
    const bool match = a.digest() == b.digest();
    all_ok = all_ok && verified && match;
    table.add_row({c.label, Table::num(a.stats.schedules),
                   Table::num(a.stats.states_expanded), a.verdict,
                   match ? "yes" : "NO"});
  }
  std::cout << table;
  std::cout << (all_ok ? "gathering and dispersion are verified over ALL "
                         "schedules of these instances,\nbyte-identically at "
                         "any worker count.\n"
                       : "VERIFICATION FAILED on a cross-problem instance.\n");
  if (!all_ok) std::exit(2);
}

void print_report() {
  std::cout << "Cross-problem artifact: uniform deployment, g-partial "
               "gathering, and dispersion\nthrough one ProblemSpec/GoalOracle "
               "verification stack.\n\n";
  report_cross_problem_table();
  report_determinism();
  report_exhaustive();
}

// ---- google-benchmark timings (the BENCH_problems.json trajectory) ----------

void register_timings() {
  register_timing("deploy/known_k_full/n=64/k=8", core::Algorithm::KnownKFull,
                  ConfigFamily::RandomAny, 64, 8);
  register_timing("gather/gather_ring/n=64/k=8", core::Algorithm::GatherRing,
                  ConfigFamily::RandomAny, 64, 8);
  register_timing("disperse/disperse_ring/n=64/k=8",
                  core::Algorithm::DisperseRing, ConfigFamily::RandomAny, 64, 8);
  benchmark::RegisterBenchmark(
      "cross_problem_campaign/n=16..32/seeds=3",
      [](benchmark::State& state) {
        exp::CampaignGrid grid;
        grid.algorithms = {core::Algorithm::KnownKFull,
                           core::Algorithm::GatherRing,
                           core::Algorithm::DisperseRing};
        grid.schedulers = {sim::SchedulerKind::RoundRobin};
        grid.node_counts = {16, 32};
        grid.agent_counts = {4};
        grid.seeds = 3;
        for (auto _ : state) {
          const exp::CampaignResult result =
              exp::run_campaign_streaming(grid, {.workers = 1});
          benchmark::DoNotOptimize(result.scenario_hash);
          if (!result.all_ok()) state.SkipWithError("campaign failed");
        }
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "mc_exhaustive/gather_ring/n=6/k=2",
      [](benchmark::State& state) {
        mc::CheckRequest request;
        request.algorithm = core::Algorithm::GatherRing;
        request.node_count = 6;
        request.homes = {0, 2};
        for (auto _ : state) {
          const mc::ModelCheckReport report = mc::check(request);
          benchmark::DoNotOptimize(report.stats.total_actions);
          if (!report.ok || !report.complete) state.SkipWithError("not verified");
        }
      })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
