// bench_mc_throughput — the exhaustive model checker's own artifact.
//
// Reports, for a small verification grid, the walk throughput
// (schedules/s and actions/s), the pruning economics (dedup hit-rate and
// sleep-set cut fraction), and the serial vs frontier-sharded trade:
// sharding buys parallel wall-clock but pays for it in cross-shard dedup
// loss (each shard's visited map is private — that privacy is what makes
// the verdict worker-count-invariant), so the break-even is worth measuring
// rather than assuming. The google-benchmark timings land in the
// BENCH_mc.json CI artifact like bench_campaign_engine's.
//
// Set UDRING_MC_SMOKE=1 for the tiny CI grid.

#include <chrono>
#include <cstdlib>

#include "mc/model_check.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

struct BenchCell {
  core::Algorithm algorithm;
  std::size_t n, k;
};

std::vector<BenchCell> bench_cells() {
  if (std::getenv("UDRING_MC_SMOKE") != nullptr) {
    return {{core::Algorithm::KnownKFull, 8, 3},
            {core::Algorithm::KnownKLogMem, 8, 3}};
  }
  return {{core::Algorithm::KnownKFull, 10, 3},
          {core::Algorithm::KnownKFull, 12, 4},
          {core::Algorithm::KnownKLogMem, 8, 3},
          {core::Algorithm::KnownKLogMem, 10, 4}};
}

mc::CheckRequest cell_request(const BenchCell& cell) {
  mc::CheckRequest request;
  request.algorithm = cell.algorithm;
  request.node_count = cell.n;
  request.homes = gen::uniform_homes(cell.n, cell.k);
  return request;
}

double run_timed(const mc::CheckRequest& request, const mc::McOptions& options,
                 mc::ModelCheckReport& out) {
  const auto start = std::chrono::steady_clock::now();
  out = mc::check(request, options);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::string rate(double count, double ms) {
  return Table::num(ms > 0 ? 1000.0 * count / ms : 0.0, 0);
}

void print_report() {
  std::cout << "Model-checker throughput: exhaustive verification cells,\n"
               "serial (frontier=1) vs sharded (frontier=8, all cores).\n";

  print_section(std::cout, "Serial walk (full cross-subtree dedup)");
  Table serial_table({"algorithm", "n", "k", "wall ms", "states/s", "actions/s",
                      "dedup hit-rate", "sleep cut", "verdict"});
  std::vector<mc::ModelCheckReport> serial_reports;
  std::vector<double> serial_ms_by_cell;
  for (const BenchCell& cell : bench_cells()) {
    mc::ModelCheckReport report;
    const double ms = run_timed(cell_request(cell), {}, report);
    serial_ms_by_cell.push_back(ms);
    const mc::McStats& s = report.stats;
    const double seen = static_cast<double>(s.states_expanded + s.states_deduped);
    serial_table.add_row(
        {std::string(core::to_string(cell.algorithm)), Table::num(cell.n),
         Table::num(cell.k), Table::num(ms, 2),
         rate(static_cast<double>(s.states_expanded), ms),
         rate(static_cast<double>(s.total_actions), ms),
         Table::num(seen > 0 ? static_cast<double>(s.states_deduped) / seen : 0,
                    3),
         Table::num(static_cast<double>(s.sleep_pruned), 0), report.verdict});
    serial_reports.push_back(std::move(report));
  }
  std::cout << serial_table;

  print_section(std::cout, "Frontier-sharded walk (per-shard dedup)");
  Table sharded_table({"algorithm", "n", "k", "wall ms", "shards", "states/s",
                       "dedup hit-rate", "speedup", "verdict match"});
  std::size_t i = 0;
  for (const BenchCell& cell : bench_cells()) {
    mc::McOptions options;
    options.frontier_target = 8;
    options.workers = 0;  // all cores
    mc::ModelCheckReport report;
    const double ms = run_timed(cell_request(cell), options, report);
    const mc::McStats& s = report.stats;
    const double seen = static_cast<double>(s.states_expanded + s.states_deduped);
    const double serial_ms = serial_ms_by_cell[i];
    sharded_table.add_row(
        {std::string(core::to_string(cell.algorithm)), Table::num(cell.n),
         Table::num(cell.k), Table::num(ms, 2), Table::num(s.shards),
         rate(static_cast<double>(s.states_expanded), ms),
         Table::num(seen > 0 ? static_cast<double>(s.states_deduped) / seen : 0,
                    3),
         Table::num(serial_ms / (ms > 0 ? ms : 1), 2),
         report.verdict == serial_reports[i].verdict ? "yes" : "NO"});
    ++i;
  }
  std::cout << sharded_table;

  std::cout << "\nSharding is worker-count-invariant by construction (per-shard\n"
               "visited maps, index-order folding); its dedup hit-rate drops\n"
               "because equal states in different shards are both expanded.\n"
               "Use frontier=1 when the state DAG is dense, sharding when the\n"
               "walk is replay-bound or pruning is off.\n";
}

void register_timings() {
  struct TimingCase {
    const char* name;
    bool dedup, sleep;
    std::size_t frontier, workers;
  };
  static constexpr TimingCase kCases[] = {
      {"mc/known-k-full/n=8/k=3/serial", true, true, 1, 1},
      {"mc/known-k-full/n=8/k=3/sharded-w8", true, true, 8, 8},
      {"mc/known-k-full/n=8/k=3/no-pruning", false, false, 1, 1},
  };
  for (const TimingCase& c : kCases) {
    benchmark::RegisterBenchmark(
        c.name,
        [c](benchmark::State& state) {
          mc::CheckRequest request;
          request.algorithm = core::Algorithm::KnownKFull;
          request.node_count = 8;
          request.homes = gen::uniform_homes(8, 3);
          mc::McOptions options;
          options.dedup_states = c.dedup;
          options.sleep_sets = c.sleep;
          options.frontier_target = c.frontier;
          options.workers = c.workers;
          // The unpruned tree at n=8,k=3 is large; bound it so the timing
          // measures walk throughput, not tree size.
          if (!c.dedup) options.budget_actions = 2000000;
          for (auto _ : state) {
            const mc::ModelCheckReport report = mc::check(request, options);
            benchmark::DoNotOptimize(report.stats.total_actions);
            if (!report.ok) state.SkipWithError("unexpected violation");
          }
          const mc::ModelCheckReport last = mc::check(request, options);
          state.counters["schedules"] =
              static_cast<double>(last.stats.schedules);
          state.counters["states"] =
              static_cast<double>(last.stats.states_expanded);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
