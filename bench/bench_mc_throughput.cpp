// bench_mc_throughput — the exhaustive model checker's own artifact.
//
// Reports, for a small verification grid, the walk throughput
// (schedules/s and actions/s), the pruning economics (dedup hit-rate,
// sleep-set and DPOR cut counts), and the serial vs frontier-sharded
// trade: private-visited sharding buys parallel wall-clock but pays for
// it in cross-shard dedup loss, while the lock-free shared visited set
// recovers the dedup at the cost of claim-order nondeterminism in WHO
// expands a state (never in the counts — they are functions of the
// claimed closure). The DPOR + symmetry layers are what push the
// exhaustive grid to n=24 (2x the pre-DPOR maximum of n=12). The
// google-benchmark timings land in the BENCH_mc.json CI artifact like
// bench_campaign_engine's.
//
// Set UDRING_MC_SMOKE=1 for the tiny CI grid.

#include <chrono>
#include <cstdlib>

#include "mc/model_check.h"
#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

struct BenchCell {
  core::Algorithm algorithm;
  std::size_t n, k;
};

std::vector<BenchCell> bench_cells() {
  if (std::getenv("UDRING_MC_SMOKE") != nullptr) {
    return {{core::Algorithm::KnownKFull, 8, 3},
            {core::Algorithm::KnownKLogMem, 8, 3}};
  }
  return {{core::Algorithm::KnownKFull, 10, 3},
          {core::Algorithm::KnownKFull, 12, 4},
          // 2x the pre-DPOR maximum n: exhaustive only because DPOR and
          // the symmetry quotient cut the interleaving tree.
          {core::Algorithm::KnownKFull, 24, 4},
          {core::Algorithm::KnownKLogMem, 8, 3},
          {core::Algorithm::KnownKLogMem, 10, 4},
          {core::Algorithm::KnownKLogMem, 20, 4}};
}

mc::CheckRequest cell_request(const BenchCell& cell) {
  mc::CheckRequest request;
  request.algorithm = cell.algorithm;
  request.node_count = cell.n;
  request.homes = gen::uniform_homes(cell.n, cell.k);
  return request;
}

double run_timed(const mc::CheckRequest& request, const mc::McOptions& options,
                 mc::ModelCheckReport& out) {
  const auto start = std::chrono::steady_clock::now();
  out = mc::check(request, options);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::string rate(double count, double ms) {
  return Table::num(ms > 0 ? 1000.0 * count / ms : 0.0, 0);
}

void print_report() {
  std::cout << "Model-checker throughput: exhaustive verification cells,\n"
               "serial (frontier=1) vs sharded (frontier=8, all cores).\n";

  print_section(std::cout, "Serial walk (full cross-subtree dedup)");
  Table serial_table({"algorithm", "n", "k", "wall ms", "states/s", "actions/s",
                      "dedup hit-rate", "sleep cut", "dpor cut", "verdict"});
  std::vector<mc::ModelCheckReport> serial_reports;
  std::vector<double> serial_ms_by_cell;
  for (const BenchCell& cell : bench_cells()) {
    mc::ModelCheckReport report;
    const double ms = run_timed(cell_request(cell), {}, report);
    serial_ms_by_cell.push_back(ms);
    const mc::McStats& s = report.stats;
    const double seen = static_cast<double>(s.states_expanded + s.states_deduped);
    serial_table.add_row(
        {std::string(core::to_string(cell.algorithm)), Table::num(cell.n),
         Table::num(cell.k), Table::num(ms, 2),
         rate(static_cast<double>(s.states_expanded), ms),
         rate(static_cast<double>(s.total_actions), ms),
         Table::num(seen > 0 ? static_cast<double>(s.states_deduped) / seen : 0,
                    3),
         Table::num(static_cast<double>(s.sleep_pruned), 0),
         Table::num(static_cast<double>(s.dpor_pruned), 0), report.verdict});
    serial_reports.push_back(std::move(report));
  }
  std::cout << serial_table;

  print_section(std::cout, "Frontier-sharded walk (per-shard dedup)");
  Table sharded_table({"algorithm", "n", "k", "wall ms", "shards", "states/s",
                       "dedup hit-rate", "speedup", "verdict match"});
  std::size_t i = 0;
  for (const BenchCell& cell : bench_cells()) {
    mc::McOptions options;
    options.frontier_target = 8;
    options.workers = 0;  // all cores
    mc::ModelCheckReport report;
    const double ms = run_timed(cell_request(cell), options, report);
    const mc::McStats& s = report.stats;
    const double seen = static_cast<double>(s.states_expanded + s.states_deduped);
    const double serial_ms = serial_ms_by_cell[i];
    sharded_table.add_row(
        {std::string(core::to_string(cell.algorithm)), Table::num(cell.n),
         Table::num(cell.k), Table::num(ms, 2), Table::num(s.shards),
         rate(static_cast<double>(s.states_expanded), ms),
         Table::num(seen > 0 ? static_cast<double>(s.states_deduped) / seen : 0,
                    3),
         Table::num(serial_ms / (ms > 0 ? ms : 1), 2),
         report.verdict == serial_reports[i].verdict ? "yes" : "NO"});
    ++i;
  }
  std::cout << sharded_table;

  print_section(std::cout,
                "Shared-visited sharded walk (lock-free cross-shard dedup)");
  Table shared_table({"algorithm", "n", "k", "wall ms", "shards", "states/s",
                      "dedup hit-rate", "verdict match"});
  i = 0;
  for (const BenchCell& cell : bench_cells()) {
    mc::McOptions options;
    options.frontier_target = 8;
    options.workers = 0;  // all cores
    options.shared_visited = true;
    mc::ModelCheckReport report;
    const double ms = run_timed(cell_request(cell), options, report);
    const mc::McStats& s = report.stats;
    const double seen = static_cast<double>(s.states_expanded + s.states_deduped);
    shared_table.add_row(
        {std::string(core::to_string(cell.algorithm)), Table::num(cell.n),
         Table::num(cell.k), Table::num(ms, 2), Table::num(s.shards),
         rate(static_cast<double>(s.states_expanded), ms),
         Table::num(seen > 0 ? static_cast<double>(s.states_deduped) / seen : 0,
                    3),
         report.verdict == serial_reports[i].verdict ? "yes" : "NO"});
    ++i;
  }
  std::cout << shared_table;

  std::cout << "\nSharding is worker-count-invariant by construction: private\n"
               "visited maps pay cross-shard dedup loss (equal states in\n"
               "different shards are both expanded); the lock-free shared set\n"
               "recovers the dedup — claim-first insertion makes the counts a\n"
               "function of the claimed closure, so they too are identical at\n"
               "any worker count. Use frontier=1 when the state DAG is dense,\n"
               "sharding when the walk is replay-bound or pruning is off.\n";
}

void register_timings() {
  struct TimingCase {
    const char* name;
    std::size_t n, k;
    bool dedup, sleep, dpor, shared;
    std::size_t frontier, workers;
  };
  // The three n=8 names predate DPOR and must keep existing (bench_compare
  // matches rows by name); their timings shift because the default walk now
  // carries backtrack sets. no-pruning turns DPOR off along with the rest.
  static constexpr TimingCase kCases[] = {
      {"mc/known-k-full/n=8/k=3/serial", 8, 3, true, true, true, false, 1, 1},
      {"mc/known-k-full/n=8/k=3/sharded-w8", 8, 3, true, true, true, false, 8,
       8},
      {"mc/known-k-full/n=8/k=3/no-pruning", 8, 3, false, false, false, false,
       1, 1},
      {"mc/known-k-full/n=8/k=3/no-dpor", 8, 3, true, true, false, false, 1, 1},
      {"mc/known-k-full/n=8/k=3/shared-visited-w8", 8, 3, true, true, true,
       true, 8, 8},
      // Exhaustive at 2x the pre-DPOR maximum n — the row this PR exists for.
      {"mc/known-k-full/n=24/k=4/serial", 24, 4, true, true, true, false, 1, 1},
  };
  for (const TimingCase& c : kCases) {
    benchmark::RegisterBenchmark(
        c.name,
        [c](benchmark::State& state) {
          mc::CheckRequest request;
          request.algorithm = core::Algorithm::KnownKFull;
          request.node_count = c.n;
          request.homes = gen::uniform_homes(c.n, c.k);
          mc::McOptions options;
          options.dedup_states = c.dedup;
          options.sleep_sets = c.sleep;
          options.dpor = c.dpor;
          options.shared_visited = c.shared;
          options.frontier_target = c.frontier;
          options.workers = c.workers;
          // The unpruned tree at n=8,k=3 is large; bound it so the timing
          // measures walk throughput, not tree size.
          if (!c.dedup) options.budget_actions = 2000000;
          for (auto _ : state) {
            const mc::ModelCheckReport report = mc::check(request, options);
            benchmark::DoNotOptimize(report.stats.total_actions);
            if (!report.ok) state.SkipWithError("unexpected violation");
          }
          const mc::ModelCheckReport last = mc::check(request, options);
          state.counters["schedules"] =
              static_cast<double>(last.stats.schedules);
          state.counters["states"] =
              static_cast<double>(last.stats.states_expanded);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
