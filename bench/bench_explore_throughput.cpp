// bench/bench_explore_throughput.cpp
//
// Schedule-exploration throughput: how many fuzzer steps (atomic actions
// under per-action invariant checking) the explorer sustains, and what the
// recording/checking layers cost relative to a raw simulator run on the
// same instance. The fuzzer's search power is steps/sec × budget, so this
// bench is the explorer's hot-path regression tracker, alongside the
// campaign engine's scaling bench.
//
//   bench_explore_throughput                 # full sweep
//   UDRING_EXPLORE_SMOKE=1 bench_explore_... # CI-sized

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/fuzz.h"
#include "explore/replay.h"
#include "explore/shrink.h"
#include "util/rng.h"

namespace {

using namespace udring;

[[nodiscard]] bool smoke() {
  const char* env = std::getenv("UDRING_EXPLORE_SMOKE");
  return env != nullptr && env[0] == '1';
}

[[nodiscard]] std::vector<std::size_t> bench_homes(std::size_t n, std::size_t k) {
  Rng rng(42);
  return exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
}

/// Raw baseline: the same instance under the same scheduler family, no
/// recording, no per-action checking — what the simulator alone costs.
void BM_RawRun(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = bench_homes(n, k);
  spec.scheduler = sim::SchedulerKind::RoundRobin;
  std::size_t actions = 0;
  for (auto _ : state) {
    const core::RunReport report =
        core::run_algorithm(core::Algorithm::KnownKFull, spec);
    benchmark::DoNotOptimize(report.total_moves);
    actions += report.result.actions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  state.counters["actions/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}

/// One full fuzzer step pipeline: record + invariant check every action +
/// goal oracle. items/sec here IS fuzzer steps/sec. range(2) picks the
/// per-action oracle (0 = full re-walk, 1 = incremental O(dirty)) — the
/// spread between the two rows is what the incremental checker buys, and it
/// widens with n (the full walk is O(n) per action, the footprint is not).
void BM_FuzzerSteps(benchmark::State& state) {
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.min_nodes = options.max_nodes = static_cast<std::size_t>(state.range(0));
  options.min_agents = options.max_agents = static_cast<std::size_t>(state.range(1));
  options.oracle = state.range(2) == 0 ? explore::OracleMode::Full
                                       : explore::OracleMode::Incremental;
  std::size_t actions = 0;
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    const explore::FuzzIteration outcome =
        explore::fuzz_iteration(options, iteration++);
    if (outcome.failure) state.SkipWithError("unexpected fuzz failure");
    actions += outcome.actions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}

/// Replay throughput (the shrinker's inner loop — each ddmin candidate
/// costs one of these).
void BM_Replay(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const explore::ScheduleTrace trace = explore::record_trace(
      core::Algorithm::KnownKFull, n, bench_homes(n, k),
      explore::ExploreSchedulerKind::FifoStress, /*seed=*/7);
  std::size_t actions = 0;
  for (auto _ : state) {
    const explore::ReplayOutcome outcome = explore::replay_trace(trace);
    benchmark::DoNotOptimize(outcome.digest);
    actions += outcome.actions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}

/// Parallel fuzz campaign scaling (substream-sharded over the worker pool).
void BM_FuzzCampaign(benchmark::State& state) {
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.iterations = smoke() ? 16 : 128;
  options.workers = static_cast<std::size_t>(state.range(0));
  std::size_t actions = 0;
  for (auto _ : state) {
    const explore::FuzzReport report = explore::run_fuzz(options);
    if (report.failures != 0) state.SkipWithError("unexpected fuzz failure");
    actions += report.total_actions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(actions));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(actions), benchmark::Counter::kIsRate);
}

void register_all() {
  const std::vector<std::pair<std::int64_t, std::int64_t>> instances =
      smoke() ? std::vector<std::pair<std::int64_t, std::int64_t>>{{24, 6}}
              : std::vector<std::pair<std::int64_t, std::int64_t>>{
                    {24, 6}, {64, 8}, {128, 16}};
  for (const auto& [n, k] : instances) {
    benchmark::RegisterBenchmark("raw_run", BM_RawRun)->Args({n, k});
    benchmark::RegisterBenchmark("fuzzer_steps", BM_FuzzerSteps)
        ->Args({n, k, 0});
    benchmark::RegisterBenchmark("fuzzer_steps_incremental", BM_FuzzerSteps)
        ->Args({n, k, 1});
    benchmark::RegisterBenchmark("replay", BM_Replay)->Args({n, k});
  }
  const std::vector<std::int64_t> workers =
      smoke() ? std::vector<std::int64_t>{1, 2} : std::vector<std::int64_t>{1, 2, 4, 8};
  for (const std::int64_t w : workers) {
    benchmark::RegisterBenchmark("fuzz_campaign_workers", BM_FuzzCampaign)
        ->Args({w})
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
