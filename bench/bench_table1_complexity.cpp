// bench_table1_complexity — reproduces Table 1, the paper's main result
// summary, empirically:
//
//   Result 1 (Algorithm 1):    O(k log n) memory, O(n) time,       O(kn) moves
//   Result 2 (Algorithms 2+3): O(log n) memory,   O(n log k) time, O(kn) moves
//   Result 4 (Algorithms 4–6): O((k/l)log(n/l)),  O(n/l),          O(kn/l)
//
// For each (n, k) cell we print the three measured quantities and the
// normalized ratios (moves/kn, time/n, time/(n·log k), memory/log n,
// memory/(k·log n)). The claims hold iff the matching ratio column is flat
// across the sweep. The expected *shape*: Algorithm 1 wins time by a log k
// factor, loses memory by a k factor; both meet Θ(kn) moves; the relaxed
// algorithm pays a constant ≈ 12–14× in moves for not knowing k or n.

#include <cmath>

#include "support/bench_common.h"
#include "util/bits.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Reproduction of Table 1 (Shibata et al., JPDC 2018) — measured on\n"
               "random aperiodic configurations, synchronous scheduler, 5 seeds.\n";

  const std::vector<std::size_t> ns = {64, 128, 256, 512, 1024};
  const std::vector<std::size_t> k_divisors = {16, 8};  // k = n/16, n/8

  // The whole table is one declarative campaign: every algorithm on every
  // (n, n/divisor) instance, sharded across the worker pool.
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
                     core::Algorithm::UnknownRelaxed};
  grid.families = {ConfigFamily::RandomAperiodic};
  for (const std::size_t divisor : k_divisors) {
    for (const std::size_t n : ns) grid.instances.emplace_back(n, n / divisor);
  }
  grid.seeds = 5;
  const exp::CampaignResult result = exp::run_campaign(grid);

  for (const auto& [algorithm, label] :
       {std::make_pair(core::Algorithm::KnownKFull, "Result 1: Algorithm 1 (known k)"),
        std::make_pair(core::Algorithm::KnownKLogMem,
                       "Result 2: Algorithms 2+3 (known k, O(log n) memory)"),
        std::make_pair(core::Algorithm::UnknownRelaxed,
                       "Result 4: Algorithms 4-6 (no knowledge, relaxed)")}) {
    print_section(std::cout, label);
    Table table({"n", "k", "moves", "moves/kn", "time", "time/n", "time/(n·lg k)",
                 "mem bits", "mem/lg n", "mem/(k·lg n)", "ok"});
    for (const std::size_t divisor : k_divisors) {
      for (const std::size_t n : ns) {
        const std::size_t k = n / divisor;
        const Averages avg = result.averages(
            {algorithm, ConfigFamily::RandomAperiodic,
             sim::SchedulerKind::Synchronous, n, k, 1});
        const double lg_n = static_cast<double>(bit_width(n));
        const double lg_k = std::max(1.0, std::log2(static_cast<double>(k)));
        table.add_row(
            {Table::num(n), Table::num(k), Table::num(avg.moves, 0),
             Table::num(avg.moves / static_cast<double>(n * k), 2),
             Table::num(avg.makespan, 0),
             Table::num(avg.makespan / static_cast<double>(n), 2),
             Table::num(avg.makespan / (static_cast<double>(n) * lg_k), 2),
             Table::num(avg.memory_bits, 0), Table::num(avg.memory_bits / lg_n, 1),
             Table::num(avg.memory_bits / (static_cast<double>(k) * lg_n), 2),
             avg.success_rate == 1.0 ? "yes" : "NO"});
      }
    }
    std::cout << table;
  }

  print_section(std::cout, "Shape check: which ratio is flat for which algorithm");
  std::cout <<
      "  Algorithm 1:    flat moves/kn (~2.0: one selection circuit + ~1n\n"
      "                  deployment) and flat time/n (~3.0); mem/(k·lg n) → ~1.05\n"
      "                  — time optimal, memory Θ(k log n).\n"
      "  Algorithms 2+3: flat mem/lg n (~6-7.5: a fixed set of counters) — the\n"
      "                  headline Θ(log n); time/n grows like lg k (check the\n"
      "                  time/(n·lg k) column settling as k grows) — the price\n"
      "                  of the log-memory selection.\n"
      "  Algorithms 4-6: flat moves/kn (~13) and time/n (~14) — the constant\n"
      "                  price of knowing neither k nor n (4 estimation circuits\n"
      "                  + 8 patrolling + deployment); mem/(k·lg n) → ~4 (stores\n"
      "                  D = S⁴). All three match Table 1's asymptotic claims.\n";
}

void register_timings() {
  for (const auto& [algorithm, name] :
       {std::make_pair(core::Algorithm::KnownKFull, "wallclock/algo1"),
        std::make_pair(core::Algorithm::KnownKLogMem, "wallclock/algo2+3"),
        std::make_pair(core::Algorithm::UnknownRelaxed, "wallclock/algo4-6")}) {
    register_timing(std::string(name) + "/n=256/k=16", algorithm,
                    ConfigFamily::RandomAperiodic, 256, 16);
    register_timing(std::string(name) + "/n=1024/k=64", algorithm,
                    ConfigFamily::RandomAperiodic, 1024, 64);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
