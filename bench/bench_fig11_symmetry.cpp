// bench_fig11_symmetry — reproduces Figures 1 and 11 / Theorem 6: the
// relaxed algorithm's costs scale as 1/l with the symmetry degree l of the
// initial configuration.
//
// For fixed (n, k) we sweep l over the divisors of gcd(n, k) and report
// moves, ideal time and peak memory together with their l-normalized
// versions (flat columns = the theorem's shape). The worked Fig 1(a)/(b)
// and Fig 11 instances are reported verbatim.

#include "core/unknown_relaxed.h"
#include "support/bench_common.h"
#include "util/bits.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Reproduction of Fig 1 / Fig 11 / Theorem 6: cost vs symmetry\n"
               "degree l for Algorithms 4-6 (which never learn n, k, or l).\n";

  print_section(std::cout, "The paper's worked examples");
  {
    Table table({"instance", "n", "k", "l", "est. N", "moves", "time", "uniform"});
    struct Worked {
      const char* name;
      std::size_t n;
      std::vector<std::size_t> homes;
    };
    for (const Worked& worked :
         {Worked{"Fig 1(a) aperiodic", gen::kFig1aNodes, gen::fig1a_homes()},
          Worked{"Fig 1(b) l=2", gen::kFig1bNodes, gen::fig1b_homes()},
          Worked{"Fig 11 (6,2)-ring", gen::kFig11Nodes, gen::fig11_homes()},
          Worked{"Fig 9 trap ring", gen::kFig9Nodes, gen::fig9_homes()}}) {
      core::RunSpec spec;
      spec.node_count = worked.n;
      spec.homes = worked.homes;
      auto simulator = core::make_simulator(core::Algorithm::UnknownRelaxed, spec);
      sim::SynchronousScheduler scheduler;
      (void)simulator->run(scheduler);
      const auto& agent0 = dynamic_cast<const core::UnknownRelaxedAgent&>(
          simulator->program(0));
      const bool uniform =
          sim::UniformDeploymentOracle(false).check_goal(*simulator).ok;
      table.add_row(
          {worked.name, Table::num(worked.n), Table::num(worked.homes.size()),
           Table::num(core::config_symmetry_degree(worked.homes, worked.n)),
           Table::num(agent0.estimated_n()),
           Table::num(simulator->metrics().total_moves()),
           Table::num(static_cast<std::size_t>(simulator->metrics().makespan())),
           uniform ? "yes" : "NO"});
    }
    std::cout << table
              << "on Fig 11's (6,2)-ring the agents estimate N = 6 — the\n"
                 "fundamental ring — and still deploy the 12-ring uniformly.\n";
  }

  print_section(std::cout, "Theorem 6 — 1/l scaling (n = 384, k = 32)");
  {
    const std::size_t n = 384, k = 32;
    Table table({"l", "moves", "moves·l/(kn)", "time", "time·l/n", "mem bits",
                 "mem·l/(k·lg(n/l))", "ok"});
    for (const std::size_t l : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const ConfigFamily family =
          l == 1 ? ConfigFamily::RandomAperiodic : ConfigFamily::Periodic;
      const Averages avg =
          measure(core::Algorithm::UnknownRelaxed, family, n, k, l);
      const double lg_nl = static_cast<double>(bit_width(n / l));
      table.add_row(
          {Table::num(l), Table::num(avg.moves, 0),
           Table::num(avg.moves * static_cast<double>(l) /
                          static_cast<double>(k * n),
                      2),
           Table::num(avg.makespan, 0),
           Table::num(avg.makespan * static_cast<double>(l) /
                          static_cast<double>(n),
                      2),
           Table::num(avg.memory_bits, 0),
           Table::num(avg.memory_bits * static_cast<double>(l) /
                          (static_cast<double>(k) * lg_nl),
                      2),
           avg.success_rate == 1.0 ? "yes" : "NO"});
    }
    std::cout << table
              << "the l-normalized columns are flat: O(kn/l) moves, O(n/l) time,\n"
                 "O((k/l)·log(n/l)) memory. At l = k the relaxed algorithm beats\n"
                 "even the known-k algorithms (O(n) total moves) — symmetry that\n"
                 "dooms rendezvous is pure profit for uniform deployment.\n";
  }
}

void register_timings() {
  register_timing("fig11/relaxed/l=1", core::Algorithm::UnknownRelaxed,
                  ConfigFamily::RandomAperiodic, 384, 32, 1);
  register_timing("fig11/relaxed/l=8", core::Algorithm::UnknownRelaxed,
                  ConfigFamily::Periodic, 384, 32, 8);
  register_timing("fig11/relaxed/l=32", core::Algorithm::UnknownRelaxed,
                  ConfigFamily::Periodic, 384, 32, 32);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
