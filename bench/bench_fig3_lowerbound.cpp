// bench_fig3_lowerbound — reproduces Figure 3 / Theorem 1: from the packed
// initial configuration (all agents in one quarter arc) every algorithm
// needs Ω(kn) total moves; the proof's constant is kn/16.
//
// We run all three algorithms on the packed witness across n and report
// moves, moves/kn, and the measured-over-bound ratio (must stay ≥ 1; the
// bound is tight up to a small constant). Theorem 2's Ω(n) time bound is
// checked alongside.

#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Reproduction of Fig 3 / Theorems 1-2: the packed quarter-arc\n"
               "configuration forces Ω(kn) moves and Ω(n) time (k = n/8).\n";

  // One campaign: every algorithm on every packed witness (deterministic
  // configuration, so a single repetition per cell).
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
                     core::Algorithm::UnknownRelaxed};
  grid.families = {ConfigFamily::Packed};
  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    grid.instances.emplace_back(n, n / 8);
  }
  const exp::CampaignResult result = exp::run_campaign(grid);

  for (const auto& [algorithm, label] :
       {std::make_pair(core::Algorithm::KnownKFull, "Algorithm 1"),
        std::make_pair(core::Algorithm::KnownKLogMem, "Algorithms 2+3"),
        std::make_pair(core::Algorithm::UnknownRelaxed, "Algorithms 4-6")}) {
    print_section(std::cout, label);
    Table table({"n", "k", "moves", "bound kn/16", "moves/bound", "moves/kn",
                 "time", "time/n", "ok"});
    for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
      const std::size_t k = n / 8;
      const Averages avg = result.averages(
          {algorithm, ConfigFamily::Packed, sim::SchedulerKind::Synchronous,
           n, k, 1});
      const double bound = static_cast<double>(k * n) / 16.0;
      table.add_row({Table::num(n), Table::num(k), Table::num(avg.moves, 0),
                     Table::num(bound, 0), Table::num(avg.moves / bound, 1),
                     Table::num(avg.moves / static_cast<double>(k * n), 2),
                     Table::num(avg.makespan, 0),
                     Table::num(avg.makespan / static_cast<double>(n), 2),
                     avg.success_rate == 1.0 ? "yes" : "NO"});
    }
    std::cout << table;
  }
  std::cout
      << "\nmoves/bound stays comfortably above 1 for every algorithm and n —\n"
         "the Ω(kn) lower bound binds — while moves/kn stays flat: the paper's\n"
         "algorithms are asymptotically optimal on their own worst case. The\n"
         "relaxed algorithm pays its usual ~13x constant, not a worse rate.\n";
}

void register_timings() {
  register_timing("fig3/packed/algo1/n=512", core::Algorithm::KnownKFull,
                  ConfigFamily::Packed, 512, 64);
  register_timing("fig3/packed/algo4-6/n=512", core::Algorithm::UnknownRelaxed,
                  ConfigFamily::Packed, 512, 64);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
