// bench_huge_instance — the zero-steady-state-allocation artifact.
//
// Runs known-k-full on an n ≥ 100k ring (and the Euler-tour ring of a
// ~n/2-node random tree) through one pooled ExecutionState, counting every
// global operator new via an instrumented allocator:
//
//  - cold run:  reset() on a fresh arena + full execution. Allocations here
//               are the O(n) arena build plus O(k) programs.
//  - warm run:  reset() on the *same* arena + full execution. reset() may
//               allocate only the O(k) per-run objects (programs, coroutine
//               frames); the action loop itself must allocate NOTHING —
//               that is the steady-state contract campaigns rely on.
//
// Set UDRING_HUGE_STRICT=1 to turn a nonzero warm action-loop count into a
// nonzero exit (the CI bench-smoke job does). UDRING_HUGE_NODES overrides
// the ring size. Wall-clock timings register as google-benchmarks.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "embed/topology.h"
#include "embed/tree.h"
#include "support/bench_common.h"
// Defines the global counting operator new for this binary (one TU only);
// measurement windows snapshot udring::allocation_count(). Compiled out
// under sanitizers — this audit only runs in the Release bench-smoke job.
#include "util/counting_allocator.h"

namespace {

using namespace udring;
using namespace udring::bench;

struct RunStats {
  std::size_t reset_allocs = 0;
  std::size_t run_allocs = 0;
  std::size_t actions = 0;
  double run_ms = 0;
};

RunStats timed_run(sim::ExecutionState& state, const sim::Instance& instance,
                   sim::Scheduler& scheduler) {
  RunStats stats;
  const std::size_t before_reset = allocation_count();
  state.reset(instance);
  stats.reset_allocs = allocation_count() - before_reset;

  const auto start = std::chrono::steady_clock::now();
  const std::size_t before_run = allocation_count();
  const sim::RunResult result = state.run(scheduler);
  stats.run_allocs = allocation_count() - before_run;
  const auto stop = std::chrono::steady_clock::now();
  stats.actions = result.actions;
  stats.run_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  if (!result.quiescent()) {
    std::fprintf(stderr, "bench_huge_instance: run hit the action limit\n");
    std::exit(2);
  }
  return stats;
}

std::size_t ring_nodes() {
  if (const char* env = std::getenv("UDRING_HUGE_NODES")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    // Floor of 2k = 16: the k evenly spread ring homes (and the k tree
    // homes on the n/2-node tree) need distinct nodes to exist.
    if (parsed >= 16) return static_cast<std::size_t>(parsed);
    std::fprintf(stderr,
                 "bench_huge_instance: UDRING_HUGE_NODES=%llu too small, "
                 "using 16\n",
                 parsed);
    return 16;
  }
  return 100'000;
}

bool g_strict_failure = false;

void report_case(const char* label, const sim::Instance& instance) {
  sim::ExecutionState state;
  sim::RoundRobinScheduler scheduler;
  const RunStats cold = timed_run(state, instance, scheduler);
  const RunStats warm = timed_run(state, instance, scheduler);

  Table table({"phase", "reset allocs", "run allocs", "actions",
               "allocs/action", "wall ms", "actions/s"});
  for (const auto& [phase, stats] : {std::pair<const char*, const RunStats&>{
                                         "cold", cold},
                                     {"warm (pooled)", warm}}) {
    table.add_row({phase, Table::num(stats.reset_allocs),
                   Table::num(stats.run_allocs), Table::num(stats.actions),
                   Table::num(static_cast<double>(stats.run_allocs) /
                                  static_cast<double>(stats.actions),
                              6),
                   Table::num(stats.run_ms, 0),
                   Table::num(1000.0 * static_cast<double>(stats.actions) /
                                  stats.run_ms,
                              0)});
  }
  std::cout << label << " (n=" << instance.node_count()
            << ", k=" << instance.agent_count() << "):\n"
            << table;
  // The contract: nothing on the action path may allocate. Algorithms are
  // allowed O(k) one-off allocations per run (e.g. Booth's failure function
  // in known-k-full's deployment step) — what must never appear is a count
  // that scales with the ~10^6 actions.
  const std::size_t per_run_allowance = 16 * instance.agent_count();
  if (warm.run_allocs > per_run_allowance) {
    std::cout << "WARNING: warm run allocated " << warm.run_allocs
              << " times (allowance " << per_run_allowance
              << ") — the steady-state action path regressed.\n";
    g_strict_failure = true;
  } else {
    std::cout << "warm run: " << warm.run_allocs
              << " allocations over " << warm.actions
              << " actions (O(k) per-run constants; the action loop itself "
               "is allocation-free).\n";
  }
  std::cout << '\n';
}

void print_report() {
  const std::size_t n = ring_nodes();
  const std::size_t k = 8;
  std::cout << "Huge-instance steady-state allocation audit "
               "(known-k-full, round-robin).\n\n";

  std::vector<sim::NodeId> homes;
  for (std::size_t i = 0; i < k; ++i) homes.push_back(i * (n / k));
  const sim::Instance ring_instance(
      n, homes, core::make_program_factory(core::Algorithm::KnownKFull, k));
  report_case("unidirectional ring", ring_instance);

  // The native topology path at scale: the Euler tour of a random tree on
  // ~n/2 nodes is a virtual ring of ~n steps with label/port views attached.
  Rng rng(1);
  const std::size_t tree_nodes = std::max<std::size_t>(n / 2, 2);
  const embed::TreeNetwork tree = embed::random_tree(tree_nodes, rng);
  sim::Topology topology = embed::euler_tour_topology(tree);
  std::vector<embed::TreeNodeId> tree_homes;
  for (std::size_t i = 0; i < k; ++i) tree_homes.push_back(i * (tree_nodes / k));
  std::vector<sim::NodeId> virtual_home_list =
      embed::virtual_homes(topology, tree_homes);
  const sim::Instance tree_instance(
      std::move(topology), std::move(virtual_home_list),
      core::make_program_factory(core::Algorithm::KnownKFull, k));
  report_case("euler-tree virtual ring", tree_instance);
}

void register_timings() {
  benchmark::RegisterBenchmark("huge/pooled-run/n=100k/k=8",
                               [](benchmark::State& bench_state) {
                                 const std::size_t n = ring_nodes();
                                 const std::size_t k = 8;
                                 std::vector<sim::NodeId> homes;
                                 for (std::size_t i = 0; i < k; ++i) {
                                   homes.push_back(i * (n / k));
                                 }
                                 const sim::Instance instance(
                                     n, homes,
                                     core::make_program_factory(
                                         core::Algorithm::KnownKFull, k));
                                 sim::ExecutionState state;
                                 sim::RoundRobinScheduler scheduler;
                                 for (auto _ : bench_state) {
                                   state.reset(instance);
                                   const sim::RunResult result =
                                       state.run(scheduler);
                                   benchmark::DoNotOptimize(result.actions);
                                 }
                               })
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const int status =
      run_bench_main(argc, argv, print_report, register_timings);
  if (status != 0) return status;
  if (g_strict_failure && std::getenv("UDRING_HUGE_STRICT") != nullptr) {
    return 1;
  }
  return 0;
}
