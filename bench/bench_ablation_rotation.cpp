// bench_ablation_rotation — ablation of the lexicographically-minimal-
// rotation primitive that both Algorithm 1 and Algorithm 6 run in their
// deployment phases: Booth's O(k) algorithm vs the naive O(k²) scan.
//
// For the paper's complexity accounting this is "local computation" (free in
// ideal time), but for a real deployment the difference is k× — visible from
// k ≈ 2¹⁰. The report cross-checks both implementations agree on every
// instance before timing them.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/distance_sequence.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace udring;
using core::DistanceSeq;

DistanceSeq random_sequence(std::size_t length, std::size_t alphabet, Rng& rng) {
  DistanceSeq d(length);
  for (auto& value : d) {
    value = 1 + static_cast<std::size_t>(rng.below(alphabet));
  }
  return d;
}

void print_report() {
  std::cout << "Ablation: minimal-rotation (base node selection) — Booth O(k)\n"
               "vs naive O(k²). Correctness cross-check, then timings below.\n";
  print_section(std::cout, "Cross-check");
  Table table({"k", "alphabet", "instances", "agreements"});
  for (const std::size_t k : {16u, 256u, 4096u}) {
    for (const std::size_t alphabet : {2u, 16u}) {
      Rng rng(k * 17 + alphabet);
      std::size_t agree = 0;
      const std::size_t instances = 200;
      for (std::size_t i = 0; i < instances; ++i) {
        const DistanceSeq d = random_sequence(k, alphabet, rng);
        if (core::min_rotation_booth(d) == core::min_rotation_naive(d)) ++agree;
      }
      table.add_row({Table::num(k), Table::num(alphabet), Table::num(instances),
                     Table::num(agree)});
    }
  }
  std::cout << table << "\n";
}

void benchmark_rotation(benchmark::State& state, bool use_booth) {
  const auto k = static_cast<std::size_t>(state.range(0));
  // The naive scan's worst case: long shared prefixes between rotations. A
  // near-constant sequence (all 1s, single 2) forces Θ(k) work per rotation
  // comparison — Θ(k²) total — while Booth stays Θ(k). On random sequences
  // comparisons end after O(1) symbols and the two are comparable; this is
  // why the ablation matters: ring configurations close to uniform are
  // exactly the near-constant case.
  DistanceSeq d(k, 1);
  d[k - 1] = 2;
  for (auto _ : state) {
    const std::size_t result =
        use_booth ? core::min_rotation_booth(d) : core::min_rotation_naive(d);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}

}  // namespace

int main(int argc, char** argv) {
  print_report();
  for (const std::int64_t k : {64, 256, 1024, 4096, 16384}) {
    const std::string booth_name = "min_rotation/booth/k=" + std::to_string(k);
    benchmark::RegisterBenchmark(
        booth_name.c_str(),
        [](benchmark::State& state) { benchmark_rotation(state, true); })
        ->Arg(k);
    // The naive scan above k = 4096 takes seconds per iteration; cap it.
    if (k <= 4096) {
      const std::string naive_name = "min_rotation/naive/k=" + std::to_string(k);
      benchmark::RegisterBenchmark(
          naive_name.c_str(),
          [](benchmark::State& state) { benchmark_rotation(state, false); })
          ->Arg(k);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
