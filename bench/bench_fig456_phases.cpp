// bench_fig456_phases — reproduces the algorithm-anatomy figures:
//
//   Fig 4: Algorithm 1's base/target selection → selection vs deployment
//          move split (selection is exactly kn; deployment ≤ 2n per agent).
//   Fig 5: Algorithm 2's base-node conditions → number of elected leaders
//          and their segment geometry across configuration families.
//   Fig 6: the sub-phase IDs (d, fNum) → measured sub-phase count vs the
//          ⌈log k⌉ bound (the halving argument of Theorem 4).
//
// Plus the strict-vs-hardened deployment ablation on the stress instance
// (DESIGN.md §6 item 6).

#include "core/known_k_logmem.h"
#include "support/bench_common.h"
#include "util/bits.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  // ---- Fig 4: phase split of Algorithm 1 ---------------------------------
  print_section(std::cout, "Fig 4 — Algorithm 1 phase split (random configs, 5 seeds)");
  {
    Table table({"n", "k", "selection moves", "kn", "deployment moves",
                 "deploy/(kn)", "deploy max/agent"});
    for (const std::size_t n : {64u, 256u, 1024u}) {
      const std::size_t k = n / 16;
      double selection = 0, deployment = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed + n);
        core::RunSpec spec;
        spec.node_count = n;
        spec.homes = gen::random_homes(n, k, rng);
        const auto report = core::run_algorithm(core::Algorithm::KnownKFull, spec);
        selection += static_cast<double>(report.moves_by_phase[0]) / 5.0;
        deployment += static_cast<double>(report.moves_by_phase[1]) / 5.0;
      }
      table.add_row({Table::num(n), Table::num(k), Table::num(selection, 0),
                     Table::num(k * n), Table::num(deployment, 0),
                     Table::num(deployment / static_cast<double>(k * n), 2),
                     Table::num(2 * n)});
    }
    std::cout << table
              << "selection = kn exactly (every agent circles once); deployment\n"
                 "averages ~0.75·kn, bounded by 2n per agent — Theorem 3.\n";
  }

  // ---- Fig 5: leader counts / base-node conditions -----------------------
  print_section(std::cout, "Fig 5 — leaders elected by Algorithm 2 (base-node conditions)");
  {
    Table table({"config family", "n", "k", "avg leaders", "leader | k?",
                 "all runs uniform"});
    struct Row {
      const char* name;
      ConfigFamily family;
      std::size_t n, k, l;
    };
    for (const Row& row : {Row{"random", ConfigFamily::RandomAny, 96, 12, 1},
                           Row{"packed", ConfigFamily::Packed, 96, 12, 1},
                           Row{"periodic l=2", ConfigFamily::Periodic, 96, 12, 2},
                           Row{"periodic l=4", ConfigFamily::Periodic, 96, 12, 4},
                           Row{"uniform l=k", ConfigFamily::Uniform, 96, 12, 12}}) {
      double leaders = 0;
      bool divides = true, uniform = true;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed * 31 + row.l);
        core::RunSpec spec;
        spec.node_count = row.n;
        spec.homes = draw_homes(row.family, row.n, row.k, row.l, rng);
        auto simulator = core::make_simulator(core::Algorithm::KnownKLogMem, spec);
        sim::RoundRobinScheduler scheduler;
        (void)simulator->run(scheduler);
        uniform = uniform &&
                  sim::UniformDeploymentOracle(true).check_goal(*simulator).ok;
        std::size_t count = 0;
        for (sim::AgentId id = 0; id < row.k; ++id) {
          const auto& agent = dynamic_cast<const core::KnownKLogMemAgent&>(
              simulator->program(id));
          if (agent.role() == core::KnownKLogMemAgent::Role::Leader) ++count;
        }
        divides = divides && (row.k % count == 0);
        leaders += static_cast<double>(count) / 5.0;
      }
      table.add_row({row.name, Table::num(row.n), Table::num(row.k),
                     Table::num(leaders, 1), divides ? "yes" : "NO",
                     uniform ? "yes" : "NO"});
    }
    std::cout << table
              << "leader count always divides k; periodic configurations elect\n"
                 "one leader per period block (l leaders), uniform ones elect k.\n";
  }

  // ---- Fig 6: sub-phase counts vs ⌈log k⌉ ---------------------------------
  print_section(std::cout, "Fig 6 — selection sub-phases vs the ⌈log k⌉ bound");
  {
    Table table({"k", "n", "max sub-phases (20 seeds)", "ceil(log2 k)", "within"});
    for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const std::size_t n = k * 8;
      std::size_t worst = 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 7 + k);
        core::RunSpec spec;
        spec.node_count = n;
        spec.homes = gen::random_homes(n, k, rng);
        auto simulator = core::make_simulator(core::Algorithm::KnownKLogMem, spec);
        sim::RoundRobinScheduler scheduler;
        (void)simulator->run(scheduler);
        for (sim::AgentId id = 0; id < k; ++id) {
          const auto& agent = dynamic_cast<const core::KnownKLogMemAgent&>(
              simulator->program(id));
          worst = std::max(worst, agent.sub_phases());
        }
      }
      const std::size_t bound = ceil_log2(k) + 1;
      table.add_row({Table::num(k), Table::num(n), Table::num(worst),
                     Table::num(ceil_log2(k)), worst <= bound ? "yes" : "NO"});
    }
    std::cout << table
              << "the ID-halving argument holds: sub-phases never exceed\n"
                 "⌈log k⌉ (+1 for the final leader-detection circuit).\n";
  }

  // ---- ablation: strict-paper vs hardened deployment ----------------------
  print_section(std::cout,
                "Ablation — literal (strict-paper) vs hardened deployment");
  {
    Table table({"variant", "stress-instance moves", "random moves", "uniform"});
    for (const auto& [algorithm, label] :
         {std::make_pair(core::Algorithm::KnownKLogMemStrict, "strict (paper)"),
          std::make_pair(core::Algorithm::KnownKLogMem, "hardened (base-skip)")}) {
      core::RunSpec stress;
      stress.node_count = gen::kLogmemStressNodes;
      stress.homes = gen::logmem_stress_homes();
      const auto stress_report = core::run_algorithm(algorithm, stress);
      const Averages random_avg =
          measure(algorithm, ConfigFamily::RandomAny, 128, 16);
      table.add_row({label, Table::num(stress_report.total_moves),
                     Table::num(random_avg.moves, 0),
                     (stress_report.success && random_avg.success_rate == 1.0)
                         ? "yes"
                         : "NO"});
    }
    std::cout << table
              << "both variants are correct (the literal one leans on FIFO\n"
                 "pushing — DESIGN.md §6 item 6) and cost the same within noise.\n";
  }
}

void register_timings() {
  register_timing("fig456/algo2/n=256/k=16", core::Algorithm::KnownKLogMem,
                  ConfigFamily::RandomAny, 256, 16);
  register_timing("fig456/algo2strict/n=256/k=16",
                  core::Algorithm::KnownKLogMemStrict, ConfigFamily::RandomAny, 256,
                  16);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
