// bench_campaign_engine — the campaign engine's own artifact: runs the
// acceptance grid (n ∈ {16..64}, k ∈ {2..8}, 16 seeds, 2 schedulers —
// 1568 scenarios) serially and sharded, verifies the worker-count
// determinism contract (identical digests), and reports throughput and
// parallel speedup. Set UDRING_CAMPAIGN_SMOKE=1 for the tiny CI grid.

#include <chrono>
#include <cstdlib>

#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

exp::CampaignGrid engine_grid() {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.schedulers = {sim::SchedulerKind::RoundRobin, sim::SchedulerKind::Random};
  if (std::getenv("UDRING_CAMPAIGN_SMOKE") != nullptr) {
    grid.node_counts = {16, 24};
    grid.agent_counts = {2, 4};
    grid.seeds = 2;  // 16 scenarios: enough to exercise every engine path
  } else {
    grid.node_counts = {16, 24, 32, 40, 48, 56, 64};
    grid.agent_counts = {2, 3, 4, 5, 6, 7, 8};
    grid.seeds = 16;  // 7 × 7 × 2 × 16 = 1568 scenarios
  }
  return grid;
}

double run_timed(const exp::CampaignGrid& grid, std::size_t workers,
                 exp::CampaignResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = exp::run_campaign(grid, {.workers = workers});
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void print_report() {
  const exp::CampaignGrid grid = engine_grid();
  const std::size_t scenario_count = exp::expand(grid).size();
  std::cout << "Campaign engine scaling: " << scenario_count
            << " scenarios (known-k-full, round-robin + random schedulers).\n";

  exp::CampaignResult serial;
  const double serial_ms = run_timed(grid, 1, serial);

  print_section(std::cout, "Worker scaling");
  Table table({"workers", "wall ms", "scenarios/s", "speedup", "digest match"});
  table.add_row({"1", Table::num(serial_ms, 0),
                 Table::num(1000.0 * static_cast<double>(scenario_count) / serial_ms, 0),
                 "1.0", "-"});
  for (const std::size_t workers : {2u, 4u, 8u}) {
    exp::CampaignResult sharded;
    const double ms = run_timed(grid, workers, sharded);
    table.add_row({Table::num(workers), Table::num(ms, 0),
                   Table::num(1000.0 * static_cast<double>(scenario_count) / ms, 0),
                   Table::num(serial_ms / ms, 2),
                   sharded.digest() == serial.digest() ? "yes" : "NO"});
  }
  std::cout << table;

  // The O(cells + workers)-memory aggregation path must be the same
  // computation, not a sibling: its digest has to reproduce the
  // materialized one byte-for-byte (bench_streaming_campaign is the full
  // artifact; this row keeps the engine's own report honest).
  print_section(std::cout, "Streaming aggregation");
  const exp::CampaignResult streamed =
      exp::run_campaign_streaming(grid, {.workers = 8});
  std::cout << "streaming digest "
            << (streamed.digest() == serial.digest() ? "matches" : "DOES NOT match")
            << " the materialized serial run ("
            << streamed.cells.size() << " cells, no per-scenario storage).\n";

  // Lane-batched A/B: the SoA lane engine (sim::BatchArena) must reproduce
  // the scalar digest at every lane setting — 1 is the historical scalar
  // path, auto is what production campaigns run. A mismatch here is an
  // engine bug, so the report exits nonzero (this is the CI batch smoke).
  print_section(std::cout, "Lane batching (batch_lanes A/B, workers = 1)");
  bool lanes_ok = true;
  Table lane_table({"lanes", "wall ms", "scenarios/s", "digest match"});
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    exp::CampaignOptions options;
    options.workers = 1;
    options.batch_lanes = lanes;
    const auto start = std::chrono::steady_clock::now();
    const exp::CampaignResult result = exp::run_campaign(grid, options);
    const auto stop = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(stop - start).count();
    const bool match = result.digest() == serial.digest();
    lanes_ok = lanes_ok && match;
    lane_table.add_row({lanes == 0 ? "auto" : Table::num(lanes),
                        Table::num(ms, 0),
                        Table::num(1000.0 * static_cast<double>(scenario_count) / ms, 0),
                        match ? "yes" : "NO"});
  }
  std::cout << lane_table;
  if (!lanes_ok) {
    std::cout << "ERROR: lane-batched digest diverged from the scalar engine.\n";
    std::exit(2);
  }

  std::cout << "\nfailures: " << serial.failures << " / " << scenario_count
            << "   digest: " << std::hex << serial.digest() << std::dec << '\n';
  if (!serial.all_ok()) {
    for (const std::string& sample : serial.failure_samples) {
      std::cout << "  FAIL " << sample << '\n';
    }
  }
  std::cout << "\nEvery row's digest matches the serial run: aggregation is\n"
               "byte-identical at any worker count (per-scenario substreams +\n"
               "index-order folding), so sharded campaigns are replayable\n"
               "evidence, not just fast sweeps.\n";
}

void register_timings() {
  for (const std::size_t workers : {1u, 8u}) {
    const std::string name =
        "campaign/n=32..48/k=4,8/workers=" + std::to_string(workers);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [workers](benchmark::State& state) {
          exp::CampaignGrid grid;
          grid.algorithms = {core::Algorithm::KnownKFull};
          grid.schedulers = {sim::SchedulerKind::RoundRobin,
                             sim::SchedulerKind::Random};
          grid.node_counts = {32, 48};
          grid.agent_counts = {4, 8};
          grid.seeds = 4;
          for (auto _ : state) {
            const exp::CampaignResult result =
                exp::run_campaign(grid, {.workers = workers});
            benchmark::DoNotOptimize(result.failures);
            if (!result.all_ok()) state.SkipWithError("campaign failed");
          }
          state.counters["workers"] = static_cast<double>(workers);
        })
        ->Unit(benchmark::kMillisecond);
  }
  // Lane-scaling rows: the same acceptance cell swept over batch_lanes at
  // one worker, so the artifact tracks the lane engine's own trajectory
  // (lanes=1 is the scalar path; the workers= rows above run auto lanes).
  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    const std::string name =
        "campaign/n=32..48/k=4,8/lanes=" + std::to_string(lanes);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [lanes](benchmark::State& state) {
          exp::CampaignGrid grid;
          grid.algorithms = {core::Algorithm::KnownKFull};
          grid.schedulers = {sim::SchedulerKind::RoundRobin,
                             sim::SchedulerKind::Random};
          grid.node_counts = {32, 48};
          grid.agent_counts = {4, 8};
          grid.seeds = 4;
          exp::CampaignOptions options;
          options.workers = 1;
          options.batch_lanes = lanes;
          for (auto _ : state) {
            const exp::CampaignResult result = exp::run_campaign(grid, options);
            benchmark::DoNotOptimize(result.failures);
            if (!result.all_ok()) state.SkipWithError("campaign failed");
          }
          state.counters["lanes"] = static_cast<double>(lanes);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
