// bench_rendezvous_contrast — the paper's §1.3 framing as an experiment:
// rendezvous (symmetry breaking) fails on symmetric configurations; uniform
// deployment (symmetry attaining) succeeds on *all* of them, and gets
// *cheaper* the more symmetric the start is.
//
// We sweep random and periodic configuration families and report, side by
// side, the solvability rate of the rendezvous baseline vs the uniform
// deployment algorithms, and the relaxed algorithm's cost trend across l.

#include "support/bench_common.h"

namespace {

using namespace udring;
using namespace udring::bench;

void print_report() {
  std::cout << "Rendezvous vs uniform deployment (§1.3): solvability across\n"
               "configuration families (n = 96, k = 12; 20 seeds per family).\n";

  print_section(std::cout, "Solvability");
  {
    Table table({"family", "l", "rendezvous solves", "UD algo1", "UD algo2+3",
                 "UD relaxed"});
    struct Family {
      const char* name;
      ConfigFamily family;
      std::size_t l;
    };
    for (const Family& family :
         {Family{"random aperiodic", ConfigFamily::RandomAperiodic, 1},
          Family{"periodic l=2", ConfigFamily::Periodic, 2},
          Family{"periodic l=3", ConfigFamily::Periodic, 3},
          Family{"periodic l=6", ConfigFamily::Periodic, 6},
          Family{"uniform l=k", ConfigFamily::Uniform, 12}}) {
      double rendezvous_rate = 0;
      std::array<double, 3> ud_rate = {0, 0, 0};
      const int seeds = 20;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        Rng rng(seed * 977 + family.l);
        const auto homes = draw_homes(family.family, 96, 12, family.l, rng);
        core::RunSpec spec;
        spec.node_count = 96;
        spec.homes = homes;
        // Rendezvous "solves" iff it actually gathers (detecting
        // unsolvability is correct behaviour but not a solution).
        auto simulator = core::make_simulator(core::Algorithm::Rendezvous, spec);
        sim::RoundRobinScheduler scheduler;
        (void)simulator->run(scheduler);
        if (sim::check_gathered(*simulator).ok) rendezvous_rate += 1.0 / seeds;

        const core::Algorithm algorithms[] = {core::Algorithm::KnownKFull,
                                              core::Algorithm::KnownKLogMem,
                                              core::Algorithm::UnknownRelaxed};
        for (std::size_t a = 0; a < 3; ++a) {
          if (core::run_algorithm(algorithms[a], spec).success) {
            ud_rate[a] += 1.0 / seeds;
          }
        }
      }
      table.add_row({family.name, Table::num(family.l),
                     Table::num(rendezvous_rate * 100, 0) + "%",
                     Table::num(ud_rate[0] * 100, 0) + "%",
                     Table::num(ud_rate[1] * 100, 0) + "%",
                     Table::num(ud_rate[2] * 100, 0) + "%"});
    }
    std::cout << table
              << "rendezvous collapses to 0% the moment l > 1; all three uniform\n"
                 "deployment algorithms stay at 100% everywhere — the paper's\n"
                 "central contrast.\n";
  }

  print_section(std::cout, "Symmetry is profit, not poison (relaxed algorithm cost)");
  {
    Table table({"l", "rendezvous", "relaxed UD moves", "relative to l=1"});
    double baseline = 0;
    for (const std::size_t l : {1u, 2u, 3u, 6u, 12u}) {
      const ConfigFamily family =
          l == 1 ? ConfigFamily::RandomAperiodic : ConfigFamily::Periodic;
      const Averages avg =
          measure(core::Algorithm::UnknownRelaxed, family, 96, 12, l, 10);
      if (l == 1) baseline = avg.moves;
      table.add_row({Table::num(l), l == 1 ? "solvable" : "unsolvable",
                     Table::num(avg.moves, 0),
                     Table::num(avg.moves / baseline, 2)});
    }
    std::cout << table
              << "precisely the configurations where rendezvous is impossible\n"
                 "are where uniform deployment is cheapest (Theorem 6's 1/l).\n";
  }
}

void register_timings() {
  register_timing("contrast/rendezvous/n=96", core::Algorithm::Rendezvous,
                  ConfigFamily::RandomAperiodic, 96, 12);
  register_timing("contrast/ud-algo1/n=96", core::Algorithm::KnownKFull,
                  ConfigFamily::RandomAperiodic, 96, 12);
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench_main(argc, argv, print_report, register_timings);
}
