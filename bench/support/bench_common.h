// bench/support/bench_common.h
//
// Shared plumbing for the per-table/per-figure bench binaries, now a thin
// veneer over the exp/campaign engine: configuration families, seed-averaged
// cell measurements and grid sweeps all come from exp::, so every binary's
// report is a campaign and parallelizes/reproduces like one. Every binary
// prints its paper-style report first (that output is the reproduction
// artifact) and then runs its registered google-benchmark timings.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "exp/campaign.h"
#include "util/rng.h"
#include "util/table.h"

namespace udring::bench {

using exp::Averages;
using exp::ConfigFamily;
using exp::draw_homes;

/// Seed-averaged measurement of one (algorithm, configuration family) cell,
/// delegated to the campaign engine (substream-seeded, reproducible).
/// measure_cell rides the streaming aggregation path, so every bench
/// binary's sweep — table1, fig2, the ablations — runs in O(cells +
/// workers) memory at any n; huge-n grids are just more cells.
inline Averages measure(core::Algorithm algorithm, ConfigFamily family,
                        std::size_t n, std::size_t k, std::size_t l = 1,
                        std::size_t seeds = 5,
                        sim::SchedulerKind scheduler = sim::SchedulerKind::Synchronous) {
  return exp::measure_cell(algorithm, family, n, k, l, seeds, scheduler);
}

/// Registers a wall-clock google-benchmark for one algorithm/instance.
/// Iterations share one pooled core::RunContext, so the loop measures the
/// steady-state cost of a run (arena reuse, cached scheduler) rather than
/// repeated construction — the same shape production campaigns have.
inline void register_timing(const std::string& name, core::Algorithm algorithm,
                            ConfigFamily family, std::size_t n, std::size_t k,
                            std::size_t l = 1) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [=](benchmark::State& state) {
        core::RunContext ctx;
        std::uint64_t seed = 1;
        for (auto _ : state) {
          Rng rng(seed++);
          core::RunSpec spec;
          spec.node_count = n;
          spec.homes = draw_homes(family, n, k, l, rng);
          spec.scheduler = sim::SchedulerKind::RoundRobin;
          const core::RunReport report = ctx.run(algorithm, spec);
          benchmark::DoNotOptimize(report.total_moves);
          if (!report.success) state.SkipWithError("run failed");
        }
        state.counters["n"] = static_cast<double>(n);
        state.counters["k"] = static_cast<double>(k);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Standard main body: print the report, then run registered timings.
inline int run_bench_main(int argc, char** argv, void (*print_report)(),
                          void (*register_timings)()) {
  print_report();
  register_timings();
  benchmark::Initialize(&argc, argv);
  // The build type of THIS binary (and the udring library it links), not of
  // the google-benchmark package: distro libbenchmark reports its own
  // "library_build_type": "debug" in the JSON context even under a Release
  // build of ours, which once let a debug-built baseline slip into the
  // committed BENCH_*.json files. scripts/bench_compare.py hard-fails on a
  // debug value of this key.
#ifdef NDEBUG
  benchmark::AddCustomContext("udring_build_type", "release");
#else
  benchmark::AddCustomContext("udring_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace udring::bench
