// bench/support/bench_common.h
//
// Shared plumbing for the per-table/per-figure bench binaries: seed-averaged
// runs of an algorithm on generated configurations, plus small formatting
// helpers. Every binary prints its paper-style report first (that output is
// the reproduction artifact) and then runs its registered google-benchmark
// timings.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "util/rng.h"
#include "util/table.h"

namespace udring::bench {

/// Seed-averaged measurements of one (algorithm, configuration family) cell.
struct Averages {
  double moves = 0;
  double makespan = 0;
  double memory_bits = 0;
  double success_rate = 0;
  std::size_t runs = 0;
};

enum class ConfigFamily { RandomAny, RandomAperiodic, Packed, Periodic, Uniform };

inline std::vector<std::size_t> draw_homes(ConfigFamily family, std::size_t n,
                                           std::size_t k, std::size_t l,
                                           Rng& rng) {
  switch (family) {
    case ConfigFamily::RandomAny:
      return gen::random_homes(n, k, rng);
    case ConfigFamily::RandomAperiodic: {
      auto homes = gen::random_homes(n, k, rng);
      for (int i = 0; i < 64 && core::config_symmetry_degree(homes, n) != 1; ++i) {
        homes = gen::random_homes(n, k, rng);
      }
      return homes;
    }
    case ConfigFamily::Packed:
      return gen::packed_quarter_homes(n, k);
    case ConfigFamily::Periodic:
      return gen::periodic_homes(n, k, l, rng);
    case ConfigFamily::Uniform:
      return gen::uniform_homes(n, k);
  }
  return gen::random_homes(n, k, rng);
}

/// Runs `algorithm` on `seeds` drawn configurations and averages the paper's
/// three measures. Uses the synchronous scheduler so makespan matches the
/// ideal-time definition.
inline Averages measure(core::Algorithm algorithm, ConfigFamily family,
                        std::size_t n, std::size_t k, std::size_t l = 1,
                        std::size_t seeds = 5,
                        sim::SchedulerKind scheduler = sim::SchedulerKind::Synchronous) {
  Averages avg;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 0x9e3779b9ULL + n * 131 + k * 7 + l);
    core::RunSpec spec;
    spec.node_count = n;
    spec.homes = draw_homes(family, n, k, l, rng);
    spec.scheduler = scheduler;
    spec.seed = seed;
    const core::RunReport report = core::run_algorithm(algorithm, spec);
    avg.moves += static_cast<double>(report.total_moves);
    avg.makespan += static_cast<double>(report.makespan);
    avg.memory_bits += static_cast<double>(report.max_memory_bits);
    avg.success_rate += report.success ? 1.0 : 0.0;
    ++avg.runs;
  }
  const double denominator = avg.runs > 0 ? static_cast<double>(avg.runs) : 1.0;
  avg.moves /= denominator;
  avg.makespan /= denominator;
  avg.memory_bits /= denominator;
  avg.success_rate /= denominator;
  return avg;
}

/// Registers a wall-clock google-benchmark for one algorithm/instance.
inline void register_timing(const std::string& name, core::Algorithm algorithm,
                            ConfigFamily family, std::size_t n, std::size_t k,
                            std::size_t l = 1) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [=](benchmark::State& state) {
        std::uint64_t seed = 1;
        for (auto _ : state) {
          Rng rng(seed++);
          core::RunSpec spec;
          spec.node_count = n;
          spec.homes = draw_homes(family, n, k, l, rng);
          spec.scheduler = sim::SchedulerKind::RoundRobin;
          const core::RunReport report = core::run_algorithm(algorithm, spec);
          benchmark::DoNotOptimize(report.total_moves);
          if (!report.success) state.SkipWithError("run failed");
        }
        state.counters["n"] = static_cast<double>(n);
        state.counters["k"] = static_cast<double>(k);
      })
      ->Unit(benchmark::kMillisecond);
}

/// Standard main body: print the report, then run registered timings.
inline int run_bench_main(int argc, char** argv, void (*print_report)(),
                          void (*register_timings)()) {
  print_report();
  register_timings();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace udring::bench
