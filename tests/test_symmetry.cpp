// The anonymous-agent symmetry quotient (src/mc/symmetry.h).
//
// Two layers of pins:
//
//  1. Unit level, on hand-built permuted states: a pair of configurations
//     that differ ONLY by an agent-id permutation (the same instance with
//     permuted homes, evolved by the permuted schedule) must share a
//     canonical digest while their plain config digests differ — and a pair
//     whose agents are genuinely distinguishable (permuted homes evolved
//     ASYMMETRICALLY) must NOT merge. Plus the rank-space mask round-trip
//     the model checker's dedup relies on.
//
//  2. mc level: quotienting the visited key may never change a verdict or
//     grow the walk, across ring / Euler-tree / Eulerian-graph topologies
//     and all three problem families (deploy, gather, disperse). For the
//     deterministic ring algorithms agents are trajectory-distinguishable
//     (per-agent action counts are part of the configuration), so the
//     quotient's classes are typically singletons — the value of these pins
//     is that turning symmetry ON costs nothing semantically: reports stay
//     byte-identical to the un-quotiented walk wherever classes are
//     singletons, and verdicts are preserved regardless.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "embed/topology.h"
#include "mc/model_check.h"
#include "mc/symmetry.h"
#include "util/rng.h"

namespace udring::mc {
namespace {

// ---- 1. canonicalization of permuted states ---------------------------------

TEST(Canonicalizer, MergesIdPermutedConfigurations) {
  // The same instance spelled with permuted homes: agent 0 and agent 1 swap
  // identities, nothing else changes. config_digest folds per-agent fields
  // in id order and must distinguish the spellings; the canonical digest
  // must not.
  core::RunSpec ab, ba;
  ab.node_count = 8;
  ab.homes = {0, 4};
  ba.node_count = 8;
  ba.homes = {4, 0};
  const auto sim_ab = core::make_simulator(core::Algorithm::KnownKFull, ab);
  const auto sim_ba = core::make_simulator(core::Algorithm::KnownKFull, ba);
  SymmetryCanonicalizer canon_ab, canon_ba;
  EXPECT_NE(sim_ab->config_digest(), sim_ba->config_digest());
  EXPECT_EQ(canon_ab.canonical_digest(*sim_ab),
            canon_ba.canonical_digest(*sim_ba));

  // Evolve both by the permuted schedule: still a pure relabelling.
  ASSERT_TRUE(sim_ab->step_agent(0));
  ASSERT_TRUE(sim_ba->step_agent(1));
  EXPECT_NE(sim_ab->config_digest(), sim_ba->config_digest());
  EXPECT_EQ(canon_ab.canonical_digest(*sim_ab),
            canon_ba.canonical_digest(*sim_ba));
}

TEST(Canonicalizer, DoesNotMergeDistinguishableAgents) {
  // Same permuted-homes pair, but evolved ASYMMETRICALLY: advance agent 0
  // in both (in the permuted spelling that is the OTHER agent of the pair).
  // No relabelling maps one onto the other — the walked agent's action
  // count and position pin it — so the quotient must keep them apart.
  core::RunSpec ab, ba;
  ab.node_count = 8;
  ab.homes = {0, 4};
  ba.node_count = 8;
  ba.homes = {4, 0};
  const auto sim_ab = core::make_simulator(core::Algorithm::KnownKFull, ab);
  const auto sim_ba = core::make_simulator(core::Algorithm::KnownKFull, ba);
  ASSERT_TRUE(sim_ab->step_agent(0));  // the agent homed at node 0
  ASSERT_TRUE(sim_ba->step_agent(0));  // the agent homed at node 4
  SymmetryCanonicalizer canon_ab, canon_ba;
  EXPECT_NE(canon_ab.canonical_digest(*sim_ab),
            canon_ba.canonical_digest(*sim_ba));
}

TEST(Canonicalizer, CanonicalDigestIsAFunctionOfTheState) {
  // Same state, fresh vs reused canonicalizer: identical digest (the
  // scratch pooling must be invisible), and repeated calls are stable.
  core::RunSpec spec;
  spec.node_count = 6;
  spec.homes = {0, 3};
  const auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
  SymmetryCanonicalizer pooled;
  const std::uint64_t first = pooled.canonical_digest(*sim);
  EXPECT_EQ(pooled.canonical_digest(*sim), first);
  ASSERT_TRUE(sim->step_agent(1));
  (void)pooled.canonical_digest(*sim);  // dirty the scratch tables
  SymmetryCanonicalizer fresh;
  EXPECT_EQ(fresh.canonical_digest(*sim), pooled.canonical_digest(*sim));
}

TEST(Canonicalizer, MaskRoundTripsThroughRankSpace) {
  // to_canonical/from_canonical are the dedup store's change of basis for
  // sleep masks and DPOR summaries; they must be exact inverses over the
  // agent range of the last canonicalized state.
  core::RunSpec spec;
  spec.node_count = 9;
  spec.homes = {0, 3, 6};
  const auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
  ASSERT_TRUE(sim->step_agent(2));  // make the ranks a nontrivial permutation
  SymmetryCanonicalizer canon;
  (void)canon.canonical_digest(*sim);
  for (const std::uint64_t mask : {0ull, 1ull, 0b101ull, 0b111ull, 0b110ull}) {
    EXPECT_EQ(canon.from_canonical(canon.to_canonical(mask)), mask);
    EXPECT_EQ(canon.to_canonical(canon.from_canonical(mask)), mask);
  }
}

// ---- 2. quotient soundness inside mc::check ---------------------------------

void expect_verdict_preserved(const CheckRequest& request, const char* what) {
  McOptions with;
  with.symmetry = true;
  McOptions without;
  without.symmetry = false;
  const ModelCheckReport a = check(request, with);
  const ModelCheckReport b = check(request, without);
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.verdict, b.verdict) << what;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << what;
  // The quotient may only shrink the walk.
  EXPECT_LE(a.stats.states_expanded, b.stats.states_expanded) << what;
  EXPECT_LE(a.stats.schedules, b.stats.schedules) << what;
}

TEST(QuotientSoundness, VerdictPreservedAcrossProblemsOnTheRing) {
  struct Case {
    core::Algorithm algorithm;
    core::ProblemSpec problem;
    std::size_t n;
    std::vector<std::size_t> homes;
    const char* what;
  };
  const std::vector<Case> cases = {
      {core::Algorithm::KnownKFull, {core::Problem::Deploy, 0}, 8, {0, 4},
       "deploy ring"},
      {core::Algorithm::KnownKLogMem, {}, 8, {0, 2}, "deploy logmem ring"},
      {core::Algorithm::GatherRing, {core::Problem::Gather, 2}, 6, {0, 2, 4},
       "gather ring"},
      {core::Algorithm::Rendezvous, {core::Problem::Gather, 0}, 6, {0, 3},
       "total gather ring"},
      {core::Algorithm::DisperseRing, {core::Problem::Disperse, 0}, 6,
       {0, 2, 3}, "disperse ring"},
  };
  for (const Case& c : cases) {
    CheckRequest request;
    request.algorithm = c.algorithm;
    request.problem = c.problem;
    request.node_count = c.n;
    request.homes = c.homes;
    expect_verdict_preserved(request, c.what);
  }
}

TEST(QuotientSoundness, VerdictPreservedOnEulerTreeAndEulerianGraph) {
  Rng rng(23);
  for (const embed::RandomNetworkKind kind :
       {embed::RandomNetworkKind::Tree, embed::RandomNetworkKind::Graph}) {
    CheckRequest request;
    request.algorithm = core::Algorithm::KnownKFull;
    request.topology = embed::random_network_topology(kind, 5, rng);
    request.node_count = request.topology.size();
    request.homes = embed::draw_virtual_homes(request.topology, 2, rng);
    expect_verdict_preserved(request,
                             kind == embed::RandomNetworkKind::Tree
                                 ? "deploy euler-tree"
                                 : "deploy eulerian-graph");
  }
}

TEST(QuotientSoundness, ViolationSurvivesTheQuotient) {
  // The adversarial instance every mc suite pins: the strict-logmem
  // double-booked-base-node fault under non-FIFO links. The quotient must
  // not merge away the violating branch.
  CheckRequest request;
  request.algorithm = core::Algorithm::KnownKLogMemStrict;
  request.node_count = gen::kLogmemStressNodes;
  request.homes = gen::logmem_stress_homes();
  request.fault_non_fifo = true;
  request.fault_min_phase = 1;
  McOptions with;
  with.symmetry = true;
  const ModelCheckReport report = check(request, with);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure_reason, "goal: two agents share node 0");
  ASSERT_TRUE(report.counterexample.has_value());
}

}  // namespace
}  // namespace udring::mc
