// Tests for the schedule explorer: adversarial schedulers, the fuzzer, and
// the trace shrinker.
//
// The centerpiece is the seeded-bug experiment the PR's acceptance criterion
// asks for: KnownKLogMemStrict follows Algorithm 3 literally and its
// correctness leans on the FIFO non-overtaking property (known_k_logmem.h).
// With the test-only non-FIFO fault injected (SimOptions::fault_non_fifo_
// links), the fuzzer must find a violating schedule within a smoke-sized
// budget and the shrinker must reduce it to a small replayable trace — while
// the hardened default variant survives the identical adversary, which is
// exactly the FIFO-dependence ablation the algorithm's documentation claims.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "config/generators.h"
#include "core/known_k_logmem.h"
#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/adversary.h"
#include "explore/fuzz.h"
#include "explore/shrink.h"
#include "explore/trace.h"
#include "util/rng.h"

namespace udring::explore {
namespace {

// The seeded-bug harness: point the fuzzer at the Algorithm-3 deployment
// stress instance (two base nodes, asymmetric segments — see
// gen::logmem_stress_homes) with the non-FIFO fault windowed to the
// deployment phase, so Algorithm 2's selection geometry (which legitimately
// assumes non-overtaking in every variant) stays sound and the schedule
// search targets exactly the base-node race the strict pseudocode leans on
// FIFO to win.
FuzzOptions strict_fifo_bug_options() {
  FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKLogMemStrict;
  options.fault_non_fifo = true;
  options.fault_min_phase = core::KnownKLogMemAgent::kDeployment;
  options.fixed_nodes = gen::kLogmemStressNodes;
  options.fixed_homes = gen::logmem_stress_homes();
  options.schedulers = {ExploreSchedulerKind::LinkDelay,
                        ExploreSchedulerKind::Burst,
                        ExploreSchedulerKind::Random};
  options.iterations = 30;  // CI smoke budget; the bug surfaces well before
  options.base_seed = 2024;
  return options;
}

// ---- adversarial schedulers -------------------------------------------------

TEST(Adversaries, AlwaysPickFromEnabledSet) {
  for (const ExploreSchedulerKind kind : adversary_scheduler_kinds()) {
    Rng rng(99);
    const auto homes = exp::draw_homes(exp::ConfigFamily::RandomAny, 20, 5, 1, rng);
    core::RunSpec spec;
    spec.node_count = 20;
    spec.homes = homes;
    auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
    auto scheduler = make_explore_scheduler(kind, 7, homes.size());
    scheduler->attach(*sim);
    scheduler->reset(homes.size());
    std::size_t steps = 0;
    while (!sim->quiescent() && steps < 4000) {
      const auto enabled = sim->enabled();  // copy: step mutates it
      const sim::AgentId pick = scheduler->pick(enabled);
      ASSERT_NE(std::find(enabled.begin(), enabled.end(), pick), enabled.end())
          << to_string(kind) << " picked a disabled agent";
      ASSERT_TRUE(sim->step_agent(pick));
      ++steps;
    }
    EXPECT_TRUE(sim->quiescent())
        << to_string(kind) << " failed to drive the run to quiescence";
  }
}

TEST(Adversaries, EveryKindSolvesThePaperAlgorithms) {
  // Adversaries are still fair on terminating workloads: every algorithm
  // must reach its goal under all of them.
  for (const ExploreSchedulerKind kind : adversary_scheduler_kinds()) {
    for (const core::Algorithm algorithm :
         {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
          core::Algorithm::KnownKLogMemStrict, core::Algorithm::UnknownRelaxed}) {
      const ScheduleTrace trace = record_trace(
          algorithm, 20,
          [] {
            Rng rng(5);
            return exp::draw_homes(exp::ConfigFamily::RandomAny, 20, 5, 1, rng);
          }(),
          kind, /*seed=*/13);
      EXPECT_EQ(trace.note, "ok") << core::to_string(algorithm) << " under "
                                  << to_string(kind) << ": " << trace.note;
    }
  }
}

TEST(Adversaries, LinkDelayStarvesTransitAgents) {
  // Under the link-delay adversary, a staying agent always acts before any
  // in-transit agent: replay the recorded choices and spot-check the policy
  // by re-running with an attached scheduler.
  Rng rng(17);
  const auto homes = exp::draw_homes(exp::ConfigFamily::RandomAny, 16, 4, 1, rng);
  core::RunSpec spec;
  spec.node_count = 16;
  spec.homes = homes;
  auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
  LinkDelayScheduler scheduler;
  scheduler.attach(*sim);
  scheduler.reset(homes.size());
  std::size_t checked = 0;
  while (!sim->quiescent() && checked < 2000) {
    const auto enabled = sim->enabled();
    const sim::AgentId pick = scheduler.pick(enabled);
    const bool any_staying =
        std::any_of(enabled.begin(), enabled.end(), [&](sim::AgentId id) {
          return sim->status(id) != sim::AgentStatus::InTransit;
        });
    if (any_staying) {
      EXPECT_NE(sim->status(pick), sim::AgentStatus::InTransit);
    }
    ASSERT_TRUE(sim->step_agent(pick));
    ++checked;
  }
  EXPECT_TRUE(sim->quiescent());
}

TEST(Adversaries, NameRoundTrip) {
  for (const ExploreSchedulerKind kind : all_explore_scheduler_kinds()) {
    EXPECT_EQ(explore_scheduler_from_name(to_string(kind)), kind);
  }
  EXPECT_THROW((void)explore_scheduler_from_name("no-such-scheduler"),
               std::invalid_argument);
}

// ---- fault injection --------------------------------------------------------

TEST(NonFifoFault, HardenedLogMemSurvivesWhereStrictBreaks) {
  // The ablation: identical fuzz options, only the algorithm differs. The
  // strict variant must produce the documented base-node double-booking
  // within the budget; the hardened default must not fail at all — its
  // deployment phase does not rest on FIFO links (known_k_logmem.h).
  FuzzOptions options = strict_fifo_bug_options();
  const FuzzReport strict = run_fuzz(options);
  EXPECT_GT(strict.failures, 0u)
      << "fuzzer failed to find the seeded FIFO-order bug in the strict "
         "variant within the smoke budget";
  ASSERT_FALSE(strict.failure_samples.empty());
  EXPECT_TRUE(strict.failure_samples.front().reason.rfind("goal: ", 0) == 0)
      << strict.failure_samples.front().reason;
  EXPECT_NE(strict.failure_samples.front().reason.find("share node"),
            std::string::npos)
      << "expected the double-booked base node: "
      << strict.failure_samples.front().reason;

  options.algorithm = core::Algorithm::KnownKLogMem;
  const FuzzReport hardened = run_fuzz(options);
  EXPECT_EQ(hardened.failures, 0u)
      << "hardened variant should tolerate non-FIFO deployment: "
      << (hardened.failure_samples.empty()
              ? ""
              : hardened.failure_samples.front().reason);
}

TEST(NonFifoFault, UnwindowedFaultBreaksSelectionForEveryVariant) {
  // Why the fault window exists: with overtaking live from action 0, the
  // selection phase's geometry measurements (token/staying observations
  // during circuits) are corrupted for strict AND hardened alike — the
  // whole of Algorithm 2 assumes non-overtaking. Pin that both variants
  // misbehave, which is what forces the phase-windowed injection when
  // seeding a *deployment* bug.
  FuzzOptions options = strict_fifo_bug_options();
  options.fault_min_phase = 0;  // unwindowed
  options.fixed_homes.clear();  // random instances; the effect is generic
  options.fixed_nodes = 0;
  options.min_nodes = 8;
  options.max_nodes = 16;
  options.min_agents = 3;
  options.max_agents = 5;
  options.schedulers = {ExploreSchedulerKind::LinkDelay,
                        ExploreSchedulerKind::FifoStress};
  options.iterations = 10;
  const FuzzReport strict = run_fuzz(options);
  EXPECT_GT(strict.failures, 0u);
  options.algorithm = core::Algorithm::KnownKLogMem;
  const FuzzReport hardened = run_fuzz(options);
  EXPECT_GT(hardened.failures, 0u);
}

TEST(NonFifoFault, FaultDisabledMeansNoOvertaking) {
  // Without the fault flag the same fuzz pool finds nothing: the strict
  // variant is correct on a FIFO substrate (the paper's model).
  FuzzOptions options = strict_fifo_bug_options();
  options.fault_non_fifo = false;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.failures, 0u)
      << (report.failure_samples.empty()
              ? ""
              : report.failure_samples.front().reason);
}

// ---- fuzzer -----------------------------------------------------------------

TEST(Fuzzer, DigestIsWorkerCountInvariant) {
  FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.iterations = 24;
  options.base_seed = 5;
  options.workers = 1;
  const FuzzReport serial = run_fuzz(options);
  options.workers = 4;
  const FuzzReport parallel = run_fuzz(options);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.failures, parallel.failures);
  EXPECT_EQ(serial.total_actions, parallel.total_actions);
  EXPECT_EQ(serial.failures, 0u);
  EXPECT_GT(serial.total_actions, 0u);
}

TEST(Fuzzer, FailureCarriesReplayableTrace) {
  const FuzzReport report = run_fuzz(strict_fifo_bug_options());
  ASSERT_GT(report.failures, 0u);
  ASSERT_FALSE(report.failure_samples.empty());
  const FuzzFailure& failure = report.failure_samples.front();
  const ReplayOutcome replayed = replay_trace(failure.trace);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.reason, failure.reason);
  EXPECT_EQ(replayed.digest, failure.trace.expected_digest);
}

// ---- shrinker ---------------------------------------------------------------

TEST(Shrinker, ConvergesToSmallReplayableTraceForSeededBug) {
  const FuzzReport report = run_fuzz(strict_fifo_bug_options());
  ASSERT_GT(report.failures, 0u);
  const FuzzFailure& failure = report.failure_samples.front();

  const ShrinkResult shrunk = shrink_trace(failure.trace);
  EXPECT_EQ(shrunk.original_size, failure.trace.choices.size());
  EXPECT_LE(shrunk.trace.choices.size(), shrunk.original_size);
  // Fixed size bound: the race needs only a handful of decisive choices; a
  // minimized trace dominated by default picks must come out far below the
  // original run length.
  EXPECT_LE(shrunk.trace.choices.size(), 64u)
      << "shrinker failed to converge under the size bound";

  // The minimal trace still fails, in the same failure class, and is
  // self-checking: replay reproduces its refreshed digest and note.
  const ReplayOutcome replayed = replay_trace(shrunk.trace);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.reason, shrunk.reason);
  EXPECT_EQ(replayed.digest, shrunk.trace.expected_digest);
  EXPECT_EQ(shrunk.trace.note, shrunk.reason);
  EXPECT_EQ(failure.reason.substr(0, failure.reason.find(':')),
            shrunk.reason.substr(0, shrunk.reason.find(':')));

  // And it survives the text round trip — the CI artifact path.
  const ScheduleTrace reparsed = ScheduleTrace::parse(shrunk.trace.to_text());
  const ReplayOutcome from_text = replay_trace(reparsed);
  EXPECT_TRUE(from_text.failed);
  EXPECT_EQ(from_text.digest, shrunk.trace.expected_digest);
}

TEST(Shrinker, RejectsPassingTrace) {
  Rng rng(3);
  const auto homes = exp::draw_homes(exp::ConfigFamily::RandomAny, 12, 3, 1, rng);
  const ScheduleTrace ok = record_trace(core::Algorithm::KnownKFull, 12, homes,
                                        ExploreSchedulerKind::RoundRobin, 1);
  ASSERT_EQ(ok.note, "ok");
  EXPECT_THROW((void)shrink_trace(ok), std::invalid_argument);
}

TEST(Shrinker, IsDeterministic) {
  const FuzzReport report = run_fuzz(strict_fifo_bug_options());
  ASSERT_GT(report.failures, 0u);
  const ShrinkResult a = shrink_trace(report.failure_samples.front().trace);
  const ShrinkResult b = shrink_trace(report.failure_samples.front().trace);
  EXPECT_EQ(a.trace.choices, b.trace.choices);
  EXPECT_EQ(a.trace.expected_digest, b.trace.expected_digest);
  EXPECT_EQ(a.replays, b.replays);
}

}  // namespace
}  // namespace udring::explore
