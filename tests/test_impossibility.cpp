// Executable Theorem 5 (§4.1): with no knowledge of k or n, no algorithm
// solves uniform deployment with termination detection.
//
// We realize the proof's construction (Fig 7): take ring R where a
// terminating candidate algorithm succeeds, build R' with 2qn + 2n nodes
// whose first (q+1)·n nodes repeat R's configuration, and verify
//  (a) Lemma 1: for t ≤ qn synchronous rounds, the local configurations of
//      the repeated region match R's round for round;
//  (b) the candidate (PrematureHaltAgent) halts in R' exactly as in R — at
//      spacing n/k — which violates uniform deployment there (spacing 2n/k
//      is required);
//  (c) the relaxed Algorithm 6, which gives up termination detection,
//      handles the same R' correctly.

#include <gtest/gtest.h>

#include <cstdint>

#include "config/generators.h"
#include "core/premature_halt.h"
#include "core/runner.h"
#include "core/unknown_relaxed.h"
#include "sim/checker.h"
#include "support/lockstep.h"

namespace udring::core {
namespace {

using test::local_configs;
using test::lockstep_round;

// Base ring R: aperiodic with no misleading internal repetition, so the
// strawman estimates (n, k) exactly. Homes {0,1,5} on 12 nodes: distance
// sequence (1,4,7).
constexpr std::size_t kBaseNodes = 12;
const std::vector<std::size_t> kBaseHomes = {0, 1, 5};

sim::ProgramFactory premature_factory() {
  return [](sim::AgentId) { return std::make_unique<PrematureHaltAgent>(); };
}

sim::ProgramFactory relaxed_factory() {
  return [](sim::AgentId) { return std::make_unique<UnknownRelaxedAgent>(); };
}

TEST(Impossibility, StrawmanSucceedsOnTheBaseRing) {
  sim::Simulator simulator(kBaseNodes, kBaseHomes, premature_factory());
  sim::SynchronousScheduler scheduler;
  const auto result = simulator.run(scheduler);
  ASSERT_TRUE(result.quiescent());
  const auto check = sim::UniformDeploymentOracle(true).check_goal(simulator);
  EXPECT_TRUE(check.ok) << check.reason
                        << "\n(the strawman must look correct on R for the "
                           "construction to bite)";
}

TEST(Impossibility, Lemma1LocalConfigurationsMatchForQnRounds) {
  // Measure T(E_R): rounds to quiescence in R.
  sim::Simulator reference(kBaseNodes, kBaseHomes, premature_factory());
  sim::SynchronousScheduler ref_scheduler;
  (void)reference.run(ref_scheduler);
  const std::uint64_t total_rounds = ref_scheduler.rounds() + 1;
  const std::size_t q =
      (static_cast<std::size_t>(total_rounds) + kBaseNodes - 1) / kBaseNodes;

  const auto instance = gen::impossibility_ring(kBaseHomes, kBaseNodes, q);
  ASSERT_EQ(instance.node_count, 2 * q * kBaseNodes + 2 * kBaseNodes);

  sim::Simulator small(kBaseNodes, kBaseHomes, premature_factory());
  sim::Simulator large(instance.node_count, instance.homes, premature_factory());

  // Lemma 1: after round t ≤ qn, every node v'_j with t ≤ j < qn + n has the
  // local configuration of v_{j mod n}.
  const std::size_t qn = q * kBaseNodes;
  for (std::uint64_t t = 1; t <= qn; ++t) {
    const bool small_advanced = lockstep_round(small);
    const bool large_advanced = lockstep_round(large);
    if (!small_advanced) break;  // R quiescent; the claim is established
    ASSERT_TRUE(large_advanced);
    const auto small_locals = local_configs(small.snapshot());
    const auto large_locals = local_configs(large.snapshot());
    for (std::size_t j = static_cast<std::size_t>(t); j < qn + kBaseNodes; ++j) {
      ASSERT_EQ(large_locals[j], small_locals[j % kBaseNodes])
          << "local configurations diverged at round " << t << ", node " << j;
    }
  }
}

TEST(Impossibility, StrawmanTerminatesPrematurelyOnTheLargeRing) {
  sim::Simulator reference(kBaseNodes, kBaseHomes, premature_factory());
  sim::SynchronousScheduler ref_scheduler;
  (void)reference.run(ref_scheduler);
  const std::size_t q =
      (static_cast<std::size_t>(ref_scheduler.rounds()) + kBaseNodes) / kBaseNodes;

  const auto instance = gen::impossibility_ring(kBaseHomes, kBaseNodes, q);
  sim::Simulator large(instance.node_count, instance.homes, premature_factory());
  sim::SynchronousScheduler scheduler;
  const auto result = large.run(scheduler);
  ASSERT_TRUE(result.quiescent());

  // Every agent halted — it *believes* it detected termination...
  EXPECT_TRUE(large.all_halted());
  // ...but the deployment is wrong: agents of the repeated region halted at
  // spacing n/k = 4 where R' requires 2n/k = 8.
  const auto check = sim::UniformDeploymentOracle(true).check_goal(large);
  EXPECT_FALSE(check.ok)
      << "Theorem 5: a terminating no-knowledge algorithm must fail on R'";

  // The corresponding agents really did repeat R's behaviour: same move
  // counts as their base-ring counterparts.
  for (sim::AgentId id = 0; id < kBaseHomes.size(); ++id) {
    EXPECT_EQ(large.metrics().agent(id).moves, reference.metrics().agent(id).moves)
        << "agent " << id << " diverged from its base-ring twin";
  }
}

TEST(Impossibility, RelaxedAlgorithmHandlesTheSameLargeRing) {
  // Dropping termination detection (Algorithm 6) makes the very same
  // instance solvable — the paper's Result 3 vs Result 4 boundary.
  sim::Simulator reference(kBaseNodes, kBaseHomes, premature_factory());
  sim::SynchronousScheduler ref_scheduler;
  (void)reference.run(ref_scheduler);
  const std::size_t q =
      (static_cast<std::size_t>(ref_scheduler.rounds()) + kBaseNodes) / kBaseNodes;

  const auto instance = gen::impossibility_ring(kBaseHomes, kBaseNodes, q);
  sim::SimOptions options;
  options.max_actions = 128 * instance.node_count * instance.homes.size();
  sim::Simulator large(instance.node_count, instance.homes, relaxed_factory(),
                       options);
  sim::SynchronousScheduler scheduler;
  const auto result = large.run(scheduler);
  ASSERT_TRUE(result.quiescent());
  const auto check = sim::UniformDeploymentOracle(false).check_goal(large);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(Impossibility, ConstructionScalesWithQ) {
  // The generator itself: (q+1) copies of the homes, then an empty half.
  const auto instance = gen::impossibility_ring({0, 2}, 5, 3);
  EXPECT_EQ(instance.node_count, 2u * 3u * 5u + 2u * 5u);
  EXPECT_EQ(instance.homes,
            (std::vector<std::size_t>{0, 2, 5, 7, 10, 12, 15, 17}));
}

}  // namespace
}  // namespace udring::core
