// tests/support/lockstep.h
//
// Helpers for the Theorem-5 / Lemma-1 experiments: advance a simulator by
// whole synchronous rounds and compare "local configurations" of nodes
// between two executions.
//
// The paper's local configuration of node v is (state of v, states of all
// agents at v). At a synchronous round boundary, an agent that just moved
// sits in the link queue of its destination; we attribute it to that
// destination, which matches the paper's "agent at v" in the synchronous
// model (footnote 4: no in-transit agents in the synchronous execution).

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace udring::test {

/// Executes one exact lockstep round via the public API: every agent enabled
/// at the round boundary acts once, in ascending id order (agents that
/// become enabled mid-round wait for the next round). Returns false when the
/// simulator was quiescent.
inline bool lockstep_round(sim::Simulator& simulator) {
  std::vector<sim::AgentId> enabled = simulator.enabled();
  if (enabled.empty()) return false;
  std::sort(enabled.begin(), enabled.end());
  for (const sim::AgentId id : enabled) {
    (void)simulator.step_agent(id);  // may have parked meanwhile; skip then
  }
  return true;
}

/// The observable local configuration of one node: token count plus the
/// sorted (status, phase, state-hash, moves) tuples of agents attributed to
/// it (staying there, or in transit to it).
struct LocalConfig {
  std::size_t tokens = 0;
  std::vector<std::tuple<sim::AgentStatus, std::size_t, std::uint64_t, std::size_t>>
      agents;

  friend bool operator==(const LocalConfig&, const LocalConfig&) = default;
};

inline std::vector<LocalConfig> local_configs(const sim::Snapshot& snapshot) {
  std::vector<LocalConfig> configs(snapshot.node_count);
  for (std::size_t v = 0; v < snapshot.node_count; ++v) {
    configs[v].tokens = snapshot.tokens[v];
  }
  for (const sim::AgentSnap& agent : snapshot.agents) {
    configs[agent.node].agents.emplace_back(agent.status, agent.phase,
                                            agent.state_hash, agent.moves);
  }
  for (auto& config : configs) {
    std::sort(config.agents.begin(), config.agents.end());
  }
  return configs;
}

}  // namespace udring::test
