// tests/support/test_agents.h
//
// Minimal agent programs used by the simulator, scheduler and checker tests.
// They exercise the model's primitives directly (move/stay/wait/suspend/
// broadcast/token) without any of the paper's algorithm logic on top.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/agent.h"
#include "sim/message.h"

namespace udring::test {

/// Optionally drops a token at its home, then makes `steps` moves and halts.
class WalkerAgent final : public sim::AgentProgram {
 public:
  explicit WalkerAgent(std::size_t steps, bool drop_token = false)
      : steps_(steps), drop_token_(drop_token) {}

  sim::Behavior run(sim::AgentContext& ctx) override {
    if (drop_token_) ctx.release_token();
    for (std::size_t i = 0; i < steps_; ++i) {
      co_await ctx.move();
      ++arrivals_;
    }
    co_return;
  }

  [[nodiscard]] std::string_view name() const override { return "test-walker"; }
  [[nodiscard]] std::size_t arrivals() const noexcept { return arrivals_; }

 private:
  std::size_t steps_;
  bool drop_token_;
  std::size_t arrivals_ = 0;
};

/// Walks forever (for action-limit and burst-scheduler tests).
class EndlessWalkerAgent final : public sim::AgentProgram {
 public:
  sim::Behavior run(sim::AgentContext& ctx) override {
    for (;;) {
      co_await ctx.move();
    }
  }
  [[nodiscard]] std::string_view name() const override { return "test-endless"; }
};

/// Stays `rounds` schedulable actions at home, then halts in place.
class SitterAgent final : public sim::AgentProgram {
 public:
  explicit SitterAgent(std::size_t rounds) : rounds_(rounds) {}

  sim::Behavior run(sim::AgentContext& ctx) override {
    for (std::size_t i = 0; i < rounds_; ++i) {
      co_await ctx.stay();
    }
    co_return;
  }
  [[nodiscard]] std::string_view name() const override { return "test-sitter"; }

 private:
  std::size_t rounds_;
};

/// Waits for messages, recording every received text until it has collected
/// `expected` of them, then halts.
class CollectorAgent final : public sim::AgentProgram {
 public:
  explicit CollectorAgent(std::size_t expected) : expected_(expected) {}

  sim::Behavior run(sim::AgentContext& ctx) override {
    while (received_.size() < expected_) {
      co_await ctx.wait_message();
      for (const sim::Message& message : ctx.inbox()) {
        if (const auto* text = std::get_if<sim::TextMessage>(&message)) {
          received_.push_back(text->text);
        }
      }
    }
    co_return;
  }

  [[nodiscard]] std::string_view name() const override { return "test-collector"; }
  [[nodiscard]] const std::vector<std::string>& received() const noexcept {
    return received_;
  }

 private:
  std::size_t expected_;
  std::vector<std::string> received_;
};

/// Moves `hops` nodes, then broadcasts `text` and halts there.
class MessengerAgent final : public sim::AgentProgram {
 public:
  MessengerAgent(std::size_t hops, std::string text)
      : hops_(hops), text_(std::move(text)) {}

  sim::Behavior run(sim::AgentContext& ctx) override {
    for (std::size_t i = 0; i < hops_; ++i) {
      co_await ctx.move();
    }
    ctx.broadcast(sim::TextMessage{text_});
    co_return;
  }
  [[nodiscard]] std::string_view name() const override { return "test-messenger"; }

 private:
  std::size_t hops_;
  std::string text_;
};

/// Suspends immediately; each wake-up appends its inbox size and suspends
/// again (never terminates — models Definition-2 parking).
class SuspenderAgent final : public sim::AgentProgram {
 public:
  sim::Behavior run(sim::AgentContext& ctx) override {
    for (;;) {
      co_await ctx.suspend();
      wakeups_.push_back(ctx.inbox().size());
    }
  }
  [[nodiscard]] std::string_view name() const override { return "test-suspender"; }
  [[nodiscard]] const std::vector<std::size_t>& wakeups() const noexcept {
    return wakeups_;
  }

 private:
  std::vector<std::size_t> wakeups_;
};

/// Throws from inside its first action (error-propagation tests).
class ThrowerAgent final : public sim::AgentProgram {
 public:
  sim::Behavior run(sim::AgentContext& ctx) override {
    (void)ctx;
    throw std::runtime_error("ThrowerAgent: intentional test failure");
    co_return;  // unreachable; makes this function a coroutine
  }
  [[nodiscard]] std::string_view name() const override { return "test-thrower"; }
};

/// Probes what the agent can observe at each node along a fixed walk:
/// records (tokens_here, others_staying_here) after every arrival.
class ProberAgent final : public sim::AgentProgram {
 public:
  explicit ProberAgent(std::size_t steps) : steps_(steps) {}

  struct Observation {
    std::size_t tokens;
    std::size_t others;
  };

  sim::Behavior run(sim::AgentContext& ctx) override {
    observations_.push_back({ctx.tokens_here(), ctx.others_staying_here()});
    for (std::size_t i = 0; i < steps_; ++i) {
      co_await ctx.move();
      observations_.push_back({ctx.tokens_here(), ctx.others_staying_here()});
    }
    co_return;
  }

  [[nodiscard]] std::string_view name() const override { return "test-prober"; }
  [[nodiscard]] const std::vector<Observation>& observations() const noexcept {
    return observations_;
  }

 private:
  std::size_t steps_;
  std::vector<Observation> observations_;
};

}  // namespace udring::test
