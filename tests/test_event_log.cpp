// Tests for sim/event_log.h: recording, filtering, formatting, and the
// trace's consistency with the metrics.

#include "sim/event_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "support/test_agents.h"

namespace udring::sim {
namespace {

using test::MessengerAgent;
using test::SuspenderAgent;
using test::WalkerAgent;

TEST(EventLog, DisabledByDefaultRecordsNothing) {
  EventLog log;
  log.record({1, EventKind::Arrive, 0, 0, 1, 0});
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, EnabledRecordsInOrder) {
  EventLog log;
  log.set_enabled(true);
  log.record({1, EventKind::Arrive, 0, 3, 1, 0});
  log.record({2, EventKind::Depart, 0, 3, 1, 0});
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].kind, EventKind::Arrive);
  EXPECT_EQ(log.events()[1].kind, EventKind::Depart);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLog, FiltersByKindAndAgent) {
  EventLog log;
  log.set_enabled(true);
  log.record({1, EventKind::Arrive, 0, 0, 1, 0});
  log.record({2, EventKind::Arrive, 1, 4, 1, 0});
  log.record({3, EventKind::TokenDrop, 0, 0, 1, 0});
  EXPECT_EQ(log.of_kind(EventKind::Arrive).size(), 2u);
  EXPECT_EQ(log.of_kind(EventKind::Halt).size(), 0u);
  EXPECT_EQ(log.of_agent(0).size(), 2u);
  EXPECT_EQ(log.of_agent(1).size(), 1u);
}

TEST(EventLog, KindNamesAreDistinct) {
  std::set<std::string_view> names;
  for (const EventKind kind :
       {EventKind::Arrive, EventKind::Depart, EventKind::StayPut,
        EventKind::EnterWait, EventKind::EnterSuspend, EventKind::Halt,
        EventKind::TokenDrop, EventKind::Broadcast, EventKind::Wake}) {
    names.insert(to_string(kind));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(EventLog, StreamFormatIsReadable) {
  std::ostringstream out;
  out << Event{7, EventKind::Broadcast, 2, 5, 11, 3};
  const std::string text = out.str();
  EXPECT_NE(text.find("#7"), std::string::npos);
  EXPECT_NE(text.find("agent 2"), std::string::npos);
  EXPECT_NE(text.find("broadcast"), std::string::npos);
  EXPECT_NE(text.find("@node 5"), std::string::npos);
  EXPECT_NE(text.find("(3)"), std::string::npos) << "receiver count shown";
}

TEST(EventLog, TraceIsConsistentWithMetrics) {
  SimOptions options;
  options.record_events = true;
  Simulator sim(10, {0, 5},
                [](AgentId) { return std::make_unique<WalkerAgent>(7, true); },
                options);
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);

  // Departures per agent == recorded moves; arrivals == departures + the
  // initial buffer arrival; tokens == k; halts == k.
  for (AgentId id = 0; id < 2; ++id) {
    std::size_t departs = 0, arrives = 0;
    for (const Event& event : sim.log().of_agent(id)) {
      if (event.kind == EventKind::Depart) ++departs;
      if (event.kind == EventKind::Arrive) ++arrives;
    }
    EXPECT_EQ(departs, sim.metrics().agent(id).moves);
    EXPECT_EQ(arrives, departs + 1);
  }
  EXPECT_EQ(sim.log().of_kind(EventKind::TokenDrop).size(), 2u);
  EXPECT_EQ(sim.log().of_kind(EventKind::Halt).size(), 2u);
}

TEST(EventLog, BroadcastAndWakeAppearInCausalOrder) {
  SimOptions options;
  options.record_events = true;
  Simulator sim(6, {0, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<SuspenderAgent>();
    return std::make_unique<MessengerAgent>(3, "hi");
  }, options);
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);

  const auto broadcasts = sim.log().of_kind(EventKind::Broadcast);
  const auto wakes = sim.log().of_kind(EventKind::Wake);
  ASSERT_EQ(broadcasts.size(), 1u);
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_LE(broadcasts[0].action_index, wakes[0].action_index);
  EXPECT_EQ(wakes[0].agent, 0u);
  EXPECT_EQ(wakes[0].detail, 1u) << "sender id recorded";
}

TEST(EventLogDigest, SensitiveToEveryFieldAndOrder) {
  // The digest is the record/replay equality check: identical logs agree,
  // and any reordering or single-field change must be visible.
  EventLog a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  const Event first{1, EventKind::Arrive, 0, 3, 1, 0};
  const Event second{2, EventKind::TokenDrop, 1, 5, 2, 0};
  a.record(first);
  a.record(second);
  b.record(first);
  b.record(second);
  EXPECT_EQ(a.digest(), b.digest());

  EventLog swapped;
  swapped.set_enabled(true);
  swapped.record(second);
  swapped.record(first);
  EXPECT_NE(a.digest(), swapped.digest());

  EventLog tweaked;
  tweaked.set_enabled(true);
  tweaked.record(first);
  Event changed = second;
  changed.causal_ts += 1;
  tweaked.record(changed);
  EXPECT_NE(a.digest(), tweaked.digest());

  EXPECT_NE(EventLog{}.digest(), a.digest());
  EXPECT_EQ(EventLog{}.digest(), EventLog{}.digest());
}

}  // namespace
}  // namespace udring::sim
