// Tests for the rendezvous baseline (core/rendezvous.h): it gathers all
// agents on aperiodic configurations and correctly reports periodic ones as
// unsolvable — the executable form of the paper's §1.3 contrast with uniform
// deployment (which succeeds on *every* configuration).

#include "core/rendezvous.h"

#include <gtest/gtest.h>

#include <tuple>

#include "config/generators.h"
#include "core/distance_sequence.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::core {
namespace {

TEST(Rendezvous, GathersOnAperiodicConfiguration) {
  RunSpec spec;
  spec.node_count = 12;
  spec.homes = gen::fig1a_homes();  // l = 1
  auto simulator = make_simulator(Algorithm::Rendezvous, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());
  EXPECT_TRUE(sim::check_gathered(*simulator).ok);
  for (sim::AgentId id = 0; id < simulator->agent_count(); ++id) {
    const auto& agent = dynamic_cast<const RendezvousAgent&>(simulator->program(id));
    EXPECT_FALSE(agent.detected_unsolvable());
  }
}

TEST(Rendezvous, GathersAtTheLexminBaseNode) {
  // Homes {0,1,5,7} on 12 nodes: distance sequence from 0 is (1,4,2,5);
  // rotations: x=0 minimal → base is agent 0's home, node 0.
  RunSpec spec;
  spec.node_count = 12;
  spec.homes = {0, 1, 5, 7};
  auto simulator = make_simulator(Algorithm::Rendezvous, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  ASSERT_TRUE(sim::check_gathered(*simulator).ok);
  EXPECT_EQ(simulator->staying_nodes().front(), 0u);
}

TEST(Rendezvous, DetectsPeriodicAsUnsolvable) {
  RunSpec spec;
  spec.node_count = gen::kFig1bNodes;
  spec.homes = gen::fig1b_homes();  // l = 2
  auto simulator = make_simulator(Algorithm::Rendezvous, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());
  for (sim::AgentId id = 0; id < simulator->agent_count(); ++id) {
    const auto& agent = dynamic_cast<const RendezvousAgent&>(simulator->program(id));
    EXPECT_TRUE(agent.detected_unsolvable());
  }
  EXPECT_FALSE(sim::check_gathered(*simulator).ok);
  EXPECT_TRUE(evaluate_goal(Algorithm::Rendezvous, *simulator).ok)
      << "correctly detected unsolvability counts as success";
}

TEST(Rendezvous, ContrastUniformDeploymentSolvesWhatRendezvousCannot) {
  // The paper's headline: the same periodic instance that defeats
  // rendezvous is routine for every uniform deployment algorithm.
  RunSpec spec;
  spec.node_count = gen::kFig1bNodes;
  spec.homes = gen::fig1b_homes();
  EXPECT_FALSE(run_algorithm(Algorithm::Rendezvous, spec).final_positions.size() == 1);
  for (const Algorithm algorithm :
       {Algorithm::KnownKFull, Algorithm::KnownKLogMem, Algorithm::UnknownRelaxed}) {
    const RunReport report = run_algorithm(algorithm, spec);
    EXPECT_TRUE(report.success) << to_string(algorithm) << ": " << report.failure;
  }
}

class RendezvousSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(RendezvousSweep, OutcomeMatchesConfigurationPeriodicity) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  const bool periodic = config_symmetry_degree(spec.homes, n) > 1;
  auto simulator = make_simulator(Algorithm::Rendezvous, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());
  if (periodic) {
    EXPECT_FALSE(sim::check_gathered(*simulator).ok);
  } else {
    EXPECT_TRUE(sim::check_gathered(*simulator).ok)
        << "n=" << n << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RendezvousSweep,
                         ::testing::Combine(::testing::Values(8, 12, 17, 24, 30),
                                            ::testing::Values(2, 3, 4, 6),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace udring::core
