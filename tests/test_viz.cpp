// Tests for viz/ascii_ring.h: the renderer used by examples and failure
// dumps must show tokens, agents and statuses at the right nodes.

#include "viz/ascii_ring.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/scheduler.h"
#include "support/test_agents.h"

namespace udring::viz {
namespace {

using test::SuspenderAgent;
using test::WalkerAgent;

TEST(AsciiRing, ShowsTokensAndHaltedAgents) {
  sim::Simulator simulator(
      6, {1, 4}, [](sim::AgentId) { return std::make_unique<WalkerAgent>(2, true); });
  sim::RoundRobinScheduler scheduler;
  (void)simulator.run(scheduler);
  const std::string art = render(simulator);
  // Tokens remain at homes 1 and 4; agents halted at 3 and 0.
  EXPECT_NE(art.find("A0h"), std::string::npos);
  EXPECT_NE(art.find("A1h"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("node"), std::string::npos);
}

TEST(AsciiRing, ShowsSuspendedGlyph) {
  sim::Simulator simulator(
      4, {0}, [](sim::AgentId) { return std::make_unique<SuspenderAgent>(); });
  sim::RoundRobinScheduler scheduler;
  (void)simulator.run(scheduler);
  EXPECT_NE(render(simulator).find("A0z"), std::string::npos);
}

TEST(AsciiRing, WrapsLongRingsIntoRows) {
  sim::Simulator simulator(
      30, {0}, [](sim::AgentId) { return std::make_unique<WalkerAgent>(0); });
  sim::RoundRobinScheduler scheduler;
  (void)simulator.run(scheduler);
  const std::string art = render(simulator, 10);
  // Three row groups → "node" appears three times.
  std::size_t count = 0;
  for (std::size_t pos = art.find("node"); pos != std::string::npos;
       pos = art.find("node", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(GapSummary, ListsGapsAndBounds) {
  sim::Simulator simulator(
      8, {0, 4}, [](sim::AgentId) { return std::make_unique<WalkerAgent>(0); });
  sim::RoundRobinScheduler scheduler;
  (void)simulator.run(scheduler);
  const std::string summary = gap_summary(simulator);
  EXPECT_NE(summary.find("gaps: 4 4"), std::string::npos) << summary;
  EXPECT_NE(summary.find("floor=4"), std::string::npos) << summary;
}

}  // namespace
}  // namespace udring::viz
