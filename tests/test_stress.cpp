// Stress tests: larger instances, many seeds, model invariants checked after
// every atomic action, and cross-algorithm agreement — the heavyweight
// randomized sweep the quick unit suites don't cover. Bounded to stay in CI
// budget (a few seconds total).

#include <gtest/gtest.h>

#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::core {
namespace {

TEST(Stress, LargeInstancesAllAlgorithms) {
  // n up to 1500, k up to 75 — far beyond the unit sweeps.
  struct Case {
    std::size_t n, k;
  };
  for (const Case c : {Case{600, 30}, Case{1000, 50}, Case{1500, 75}}) {
    Rng rng(c.n);
    RunSpec spec;
    spec.node_count = c.n;
    spec.homes = gen::random_homes(c.n, c.k, rng);
    for (const Algorithm algorithm :
         {Algorithm::KnownKFull, Algorithm::KnownKLogMem,
          Algorithm::UnknownRelaxed}) {
      const RunReport report = run_algorithm(algorithm, spec);
      ASSERT_TRUE(report.success)
          << to_string(algorithm) << " n=" << c.n << " k=" << c.k << ": "
          << report.failure;
    }
  }
}

TEST(Stress, InvariantsEveryStepUnderEveryScheduler) {
  for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
    Rng rng(99);
    RunSpec spec;
    spec.node_count = 60;
    spec.homes = gen::random_homes(60, 10, rng);
    auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
    auto scheduler = sim::make_scheduler(kind, 7, 10);
    scheduler->reset(10);
    std::size_t peak_tokens = 0;
    std::size_t steps = 0;
    while (simulator->step(*scheduler)) {
      peak_tokens = std::max(peak_tokens, simulator->ring().total_tokens());
      // Full invariant check every 64 steps (every step would be O(actions²)).
      if (++steps % 64 == 0) {
        const auto check = sim::check_model_invariants(*simulator, peak_tokens);
        ASSERT_TRUE(check.ok) << sim::to_string(kind) << " step " << steps << ": "
                              << check.reason;
      }
    }
    ASSERT_TRUE(
        sim::check_uniform_deployment_without_termination(*simulator).ok)
        << sim::to_string(kind);
  }
}

TEST(Stress, ManySeedsSmallRings) {
  // Small rings are where edge cases live (k ≈ n, tiny gaps). 200 random
  // instances across all algorithms.
  Rng rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.below(12));
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n, 8)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    spec.scheduler = trial % 2 == 0 ? sim::SchedulerKind::Random
                                    : sim::SchedulerKind::Burst;
    spec.seed = static_cast<std::uint64_t>(trial);
    for (const Algorithm algorithm :
         {Algorithm::KnownKFull, Algorithm::KnownNFull, Algorithm::KnownKLogMem,
          Algorithm::KnownKLogMemStrict, Algorithm::UnknownRelaxed}) {
      const RunReport report = run_algorithm(algorithm, spec);
      ASSERT_TRUE(report.success)
          << to_string(algorithm) << " n=" << n << " k=" << k << " trial="
          << trial << ": " << report.failure;
    }
  }
}

TEST(Stress, DeepSymmetrySweep) {
  // Every divisor pair (l | k, l | n) at n = 240: the full adaptivity lattice.
  const std::size_t n = 240, k = 24;
  Rng rng(777);
  for (const std::size_t l : {2u, 3u, 4u, 6u, 8u, 12u, 24u}) {
    if (n % l != 0) continue;
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::periodic_homes(n, k, l, rng);
    const RunReport report = run_algorithm(Algorithm::UnknownRelaxed, spec);
    ASSERT_TRUE(report.success) << "l=" << l << ": " << report.failure;
    EXPECT_LE(report.total_moves, 14 * k * n / l + k) << "l=" << l;
  }
}

TEST(Stress, WorstCasePackedAtScale) {
  const std::size_t n = 800, k = 100;
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::packed_quarter_homes(n, k);
  for (const Algorithm algorithm :
       {Algorithm::KnownKFull, Algorithm::KnownKLogMem,
        Algorithm::UnknownRelaxed}) {
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success) << to_string(algorithm) << ": " << report.failure;
    EXPECT_GE(report.total_moves, k * n / 16) << "Theorem 1 floor";
  }
}

}  // namespace
}  // namespace udring::core
