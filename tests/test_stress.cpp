// Stress tests: larger instances, many seeds, model invariants checked after
// every atomic action, and cross-algorithm agreement — the heavyweight
// randomized sweeps the quick unit suites don't cover. The sweeps are
// campaigns (exp/campaign.h): declarative grids, sharded across workers,
// with every failing scenario reported at once in the campaign summary.
// Bounded to stay in CI budget (a few seconds total).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "exp/campaign.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::core {
namespace {

TEST(Stress, LargeInstancesAllAlgorithms) {
  // n up to 1500, k up to 75 — far beyond the unit sweeps.
  exp::CampaignGrid grid;
  grid.algorithms = {Algorithm::KnownKFull, Algorithm::KnownKLogMem,
                     Algorithm::UnknownRelaxed};
  grid.instances = {{600, 30}, {1000, 50}, {1500, 75}};
  grid.seeds = 1;
  const exp::CampaignResult result = exp::run_campaign(grid);
  ASSERT_EQ(result.scenarios.size(), 9u);
  EXPECT_TRUE(result.all_ok()) << result.summary();
}

TEST(Stress, InvariantsEveryStepUnderEveryScheduler) {
  // Deliberately not a campaign: this sweep drives the simulator one atomic
  // action at a time to check model invariants mid-execution, which the
  // run-to-quiescence engine cannot observe.
  for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
    Rng rng(99);
    RunSpec spec;
    spec.node_count = 60;
    spec.homes = gen::random_homes(60, 10, rng);
    auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
    auto scheduler = sim::make_scheduler(kind, 7, 10);
    scheduler->reset(10);
    std::size_t peak_tokens = 0;
    std::size_t steps = 0;
    while (simulator->step(*scheduler)) {
      peak_tokens = std::max(peak_tokens, simulator->total_tokens());
      // Full invariant check every 64 steps (every step would be O(actions²)).
      if (++steps % 64 == 0) {
        const auto check = sim::check_model_invariants(*simulator, peak_tokens);
        ASSERT_TRUE(check.ok) << sim::to_string(kind) << " step " << steps << ": "
                              << check.reason;
      }
    }
    ASSERT_TRUE(
        sim::UniformDeploymentOracle(false).check_goal(*simulator).ok)
        << sim::to_string(kind);
  }
}

TEST(Stress, ManySeedsSmallRings) {
  // Small rings are where edge cases live (k ≈ n, tiny gaps). 100 random
  // (n, k) draws deduped to their unique instances, × 4 seed repetitions
  // × 2 adversarial scheduler families × 5 algorithms — ≥ 1000 scenarios
  // in one campaign.
  exp::CampaignGrid grid;
  grid.algorithms = {Algorithm::KnownKFull, Algorithm::KnownNFull,
                     Algorithm::KnownKLogMem, Algorithm::KnownKLogMemStrict,
                     Algorithm::UnknownRelaxed};
  grid.schedulers = {sim::SchedulerKind::Random, sim::SchedulerKind::Burst};
  Rng rng(12345);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.below(12));
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n, 8)));
    grid.instances.emplace_back(n, k);
  }
  // Duplicate (n, k) draws would repeat the same substream; dedupe and let
  // seed repetitions provide the per-instance diversity instead.
  std::sort(grid.instances.begin(), grid.instances.end());
  grid.instances.erase(
      std::unique(grid.instances.begin(), grid.instances.end()),
      grid.instances.end());
  grid.seeds = 4;
  grid.base_seed = 12345;
  const exp::CampaignResult result = exp::run_campaign(grid);
  EXPECT_GE(result.scenarios.size(), 1000u);
  EXPECT_TRUE(result.all_ok()) << result.summary();
}

TEST(Stress, DeepSymmetrySweep) {
  // Every divisor pair (l | k, l | n) at n = 240: the full adaptivity lattice,
  // one campaign over the symmetry axis.
  const std::size_t n = 240, k = 24;
  exp::CampaignGrid grid;
  grid.algorithms = {Algorithm::UnknownRelaxed};
  grid.families = {exp::ConfigFamily::Periodic};
  grid.instances = {{n, k}};
  grid.symmetries = {2, 3, 4, 6, 8, 12, 24};
  grid.base_seed = 777;
  const exp::CampaignResult result = exp::run_campaign(grid);
  ASSERT_EQ(result.scenarios.size(), grid.symmetries.size());
  EXPECT_TRUE(result.all_ok()) << result.summary();
  for (const std::size_t l : grid.symmetries) {
    const exp::Averages avg = result.averages(
        {Algorithm::UnknownRelaxed, exp::ConfigFamily::Periodic,
         sim::SchedulerKind::Synchronous, n, k, l});
    ASSERT_EQ(avg.runs, 1u) << "l=" << l;
    EXPECT_LE(avg.moves, static_cast<double>(14 * k * n / l + k)) << "l=" << l;
  }
}

TEST(Stress, WorstCasePackedAtScale) {
  const std::size_t n = 800, k = 100;
  exp::CampaignGrid grid;
  grid.algorithms = {Algorithm::KnownKFull, Algorithm::KnownKLogMem,
                     Algorithm::UnknownRelaxed};
  grid.families = {exp::ConfigFamily::Packed};
  grid.instances = {{n, k}};
  const exp::CampaignResult result = exp::run_campaign(grid);
  EXPECT_TRUE(result.all_ok()) << result.summary();
  for (const Algorithm algorithm : grid.algorithms) {
    const exp::Averages avg = result.averages(
        {algorithm, exp::ConfigFamily::Packed, sim::SchedulerKind::Synchronous,
         n, k, 1});
    ASSERT_EQ(avg.runs, 1u) << to_string(algorithm);
    EXPECT_GE(avg.moves, static_cast<double>(k * n / 16))
        << to_string(algorithm) << ": Theorem 1 floor";
  }
}

}  // namespace
}  // namespace udring::core
